"""Legacy setup shim.

The project is fully described by ``pyproject.toml``; this file only
exists so that ``pip install -e .`` works on environments whose
setuptools/wheel toolchain predates PEP 660 editable installs.
"""

from setuptools import setup

setup()

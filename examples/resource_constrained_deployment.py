#!/usr/bin/env python
"""Scenario: squeezing the soft core next to other logic on the FPGA.

Embedded designs rarely give the processor the whole device: accelerators,
MACs and buffers need LUTs and block RAM too.  This example uses the
resource-optimisation weights of the paper's Section 6.2 and then sweeps
the weight ratio to expose the runtime/resource trade-off curve for one
application, so a designer can pick the point that fits their floorplan.

Run with::

    python examples/resource_constrained_deployment.py
"""

from __future__ import annotations

from repro import LiquidPlatform, MicroarchTuner, RESOURCE_OPTIMIZATION, Weights
from repro.analysis import Table
from repro.workloads import DrrWorkload


def main() -> None:
    platform = LiquidPlatform()
    tuner = MicroarchTuner(platform)
    workload = DrrWorkload(packet_count=1200)

    # --- the paper's Figure 7 setting -------------------------------------------------
    result = tuner.tune(workload, RESOURCE_OPTIMIZATION)
    print("Chip-resource optimisation (w1=1, w2=100):")
    print(result.summary())
    delta = result.actual_resource_delta()
    print(f"  resources saved : {-delta['lut']:.2f} LUT points, "
          f"{-delta['bram']:.2f} BRAM points")
    print(f"  runtime penalty : {-result.actual_runtime_gain_percent():.2f}%\n")

    # --- sweep the weight ratio to draw the trade-off curve ------------------------------
    model = result.model  # reuse the campaign: no extra builds are needed
    table = Table("Runtime/resource trade-off for DRR",
                  ["w1 (runtime)", "w2 (resources)", "runtime_change_%",
                   "lut_%", "bram_%", "changed_parameters"])
    for w1, w2 in ((100, 0), (100, 1), (10, 10), (1, 100), (0.5, 100)):
        weights = Weights(runtime=w1, resources=w2, label=f"{w1}:{w2}")
        point = tuner.tune(workload, weights, model=model)
        assert point.actual is not None
        table.add_row([
            w1, w2,
            100.0 * (point.actual.cycles - point.base.cycles) / point.base.cycles,
            point.actual.lut_percent,
            point.actual.bram_percent,
            len(point.changed_parameters()),
        ])
    print(table.render())
    print(f"\nDistinct processor builds used overall: {platform.effort()['builds']}")


if __name__ == "__main__":
    main()

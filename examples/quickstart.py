#!/usr/bin/env python
"""Quickstart: automatically tune the LEON-like soft core for one application.

This is the 60-second tour of the library:

1. build the *base* (out-of-the-box) processor configuration and measure it,
2. run the one-factor measurement campaign + BINLP optimisation for the
   BYTE Arith benchmark,
3. print the recommended microarchitecture and the measured improvement.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import LiquidPlatform, MicroarchTuner, RUNTIME_OPTIMIZATION, base_configuration
from repro.workloads import ArithWorkload


def main() -> None:
    platform = LiquidPlatform()
    workload = ArithWorkload(iterations=2000)

    # --- the base configuration -------------------------------------------------
    base = base_configuration()
    base_measurement = platform.measure(workload, base)
    print("Base configuration:")
    print(f"  resources : {base_measurement.resources.summary()}")
    print(f"  runtime   : {base_measurement.cycles} cycles "
          f"(CPI {base_measurement.statistics.cpi:.2f})")

    # --- automatic application-specific reconfiguration ---------------------------
    tuner = MicroarchTuner(platform)
    result = tuner.tune(workload, RUNTIME_OPTIMIZATION)

    print("\nRecommended reconfiguration (runtime optimisation, w1=100, w2=1):")
    for parameter, (old, new) in sorted(result.changed_parameters().items()):
        print(f"  {parameter:24s} {old!r} -> {new!r}")

    print("\nCosts:")
    print(f"  predicted runtime change : {result.predicted.runtime_percent:+.2f}%")
    assert result.actual is not None
    print(f"  measured runtime change  : "
          f"{-result.actual_runtime_gain_percent():+.2f}%")
    delta = result.actual_resource_delta()
    print(f"  chip resource change     : {delta['lut']:+.2f} LUT points, "
          f"{delta['bram']:+.2f} BRAM points")
    print(f"  campaign effort          : {platform.effort()['builds']} processor builds "
          f"(exhaustive search would need "
          f"{tuner.parameter_space.exhaustive_size():,} configurations)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Scenario: one soft core, two network workloads -- the tuning is application specific.

A network line card might run DRR fair scheduling on one port and IP
fragmentation (FRAG) on another.  The paper's central claim is that the
recommended microarchitecture differs per application; this example tunes
the same LEON-like core for both CommBench kernels and diffs the results.

Run with::

    python examples/network_processor.py
"""

from __future__ import annotations

from repro import LiquidPlatform, MicroarchTuner, RUNTIME_OPTIMIZATION
from repro.workloads import DrrWorkload, FragWorkload


def describe(result) -> None:
    print(result.summary())
    assert result.actual is not None
    print(f"  measured runtime gain : {result.actual_runtime_gain_percent():.2f}%")
    print(f"  chip resources        : {result.actual.lut_percent:.1f}% LUTs, "
          f"{result.actual.bram_percent:.1f}% BRAM")
    print(f"  solver                : {result.solution.describe()}\n")


def main() -> None:
    platform = LiquidPlatform()
    tuner = MicroarchTuner(platform)

    drr = DrrWorkload(packet_count=1500)
    frag = FragWorkload(packet_count=24)
    for workload in (drr, frag):
        workload.verify()

    print("=== DRR: deficit round robin scheduling (flow-table bound) ===")
    drr_result = tuner.tune(drr, RUNTIME_OPTIMIZATION)
    describe(drr_result)

    print("=== FRAG: IP fragmentation (streaming copies and checksums) ===")
    frag_result = tuner.tune(frag, RUNTIME_OPTIMIZATION)
    describe(frag_result)

    # --- the application-specific part -------------------------------------------------
    drr_config = drr_result.configuration
    frag_config = frag_result.configuration
    differences = drr_config.diff(frag_config)
    print("=== The recommendations differ (application-specific customisation) ===")
    if not differences:
        print("  (identical configurations -- unusual, try larger workloads)")
    for parameter, (frag_value, drr_value) in sorted(differences.items()):
        print(f"  {parameter:24s} FRAG -> {frag_value!r:12} DRR -> {drr_value!r}")

    total_builds = platform.effort()["builds"]
    print(f"\nTotal processor builds for both campaigns: {total_builds} "
          "(the exhaustive alternative is hundreds of millions)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Scenario: tuning the soft core for a genomics appliance running BLASTN.

BLASTN (DNA word matching) is the paper's memory-access-intensive benchmark:
its working set -- the database plus the word lookup table -- determines how
much the data cache helps.  This example mirrors the paper's Section 5 study:

* sweep the data-cache geometry exhaustively and print the runtime/BRAM
  trade-off curve (the paper's Figure 2),
* let the optimizer pick a configuration from one-factor measurements only,
* compare the two and show the full-space runtime optimisation on top.

Run with::

    python examples/genomics_blastn_tuning.py
"""

from __future__ import annotations

from repro import LiquidPlatform, MicroarchTuner, RUNTIME_OPTIMIZATION, RUNTIME_ONLY
from repro.analysis import dcache_exhaustive, dcache_optimizer
from repro.workloads import BlastnWorkload


def main() -> None:
    platform = LiquidPlatform()
    # a smaller database than the benchmark default keeps this example snappy
    workload = BlastnWorkload(database_length=9000, query_length=96, query_count=2)
    workload.verify()   # the seed-and-extend results match the Python reference
    mix = workload.mix_summary()
    print(f"BLASTN workload: {int(mix['instructions'])} instructions, "
          f"{100 * mix['memory_fraction']:.1f}% memory accesses\n")

    # --- the paper's Figure 2: exhaustive dcache sweep -----------------------------
    exhaustive = dcache_exhaustive(platform, workload)
    print(exhaustive.render())

    # --- the paper's Figure 3: what the optimizer does instead ----------------------
    optimizer = dcache_optimizer(platform, workload, RUNTIME_ONLY)
    best = exhaustive.data["best"]
    print("\nExhaustive optimum : "
          f"{best['sets']}x{best['setsize_kb']}KB at {best['cycles']} cycles")
    print("Optimizer selection: "
          f"{optimizer.data['selected_sets']}x{optimizer.data['selected_setsize_kb']}KB "
          f"at {optimizer.data['selected_cycles']} cycles "
          f"({optimizer.data['configurations_evaluated']} configurations measured)")

    # --- full-space runtime optimisation ----------------------------------------------
    tuner = MicroarchTuner(platform)
    result = tuner.tune(workload, RUNTIME_OPTIMIZATION)
    print("\nFull-space runtime optimisation:")
    print(result.summary())
    assert result.actual is not None
    print(f"measured improvement: {result.actual_runtime_gain_percent():.2f}% "
          f"(BRAM {result.actual.bram_percent:.1f}% of the device)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Run every paper experiment at benchmark scale and print the tables.

This is the non-pytest entry point used to regenerate the numbers quoted
in EXPERIMENTS.md; the pytest-benchmark harness in ``benchmarks/`` wraps
the same drivers.

The measurement layer runs through the evaluation engine: pass
``--workers N`` to fan cache simulations out over N worker processes,
``--store PATH`` to persist measurements (JSON-lines, or SQLite when the
path ends in ``.sqlite``/``.db``; either makes a full reproduction
resumable and shareable across runs), ``--profile`` to print per-stage
wall-clock, ``--phases`` to add the phase-transition study (cold-start
vs warm-chained per-phase miss rates of the multi-phase scenarios), or
``--sequential`` to fall back to the bare platform.  Dense configuration
grids (the Figure 2/4 sweeps) go through the broadcast-batched
``measure_sweep`` fast path by default; ``--no-sweep`` forces the
per-configuration loop (the two are bit-identical).  Engine statistics
(dedup hits, store hits, workers, wall clock) are printed at the end.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import time

from repro.engine import ParallelEvaluator, open_store
from repro.platform import LiquidPlatform
from repro.workloads import phase_scenarios, standard_workloads
from repro.analysis import (
    approximation_ablation,
    dcache_exhaustive,
    dcache_study,
    engine_report,
    headline_comparison,
    parameter_space_summary,
    perturbation_costs,
    phase_transition_study,
    resource_optimization,
    runtime_optimization,
    scalability_study,
    solver_ablation,
)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--workers", type=int, default=os.cpu_count() or 1,
        help="worker processes for parallel cache simulation (default: CPU count)")
    parser.add_argument(
        "--store", metavar="PATH", default=None,
        help="persistent result store; measurements found there are not re-simulated "
             "(JSON-lines by default, SQLite when PATH ends in .sqlite/.db)")
    parser.add_argument(
        "--sequential", action="store_true",
        help="bypass the engine and evaluate through the bare LiquidPlatform")
    parser.add_argument(
        "--profile", action="store_true",
        help="print per-stage wall-clock (trace generation, cache simulation, "
             "model build, solve) from the engine statistics")
    parser.add_argument(
        "--phases", action="store_true",
        help="add the phase-transition study: cold-start vs warm-chained "
             "per-phase miss rates of the multi-phase workload scenarios")
    parser.add_argument(
        "--sweep", action=argparse.BooleanOptionalAction, default=True,
        help="route dense configuration grids (Figures 2/4) through the "
             "broadcast-batched measure_sweep fast path (bit-identical to "
             "the per-configuration path; --no-sweep disables it)")
    args = parser.parse_args()
    if args.profile and args.sequential:
        parser.error("--profile requires the engine backend; drop --sequential")
    return args


@contextlib.contextmanager
def managed_backend(args: argparse.Namespace, *, with_store: bool = True):
    """A measurement backend whose worker pool is always shut down on exit.

    Engine backends own a process pool; leaking it to ``__del__`` keeps
    workers alive until interpreter teardown, so every consumer goes
    through this context manager (the evaluator-hygiene test asserts
    the pool is gone afterwards).
    """
    if args.sequential:
        yield LiquidPlatform()
        return
    store = open_store(args.store) if (args.store and with_store) else None
    with ParallelEvaluator(LiquidPlatform(), workers=args.workers, store=store) as backend:
        yield backend


def print_stage_profile(platform) -> None:
    """Per-stage wall-clock table of an engine backend (``--profile``)."""
    stages = platform.stats.stage_report()
    print(f"\n{'#' * 80}\n# Pipeline stage profile\n{'#' * 80}")
    if not stages:
        print("no stage timings recorded")
        return
    width = max(len(stage) for stage in stages)
    for stage, seconds in stages.items():
        print(f"  {stage:<{width}}  {seconds:9.3f}s")


def main() -> None:
    args = parse_args()
    start = time.time()
    workloads = standard_workloads()

    def show(result, label):
        print(f"\n{'#' * 80}\n# {label}  (t={time.time() - start:.0f}s)\n{'#' * 80}")
        print(result.render())

    with managed_backend(args) as platform:
        show(parameter_space_summary(), "Figure 1: parameter space")
        show(dcache_exhaustive(platform, workloads["blastn"], sweep=args.sweep),
             "Figure 2: BLASTN dcache exhaustive")
        fig4 = dcache_study(platform, workloads, sweep=args.sweep)
        show(fig4, "Figures 3/4: dcache exhaustive vs optimizer")
        fig5 = runtime_optimization(platform, workloads)
        show(fig5, "Figure 5: application runtime optimization (w1=100, w2=1)")
        show(perturbation_costs(fig5.data["results"]["blastn"]),
             "Figure 6: BLASTN perturbation costs")
        fig7 = resource_optimization(platform, workloads, models=fig5.data["models"])
        show(fig7, "Figure 7: chip resource optimization (w1=1, w2=100)")
        show(headline_comparison(fig5, fig7, fig4), "Headline claims")
        if args.phases:
            show(phase_transition_study(platform, phase_scenarios()),
                 "Phase transitions: cold-start vs warm-chained replay")
        # the scalability study reports the effort of a *fresh* platform; feeding
        # it the store would zero the build/run counts the paper's claim is about
        with managed_backend(args, with_store=False) as fresh:
            show(scalability_study(fresh, workloads["frag"]), "Scalability study")
        show(approximation_ablation(fig5.data["results"]["drr"]),
             "Approximation ablation (DRR)")
        show(solver_ablation(fig5.data["models"]["blastn"]), "Solver ablation (BLASTN)")
        if not args.sequential:
            show(engine_report(platform), "Evaluation engine statistics")
            print(platform.stats.summary())
            if args.profile:
                print_stage_profile(platform)
    print(f"\nTotal wall clock: {time.time() - start:.1f}s")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Run every paper experiment at benchmark scale and print the tables.

This is the non-pytest entry point used to regenerate the numbers quoted
in EXPERIMENTS.md; the pytest-benchmark harness in ``benchmarks/`` wraps
the same drivers.
"""

from __future__ import annotations

import time

from repro.platform import LiquidPlatform
from repro.workloads import standard_workloads
from repro.analysis import (
    approximation_ablation,
    dcache_exhaustive,
    dcache_study,
    headline_comparison,
    parameter_space_summary,
    perturbation_costs,
    resource_optimization,
    runtime_optimization,
    scalability_study,
    solver_ablation,
)


def main() -> None:
    start = time.time()
    platform = LiquidPlatform()
    workloads = standard_workloads()

    def show(result, label):
        print(f"\n{'#' * 80}\n# {label}  (t={time.time() - start:.0f}s)\n{'#' * 80}")
        print(result.render())

    show(parameter_space_summary(), "Figure 1: parameter space")
    show(dcache_exhaustive(platform, workloads["blastn"]), "Figure 2: BLASTN dcache exhaustive")
    fig4 = dcache_study(platform, workloads)
    show(fig4, "Figures 3/4: dcache exhaustive vs optimizer")
    fig5 = runtime_optimization(platform, workloads)
    show(fig5, "Figure 5: application runtime optimization (w1=100, w2=1)")
    show(perturbation_costs(fig5.data["results"]["blastn"]),
         "Figure 6: BLASTN perturbation costs")
    fig7 = resource_optimization(platform, workloads, models=fig5.data["models"])
    show(fig7, "Figure 7: chip resource optimization (w1=1, w2=100)")
    show(headline_comparison(fig5, fig7, fig4), "Headline claims")
    show(scalability_study(LiquidPlatform(), workloads["frag"]), "Scalability study")
    show(approximation_ablation(fig5.data["results"]["drr"]), "Approximation ablation (DRR)")
    show(solver_ablation(fig5.data["models"]["blastn"]), "Solver ablation (BLASTN)")
    print(f"\nTotal wall clock: {time.time() - start:.1f}s")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Run every paper experiment at benchmark scale and print the tables.

This is the non-pytest entry point used to regenerate the numbers quoted
in EXPERIMENTS.md; the pytest-benchmark harness in ``benchmarks/`` wraps
the same drivers.

The measurement layer runs through the evaluation engine: pass
``--workers N`` to fan cache simulations out over N worker processes,
``--store PATH`` to persist measurements (JSON-lines, or SQLite when the
path ends in ``.sqlite``/``.db``; either makes a full reproduction
resumable and shareable across runs), ``--profile`` to print per-stage
wall-clock, ``--phases`` to add the phase-transition study (cold-start
vs warm-chained per-phase miss rates of the multi-phase scenarios), or
``--sequential`` to fall back to the bare platform.  Dense configuration
grids (the Figure 2/4 sweeps) go through the broadcast-batched
``measure_sweep`` fast path by default; ``--no-sweep`` forces the
per-configuration loop (the two are bit-identical).  Engine statistics
(dedup hits, store hits, workers, wall clock) are printed at the end.

Distributed campaign mode (``--grid-db PATH``) replaces the experiment
suite with the pull-based campaign queue: ``--register`` writes the
Figure-2 configuration grid of the selected workloads into the database
as open experiment rows, any number of concurrent ``--claim`` processes
(same machine or any host sharing the file) atomically claim and
evaluate batches until the grid is drained, ``--status`` prints the row
counts (``--assert-drained`` makes it a CI gate, ``--json`` emits the
machine-readable snapshot, ``--watch`` live-renders the draining grid
with per-worker heartbeat health), and ``--reset-failed`` reopens
failed rows with a fresh attempt budget.  Results land in the same
database's ``measurements`` table, bit-identical to a direct
``measure_sweep``.

Resident service mode (``--serve``) turns the process into the
always-on tuning service: ``POST /sweep`` and ``POST /tune`` jobs run
on ONE supervised resident evaluator (pool respawn with backoff after
worker crashes, graceful SIGTERM drain), repeat queries answer from the
store by trace fingerprint, and with ``--grid-db`` sweep jobs become
campaign rows drained cooperatively with any CLI ``--claim`` workers.

Observability: ``--trace out.json`` records nested wall/CPU spans of
every pipeline stage -- across the worker pool, with per-process lanes
-- and writes a Chrome trace-event file loadable in Perfetto
(``.jsonl`` writes raw span records instead); ``--profile`` adds the
metrics-registry dump next to the per-stage wall-clock table.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
import time

from repro.engine import CampaignGrid, CampaignWorker, ParallelEvaluator, open_store
from repro.service.server import figure2_grid
from repro.obs import enable_tracing, get_tracer
from repro.platform import LiquidPlatform
from repro.workloads import phase_scenarios, small_workloads, standard_workloads
from repro.analysis import (
    approximation_ablation,
    dcache_exhaustive,
    dcache_study,
    engine_report,
    headline_comparison,
    parameter_space_summary,
    perturbation_costs,
    phase_transition_study,
    resource_optimization,
    runtime_optimization,
    scalability_study,
    solver_ablation,
)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--workers", type=int, default=os.cpu_count() or 1,
        help="worker processes for parallel cache simulation (default: CPU count)")
    parser.add_argument(
        "--store", metavar="PATH", default=None,
        help="persistent result store; measurements found there are not re-simulated "
             "(JSON-lines by default, SQLite when PATH ends in .sqlite/.db)")
    parser.add_argument(
        "--sequential", action="store_true",
        help="bypass the engine and evaluate through the bare LiquidPlatform")
    parser.add_argument(
        "--profile", action="store_true",
        help="print per-stage wall-clock (trace generation, cache simulation, "
             "model build, solve) from the engine statistics")
    parser.add_argument(
        "--phases", action="store_true",
        help="add the phase-transition study: cold-start vs warm-chained "
             "per-phase miss rates of the multi-phase workload scenarios")
    parser.add_argument(
        "--sweep", action=argparse.BooleanOptionalAction, default=True,
        help="route dense configuration grids (Figures 2/4) through the "
             "broadcast-batched measure_sweep fast path (bit-identical to "
             "the per-configuration path; --no-sweep disables it)")
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record pipeline spans (host and worker processes) and write a "
             "Chrome trace-event file at exit -- load it in Perfetto; a "
             ".jsonl suffix writes raw span records instead")
    parser.add_argument(
        "--only", choices=("fig2",), default=None,
        help="run a single experiment instead of the full suite "
             "(fig2 = the BLASTN dcache exhaustive sweep; used by CI)")
    parser.add_argument(
        "--scale", choices=("standard", "small"), default="standard",
        help="workload scale of the experiment suite (small = quick smoke "
             "traces; only honoured with --only)")
    grid = parser.add_argument_group(
        "distributed campaign grid",
        "register a configuration grid in a shared SQLite database and drain "
        "it with any number of concurrent --claim workers")
    grid.add_argument(
        "--grid-db", metavar="PATH", default=None,
        help="campaign database (grid rows and measurements share this file); "
             "selects campaign mode instead of the experiment suite")
    grid.add_argument(
        "--register", action="store_true",
        help="register the Figure-2 dcache grid of the selected workloads as "
             "open experiment rows (idempotent; re-running adds only new rows)")
    grid.add_argument(
        "--claim", action="store_true",
        help="run one campaign worker: claim open row batches, evaluate them, "
             "write measurements back, until nothing is claimable")
    grid.add_argument(
        "--status", action="store_true",
        help="print row counts by status and recent failures")
    grid.add_argument(
        "--json", action="store_true",
        help="with --status: print the full machine-readable campaign "
             "snapshot (counts, per-workload matrix, worker heartbeats)")
    grid.add_argument(
        "--watch", action="store_true",
        help="with --status: refresh an in-terminal dashboard until the "
             "grid drains or Ctrl-C (clean exit)")
    grid.add_argument(
        "--interval", type=float, default=2.0,
        help="refresh period of --watch in seconds (default: 2)")
    grid.add_argument(
        "--watch-max", type=int, default=None,
        help="stop --watch after this many refreshes (CI/testing bound)")
    grid.add_argument(
        "--stale-after", type=float, default=300.0,
        help="seconds without a heartbeat before a worker is flagged STALE "
             "(default: 300)")
    grid.add_argument(
        "--heartbeat", type=float, default=15.0,
        help="seconds between a --claim worker's liveness heartbeats into "
             "the campaign database (0 disables; default: 15)")
    grid.add_argument(
        "--reset-failed", action="store_true",
        help="reopen every failed row with a fresh attempt budget")
    grid.add_argument(
        "--assert-drained", action="store_true",
        help="with --status: exit non-zero unless every row is done (CI gate)")
    grid.add_argument(
        "--grid-workloads", metavar="NAMES", default=None,
        help="comma-separated workload names to register/claim "
             "(default: all of the selected scale)")
    grid.add_argument(
        "--grid-scale", choices=("standard", "small"), default="standard",
        help="workload scale of the campaign (small = quick smoke grids)")
    grid.add_argument(
        "--batch", type=int, default=16,
        help="experiment rows per claim transaction (default: 16)")
    grid.add_argument(
        "--lease", type=float, default=300.0,
        help="seconds before another worker may reclaim a silent claim "
             "(default: 300)")
    grid.add_argument(
        "--max-attempts", type=int, default=3,
        help="claim attempts per row before it rests in failed (default: 3)")
    grid.add_argument(
        "--worker-id", default=None,
        help="claim identity of this worker (default: host:pid:nonce)")
    grid.add_argument(
        "--max-batches", type=int, default=None,
        help="stop the worker after this many claim batches (default: drain)")
    service = parser.add_argument_group(
        "resident tuning service",
        "serve POST /sweep, POST /tune, GET /jobs/<id> and GET /metrics over "
        "one resident supervised evaluator until SIGTERM")
    service.add_argument(
        "--serve", action="store_true",
        help="run the always-on tuning service instead of the experiment "
             "suite; honours --workers, --store and --scale, and with "
             "--grid-db runs sweep jobs as campaign rows shared with "
             "--claim workers")
    service.add_argument(
        "--host", default="127.0.0.1",
        help="service bind address (default: 127.0.0.1)")
    service.add_argument(
        "--port", type=int, default=8023,
        help="service port (default: 8023; 0 picks an ephemeral port)")
    service.add_argument(
        "--serve-arena", choices=("auto", "force", "off"), default="auto",
        help="shared-memory trace arena policy for the resident evaluator "
             "(auto: per-host cost model may answer small batches inline; "
             "off: no arena but every eligible batch uses the pool -- the "
             "deterministic choice the CI service job kills workers under)")
    args = parser.parse_args()
    if args.profile and args.sequential:
        parser.error("--profile requires the engine backend; drop --sequential")
    campaign_actions = (args.register, args.claim, args.status, args.reset_failed)
    if any(campaign_actions) and not args.grid_db:
        parser.error("campaign actions require --grid-db PATH")
    if args.grid_db and not any(campaign_actions) and not args.serve:
        parser.error("--grid-db requires --register, --claim, --status, "
                     "--reset-failed and/or --serve")
    if args.serve and any(campaign_actions):
        parser.error("--serve runs its own campaign worker; drop "
                     "--register/--claim/--status/--reset-failed")
    if args.serve and args.sequential:
        parser.error("--serve requires the engine backend; drop --sequential")
    if (args.json or args.watch) and not args.status:
        parser.error("--json/--watch modify --status; add --status")
    if args.json and args.watch:
        parser.error("--json and --watch are mutually exclusive")
    return args


@contextlib.contextmanager
def managed_backend(args: argparse.Namespace, *, with_store: bool = True):
    """A measurement backend whose worker pool is always shut down on exit.

    Engine backends own a process pool; leaking it to ``__del__`` keeps
    workers alive until interpreter teardown, so every consumer goes
    through this context manager (the evaluator-hygiene test asserts
    the pool is gone afterwards).
    """
    if args.sequential:
        yield LiquidPlatform()
        return
    store = open_store(args.store) if (args.store and with_store) else None
    with ParallelEvaluator(LiquidPlatform(), workers=args.workers, store=store) as backend:
        yield backend


def print_stage_profile(platform) -> None:
    """Per-stage wall-clock table of an engine backend (``--profile``)."""
    stages = platform.stats.stage_report()
    print(f"\n{'#' * 80}\n# Pipeline stage profile\n{'#' * 80}")
    if not stages:
        print("no stage timings recorded")
        return
    width = max(len(stage) for stage in stages)
    for stage, seconds in stages.items():
        print(f"  {stage:<{width}}  {seconds:9.3f}s")
    print(f"\n{'#' * 80}\n# Metrics registry\n{'#' * 80}")
    print(platform.stats.registry.render_text())


def export_trace(path: str) -> None:
    """Write the process tracer's merged spans to ``path`` (``--trace``)."""
    tracer = get_tracer()
    if path.endswith(".jsonl"):
        count = tracer.export_jsonl(path)
        print(f"trace: {count} span records -> {path}")
    else:
        count = tracer.export_chrome(path)
        print(f"trace: {count} events -> {path} "
              "(load in https://ui.perfetto.dev)")


def campaign_main(args: argparse.Namespace) -> None:
    """Campaign mode: register/claim/status/reset against ``--grid-db``."""
    workload_map = (standard_workloads() if args.grid_scale == "standard"
                    else small_workloads())
    if args.grid_workloads:
        names = [name.strip() for name in args.grid_workloads.split(",")]
        unknown = [name for name in names if name not in workload_map]
        if unknown:
            sys.exit(f"unknown workloads: {', '.join(unknown)} "
                     f"(have: {', '.join(sorted(workload_map))})")
    else:
        names = sorted(workload_map)
    workloads = [workload_map[name] for name in names]
    platform = LiquidPlatform()

    with CampaignGrid(args.grid_db) as grid:
        grid.bind_platform(platform.device, platform.timing_parameters)
        if args.reset_failed:
            print(f"reopened {grid.reset_failed()} failed rows")
        if args.register:
            configs = figure2_grid(platform)
            for workload in workloads:
                added = grid.register(workload, configs)
                print(f"registered {workload.name}: {added} new rows "
                      f"({len(configs)} grid points)")
        if args.claim:
            worker = CampaignWorker(
                grid, workloads, worker_id=args.worker_id, batch=args.batch,
                lease_seconds=args.lease, max_attempts=args.max_attempts,
                workers=args.workers, heartbeat_seconds=args.heartbeat,
                platform=platform)
            try:
                report = worker.run(max_batches=args.max_batches)
            except KeyboardInterrupt:
                print(f"\ninterrupted: claims released "
                      f"({worker.report.done} rows were completed)")
                sys.exit(130)
            finally:
                worker.close()
            print(report.summary())
            stats = report.engine
            print(f"claims: {stats['claim_batches']} batches, "
                  f"{stats['claim_rows']} rows, "
                  f"{stats['claim_conflicts']} lock conflicts, "
                  f"{stats['claim_requeues']} requeued")
        if args.status and args.watch:
            from repro.obs.dashboard import watch

            watch(grid, interval=args.interval, stale_after=args.stale_after,
                  max_refreshes=args.watch_max)
        elif args.status and args.json:
            from repro.obs.dashboard import campaign_snapshot

            snapshot = campaign_snapshot(grid, stale_after=args.stale_after)
            print(json.dumps(snapshot, indent=2))
            if args.assert_drained:
                counts = snapshot["counts"]
                if counts["done"] != counts["total"]:
                    sys.exit(f"grid not drained: "
                             f"{counts['total'] - counts['done']} "
                             f"of {counts['total']} rows not done")
        elif args.status or args.claim:
            counts = grid.status()
            print("status: " + ", ".join(
                f"{counts[key]} {key}"
                for key in ("open", "claimed", "done", "failed")) +
                f" ({counts['total']} total)")
            for workload, state, count in grid.workload_status():
                print(f"  {workload}: {count} {state}")
            for rowid, workload, attempts, error in grid.failures():
                print(f"  failed row {rowid} ({workload}, "
                      f"{attempts} attempts): {error}")
            if args.assert_drained and counts["done"] != counts["total"]:
                sys.exit(f"grid not drained: {counts['total'] - counts['done']} "
                         f"of {counts['total']} rows not done")


def suite_fig2(args: argparse.Namespace) -> None:
    """The reduced ``--only fig2`` run: one BLASTN dcache exhaustive sweep.

    The CI observability job uses this with ``--scale small --trace`` to
    exercise the full decode/publish/replay/solve pipeline (worker lanes
    included) in seconds instead of minutes.
    """
    start = time.time()
    workloads = (small_workloads() if args.scale == "small"
                 else standard_workloads())
    with managed_backend(args) as platform:
        result = dcache_exhaustive(platform, workloads["blastn"], sweep=args.sweep)
        print(f"\n{'#' * 80}\n# Figure 2: BLASTN dcache exhaustive "
              f"({args.scale} scale)\n{'#' * 80}")
        print(result.render())
        if not args.sequential:
            print(platform.stats.summary())
            if args.profile:
                print_stage_profile(platform)
    print(f"\nTotal wall clock: {time.time() - start:.1f}s")


def main() -> None:
    args = parse_args()
    if args.trace:
        enable_tracing()
    try:
        if args.serve:
            from repro.service.server import serve

            serve(host=args.host, port=args.port, workers=args.workers,
                  scale=args.scale, store_path=args.store,
                  grid_path=args.grid_db,
                  arena={"auto": None, "force": True,
                         "off": False}[args.serve_arena])
        elif args.grid_db:
            campaign_main(args)
        elif args.only == "fig2":
            suite_fig2(args)
        else:
            suite_main(args)
    finally:
        if args.trace:
            export_trace(args.trace)


def suite_main(args: argparse.Namespace) -> None:
    start = time.time()
    workloads = standard_workloads()

    def show(result, label):
        print(f"\n{'#' * 80}\n# {label}  (t={time.time() - start:.0f}s)\n{'#' * 80}")
        print(result.render())

    with managed_backend(args) as platform:
        show(parameter_space_summary(), "Figure 1: parameter space")
        show(dcache_exhaustive(platform, workloads["blastn"], sweep=args.sweep),
             "Figure 2: BLASTN dcache exhaustive")
        fig4 = dcache_study(platform, workloads, sweep=args.sweep)
        show(fig4, "Figures 3/4: dcache exhaustive vs optimizer")
        fig5 = runtime_optimization(platform, workloads)
        show(fig5, "Figure 5: application runtime optimization (w1=100, w2=1)")
        show(perturbation_costs(fig5.data["results"]["blastn"]),
             "Figure 6: BLASTN perturbation costs")
        fig7 = resource_optimization(platform, workloads, models=fig5.data["models"])
        show(fig7, "Figure 7: chip resource optimization (w1=1, w2=100)")
        show(headline_comparison(fig5, fig7, fig4), "Headline claims")
        if args.phases:
            show(phase_transition_study(platform, phase_scenarios()),
                 "Phase transitions: cold-start vs warm-chained replay")
        # the scalability study reports the effort of a *fresh* platform; feeding
        # it the store would zero the build/run counts the paper's claim is about
        with managed_backend(args, with_store=False) as fresh:
            show(scalability_study(fresh, workloads["frag"]), "Scalability study")
        show(approximation_ablation(fig5.data["results"]["drr"]),
             "Approximation ablation (DRR)")
        show(solver_ablation(fig5.data["models"]["blastn"]), "Solver ablation (BLASTN)")
        if not args.sequential:
            show(engine_report(platform), "Evaluation engine statistics")
            print(platform.stats.summary())
            if args.profile:
                print_stage_profile(platform)
    print(f"\nTotal wall clock: {time.time() - start:.1f}s")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""End-to-end checks against a *live* tuning service (CI ``service`` job).

Expects a server already listening (``run_experiments.py --serve``);
this script is purely a client plus one local re-computation.  Two
subcommands, run in sequence by the workflow:

``sweep``
    Submits the default Figure-2 sweep for ``--workload``, waits for
    it, recomputes the same sweep with a direct in-process
    ``measure_sweep`` (no store, no service) and asserts the wire
    records are bit-identical.  Then resubmits the identical sweep and
    asserts **zero new evaluations**: ``cache_simulations`` and
    ``store_writes`` in ``/metrics`` are unchanged, and the second
    job's results equal the first's byte for byte.

``respawn``
    Run *after* the workflow SIGKILLs one of the server's pool worker
    processes.  Submits a sweep for the *same* workload over fresh
    configurations -- same workload so the resident pool (whose dead
    worker is the point) is reused rather than rebuilt for a new trace
    payload, fresh configurations so the memo/store layers cannot
    answer and the pool must actually run.  Asserts the supervisor
    noticed and recovered: the job is ``done`` with a full result set
    and ``/metrics`` reports ``pool_breaks >= 1`` and
    ``supervisor.restarts >= 1``.
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engine import ParallelEvaluator, ResultStore  # noqa: E402
from repro.platform import LiquidPlatform  # noqa: E402
from repro.service.client import ServiceClient  # noqa: E402
from repro.service.server import figure2_grid  # noqa: E402
from repro.workloads import small_workloads, standard_workloads  # noqa: E402


def _canon(records):
    return json.dumps(records, sort_keys=True)


def check_sweep(client, args):
    before = client.metrics()["engine"]
    first = client.wait(client.submit_sweep(args.workload)["id"],
                        timeout=args.timeout)
    assert first["status"] == "done", first
    mid = client.metrics()["engine"]

    # the same sweep, recomputed from scratch in this process
    platform = LiquidPlatform()
    registry = (small_workloads() if args.scale == "small"
                else standard_workloads())
    workload = registry[args.workload]
    configs = figure2_grid(platform)
    assert first["total"] == len(configs), (first["total"], len(configs))
    store = ResultStore()
    with ParallelEvaluator(platform, workers=1, store=store) as direct:
        expected = [store.encode(workload, measurement)
                    for measurement in direct.measure_sweep(workload, configs)]
    assert _canon(first["results"]) == _canon(expected), (
        "served sweep differs from a direct measure_sweep")

    # identical resubmit: answered from memo/store, zero new evaluations
    second = client.wait(client.submit_sweep(args.workload)["id"],
                         timeout=args.timeout)
    after = client.metrics()["engine"]
    assert after["cache_simulations"] == mid["cache_simulations"], (
        "resubmitted sweep re-simulated", mid, after)
    assert after["store_writes"] == mid["store_writes"], (
        "resubmitted sweep wrote new rows", mid, after)
    assert _canon(second["results"]) == _canon(first["results"])
    print(f"sweep ok: {len(expected)} records bit-identical to direct "
          f"measure_sweep; resubmit cost 0 new evaluations "
          f"({after['cache_simulations']} simulations total, was "
          f"{before['cache_simulations']} before the first job)")


def check_respawn(client, args):
    # the Figure-2 grid the sweep check drained varies only the dcache
    # geometry, so varying icache_sets yields buildable rows no memo or
    # store layer can answer
    fresh = [{"icache_sets": sets} for sets in (2, 3, 4)]
    job = client.wait(
        client.submit_sweep(args.workload, configs=fresh)["id"],
        timeout=args.timeout)
    assert job["status"] == "done", job
    assert len(job["results"]) == job["total"] > 0, job
    metrics = client.metrics()
    breaks = metrics["engine"]["pool_breaks"]
    restarts = metrics["supervisor"]["restarts"]
    assert breaks >= 1, f"pool break not observed (pool_breaks={breaks})"
    assert restarts >= 1, f"supervisor never respawned (restarts={restarts})"
    print(f"respawn ok: job completed {job['total']}/{job['total']} after a "
          f"SIGKILLed worker (pool_breaks={breaks}, "
          f"supervisor_restarts={restarts})")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("check", choices=("sweep", "respawn"))
    parser.add_argument("--url", default="http://127.0.0.1:8023")
    parser.add_argument("--workload", default="blastn")
    parser.add_argument("--scale", default="small",
                        choices=("small", "standard"),
                        help="must match the server's --scale")
    parser.add_argument("--timeout", type=float, default=600.0)
    args = parser.parse_args(argv)

    client = ServiceClient(args.url)
    assert client.health(), f"no live service at {args.url}"
    (check_sweep if args.check == "sweep" else check_respawn)(client, args)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Minimal stdlib client of the tuning service.

A thin ``urllib.request`` wrapper over the five routes -- no sessions,
no retries beyond polling, no dependency.  Used by the service tests,
the CI service job and the README walkthrough; also runnable as a tiny
CLI::

    python -m repro.service.client --url http://127.0.0.1:8023 sweep blastn
    python -m repro.service.client --url http://127.0.0.1:8023 wait <job-id>
    python -m repro.service.client --url http://127.0.0.1:8023 metrics
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx service response (carries status and the error body)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Talk to a running tuning service at ``base_url``."""

    def __init__(self, base_url: str, *, timeout: float = 60.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -------------------------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers,
                                         method=method)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read().decode("utf-8"))
                message = body.get("error", str(body))
            except Exception:
                message = exc.reason
            raise ServiceError(exc.code, message) from None

    # -- the routes ------------------------------------------------------------------------

    def health(self) -> bool:
        return bool(self._request("GET", "/healthz").get("ok"))

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/metrics")

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def submit_sweep(
        self,
        workload: str,
        configs: Optional[List[Dict[str, Any]]] = None,
        **extra: Any,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"workload": workload, **extra}
        if configs is not None:
            payload["configs"] = configs
        return self._request("POST", "/sweep", payload)

    def submit_tune(
        self, workload: str, weights: Any = "runtime", **extra: Any
    ) -> Dict[str, Any]:
        payload = {"workload": workload, "weights": weights, **extra}
        return self._request("POST", "/tune", payload)

    # -- convenience -----------------------------------------------------------------------

    def wait(
        self, job_id: str, *, timeout: float = 600.0, poll: float = 0.2
    ) -> Dict[str, Any]:
        """Poll until the job leaves the queue; raise on failure/timeout."""
        deadline = time.monotonic() + timeout
        while True:
            snapshot = self.job(job_id)
            if snapshot["status"] == "done":
                return snapshot
            if snapshot["status"] == "failed":
                raise ServiceError(500, f"job {job_id} failed: "
                                        f"{snapshot.get('error')}")
            if time.monotonic() >= deadline:
                raise ServiceError(
                    504, f"job {job_id} still {snapshot['status']} "
                         f"after {timeout:.0f}s")
            time.sleep(poll)


def _main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description="tuning service client")
    parser.add_argument("--url", default="http://127.0.0.1:8023")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="seconds to wait for submitted jobs")
    sub = parser.add_subparsers(dest="command", required=True)
    sweep = sub.add_parser("sweep", help="submit a sweep and wait for it")
    sweep.add_argument("workload")
    tune = sub.add_parser("tune", help="submit a tune job and wait for it")
    tune.add_argument("workload")
    tune.add_argument("--weights", default="runtime")
    job = sub.add_parser("job", help="print one job's status")
    job.add_argument("job_id")
    wait = sub.add_parser("wait", help="block until a job finishes")
    wait.add_argument("job_id")
    sub.add_parser("metrics", help="print the /metrics document")
    sub.add_parser("health", help="exit 0 when the service is live")
    args = parser.parse_args(argv)

    client = ServiceClient(args.url)
    if args.command == "sweep":
        submitted = client.submit_sweep(args.workload)
        result = client.wait(submitted["id"], timeout=args.timeout)
    elif args.command == "tune":
        submitted = client.submit_tune(args.workload, weights=args.weights)
        result = client.wait(submitted["id"], timeout=args.timeout)
    elif args.command == "job":
        result = client.job(args.job_id)
    elif args.command == "wait":
        result = client.wait(args.job_id, timeout=args.timeout)
    elif args.command == "metrics":
        result = client.metrics()
    else:
        return 0 if client.health() else 1
    print(json.dumps(result, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())

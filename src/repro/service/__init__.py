"""Always-on tuning service: HTTP sweep/tune jobs over the resident engine.

The paper's method is a batch pipeline -- trace once, sweep
configurations, solve -- but serving that evaluation to heavy repeat
traffic needs a process that stays up: one resident
:class:`~repro.engine.parallel.ParallelEvaluator` (supervised by an
:class:`~repro.engine.supervisor.EvaluatorSupervisor`) with the trace
arena attached, the platform memos warm and the persistent store
answering repeat queries by trace fingerprint, so a sweep a million
users re-submit costs one evaluation.

Three modules:

* :mod:`repro.service.jobs` -- the in-process job queue (one executor
  thread, because there is exactly one resident engine);
* :mod:`repro.service.server` -- :class:`TuningService` (the HTTP-free
  application object) plus the stdlib ``ThreadingHTTPServer`` layer:
  ``POST /sweep``, ``POST /tune``, ``GET /jobs[/<id>]``,
  ``GET /metrics``, ``GET /healthz``;
* :mod:`repro.service.client` -- a tiny ``urllib`` client used by the
  tests, the CI service job and the README walkthrough.

Everything is standard library (plus the engine's numpy); the service
adds no dependency.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import Job, JobManager
from repro.service.server import TuningService, figure2_grid, make_server, serve

__all__ = [
    "Job",
    "JobManager",
    "ServiceClient",
    "ServiceError",
    "TuningService",
    "figure2_grid",
    "make_server",
    "serve",
]

"""The always-on tuning service: HTTP jobs over one resident engine.

:class:`TuningService` is the HTTP-free application object -- it owns
the resident platform, the persistent store, the supervised evaluator
and the job queue, and can be driven directly from tests without a
socket.  The thin stdlib HTTP layer (:func:`make_server`, built on
``ThreadingHTTPServer``) maps five routes onto it:

* ``POST /sweep`` -- evaluate a ``{workload} x {configurations}`` grid
  (the Figure-2 dcache grid by default); returns a job id immediately.
* ``POST /tune``  -- run a full BINLP tuning job (one-factor campaign,
  solve, optional verification) for a workload under given weights.
* ``GET /jobs`` and ``GET /jobs/<id>`` -- job status with incremental
  results: a long sweep streams its finished batches before the job is
  done.
* ``GET /metrics`` -- engine statistics, the full metrics registry,
  supervisor health and job counts in one JSON document.
* ``GET /healthz`` -- liveness.

Repeat traffic is the point: the service keeps ONE
:class:`~repro.engine.supervisor.EvaluatorSupervisor` (hence one
worker pool, one shared-memory arena, one store, warm platform memos)
across every job, and results are keyed by trace fingerprint +
configuration + platform context in the store -- so re-submitting an
identical sweep answers from the store with zero new evaluations, bit
for bit identical to the first answer *and* to a direct
``measure_sweep`` call.  Sweep results on the wire are exactly the
store's encoded records (:meth:`ResultStoreBase.encode`), which is what
makes that equality a one-line comparison.

When the service is given a campaign database (``grid_path``), sweep
jobs are registered as campaign-grid rows and drained through a
:class:`~repro.engine.campaign.CampaignWorker` running on the resident
evaluator -- so CLI ``--claim`` workers pointed at the same file pull
from the same queue as the service, and either side may finish any row.
"""

from __future__ import annotations

import itertools
import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Sequence

from repro.config import (
    CACHE_SET_COUNTS,
    CACHE_SET_SIZES_KB,
    base_configuration,
)
from repro.config.configuration import Configuration
from repro.config.leon_space import leon_parameter_space
from repro.core.tuner import MicroarchTuner
from repro.core.weights import (
    RESOURCE_OPTIMIZATION,
    RUNTIME_ONLY,
    RUNTIME_OPTIMIZATION,
    Weights,
)
from repro.engine.campaign import CampaignGrid, CampaignWorker
from repro.engine.store import (
    ResultStore,
    ResultStoreBase,
    SqliteResultStore,
    open_store,
)
from repro.engine.supervisor import EvaluatorSupervisor
from repro.platform.liquid import LiquidPlatform
from repro.service.jobs import Job, JobManager
from repro.workloads import small_workloads, standard_workloads
from repro.workloads.base import Workload

__all__ = ["TuningService", "figure2_grid", "make_server", "serve"]

#: Named weight presets accepted by ``POST /tune`` payloads.
_WEIGHT_PRESETS = {
    "runtime": RUNTIME_OPTIMIZATION,
    "resources": RESOURCE_OPTIMIZATION,
    "runtime-only": RUNTIME_ONLY,
}


def figure2_grid(platform: LiquidPlatform) -> List[Configuration]:
    """The buildable Figure-2 dcache ``{sets x set size}`` grid.

    Canonical home of the grid every surface shares: the experiment
    script, the campaign ``--register`` and the service's default sweep
    all call this, so "the same grid" is true by construction.
    """
    base = base_configuration()
    configs = [
        base.replace(dcache_sets=sets, dcache_setsize_kb=size)
        for sets, size in itertools.product(CACHE_SET_COUNTS, CACHE_SET_SIZES_KB)
    ]
    return [config for config in configs if platform.fits(config)]


class ServiceBadRequest(ValueError):
    """A malformed job payload (mapped to HTTP 400)."""


class TuningService:
    """The resident application object behind the HTTP routes.

    Parameters
    ----------
    workers:
        Worker processes of the resident evaluator (default: evaluator's
        own default).
    scale:
        Workload registry served: ``"standard"`` (benchmark traces) or
        ``"small"`` (quick smoke traces; the test/CI default).
    store_path:
        Persistent result store path (JSON-lines or SQLite by suffix).
        Ignored when ``grid_path`` is given; default is an in-memory
        store (memoisation still works within the service's lifetime).
    grid_path:
        Campaign database.  Sweep jobs then run as campaign-grid rows,
        shared with any CLI ``--claim`` workers on the same file, and
        measurements persist in the same database.
    sweep_chunk:
        Configurations per evaluation batch of a direct (non-grid)
        sweep job; smaller chunks stream results sooner.
    arena:
        Forwarded to the evaluator (``None`` probes shared memory and
        applies the adaptive publish cost model; tests pass ``False``
        to force every batch through the worker pool deterministically).
    """

    def __init__(
        self,
        *,
        workers: Optional[int] = None,
        scale: str = "small",
        store_path: Optional[str] = None,
        grid_path: Optional[str] = None,
        platform: Optional[LiquidPlatform] = None,
        max_restarts: int = 5,
        sweep_chunk: int = 16,
        arena: Optional[bool] = None,
    ):
        if scale not in ("standard", "small"):
            raise ValueError(f"unknown workload scale: {scale!r}")
        self.platform = platform or LiquidPlatform()
        self.grid: Optional[CampaignGrid] = None
        if grid_path:
            self.grid = CampaignGrid(grid_path)
            self.grid.bind_platform(
                self.platform.device, self.platform.timing_parameters)
            store: ResultStoreBase = SqliteResultStore(
                grid_path, device=self.platform.device,
                timing_parameters=self.platform.timing_parameters)
        elif store_path:
            store = open_store(store_path)
        else:
            store = ResultStore()
        self.store = store
        self.supervisor = EvaluatorSupervisor(
            self.platform, workers=workers, store=store, arena=arena,
            max_restarts=max_restarts)
        self.workloads: Dict[str, Workload] = (
            small_workloads() if scale == "small" else standard_workloads())
        self.space = leon_parameter_space()
        self.sweep_chunk = max(1, sweep_chunk)
        self.jobs = JobManager(self._execute)

    # -- lifecycle -------------------------------------------------------------------------

    def start(self) -> "TuningService":
        self.supervisor.start()
        self.jobs.start()
        return self

    def stop(self, *, drain: bool = True) -> None:
        """Finish queued jobs (unless ``drain=False``), then tear down."""
        self.jobs.stop(drain=drain)
        self.supervisor.stop()
        if self.grid is not None:
            self.grid.close()

    def __enter__(self) -> "TuningService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- payload handling ------------------------------------------------------------------

    def _workload(self, payload: Dict[str, Any]) -> Workload:
        name = payload.get("workload")
        if not name:
            raise ServiceBadRequest("payload needs a 'workload' name")
        try:
            return self.workloads[name]
        except KeyError:
            raise ServiceBadRequest(
                f"unknown workload {name!r} "
                f"(have: {', '.join(sorted(self.workloads))})") from None

    def _configs(self, payload: Dict[str, Any]) -> List[Configuration]:
        """Sweep targets: explicit config dicts, or the Figure-2 grid."""
        raw = payload.get("configs")
        if raw is None:
            return figure2_grid(self.platform)
        if not isinstance(raw, list) or not raw:
            raise ServiceBadRequest("'configs' must be a non-empty list")
        base = base_configuration()
        configs = []
        for index, entry in enumerate(raw):
            if not isinstance(entry, dict):
                raise ServiceBadRequest(f"configs[{index}] is not an object")
            try:
                configs.append(base.replace(**entry))
            except Exception as exc:
                raise ServiceBadRequest(
                    f"configs[{index}] is invalid: {exc}") from None
        return configs

    def _weights(self, payload: Dict[str, Any]) -> Weights:
        raw = payload.get("weights", "runtime")
        if isinstance(raw, str):
            try:
                return _WEIGHT_PRESETS[raw]
            except KeyError:
                raise ServiceBadRequest(
                    f"unknown weights preset {raw!r} "
                    f"(have: {', '.join(sorted(_WEIGHT_PRESETS))})") from None
        if isinstance(raw, dict):
            try:
                return Weights(
                    runtime=float(raw.get("runtime", 0.0)),
                    resources=float(raw.get("resources", 0.0)),
                    label=str(raw.get("label", "custom")))
            except ValueError as exc:
                raise ServiceBadRequest(f"invalid weights: {exc}") from None
        raise ServiceBadRequest("'weights' must be a preset name or an object")

    # -- job submission --------------------------------------------------------------------

    def submit_sweep(self, payload: Dict[str, Any]) -> Job:
        """Validate and enqueue a sweep job (validation errors raise now,
        before the caller gets a job id -- a queued job never 400s)."""
        self._workload(payload)
        self._configs(payload)
        return self.jobs.submit("sweep", payload)

    def submit_tune(self, payload: Dict[str, Any]) -> Job:
        self._workload(payload)
        self._weights(payload)
        return self.jobs.submit("tune", payload)

    def job_snapshot(self, job_id: str, *, results: bool = True) -> Optional[Dict[str, Any]]:
        job = self.jobs.get(job_id)
        if job is None:
            return None
        return self.jobs.snapshot(job, results=results)

    def metrics(self) -> Dict[str, Any]:
        """Everything ``GET /metrics`` reports, as one JSON document."""
        stats = self.supervisor.stats
        return {
            "engine": stats.as_dict(),
            "registry": stats.registry.snapshot(),
            "supervisor": self.supervisor.snapshot(),
            "jobs": self.jobs.counts(),
            "store": {"records": len(self.store)},
        }

    # -- job execution (runs on the JobManager thread) -------------------------------------

    def _execute(self, job: Job) -> None:
        if job.kind == "sweep":
            self._run_sweep(job)
        elif job.kind == "tune":
            self._run_tune(job)
        else:  # pragma: no cover - submit() only enqueues known kinds
            raise ServiceBadRequest(f"unknown job kind {job.kind!r}")

    def _run_sweep(self, job: Job) -> None:
        workload = self._workload(job.payload)
        configs = self._configs(job.payload)
        self.jobs.set_total(job, len(configs))
        if self.grid is not None:
            self._drain_grid(job, workload, configs)
            # every row is settled (by us or by a CLI --claim worker
            # sharing the queue); answering the job from the store is a
            # pure re-read -- and if a foreign worker still holds a row,
            # evaluating it here is deterministic duplicate work, never
            # wrong data
        encoded = []
        for start in range(0, len(configs), self.sweep_chunk):
            chunk = configs[start:start + self.sweep_chunk]
            measurements = self.supervisor.measure_sweep(workload, chunk)
            records = [self.store.encode(workload, m) for m in measurements]
            encoded.extend(records)
            self.jobs.append_results(job, records)
        self.jobs.annotate(
            job, pool_breaks=self.supervisor.stats.pool_breaks,
            supervisor_restarts=self.supervisor.stats.supervisor_restarts)

    def _drain_grid(
        self, job: Job, workload: Workload, configs: Sequence[Configuration]
    ) -> None:
        """Register the sweep as campaign rows and pull until settled."""
        grid = self.grid
        assert grid is not None
        added = grid.register(workload, configs)
        self.jobs.annotate(job, grid_rows_added=added)
        worker = CampaignWorker(
            grid, [workload], evaluator=self.supervisor,
            worker_id=f"service:{job.id}", batch=self.sweep_chunk,
            heartbeat_seconds=15.0)
        while True:
            batches_before = worker.report.batches
            worker.run(max_batches=batches_before + 1)
            self.jobs.annotate(
                job,
                grid_done=worker.report.done,
                grid_failed=worker.report.failed,
                grid_batches=worker.report.batches)
            if worker.report.batches == batches_before:
                return  # nothing claimable: grid settled (or held elsewhere)

    def _run_tune(self, job: Job) -> None:
        workload = self._workload(job.payload)
        weights = self._weights(job.payload)
        parameters = job.payload.get("parameters")
        verify = bool(job.payload.get("verify", False))
        tuner = MicroarchTuner(self.supervisor, self.space)
        result = tuner.tune(
            workload, weights, parameters=parameters, verify=verify)
        record: Dict[str, Any] = {
            "workload": result.workload,
            "weights": {"runtime": weights.runtime,
                        "resources": weights.resources,
                        "label": weights.describe()},
            "configuration": result.configuration.as_dict(),
            "changed_parameters": {
                name: {"base": base, "tuned": tuned}
                for name, (base, tuned) in result.changed_parameters().items()
            },
            "predicted": {
                "runtime_percent": result.predicted.runtime_percent,
                "runtime_cycles": result.predicted.runtime_cycles,
                "lut_percent": result.predicted.lut_percent_linear,
                "bram_percent": result.predicted.bram_percent_nonlinear,
            },
        }
        if result.actual is not None:
            record["actual"] = self.store.encode(workload, result.actual)
        self.jobs.set_total(job, 1)
        self.jobs.append_results(job, [record])


# -- the stdlib HTTP layer ---------------------------------------------------------------------


class _ServiceHandler(BaseHTTPRequestHandler):
    """Routes five paths onto the ``TuningService`` hanging off the server."""

    server_version = "repro-tuning/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> TuningService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        """Quiet by default; the service's own telemetry covers requests."""

    def _reply(self, status: int, document: Dict[str, Any]) -> None:
        body = json.dumps(document).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _payload(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if not length:
            return {}
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServiceBadRequest(f"request body is not JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise ServiceBadRequest("request body must be a JSON object")
        return payload

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            self._reply(200, {"ok": True})
        elif path == "/metrics":
            self._reply(200, self.service.metrics())
        elif path == "/jobs":
            self._reply(200, {"jobs": self.service.jobs.list_jobs()})
        elif path.startswith("/jobs/"):
            snapshot = self.service.job_snapshot(path[len("/jobs/"):])
            if snapshot is None:
                self._reply(404, {"error": "no such job"})
            else:
                self._reply(200, snapshot)
        else:
            self._reply(404, {"error": f"no route for GET {path}"})

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0].rstrip("/")
        try:
            payload = self._payload()
            if path == "/sweep":
                job = self.service.submit_sweep(payload)
            elif path == "/tune":
                job = self.service.submit_tune(payload)
            else:
                self._reply(404, {"error": f"no route for POST {path}"})
                return
        except ServiceBadRequest as exc:
            self._reply(400, {"error": str(exc)})
            return
        self._reply(202, self.service.jobs.snapshot(job, results=False))


def make_server(
    service: TuningService, *, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """A ready-to-serve HTTP server bound to ``service`` (port 0 = ephemeral)."""
    httpd = ThreadingHTTPServer((host, port), _ServiceHandler)
    httpd.daemon_threads = True
    httpd.service = service  # type: ignore[attr-defined]
    return httpd


def serve(
    *,
    host: str = "127.0.0.1",
    port: int = 8023,
    workers: Optional[int] = None,
    scale: str = "small",
    store_path: Optional[str] = None,
    grid_path: Optional[str] = None,
    arena: Optional[bool] = None,
    install_signals: bool = True,
    announce=print,
) -> None:
    """Run the tuning service until SIGTERM/SIGINT, then drain and exit.

    The accept loop runs on a background thread; the main thread parks
    on the supervisor's ``stop_requested`` flag.  The signal handler
    only flips that flag (``HTTPServer.shutdown`` *waits* for the serve
    loop and would deadlock called from a handler on the serving
    thread), so shutdown is: flag flips -> main thread stops the accept
    loop -> queued jobs finish -> the resident evaluator closes with
    its workers joined.
    """
    import threading
    import time as _time

    service = TuningService(
        workers=workers, scale=scale, store_path=store_path,
        grid_path=grid_path, arena=arena)
    httpd = make_server(service, host=host, port=port)
    if install_signals:
        import signal as _signal

        service.supervisor.install_signal_handlers(
            signals=(_signal.SIGTERM, _signal.SIGINT))
    service.start()
    announce(f"tuning service on http://{httpd.server_address[0]}:"
             f"{httpd.server_address[1]} "
             f"(scale={scale}, grid={grid_path or 'none'}, "
             f"store={store_path or grid_path or 'memory'})")
    accept_loop = threading.Thread(
        target=httpd.serve_forever, kwargs={"poll_interval": 0.2},
        name="service-http", daemon=True)
    accept_loop.start()
    try:
        while not service.supervisor.stop_requested:
            _time.sleep(0.2)
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        httpd.shutdown()
        accept_loop.join(timeout=10.0)
        httpd.server_close()
        announce("draining jobs...")
        service.stop(drain=True)
        announce("tuning service stopped.")

"""In-process job queue of the tuning service.

One executor thread drains a FIFO of submitted jobs against the single
resident evaluator -- serialising jobs is deliberate: the engine already
parallelises *inside* a job (worker pool, broadcast-batched sweeps), and
two jobs interleaving on one pool would only fight over the same cores
while wrecking the per-job accounting the service reports.

Jobs are plain state machines (``queued -> running -> done | failed``)
whose mutations all happen under the manager lock, so HTTP handler
threads can snapshot any job mid-run and see a consistent view --
including *incremental results*: the executors append measurement
records batch by batch, which is what lets ``GET /jobs/<id>`` stream
progress on a long sweep instead of answering only at the end.
"""

from __future__ import annotations

import queue
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = ["Job", "JobManager",
           "JOB_QUEUED", "JOB_RUNNING", "JOB_DONE", "JOB_FAILED"]

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"


@dataclass
class Job:
    """One submitted unit of service work (sweep or tune)."""

    id: str
    kind: str
    payload: Dict[str, Any]
    status: str = JOB_QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Progress: results produced so far / results expected (0 = unknown).
    done: int = 0
    total: int = 0
    #: Incremental result records, appended as batches complete.
    results: List[Any] = field(default_factory=list)
    error: Optional[str] = None
    #: Executor-attached extras (engine accounting deltas, store hits).
    meta: Dict[str, Any] = field(default_factory=dict)


class JobManager:
    """FIFO job queue with one executor thread and locked snapshots.

    ``executor`` is called with each job once it reaches the front of
    the queue; raising marks the job ``failed`` with the repr of the
    error, returning marks it ``done``.  Executors report progress
    through :meth:`append_results` / :meth:`set_total` / :meth:`annotate`
    so every mutation shares the manager lock with the snapshot readers.
    """

    def __init__(self, executor: Callable[[Job], None]):
        self._executor = executor
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.RLock()
        self._idle = threading.Event()
        self._idle.set()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="service-jobs", daemon=True)
        self._thread.start()

    def stop(self, *, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the executor thread; ``drain`` finishes queued jobs first."""
        if drain:
            self.drain(timeout=timeout)
        self._stop.set()
        self._queue.put(None)  # wake the executor so it observes the stop
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def drain(self, *, timeout: Optional[float] = None) -> bool:
        """Block until every submitted job has finished (the SIGTERM path)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                pending = any(job.status in (JOB_QUEUED, JOB_RUNNING)
                              for job in self._jobs.values())
            if not pending:
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            self._idle.wait(timeout=0.05)

    # -- submission and inspection ---------------------------------------------------------

    def submit(self, kind: str, payload: Dict[str, Any]) -> Job:
        job = Job(id=uuid.uuid4().hex[:12], kind=kind, payload=payload)
        with self._lock:
            self._jobs[job.id] = job
        self._idle.clear()
        self._queue.put(job.id)
        return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def snapshot(self, job: Job, *, results: bool = True) -> Dict[str, Any]:
        """A consistent JSON-ready view of one job."""
        with self._lock:
            snap = {
                "id": job.id,
                "kind": job.kind,
                "status": job.status,
                "submitted_at": job.submitted_at,
                "started_at": job.started_at,
                "finished_at": job.finished_at,
                "done": job.done,
                "total": job.total,
                "error": job.error,
                "meta": dict(job.meta),
            }
            if results:
                snap["results"] = list(job.results)
            return snap

    def list_jobs(self) -> List[Dict[str, Any]]:
        """Submission-ordered summaries (no result bodies) of every job."""
        with self._lock:
            jobs = list(self._jobs.values())
        return [self.snapshot(job, results=False) for job in jobs]

    def counts(self) -> Dict[str, int]:
        with self._lock:
            counts = {s: 0 for s in (JOB_QUEUED, JOB_RUNNING, JOB_DONE, JOB_FAILED)}
            for job in self._jobs.values():
                counts[job.status] += 1
            counts["total"] = len(self._jobs)
        return counts

    # -- executor-side progress reporting --------------------------------------------------

    def set_total(self, job: Job, total: int) -> None:
        with self._lock:
            job.total = total

    def append_results(self, job: Job, records: List[Any]) -> None:
        with self._lock:
            job.results.extend(records)
            job.done = len(job.results)

    def annotate(self, job: Job, **meta: Any) -> None:
        with self._lock:
            job.meta.update(meta)

    # -- the executor loop -----------------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                job_id = self._queue.get(timeout=0.1)
            except queue.Empty:
                self._idle.set()
                continue
            if job_id is None:  # stop() wake-up token
                continue
            job = self.get(job_id)
            if job is None:  # pragma: no cover - defensive
                continue
            with self._lock:
                job.status = JOB_RUNNING
                job.started_at = time.time()
            try:
                self._executor(job)
            except Exception as exc:
                with self._lock:
                    job.status = JOB_FAILED
                    job.error = repr(exc)
                    job.finished_at = time.time()
            else:
                with self._lock:
                    job.status = JOB_DONE
                    job.finished_at = time.time()
            finally:
                if self._queue.empty():
                    self._idle.set()

"""Distributed campaign grid: a pull-based experiment queue over SQLite.

PyExperimenter-style horizontal scaling for configuration sweeps: a
campaign *registers* its full configuration grid as rows of an
``experiments`` table inside the same SQLite file the
:class:`~repro.engine.store.SqliteResultStore` keeps its measurements
in, and any number of :class:`CampaignWorker` processes -- in one
terminal, many terminals, or many hosts sharing the file -- *claim*
batches of open rows, evaluate them through the existing
:meth:`~repro.engine.parallel.ParallelEvaluator.measure_sweep` fast
path, and write the results back into ``measurements`` keyed exactly
like a direct sweep would.  A campaign is therefore resumable (kill
everything, restart, nothing done is redone) and shardable (N workers
drain one grid cooperatively) without any coordinator process.

The moving parts:

* :class:`CampaignGrid` owns the ``experiments`` table.  Each row is one
  ``(workload fingerprint, configuration)`` evaluation with a status
  machine ``open -> claimed -> done|failed``, the claiming worker's id,
  the claim timestamp (lease), and an attempt counter.  Rows carry a
  *batch key* -- ``fingerprint | icache linesize | dcache linesize`` --
  and a claim always takes rows of a single batch key, so the rows a
  worker evaluates together share their columnar trace decodes and the
  broadcast-batched timing evaluation: sharding never forfeits the
  single-host sweep wins.
* Claims are one atomic ``UPDATE ... RETURNING`` statement under WAL
  (single writer at a time, readers unblocked), wrapped in
  :func:`~repro.engine.store.busy_retry`; two workers can never claim
  the same row.
* A worker that dies mid-claim leaves its rows ``claimed``; any worker's
  next loop iteration reclaims claims older than the *lease* back to
  ``open`` (:meth:`CampaignGrid.reclaim_stale`).  A worker interrupted
  cleanly (``KeyboardInterrupt``/``SystemExit``) releases its claims
  immediately instead of squatting on them until the lease expires.
* Rows whose evaluation raises are marked ``failed`` with the error
  recorded; :meth:`CampaignGrid.reopen_failed` (the worker's automatic
  retry) re-opens them while their attempt count is below the cap, and
  :meth:`CampaignGrid.reset_failed` (the operator's ``--reset-failed``)
  clears the counter and starts over.

Crash safety of results: a worker writes measurements (through the
evaluator's store) *before* marking rows done, so a crash between the
two leaves rows to be claimed again -- and because every evaluation is
deterministic and store writes are ``INSERT OR IGNORE``, re-evaluating a
row is wasted work but never wrong data.

Sharding overhead is auditable through the evaluator's
:class:`~repro.engine.backend.EngineStats`: ``claim_batches`` /
``claim_rows`` / ``claim_conflicts`` / ``claim_requeues``.
"""

from __future__ import annotations

import json
import os
import socket
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config.configuration import Configuration
from repro.config.leon_space import leon_parameter_space
from repro.config.parameters import ParameterSpace
from repro.engine.parallel import ParallelEvaluator
from repro.engine.store import (
    SqliteResultStore,
    busy_retry,
    config_key_string,
    connect_sqlite,
    platform_context,
)
from repro.fpga.device import FpgaDevice, XCV2000E
from repro.microarch.timing import TimingParameters
from repro.obs.tracer import span
from repro.platform.liquid import LiquidPlatform
from repro.workloads.base import Workload

__all__ = [
    "CampaignGrid",
    "CampaignWorker",
    "CampaignReport",
    "GridRow",
    "STATUS_OPEN",
    "STATUS_CLAIMED",
    "STATUS_DONE",
    "STATUS_FAILED",
]

#: Row status machine: ``open -> claimed -> done | failed`` (failed rows
#: may be reopened for retry, stale claims fall back to open).
STATUS_OPEN = "open"
STATUS_CLAIMED = "claimed"
STATUS_DONE = "done"
STATUS_FAILED = "failed"

_STATUSES = (STATUS_OPEN, STATUS_CLAIMED, STATUS_DONE, STATUS_FAILED)

#: Error recorded when an open row has burnt through its attempt budget.
_EXHAUSTED_ERROR = "attempts exhausted"


def default_worker_id() -> str:
    """A worker id unique across hosts and processes (host:pid:nonce)."""
    return f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:6]}"


@dataclass(frozen=True)
class GridRow:
    """One claimed experiment row, ready to evaluate."""

    #: Database row id (stable claim/done/release handle).
    rowid: int
    #: Trace fingerprint of the workload this row measures.
    fingerprint: str
    #: Workload display name recorded at registration.
    workload: str
    #: The full configuration assignment, reconstructed from the row.
    configuration: Configuration
    #: Claim attempts spent on this row so far (including the current one).
    attempts: int


class CampaignGrid:
    """The experiment table of one campaign database.

    Opens (and creates on demand) the ``experiments`` table inside
    ``path`` -- normally the same SQLite file as the campaign's
    :class:`~repro.engine.store.SqliteResultStore`, so grid and results
    travel together.  Rows are keyed ``(context, fingerprint, config
    key)`` exactly like measurements: registering the same grid twice is
    a no-op, and a calibration change (different platform context)
    starts a fresh campaign in the same file without touching the old
    one's rows.
    """

    def __init__(
        self,
        path: str,
        *,
        device: FpgaDevice = XCV2000E,
        timing_parameters: Optional[TimingParameters] = None,
        space: Optional[ParameterSpace] = None,
    ):
        self.path = path
        self.device = device
        self.context = platform_context(device, timing_parameters or TimingParameters())
        #: Parameter space configurations are reconstructed against; every
        #: consumer in this repo sweeps the LEON space of Figure 1.
        self.space = space if space is not None else leon_parameter_space()
        self._conn = connect_sqlite(path)
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS experiments ("
            " id INTEGER PRIMARY KEY AUTOINCREMENT,"
            " context TEXT NOT NULL,"
            " fingerprint TEXT NOT NULL,"
            " workload TEXT NOT NULL,"
            " config_key TEXT NOT NULL,"
            " config TEXT NOT NULL,"
            " batch_key TEXT NOT NULL,"
            " status TEXT NOT NULL DEFAULT 'open',"
            " worker TEXT,"
            " claimed_at REAL,"
            " finished_at REAL,"
            " attempts INTEGER NOT NULL DEFAULT 0,"
            " error TEXT,"
            " UNIQUE (context, fingerprint, config_key))")
        # the claim statement's working set: open rows of one context in
        # batch-key groups, oldest first
        self._conn.execute(
            "CREATE INDEX IF NOT EXISTS experiments_claim"
            " ON experiments (context, status, batch_key, id)")
        # one row per live worker, upserted on every beat: the dashboard's
        # view of who is draining the grid and how fast (same file, so any
        # terminal that can see the campaign can see its workers)
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS heartbeats ("
            " context TEXT NOT NULL,"
            " worker TEXT NOT NULL,"
            " host TEXT NOT NULL,"
            " pid INTEGER NOT NULL,"
            " ts REAL NOT NULL,"
            " batches INTEGER NOT NULL DEFAULT 0,"
            " claimed INTEGER NOT NULL DEFAULT 0,"
            " done INTEGER NOT NULL DEFAULT 0,"
            " failed INTEGER NOT NULL DEFAULT 0,"
            " rows_per_sec REAL NOT NULL DEFAULT 0,"
            " engine TEXT,"
            " PRIMARY KEY (context, worker))")
        self._conn.commit()

    def bind_platform(self, device: FpgaDevice, timing_parameters: TimingParameters) -> None:
        """Re-key the grid to a platform's actual calibration context."""
        self.device = device
        self.context = platform_context(device, timing_parameters)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "CampaignGrid":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- registration ----------------------------------------------------------------------

    @staticmethod
    def batch_key(fingerprint: str, config: Configuration) -> str:
        """The shared-decode claim group of one row.

        Rows sharing a batch key share their trace fingerprint and both
        cache line sizes, i.e. exactly the ``(trace, kind, linesize)``
        decode groups of the engine's sweep planner -- a claimed batch
        therefore always replays against shared columnar views.
        """
        return (f"{fingerprint}|{config.icache_linesize_words}"
                f"|{config.dcache_linesize_words}")

    def register(self, workload: Workload, configs: Sequence[Configuration]) -> int:
        """Add one workload's configuration grid; returns the new-row count.

        Registration is idempotent per ``(context, fingerprint, config)``
        -- re-registering a partially drained campaign adds only rows it
        has never seen, so ``--register`` is safe to re-run at any time.
        """
        fingerprint = workload.fingerprint()
        rows = [
            (self.context, fingerprint, workload.name,
             config_key_string(config),
             json.dumps(config.as_dict(), sort_keys=True),
             self.batch_key(fingerprint, config))
            for config in configs
        ]

        def write() -> int:
            before = self._conn.total_changes
            self._conn.executemany(
                "INSERT OR IGNORE INTO experiments"
                " (context, fingerprint, workload, config_key, config, batch_key)"
                " VALUES (?, ?, ?, ?, ?, ?)", rows)
            self._conn.commit()
            return self._conn.total_changes - before

        return busy_retry(write)

    # -- claiming --------------------------------------------------------------------------

    def claim(
        self,
        worker_id: str,
        *,
        batch: int = 16,
        fingerprints: Optional[Iterable[str]] = None,
        max_attempts: Optional[int] = None,
        on_conflict=None,
    ) -> List[GridRow]:
        """Atomically claim up to ``batch`` open rows of one batch key.

        One ``UPDATE ... RETURNING`` statement moves the rows to
        ``claimed``, stamps this worker and the claim time, and bumps
        each row's attempt counter -- all or nothing with respect to any
        concurrently claiming worker (WAL admits one writer at a time;
        ``busy_timeout`` plus :func:`~repro.engine.store.busy_retry`
        absorb the contention).  ``fingerprints`` restricts claims to
        workloads this worker can actually evaluate; ``max_attempts``
        leaves exhausted rows alone (see :meth:`retire_exhausted`).
        Returns the claimed rows (empty when nothing is claimable).
        """
        filters = ["status = 'open'", "context = :context"]
        params: Dict[str, Any] = {
            "context": self.context,
            "worker": worker_id,
            "now": time.time(),
            "batch": max(1, batch),
        }
        if fingerprints is not None:
            known = sorted(set(fingerprints))
            if not known:
                return []
            names = [f"fp{i}" for i in range(len(known))]
            filters.append(
                "fingerprint IN (%s)" % ", ".join(f":{n}" for n in names))
            params.update(zip(names, known))
        if max_attempts is not None:
            filters.append("attempts < :max_attempts")
            params["max_attempts"] = max(1, max_attempts)
        where = " AND ".join(filters)
        statement = (
            "UPDATE experiments SET"
            " status = 'claimed', worker = :worker, claimed_at = :now,"
            " attempts = attempts + 1"
            " WHERE id IN ("
            f"  SELECT id FROM experiments WHERE {where}"
            "   AND batch_key = ("
            f"    SELECT batch_key FROM experiments WHERE {where}"
            "     ORDER BY id LIMIT 1)"
            "   ORDER BY id LIMIT :batch)"
            " RETURNING id, fingerprint, workload, config, attempts")

        def transact() -> List[Tuple]:
            cursor = self._conn.execute(statement, params)
            returned = cursor.fetchall()
            self._conn.commit()
            return returned

        return [
            GridRow(
                rowid=rowid,
                fingerprint=fingerprint,
                workload=workload,
                configuration=Configuration(self.space, json.loads(config)),
                attempts=attempts,
            )
            for rowid, fingerprint, workload, config, attempts
            in busy_retry(transact, on_conflict=on_conflict)
        ]

    # -- completion and requeueing ---------------------------------------------------------

    def _update_rows(
        self, ids: Sequence[int], assignment: str,
        params: Tuple = (), *, guard: str = "status = 'claimed'",
        on_conflict=None,
    ) -> int:
        if not ids:
            return 0
        placeholders = ", ".join("?" for _ in ids)

        def transact() -> int:
            cursor = self._conn.execute(
                f"UPDATE experiments SET {assignment}"
                f" WHERE {guard} AND id IN ({placeholders})",
                (*params, *ids))
            self._conn.commit()
            return cursor.rowcount

        return busy_retry(transact, on_conflict=on_conflict)

    def mark_done(self, ids: Sequence[int], worker_id: str, *, on_conflict=None) -> int:
        """Move claimed rows to ``done`` (only rows this worker still holds)."""
        return self._update_rows(
            ids, "status = 'done', finished_at = ?, error = NULL",
            (time.time(), worker_id),
            guard="status = 'claimed' AND worker = ?", on_conflict=on_conflict)

    def mark_failed(self, ids: Sequence[int], error: str, *, on_conflict=None) -> int:
        """Move claimed rows to ``failed``, recording the error text."""
        return self._update_rows(
            ids, "status = 'failed', finished_at = ?, error = ?",
            (time.time(), error[:500]), on_conflict=on_conflict)

    def release(self, ids: Sequence[int], *, on_conflict=None) -> int:
        """Return claimed rows to ``open`` without burning their attempt.

        This is the *clean* hand-back (interrupt, shutdown): the claim
        did not fail, so the attempt spent on it is refunded -- unlike
        stale reclamation, where the vanished worker's attempt stays
        burnt so a crash-looping row still converges on the cap.
        """
        return self._update_rows(
            ids, "status = 'open', worker = NULL, claimed_at = NULL,"
                 " attempts = MAX(attempts - 1, 0)", on_conflict=on_conflict)

    def release_worker(self, worker_id: str) -> int:
        """Release every row still claimed by ``worker_id`` (shutdown path)."""

        def transact() -> int:
            cursor = self._conn.execute(
                "UPDATE experiments SET status = 'open', worker = NULL,"
                " claimed_at = NULL, attempts = MAX(attempts - 1, 0)"
                " WHERE status = 'claimed' AND context = ? AND worker = ?",
                (self.context, worker_id))
            self._conn.commit()
            return cursor.rowcount

        return busy_retry(transact)

    def reclaim_stale(self, lease_seconds: float, *, on_conflict=None) -> int:
        """Requeue claims older than the lease (their worker is presumed dead).

        The burnt attempt is *not* refunded: a worker that keeps dying on
        the same rows drives them toward the attempt cap instead of
        wedging the campaign forever.
        """

        def transact() -> int:
            cursor = self._conn.execute(
                "UPDATE experiments SET status = 'open', worker = NULL,"
                " claimed_at = NULL"
                " WHERE status = 'claimed' AND context = ? AND claimed_at <= ?",
                (self.context, time.time() - max(0.0, lease_seconds)))
            self._conn.commit()
            return cursor.rowcount

        return busy_retry(transact, on_conflict=on_conflict)

    def retire_exhausted(self, max_attempts: int, *, on_conflict=None) -> int:
        """Fail open rows whose attempt budget is spent (reclaimed crashers)."""

        def transact() -> int:
            cursor = self._conn.execute(
                "UPDATE experiments SET status = 'failed', finished_at = ?,"
                " error = ?"
                " WHERE status = 'open' AND context = ? AND attempts >= ?",
                (time.time(), _EXHAUSTED_ERROR, self.context, max(1, max_attempts)))
            self._conn.commit()
            return cursor.rowcount

        return busy_retry(transact, on_conflict=on_conflict)

    def reopen_failed(self, max_attempts: int, *, on_conflict=None) -> int:
        """Reopen failed rows still under the attempt cap (automatic retry)."""

        def transact() -> int:
            cursor = self._conn.execute(
                "UPDATE experiments SET status = 'open', worker = NULL,"
                " claimed_at = NULL, finished_at = NULL"
                " WHERE status = 'failed' AND context = ? AND attempts < ?",
                (self.context, max(1, max_attempts)))
            self._conn.commit()
            return cursor.rowcount

        return busy_retry(transact, on_conflict=on_conflict)

    def reset_failed(self) -> int:
        """Operator reset: every failed row back to ``open`` with a fresh budget."""

        def transact() -> int:
            cursor = self._conn.execute(
                "UPDATE experiments SET status = 'open', worker = NULL,"
                " claimed_at = NULL, finished_at = NULL, attempts = 0,"
                " error = NULL"
                " WHERE status = 'failed' AND context = ?", (self.context,))
            self._conn.commit()
            return cursor.rowcount

        return busy_retry(transact)

    # -- inspection ------------------------------------------------------------------------

    def status(self) -> Dict[str, int]:
        """Row counts by status (plus ``total``) for this context."""
        counts = {status: 0 for status in _STATUSES}
        for status, count in self._conn.execute(
                "SELECT status, COUNT(*) FROM experiments"
                " WHERE context = ? GROUP BY status", (self.context,)):
            counts[status] = count
        counts["total"] = sum(counts[status] for status in _STATUSES)
        return counts

    def workload_status(self) -> List[Tuple[str, str, int]]:
        """Per-(workload, status) row counts, registration order."""
        return list(self._conn.execute(
            "SELECT workload, status, COUNT(*) FROM experiments"
            " WHERE context = ? GROUP BY workload, status"
            " ORDER BY MIN(id)", (self.context,)))

    def failures(self, limit: int = 20) -> List[Tuple[int, str, int, str]]:
        """The most recent failed rows: (id, workload, attempts, error)."""
        return list(self._conn.execute(
            "SELECT id, workload, attempts, error FROM experiments"
            " WHERE context = ? AND status = 'failed'"
            " ORDER BY finished_at DESC LIMIT ?", (self.context, limit)))

    def pending(self) -> int:
        """Rows not yet done (open + claimed + failed)."""
        counts = self.status()
        return counts["total"] - counts[STATUS_DONE]

    # -- worker heartbeats -----------------------------------------------------------------

    def heartbeat(
        self,
        worker_id: str,
        *,
        batches: int = 0,
        claimed: int = 0,
        done: int = 0,
        failed: int = 0,
        rows_per_sec: float = 0.0,
        engine: Optional[Dict[str, Any]] = None,
        on_conflict=None,
    ) -> None:
        """Upsert this worker's liveness row (one row per worker).

        Each beat overwrites the previous one with cumulative progress
        counters and the worker's self-reported throughput; the beat
        timestamp is what the dashboard ages to flag ``STALE`` workers.
        """
        params = (
            self.context, worker_id, socket.gethostname(), os.getpid(),
            time.time(), batches, claimed, done, failed, rows_per_sec,
            json.dumps(engine, sort_keys=True) if engine else None)

        def transact() -> None:
            self._conn.execute(
                "INSERT OR REPLACE INTO heartbeats"
                " (context, worker, host, pid, ts, batches, claimed, done,"
                "  failed, rows_per_sec, engine)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)", params)
            self._conn.commit()

        busy_retry(transact, on_conflict=on_conflict)

    def worker_heartbeats(self) -> List[Dict[str, Any]]:
        """Every worker's latest heartbeat for this context, newest first."""
        rows = self._conn.execute(
            "SELECT worker, host, pid, ts, batches, claimed, done, failed,"
            " rows_per_sec, engine FROM heartbeats"
            " WHERE context = ? ORDER BY ts DESC", (self.context,))
        return [
            {
                "worker": worker, "host": host, "pid": pid, "ts": ts,
                "batches": batches, "claimed": claimed, "done": done,
                "failed": failed, "rows_per_sec": rows_per_sec,
                "engine": json.loads(engine) if engine else None,
            }
            for worker, host, pid, ts, batches, claimed, done, failed,
            rows_per_sec, engine in rows
        ]


@dataclass
class CampaignReport:
    """What one :meth:`CampaignWorker.run` accomplished."""

    worker_id: str = ""
    #: Claim transactions that returned rows, and the rows they returned.
    batches: int = 0
    claimed: int = 0
    #: Rows evaluated and marked done by this worker.
    done: int = 0
    #: Rows this worker marked failed (evaluation raised).
    failed: int = 0
    #: Stale rows this worker reclaimed from expired leases.
    requeued: int = 0
    #: Failed rows this worker reopened for retry.
    reopened: int = 0
    #: Wall-clock seconds inside the pull loop.
    wall_seconds: float = 0.0
    #: Final evaluator accounting (:meth:`EngineStats.as_dict`).
    engine: Dict[str, Any] = field(default_factory=dict)

    def summary(self) -> str:
        return (f"worker {self.worker_id}: {self.done} done, {self.failed} failed "
                f"in {self.batches} batches ({self.requeued} requeued, "
                f"{self.reopened} reopened), {self.wall_seconds:.2f}s")


class CampaignWorker:
    """One pull-loop worker draining a :class:`CampaignGrid`.

    The worker repeatedly: reclaims stale leases, retires rows whose
    attempt budget is spent, claims one batch of open rows (restricted to
    the workloads it was constructed with, matched by trace fingerprint),
    evaluates the batch through
    :meth:`ParallelEvaluator.measure_sweep` -- results land in the
    campaign database's ``measurements`` table via the evaluator's store,
    bit-identical to a direct sweep -- and marks the rows done.  When no
    row is claimable it reopens retryable failed rows once, and exits
    when the grid has nothing left for it.

    ``KeyboardInterrupt`` (or any other teardown) releases the rows the
    worker still holds, so an operator hitting Ctrl-C hands the work
    straight back to the other workers instead of parking it until the
    lease expires.

    Parameters mirror the CLI: ``batch`` rows per claim, ``lease_seconds``
    before another worker may steal a silent claim, ``max_attempts``
    per row before it rests in ``failed``, ``workers`` processes inside
    this worker's own evaluator (default 1: the campaign process is the
    unit of parallelism; raise it when one worker owns a whole machine),
    and ``heartbeat_seconds`` between liveness upserts into the grid's
    ``heartbeats`` table (0 disables them; a beat is also written at
    loop entry and on exit so even instant drains leave a row for the
    dashboard).
    """

    def __init__(
        self,
        grid: CampaignGrid,
        workloads: Sequence[Workload],
        *,
        worker_id: Optional[str] = None,
        batch: int = 16,
        lease_seconds: float = 300.0,
        max_attempts: int = 3,
        retry_failed: bool = True,
        workers: int = 1,
        heartbeat_seconds: float = 15.0,
        platform: Optional[LiquidPlatform] = None,
        store: Optional[SqliteResultStore] = None,
        evaluator=None,
    ):
        self.grid = grid
        self.worker_id = worker_id or default_worker_id()
        self.batch = max(1, batch)
        self.lease_seconds = lease_seconds
        self.max_attempts = max(1, max_attempts)
        self.retry_failed = retry_failed
        self.heartbeat_seconds = max(0.0, heartbeat_seconds)
        self._loop_start = 0.0
        self._last_beat = 0.0
        if evaluator is not None:
            # a resident engine (e.g. the tuning service's supervised
            # evaluator) drains the grid: its store must already write
            # into the campaign database so results land where claims do
            if evaluator.store is None:
                raise ValueError(
                    "an injected campaign evaluator needs a store bound "
                    "to the campaign database")
            self.platform = evaluator.platform
            self.store = evaluator.store
            self.evaluator = evaluator
            self._owns_evaluator = False
        else:
            self.platform = platform or LiquidPlatform()
            self.store = store or SqliteResultStore(
                grid.path, device=self.platform.device,
                timing_parameters=self.platform.timing_parameters)
            self.evaluator = ParallelEvaluator(
                self.platform, workers=workers, store=self.store)
            self._owns_evaluator = True
        grid.bind_platform(self.platform.device, self.platform.timing_parameters)
        #: fingerprint -> workload this worker can evaluate (fingerprinting
        #: generates each trace once; the evaluations need it anyway)
        self.workloads: Dict[str, Workload] = {
            workload.fingerprint(): workload for workload in workloads}
        self.report = CampaignReport(worker_id=self.worker_id)

    # -- lifecycle -------------------------------------------------------------------------

    def close(self) -> None:
        """Shut down an owned evaluator pool/arena (the grid stays open).

        Injected evaluators belong to their supervisor/service and stay
        resident across many drains; closing is the owner's job.
        """
        if self._owns_evaluator:
            self.evaluator.close()

    def __enter__(self) -> "CampaignWorker":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the pull loop ---------------------------------------------------------------------

    def _count_conflict(self) -> None:
        self.evaluator.stats.claim_conflicts += 1

    def _beat(self, *, force: bool = False) -> None:
        """Upsert this worker's heartbeat row when the interval elapsed.

        Heartbeats are strictly best-effort liveness: a locked-out or
        broken beat never interrupts the pull loop (the row ages into
        ``STALE`` on the dashboard instead).
        """
        if self.heartbeat_seconds <= 0:
            return
        now = time.monotonic()
        if not force and now - self._last_beat < self.heartbeat_seconds:
            return
        report = self.report
        elapsed = now - self._loop_start if self._loop_start else 0.0
        rate = report.done / elapsed if elapsed > 0 and report.done else 0.0
        try:
            self.grid.heartbeat(
                self.worker_id,
                batches=report.batches, claimed=report.claimed,
                done=report.done, failed=report.failed,
                rows_per_sec=round(rate, 3),
                engine=self.evaluator.stats.as_dict(),
                on_conflict=self._count_conflict)
        except Exception:  # pragma: no cover - liveness must not kill work
            return
        self._last_beat = now

    def run(self, max_batches: Optional[int] = None) -> CampaignReport:
        """Drain the grid until nothing is claimable (or ``max_batches``).

        Returns the :class:`CampaignReport`; also leaves it on
        ``self.report`` for callers that stream progress.
        """
        stats = self.evaluator.stats
        report = self.report
        start = time.perf_counter()
        self._loop_start = time.monotonic()
        self._beat(force=True)
        try:
            while max_batches is None or report.batches < max_batches:
                requeued = self.grid.reclaim_stale(
                    self.lease_seconds, on_conflict=self._count_conflict)
                report.requeued += requeued
                stats.claim_requeues += requeued
                self.grid.retire_exhausted(
                    self.max_attempts, on_conflict=self._count_conflict)
                with span("claim", worker=self.worker_id) as claim_span:
                    rows = self.grid.claim(
                        self.worker_id, batch=self.batch,
                        fingerprints=self.workloads,
                        max_attempts=self.max_attempts,
                        on_conflict=self._count_conflict)
                    claim_span.set(rows=len(rows))
                if not rows:
                    if self.retry_failed:
                        reopened = self.grid.reopen_failed(
                            self.max_attempts, on_conflict=self._count_conflict)
                        if reopened:
                            report.reopened += reopened
                            stats.claim_requeues += reopened
                            continue
                    break
                report.batches += 1
                report.claimed += len(rows)
                stats.claim_batches += 1
                stats.claim_rows += len(rows)
                stats.registry.histogram("campaign.claim_rows").observe(len(rows))
                self._evaluate(rows)
                self._beat()
        finally:
            # clean hand-back of anything still claimed: an interrupt (or a
            # bug above) must never park rows until the lease expires
            try:
                self.grid.release_worker(self.worker_id)
            except Exception:  # pragma: no cover - the original error wins
                pass
            report.wall_seconds += time.perf_counter() - start
            report.engine = stats.as_dict()
            self._beat(force=True)
        return report

    def _evaluate(self, rows: Sequence[GridRow]) -> None:
        """Evaluate one claimed batch and settle every row's status.

        A batch shares one batch key, hence one workload; grouping by
        fingerprint anyway keeps the settle logic correct if a caller
        ever claims across groups.  Evaluation errors fail the affected
        rows (error recorded, campaign continues); interrupts release
        them and propagate.
        """
        by_fingerprint: Dict[str, List[GridRow]] = {}
        for row in rows:
            by_fingerprint.setdefault(row.fingerprint, []).append(row)
        for fingerprint, group in by_fingerprint.items():
            workload = self.workloads[fingerprint]
            ids = [row.rowid for row in group]
            try:
                self.evaluator.measure_sweep(
                    workload, [row.configuration for row in group])
            except KeyboardInterrupt:
                self.grid.release(ids)
                raise
            except Exception as exc:
                self.grid.mark_failed(
                    ids, repr(exc), on_conflict=self._count_conflict)
                self.report.failed += len(ids)
                continue
            done = self.grid.mark_done(
                ids, self.worker_id, on_conflict=self._count_conflict)
            self.report.done += done

"""Supervised resident lifecycle for the parallel evaluation engine.

The :class:`~repro.engine.parallel.ParallelEvaluator` was born
context-managed: a script opens it, runs a campaign, closes it.  A
long-lived service cannot work that way -- the evaluator (its worker
pool, its shared-memory arena, its platform memos and its persistent
store) must stay resident across thousands of requests, survive worker
pools dying underneath it, and still tear down cleanly on SIGTERM.

:class:`EvaluatorSupervisor` owns exactly that lifecycle:

* explicit :meth:`start` / :meth:`stop` replace the per-run context
  manager (both are idempotent; a stopped supervisor can be started
  again -- pools respawn lazily and arena views republish on the next
  batch);
* a *pool-break policy*: the evaluator already completes the batch that
  observed a ``BrokenProcessPool`` inline, but a resident process must
  not thrash respawning pools against a crash-looping worker.  The
  supervisor counts restarts (``EngineStats.supervisor_restarts``),
  sleeps a decorrelated-jitter backoff between them, and after
  ``max_restarts`` *degrades* the evaluator to inline-only evaluation
  (``workers = 1``) instead of spawning pool number N+1;
* published arena segments survive a pool break (the evaluator keeps
  its view blocks), so a respawned pool re-attaches the same decoded
  views zero-copy -- republish happens only if the arena itself was
  closed;
* :meth:`install_signal_handlers` wires SIGTERM (and optionally SIGINT)
  to a graceful drain: the handler flips :attr:`stop_requested` and
  invokes the caller's callback (e.g. ``HTTPServer.shutdown``) so the
  serving loop can finish in-flight work before :meth:`stop` runs.

The supervisor is itself an
:class:`~repro.engine.backend.EvaluationBackend`: every measurement
method delegates to the resident evaluator, so consumers written
against the protocol -- the tuner, the campaign worker, the service
job executor -- take a supervisor wherever they took an evaluator.
"""

from __future__ import annotations

import random
import signal
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.config.configuration import Configuration
from repro.engine.parallel import ParallelEvaluator
from repro.engine.store import ResultStoreBase
from repro.platform.liquid import LiquidPlatform
from repro.platform.measurement import Measurement
from repro.workloads.base import Workload

__all__ = ["EvaluatorSupervisor", "SupervisorStopped"]


class SupervisorStopped(RuntimeError):
    """An evaluation was requested outside start()/stop()."""


class EvaluatorSupervisor:
    """A restartable, resident :class:`ParallelEvaluator` with a crash policy.

    Parameters
    ----------
    platform, workers, store, arena, arena_threshold:
        Forwarded to the underlying :class:`ParallelEvaluator` (built on
        the first :meth:`start`).
    max_restarts:
        Pool respawns the supervisor allows after breaks before it stops
        trusting process pools on this host and degrades the evaluator
        to inline evaluation for the rest of its life.
    backoff_base, backoff_cap:
        Decorrelated-jitter backoff bounds (seconds) slept after each
        pool break: each delay is drawn uniformly from ``[base, 3 *
        previous]`` and clamped to ``cap``, so crash-looping workers
        never resynchronise the respawn attempts of several residents.
    rng, sleep:
        Injection points for deterministic tests.
    """

    def __init__(
        self,
        platform: Optional[LiquidPlatform] = None,
        *,
        workers: Optional[int] = None,
        store: Optional[ResultStoreBase] = None,
        arena: Optional[bool] = None,
        arena_threshold: Optional[int] = None,
        max_restarts: int = 5,
        backoff_base: float = 0.1,
        backoff_cap: float = 5.0,
        rng: Optional[random.Random] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self._factory = lambda: ParallelEvaluator(
            platform or LiquidPlatform(), workers=workers, store=store,
            arena=arena, arena_threshold=arena_threshold)
        self.max_restarts = max(0, max_restarts)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._rng = rng or random.Random()
        self._sleep = sleep
        self._evaluator: Optional[ParallelEvaluator] = None
        self._last_backoff = backoff_base
        #: Pool restarts granted so far (mirrors
        #: ``EngineStats.supervisor_restarts`` once an evaluator exists).
        self.restarts = 0
        #: ``True`` once the restart budget is spent and the evaluator
        #: was pinned to inline evaluation.
        self.degraded = False
        self.running = False
        #: Flipped by the installed signal handler; serving loops poll it.
        self.stop_requested = False

    # -- lifecycle -------------------------------------------------------------------------

    @property
    def evaluator(self) -> ParallelEvaluator:
        """The resident evaluator (built on first access or :meth:`start`)."""
        if self._evaluator is None:
            self._evaluator = self._factory()
            self._evaluator.pool_break_hook = self._on_pool_break
        return self._evaluator

    def start(self) -> "EvaluatorSupervisor":
        """Bring the resident evaluator up (idempotent).

        Restartable: after :meth:`stop`, a new :meth:`start` reuses the
        same evaluator object -- its pool respawns and its arena views
        republish lazily on the first batch that needs them.
        """
        self.evaluator  # materialise
        self.running = True
        self.stop_requested = False
        return self

    def stop(self, *, wait: bool = True) -> None:
        """Drain and close the resident evaluator (idempotent)."""
        self.running = False
        if self._evaluator is not None:
            self._evaluator.close(wait=wait)

    def __enter__(self) -> "EvaluatorSupervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def request_stop(self) -> None:
        """Flag a graceful stop (thread/signal safe; loops poll the flag)."""
        self.stop_requested = True

    def install_signal_handlers(
        self,
        callback: Optional[Callable[[], None]] = None,
        *,
        signals: Sequence[int] = (signal.SIGTERM,),
    ) -> None:
        """Route SIGTERM (by default) into a graceful drain.

        The handler only flips :attr:`stop_requested` and invokes
        ``callback`` (which must itself be handler-safe: set a flag or
        an event, never block -- ``HTTPServer.shutdown`` for example
        *waits* for the serve loop and deadlocks if that loop runs on
        the signalled thread): in-flight evaluations finish, the
        serving loop notices the flag, and the *owner* calls
        :meth:`stop`.  Nothing is killed mid-batch.
        """

        def handle(signum, frame):  # pragma: no cover - exercised via CLI
            self.request_stop()
            if callback is not None:
                callback()

        for signum in signals:
            signal.signal(signum, handle)

    # -- the pool-break policy -------------------------------------------------------------

    def _on_pool_break(self) -> None:
        """Called by the evaluator after a pool died (batch already done inline).

        Grants a lazily-respawned pool after a decorrelated-jitter
        backoff while the restart budget lasts; past the cap the
        evaluator is degraded to inline evaluation so a host that keeps
        killing workers (OOM, cgroup limits) stops paying spawn churn.
        """
        self.restarts += 1
        stats = self.evaluator.stats
        stats.supervisor_restarts = self.restarts
        if self.restarts > self.max_restarts:
            if not self.degraded:
                self.degraded = True
                self.evaluator.workers = 1
                stats.registry.gauge("supervisor.degraded").set(1)
            return
        delay = min(self.backoff_cap,
                    self._rng.uniform(self.backoff_base, self._last_backoff * 3))
        self._last_backoff = max(delay, self.backoff_base)
        stats.registry.histogram("supervisor.backoff_seconds").observe(delay)
        self._sleep(delay)

    # -- EvaluationBackend delegation ------------------------------------------------------

    def _require_running(self) -> ParallelEvaluator:
        if not self.running:
            raise SupervisorStopped(
                "supervisor is not running; call start() before evaluating")
        return self.evaluator

    @property
    def platform(self) -> LiquidPlatform:
        return self.evaluator.platform

    @property
    def store(self) -> Optional[ResultStoreBase]:
        return self.evaluator.store

    @property
    def stats(self):
        return self.evaluator.stats

    @property
    def device(self):
        return self.evaluator.device

    def build(self, config: Configuration):
        return self._require_running().build(config)

    def profile(self, workload: Workload, config: Configuration):
        return self._require_running().profile(workload, config)

    def fits(self, config: Configuration) -> bool:
        return self._require_running().fits(config)

    def effort(self) -> Dict[str, int]:
        return self.evaluator.effort()

    def measure(self, workload: Workload, config: Configuration) -> Measurement:
        return self._require_running().measure(workload, config)

    def measure_many(
        self, workload: Workload, configs: Sequence[Configuration]
    ) -> List[Measurement]:
        return self._require_running().measure_many(workload, configs)

    def measure_many_multi(self, batches) -> Dict[Workload, List[Measurement]]:
        return self._require_running().measure_many_multi(batches)

    def measure_sweep(
        self, workload: Workload, configs: Sequence[Configuration]
    ) -> List[Measurement]:
        return self._require_running().measure_sweep(workload, configs)

    def measure_phases(self, workload, configs: Sequence[Configuration]) -> List:
        return self._require_running().measure_phases(workload, configs)

    def close(self, *, wait: bool = True) -> None:
        """Alias for :meth:`stop` (consumers holding a bare evaluator call it)."""
        self.stop(wait=wait)

    def snapshot(self) -> Dict[str, Any]:
        """Supervisor health for the service ``/metrics`` endpoint."""
        return {
            "running": self.running,
            "stop_requested": self.stop_requested,
            "restarts": self.restarts,
            "max_restarts": self.max_restarts,
            "degraded": self.degraded,
        }

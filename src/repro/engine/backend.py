"""The abstract evaluation-backend protocol and engine accounting.

:class:`EvaluationBackend` is the seam between measurement consumers
(campaign, tuner, experiment drivers) and measurement providers.  It is a
structural :class:`~typing.Protocol`: the sequential
:class:`~repro.platform.LiquidPlatform` satisfies it natively, and the
:class:`~repro.engine.parallel.ParallelEvaluator` wraps a platform to add
deduplication, persistence and process-level parallelism behind the same
five methods.  Consumers express *sets* of evaluations through
:meth:`EvaluationBackend.measure_many` instead of looping over
:meth:`EvaluationBackend.measure`, which is what lets a backend batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Protocol, Sequence, runtime_checkable

from repro.config.configuration import Configuration
from repro.fpga.report import ResourceReport
from repro.microarch.statistics import ExecutionStatistics
from repro.obs.metrics import MetricsRegistry
from repro.platform.measurement import Measurement
from repro.workloads.base import Workload

__all__ = ["EvaluationBackend", "EngineStats"]


@runtime_checkable
class EvaluationBackend(Protocol):
    """Black-box build-and-measure service (the paper's platform role).

    Implementations must be *deterministic*: measuring the same
    (workload, configuration) pair through any backend, batched or not,
    must produce an identical :class:`~repro.platform.Measurement` --
    including the seeded RANDOM-replacement cache simulations.
    """

    def build(self, config: Configuration) -> ResourceReport:
        """Synthesise a configuration (memoised)."""
        ...

    def profile(self, workload: Workload, config: Configuration) -> ExecutionStatistics:
        """Cycle-accurate profile of ``workload`` on ``config`` (memoised)."""
        ...

    def measure(self, workload: Workload, config: Configuration) -> Measurement:
        """Build ``config`` and run ``workload`` on it."""
        ...

    def measure_many(
        self, workload: Workload, configs: Sequence[Configuration]
    ) -> List[Measurement]:
        """Measure a batch of configurations; results align with ``configs``."""
        ...

    def measure_sweep(
        self, workload: Workload, configs: Sequence[Configuration]
    ) -> List[Measurement]:
        """Measure a configuration grid through the broadcast-batched path.

        Semantically identical to :meth:`measure_many` -- same results,
        bit for bit, same memo sharing -- but implementations may
        evaluate the timing model for the whole grid as array operations
        (one trace feature vector broadcast over compiled configuration
        columns) instead of once per configuration.
        """
        ...

    def measure_phases(self, workload, configs: Sequence[Configuration]) -> List:
        """Measure a phased workload's batch with per-phase warm/cold views.

        ``workload`` is a :class:`~repro.workloads.phased.PhasedWorkload`;
        results are :class:`~repro.platform.measurement.PhasedMeasurement`
        instances aligned with ``configs``.  The overall measurements
        must be bit-identical to :meth:`measure_many` on the same batch.
        """
        ...

    def fits(self, config: Configuration) -> bool:
        """True when the configuration can be built on the backend's device."""
        ...

    def effort(self) -> Dict[str, int]:
        """Distinct builds and runs performed so far (scalability accounting)."""
        ...


@dataclass
class EngineStats:
    """Work accounting of one :class:`~repro.engine.parallel.ParallelEvaluator`.

    The counters quantify how much simulation the engine *avoided*
    (deduplication and store hits) versus how much it actually ran, and
    how: ``cache_simulations`` counts distinct cache replays, of which
    ``parallel_simulations`` went through the worker pool.

    ``EngineStats`` is a *typed view* over a
    :class:`~repro.obs.metrics.MetricsRegistry`: every scalar field below
    is mirrored into a registry gauge named ``engine.<field>`` on
    assignment, stage timings feed ``stage.<name>`` histograms, and the
    registry additionally absorbs the untyped metrics of the run (arena
    publish/attach byte histograms, campaign claim shapes, worker-side
    deltas merged home at task boundaries).  :meth:`snapshot` reads the
    typed fields back *from the registry*, and its keys are asserted
    equal to the dataclass fields in the test suite -- the two surfaces
    cannot drift.
    """

    #: Worker processes the evaluator may use.
    workers: int = 1
    #: Total measurements requested through the batch API.
    requested: int = 0
    #: Requests answered by collapsing duplicates within a batch.
    dedup_hits: int = 0
    #: Requests answered from the persistent result store.
    store_hits: int = 0
    #: Measurements appended to the persistent result store.
    store_writes: int = 0
    #: Distinct cache simulations executed on behalf of the batches.
    cache_simulations: int = 0
    #: Cache simulations executed by the worker pool (rest ran inline).
    parallel_simulations: int = 0
    #: Shared-decode groups -- distinct ``(trace, kind, linesize)`` decodes --
    #: the cache simulations were batched into.
    cache_groups: int = 0
    #: Warm phase-chain replays executed on behalf of phased batches.
    phase_chains: int = 0
    #: Per-phase columnar decodes paid for those chains.  Decodes are a
    #: property of ``(trace, kind, linesize, phase)`` -- times the workers
    #: that touched the group when a pool fans the chains out -- and never
    #: scale with the number of configurations; the phase-transition
    #: benchmark asserts this on the single-worker path, where the count
    #: is exact.
    phase_decodes: int = 0
    #: Broadcast-batched sweep calls served and configurations evaluated
    #: through :func:`~repro.microarch.timing.evaluate_many`.
    sweep_batches: int = 0
    sweep_evaluations: int = 0
    #: Columnar decodes performed in the parent process.  With the arena on,
    #: these are the *only* decodes of a batch -- workers attach the
    #: published views zero-copy -- so "one decode per host" is exactly
    #: ``host_decodes == cache_groups`` with ``worker_decodes == 0``.
    host_decodes: int = 0
    #: Columnar decodes performed inside worker processes (the non-arena
    #: pool path pays up to one per worker per shared-decode group).
    worker_decodes: int = 0
    #: Shared-memory segments currently published by the evaluator's arena,
    #: and the bytes they hold (0 when the arena is off or closed).
    arena_segments: int = 0
    arena_bytes: int = 0
    #: Batches whose shared-memory publish (and worker fan-out) the adaptive
    #: cost model skipped because trace bytes x job count fell below the
    #: publish threshold -- the audit trail of the arena's cost model.
    arena_skipped: int = 0
    #: Effective publish threshold (trace bytes x jobs) of the adaptive
    #: arena cost model -- the calibrated per-host value from
    #: :func:`~repro.engine.arena.calibrate_threshold` unless an explicit
    #: override or the ``REPRO_ARENA_THRESHOLD`` environment variable
    #: pinned it (0 until the first adaptive decision).
    arena_threshold: int = 0
    #: Campaign-grid sharding accounting (see
    #: :class:`~repro.engine.campaign.CampaignWorker`): claim transactions
    #: issued, experiment rows claimed by them, SQLite lock conflicts
    #: retried during claim/write transactions, and rows requeued --
    #: stale claims reclaimed from dead workers plus failed rows reopened
    #: for retry.  Together they bound the sharding overhead a pull-based
    #: campaign pays on top of the evaluation itself.
    claim_batches: int = 0
    claim_rows: int = 0
    claim_conflicts: int = 0
    claim_requeues: int = 0
    #: Worker-pool lifecycle accounting of a resident evaluator: process
    #: pools spawned over the evaluator's lifetime (a long-lived service
    #: respawns after workload changes or pool failures), pools lost to
    #: ``BrokenProcessPool``/``OSError`` (the batch that observed the
    #: break completed inline), and supervised restarts performed by an
    #: :class:`~repro.engine.supervisor.EvaluatorSupervisor` (each one
    #: paid a backoff delay; capped, after which the supervisor degrades
    #: the evaluator to inline-only).
    pool_spawns: int = 0
    pool_breaks: int = 0
    supervisor_restarts: int = 0
    #: Resolved cache-kernel replay lane of the most recent batch
    #: (``crossconfig``/``numpy``/``jit``; see
    #: :func:`~repro.microarch.cachekernel.kernel_lane`).
    kernel_lane: str = ""
    #: Batch calls served.
    batches: int = 0
    #: Wall-clock seconds spent inside the batch API.
    wall_seconds: float = 0.0
    #: Per-stage wall-clock, accumulated across batches and disjoint where
    #: the engine can observe the stages directly.  Stages recorded by the
    #: engine itself: ``trace_generation``, ``cache_simulation``,
    #: ``model_build``, ``sweep_evaluate``, ``phase_decode``,
    #: ``phase_chain``, ``arena_publish`` and ``worker_decode``
    #: (worker-side decode wall-clock, cumulative across the pool); the
    #: tuner adds ``model_build`` and ``solve`` around its campaign and
    #: solver passes.  Each accumulation also feeds a ``stage.<name>``
    #: histogram on :attr:`registry`, so per-batch distributions survive
    #: next to these sums.
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    #: The backing metrics registry of this stats view (excluded from
    #: equality/repr: two runs doing the same work compare equal even
    #: though their registries also hold timing histograms).
    registry: MetricsRegistry = field(
        default_factory=MetricsRegistry, repr=False, compare=False)

    def __post_init__(self) -> None:
        # the generated __init__ assigned the scalar fields before the
        # registry existed; mirror their initial values now so view and
        # registry agree from the first moment
        for name in _SCALAR_FIELDS:
            self.registry.gauge(f"engine.{name}").set(getattr(self, name))

    def __setattr__(self, name: str, value: Any) -> None:
        # write-through: the dataclass field is the typed API, the
        # registry gauge is the uniform metrics surface -- one assignment
        # updates both, so they can never disagree
        object.__setattr__(self, name, value)
        registry = self.__dict__.get("registry")
        if registry is not None and name in _SCALAR_FIELD_SET:
            registry.gauge(f"engine.{name}").set(value)

    def add_stage(self, stage: str, seconds: float) -> None:
        """Accumulate wall-clock time into one named pipeline stage."""
        self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds
        self.registry.histogram(f"stage.{stage}").observe(seconds)

    def snapshot(self) -> Dict[str, Any]:
        """Every field's current value, read back from the registry.

        Keys are exactly the dataclass fields (minus the backing
        ``registry`` itself): the scalar fields come from their
        ``engine.<field>`` gauges and ``stage_seconds`` from the
        :meth:`stage_report` sums, so the snapshot doubles as the proof
        that the typed view and the registry agree.
        """
        snap: Dict[str, Any] = {
            name: self.registry.gauge(f"engine.{name}").value
            for name in _SCALAR_FIELDS
        }
        snap["stage_seconds"] = self.stage_report()
        return snap

    def as_dict(self) -> Dict[str, float]:
        """Row-ready mapping used by the experiment tables."""
        snap = self.snapshot()
        del snap["stage_seconds"]
        snap["wall_seconds"] = round(snap["wall_seconds"], 3)
        return snap

    def stage_report(self) -> Dict[str, float]:
        """Stage-name -> seconds mapping (``--profile`` output), rounded."""
        return {stage: round(seconds, 3)
                for stage, seconds in sorted(self.stage_seconds.items())}

    def summary(self) -> str:
        """One-line human readable summary for script output."""
        return (
            f"engine: {self.requested} requests, {self.dedup_hits} dedup hits, "
            f"{self.store_hits} store hits, {self.cache_simulations} cache sims "
            f"({self.parallel_simulations} parallel on {self.workers} workers), "
            f"{self.wall_seconds:.2f}s"
        )


#: The scalar EngineStats fields mirrored into ``engine.<name>`` registry
#: gauges -- every dataclass field except the stage dict and the backing
#: registry itself.  Module-level so :meth:`EngineStats.__setattr__` pays
#: one frozenset probe per assignment.
_SCALAR_FIELDS = tuple(
    f.name for f in fields(EngineStats)
    if f.name not in ("stage_seconds", "registry"))
_SCALAR_FIELD_SET = frozenset(_SCALAR_FIELDS)

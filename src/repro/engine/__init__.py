"""Evaluation engine: batched, parallel, persistent configuration measurement.

The engine layer sits between the measurement consumers (campaign, tuner,
experiment drivers) and the build-and-measure platform.  It turns *sets*
of requested evaluations into the minimum amount of actual simulation
work: duplicates are collapsed, previously persisted results are loaded
from a :class:`~repro.engine.store.ResultStore`, and the remaining
independent cache simulations are fanned out over a process pool by the
:class:`~repro.engine.parallel.ParallelEvaluator`.

Every backend -- the sequential :class:`~repro.platform.LiquidPlatform`
and the parallel evaluator alike -- satisfies the structural
:class:`~repro.engine.backend.EvaluationBackend` protocol, so consumers
are written once against the protocol and scaled by swapping the backend.
"""

from repro.engine.arena import (
    ArenaBlock,
    TraceArena,
    arena_available,
    calibrate_threshold,
)
from repro.engine.backend import EngineStats, EvaluationBackend
from repro.engine.campaign import CampaignGrid, CampaignReport, CampaignWorker
from repro.engine.parallel import ParallelEvaluator
from repro.engine.supervisor import EvaluatorSupervisor, SupervisorStopped
from repro.engine.store import (
    ResultStore,
    ResultStoreBase,
    SqliteResultStore,
    busy_retry,
    connect_sqlite,
    open_store,
    workload_fingerprint,
)

__all__ = [
    "ArenaBlock",
    "CampaignGrid",
    "CampaignReport",
    "CampaignWorker",
    "EngineStats",
    "EvaluationBackend",
    "EvaluatorSupervisor",
    "ParallelEvaluator",
    "SupervisorStopped",
    "TraceArena",
    "arena_available",
    "calibrate_threshold",
    "ResultStore",
    "ResultStoreBase",
    "SqliteResultStore",
    "busy_retry",
    "connect_sqlite",
    "open_store",
    "workload_fingerprint",
]

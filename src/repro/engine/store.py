"""Persistent measurement store (JSON-lines, shareable across processes).

The store plays the role PyExperimenter-style harnesses give their result
database: a campaign writes every :class:`~repro.platform.Measurement` it
produces, keyed by ``(workload fingerprint, configuration key)``, and any
later campaign -- in this process or another -- pulls finished results
instead of re-simulating them.  That makes full paper reproductions
resumable and lets several runs share one cache directory.

Two details keep lookups sound:

* The *workload fingerprint* hashes the workload's execution trace, not
  just its name, so a scaled-down test workload never aliases the
  benchmark-scale workload of the same name.
* Every record carries a *context* digest of the platform's device and
  timing parameters, so stores survive calibration changes without
  serving stale measurements.

Records round-trip exactly (all persisted fields are ints, strings and
mappings thereof), so a store-served measurement compares equal to a
freshly simulated one -- the engine equivalence tests assert this.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.config.configuration import Configuration
from repro.fpga.device import FpgaDevice, XCV2000E
from repro.fpga.report import ResourceReport
from repro.microarch.cache import CacheStatistics
from repro.microarch.statistics import ExecutionStatistics
from repro.microarch.timing import TimingParameters
from repro.platform.measurement import Measurement
from repro.workloads.base import Workload

__all__ = ["ResultStore", "workload_fingerprint", "platform_context"]


def workload_fingerprint(workload: Workload) -> str:
    """Content digest of a workload's execution trace (cached on the instance).

    Two workloads with the same name but different inputs (e.g. the test
    suite's scaled-down variants) get different fingerprints, so a shared
    store can never serve a measurement of the wrong trace.
    """
    return workload.fingerprint()


def platform_context(device: FpgaDevice, timing_parameters: TimingParameters) -> str:
    """Digest of everything besides the configuration that shapes a measurement."""
    blob = f"{device!r}|{timing_parameters!r}"
    return hashlib.sha1(blob.encode()).hexdigest()[:16]


def _config_key_string(config: Configuration) -> str:
    return json.dumps(config.key(), sort_keys=True, default=_jsonable)


def _jsonable(value: Any) -> Any:
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    raise TypeError(f"not JSON serialisable: {value!r}")


def _cache_stats_dict(stats: Optional[CacheStatistics]) -> Optional[Dict[str, int]]:
    if stats is None:
        return None
    return {
        "accesses": stats.accesses,
        "read_accesses": stats.read_accesses,
        "write_accesses": stats.write_accesses,
        "read_misses": stats.read_misses,
        "write_misses": stats.write_misses,
    }


def _cache_stats_from(data: Optional[Dict[str, int]]) -> Optional[CacheStatistics]:
    return None if data is None else CacheStatistics(**data)


class ResultStore:
    """Append-only JSON-lines store of measurements.

    ``path=None`` keeps the store purely in memory (deduplication within
    one process without touching the filesystem); with a path, records
    are appended as they are produced and re-read on open, last record
    per key winning.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        *,
        device: FpgaDevice = XCV2000E,
        timing_parameters: Optional[TimingParameters] = None,
    ):
        self.path = path
        self.device = device
        self.context = platform_context(device, timing_parameters or TimingParameters())
        self._records: Dict[Tuple[str, str], Dict[str, Any]] = {}
        if path and os.path.exists(path):
            self._load(path)

    def bind_platform(self, device: FpgaDevice, timing_parameters: TimingParameters) -> None:
        """Re-key the store to a platform's actual device and timing calibration.

        The engine calls this so that records are always stamped with --
        and looked up under -- the wrapped platform's context, not this
        store's constructor defaults.  A context change re-reads the file
        under the new filter.
        """
        context = platform_context(device, timing_parameters)
        if context == self.context and device == self.device:
            return
        self.device = device
        self.context = context
        self._records.clear()
        if self.path and os.path.exists(self.path):
            self._load(self.path)

    # -- persistence ------------------------------------------------------------------

    def _load(self, path: str) -> None:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    key = (record["fingerprint"], record["config_key"])
                except (ValueError, KeyError, TypeError):
                    # a run killed mid-append leaves a truncated last line;
                    # losing one record must not make the store unloadable
                    continue
                if record.get("context") != self.context:
                    continue
                self._records[key] = record

    def _append(self, record: Dict[str, Any]) -> None:
        if not self.path:
            return
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, default=_jsonable) + "\n")

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: Tuple[str, str]) -> bool:
        return key in self._records

    # -- measurement (de)serialisation ---------------------------------------------------

    def put(self, workload: Workload, measurement: Measurement) -> bool:
        """Persist one measurement; returns ``False`` when already stored."""
        fingerprint = workload_fingerprint(workload)
        key = (fingerprint, _config_key_string(measurement.configuration))
        if key in self._records:
            return False
        statistics = measurement.statistics
        record = {
            "context": self.context,
            "fingerprint": fingerprint,
            "config_key": key[1],
            "workload": measurement.workload,
            "config": measurement.configuration.as_dict(),
            "resources": {
                "device": measurement.resources.device.name,
                "luts": measurement.resources.luts,
                "brams": measurement.resources.brams,
                "lut_breakdown": dict(measurement.resources.lut_breakdown),
                "bram_breakdown": dict(measurement.resources.bram_breakdown),
            },
            "statistics": {
                "instruction_count": statistics.instruction_count,
                "cycles": statistics.cycles,
                "cycle_breakdown": dict(statistics.cycle_breakdown),
                "icache": _cache_stats_dict(statistics.icache),
                "dcache": _cache_stats_dict(statistics.dcache),
                "window_overflows": statistics.window_overflows,
                "window_underflows": statistics.window_underflows,
            },
        }
        self._records[key] = record
        self._append(record)
        return True

    def get(self, workload: Workload, config: Configuration) -> Optional[Measurement]:
        """The stored measurement for ``(workload, config)``, or ``None``."""
        key = (workload_fingerprint(workload), _config_key_string(config))
        record = self._records.get(key)
        if record is None:
            return None
        return self._measurement_from(record, config)

    def _measurement_from(self, record: Dict[str, Any], config: Configuration) -> Measurement:
        if record["resources"]["device"] != self.device.name:  # pragma: no cover - guard
            raise ValueError("stored measurement targets a different device")
        resources = ResourceReport(
            device=self.device,
            luts=record["resources"]["luts"],
            brams=record["resources"]["brams"],
            lut_breakdown=record["resources"]["lut_breakdown"],
            bram_breakdown=record["resources"]["bram_breakdown"],
        )
        stats = record["statistics"]
        statistics = ExecutionStatistics(
            workload=record["workload"],
            configuration=config,
            instruction_count=stats["instruction_count"],
            cycles=stats["cycles"],
            cycle_breakdown=stats["cycle_breakdown"],
            icache=_cache_stats_from(stats["icache"]),
            dcache=_cache_stats_from(stats["dcache"]),
            window_overflows=stats["window_overflows"],
            window_underflows=stats["window_underflows"],
        )
        return Measurement(
            workload=record["workload"],
            configuration=config,
            resources=resources,
            statistics=statistics,
        )

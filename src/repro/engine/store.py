"""Persistent measurement stores (JSON-lines and SQLite backends).

A store plays the role PyExperimenter-style harnesses give their result
database: a campaign writes every :class:`~repro.platform.Measurement` it
produces, keyed by ``(workload fingerprint, configuration key)``, and any
later campaign -- in this process or another -- pulls finished results
instead of re-simulating them.  That makes full paper reproductions
resumable and lets several runs share one cache directory.

Two backends implement the same interface (:class:`ResultStoreBase`):
the append-only JSON-lines :class:`ResultStore` (default, human
greppable, safely shareable via append) and :class:`SqliteResultStore`
(indexed lookups without loading the whole file, suited to large
campaign archives).  :func:`open_store` picks by file extension.

Two details keep lookups sound:

* The *workload fingerprint* hashes the workload's execution trace, not
  just its name, so a scaled-down test workload never aliases the
  benchmark-scale workload of the same name.
* Every record carries a *context* digest of the platform's device and
  timing parameters, so stores survive calibration changes without
  serving stale measurements.

Records round-trip exactly (all persisted fields are ints, strings and
mappings thereof), so a store-served measurement compares equal to a
freshly simulated one -- the engine equivalence tests assert this.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import sqlite3
import time
from typing import Any, Callable, Dict, Optional, Tuple, TypeVar

import numpy as np

from repro.config.configuration import Configuration
from repro.fpga.device import FpgaDevice, XCV2000E
from repro.fpga.report import ResourceReport
from repro.microarch.cache import CacheStatistics
from repro.microarch.statistics import ExecutionStatistics
from repro.microarch.timing import TimingParameters
from repro.obs.metrics import get_registry
from repro.platform.measurement import Measurement
from repro.workloads.base import Workload

__all__ = [
    "ResultStore",
    "ResultStoreBase",
    "SqliteResultStore",
    "busy_retry",
    "config_key_string",
    "connect_sqlite",
    "open_store",
    "workload_fingerprint",
    "platform_context",
]

#: File extensions that select the SQLite backend in :func:`open_store`.
SQLITE_EXTENSIONS = (".sqlite", ".sqlite3", ".db")

_T = TypeVar("_T")


def connect_sqlite(path: str, *, busy_timeout_ms: int = 10_000) -> sqlite3.Connection:
    """Open a SQLite connection configured for concurrent campaign access.

    Every SQLite connection of the engine layer -- the measurement store
    and the campaign experiment table alike -- goes through this helper
    so they share one concurrency posture:

    * ``journal_mode=WAL``: readers never block the single writer, which
      is what lets many campaign workers claim rows and write results
      against one database file without serialising on a rollback
      journal;
    * ``synchronous=NORMAL``: per-commit durability without a full
      journal fsync per measurement;
    * ``busy_timeout``: a writer that meets another writer's lock waits
      it out inside SQLite instead of raising ``database is locked``
      immediately (the :func:`busy_retry` wrapper handles the residual
      timeouts under heavy claim contention);
    * ``check_same_thread=False``: the tuning service constructs its
      store/grid on the main thread but drains jobs on its executor
      thread (and answers ``/metrics`` reads from handler threads) --
      safe because this interpreter's ``sqlite3`` is built serialized
      (``sqlite3.threadsafety == 3``), which we assert rather than
      silently hand out an unprotected connection.
    """
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    share = sqlite3.threadsafety == 3
    conn = sqlite3.connect(path, check_same_thread=not share)
    conn.execute("PRAGMA journal_mode=WAL")
    conn.execute("PRAGMA synchronous=NORMAL")
    conn.execute(f"PRAGMA busy_timeout={int(busy_timeout_ms)}")
    return conn


def busy_retry(
    operation: Callable[[], _T],
    *,
    attempts: int = 6,
    base_delay: float = 0.05,
    max_delay: float = 2.0,
    on_conflict: Optional[Callable[[], None]] = None,
    rng: Optional[random.Random] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> _T:
    """Run a SQLite transaction, retrying lock conflicts with jittered backoff.

    ``busy_timeout`` already makes SQLite wait for a lock *inside* one
    statement, but a campaign's claim/write transactions can still lose
    the race once the timeout expires under heavy multi-worker
    contention.  This wrapper retries exactly those ``database is
    locked``/``busy`` failures (anything else propagates immediately),
    and reports each conflict through ``on_conflict`` so the engine's
    claim-contention accounting
    (:attr:`~repro.engine.backend.EngineStats.claim_conflicts`) stays
    truthful.

    The delays use *decorrelated jitter* rather than pure exponential
    backoff: each one is drawn uniformly from ``[base_delay, 3 * the
    previous delay]`` and clamped to ``max_delay``.  N workers that
    collide on one lock therefore spread their retries apart instead of
    re-colliding in lockstep at 50/100/200 ms forever -- the failure
    mode of the jitter-free schedule this replaced.  ``rng`` and
    ``sleep`` exist for deterministic contention tests.
    """
    rng = rng or random
    delay = base_delay
    for attempt in range(attempts):
        try:
            return operation()
        except sqlite3.OperationalError as exc:
            message = str(exc).lower()
            if "locked" not in message and "busy" not in message:
                raise
            get_registry().counter("store.lock_conflicts").inc()
            if on_conflict is not None:
                on_conflict()
            if attempt == attempts - 1:
                raise
            delay = min(max_delay, rng.uniform(base_delay, delay * 3))
            sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover


def workload_fingerprint(workload: Workload) -> str:
    """Content digest of a workload's execution trace (cached on the instance).

    Two workloads with the same name but different inputs (e.g. the test
    suite's scaled-down variants) get different fingerprints, so a shared
    store can never serve a measurement of the wrong trace.
    """
    return workload.fingerprint()


def platform_context(device: FpgaDevice, timing_parameters: TimingParameters) -> str:
    """Digest of everything besides the configuration that shapes a measurement."""
    blob = f"{device!r}|{timing_parameters!r}"
    return hashlib.sha1(blob.encode()).hexdigest()[:16]


def config_key_string(config: Configuration) -> str:
    """Canonical JSON key of a configuration (store and campaign rows share it)."""
    return json.dumps(config.key(), sort_keys=True, default=_jsonable)


#: Backwards-compatible private alias (internal callers predate the export).
_config_key_string = config_key_string


def _jsonable(value: Any) -> Any:
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    raise TypeError(f"not JSON serialisable: {value!r}")


def _cache_stats_dict(stats: Optional[CacheStatistics]) -> Optional[Dict[str, int]]:
    if stats is None:
        return None
    return {
        "accesses": stats.accesses,
        "read_accesses": stats.read_accesses,
        "write_accesses": stats.write_accesses,
        "read_misses": stats.read_misses,
        "write_misses": stats.write_misses,
    }


def _cache_stats_from(data: Optional[Dict[str, int]]) -> Optional[CacheStatistics]:
    return None if data is None else CacheStatistics(**data)


class ResultStoreBase:
    """Context stamping and measurement (de)serialisation shared by backends.

    Concrete backends provide :meth:`put`, :meth:`get`, ``__len__`` and
    ``__contains__``; the base class owns the platform-context handling
    so every backend keys records identically and survives calibration
    changes the same way.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        *,
        device: FpgaDevice = XCV2000E,
        timing_parameters: Optional[TimingParameters] = None,
    ):
        self.path = path
        self.device = device
        self.context = platform_context(device, timing_parameters or TimingParameters())

    def bind_platform(self, device: FpgaDevice, timing_parameters: TimingParameters) -> None:
        """Re-key the store to a platform's actual device and timing calibration.

        The engine calls this so that records are always stamped with --
        and looked up under -- the wrapped platform's context, not this
        store's constructor defaults.
        """
        context = platform_context(device, timing_parameters)
        if context == self.context and device == self.device:
            return
        self.device = device
        self.context = context
        self._context_changed()

    def _context_changed(self) -> None:
        """Backend hook: the context filter changed after construction."""

    # -- measurement (de)serialisation ---------------------------------------------------

    def encode(self, workload: Workload, measurement: Measurement) -> Dict[str, Any]:
        """Public record form of one measurement.

        Exactly the context-stamped plain-data record the backends
        persist -- also the tuning service's wire format, which is what
        makes "the HTTP result equals the stored record equals a direct
        sweep, bit for bit" a single comparison.
        """
        return self._encode(workload, measurement)

    def _encode(self, workload: Workload, measurement: Measurement) -> Dict[str, Any]:
        """Serialise one measurement into a context-stamped plain-data record."""
        fingerprint = workload_fingerprint(workload)
        statistics = measurement.statistics
        return {
            "context": self.context,
            "fingerprint": fingerprint,
            "config_key": _config_key_string(measurement.configuration),
            "workload": measurement.workload,
            "config": measurement.configuration.as_dict(),
            "resources": {
                "device": measurement.resources.device.name,
                "luts": measurement.resources.luts,
                "brams": measurement.resources.brams,
                "lut_breakdown": dict(measurement.resources.lut_breakdown),
                "bram_breakdown": dict(measurement.resources.bram_breakdown),
            },
            "statistics": {
                # may differ from the measurement's workload name: a phased
                # workload measures under its scenario name while the profile
                # keeps the underlying trace's name
                "workload": statistics.workload,
                "instruction_count": statistics.instruction_count,
                "cycles": statistics.cycles,
                "cycle_breakdown": dict(statistics.cycle_breakdown),
                "icache": _cache_stats_dict(statistics.icache),
                "dcache": _cache_stats_dict(statistics.dcache),
                "window_overflows": statistics.window_overflows,
                "window_underflows": statistics.window_underflows,
            },
        }

    def _measurement_from(self, record: Dict[str, Any], config: Configuration) -> Measurement:
        if record["resources"]["device"] != self.device.name:  # pragma: no cover - guard
            raise ValueError("stored measurement targets a different device")
        resources = ResourceReport(
            device=self.device,
            luts=record["resources"]["luts"],
            brams=record["resources"]["brams"],
            lut_breakdown=record["resources"]["lut_breakdown"],
            bram_breakdown=record["resources"]["bram_breakdown"],
        )
        stats = record["statistics"]
        statistics = ExecutionStatistics(
            workload=stats.get("workload", record["workload"]),
            configuration=config,
            instruction_count=stats["instruction_count"],
            cycles=stats["cycles"],
            cycle_breakdown=stats["cycle_breakdown"],
            icache=_cache_stats_from(stats["icache"]),
            dcache=_cache_stats_from(stats["dcache"]),
            window_overflows=stats["window_overflows"],
            window_underflows=stats["window_underflows"],
        )
        return Measurement(
            workload=record["workload"],
            configuration=config,
            resources=resources,
            statistics=statistics,
        )


class ResultStore(ResultStoreBase):
    """Append-only JSON-lines store of measurements.

    ``path=None`` keeps the store purely in memory (deduplication within
    one process without touching the filesystem); with a path, records
    are appended as they are produced and re-read on open, last record
    per key winning.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        *,
        device: FpgaDevice = XCV2000E,
        timing_parameters: Optional[TimingParameters] = None,
    ):
        super().__init__(path, device=device, timing_parameters=timing_parameters)
        self._records: Dict[Tuple[str, str], Dict[str, Any]] = {}
        if path and os.path.exists(path):
            self._load(path)

    def _context_changed(self) -> None:
        """A context change re-reads the file under the new filter."""
        self._records.clear()
        if self.path and os.path.exists(self.path):
            self._load(self.path)

    # -- persistence ------------------------------------------------------------------

    def _load(self, path: str) -> None:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    key = (record["fingerprint"], record["config_key"])
                except (ValueError, KeyError, TypeError):
                    # a run killed mid-append leaves a truncated last line;
                    # losing one record must not make the store unloadable
                    continue
                if record.get("context") != self.context:
                    continue
                self._records[key] = record

    def _append(self, record: Dict[str, Any]) -> None:
        if not self.path:
            return
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, default=_jsonable) + "\n")

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: Tuple[str, str]) -> bool:
        return key in self._records

    # -- store interface -----------------------------------------------------------------

    def put(self, workload: Workload, measurement: Measurement) -> bool:
        """Persist one measurement; returns ``False`` when already stored."""
        key = (workload_fingerprint(workload),
               _config_key_string(measurement.configuration))
        if key in self._records:
            return False  # cheap membership test before the full encode
        record = self._encode(workload, measurement)
        self._records[key] = record
        self._append(record)
        return True

    def get(self, workload: Workload, config: Configuration) -> Optional[Measurement]:
        """The stored measurement for ``(workload, config)``, or ``None``."""
        key = (workload_fingerprint(workload), _config_key_string(config))
        record = self._records.get(key)
        if record is None:
            return None
        return self._measurement_from(record, config)


class SqliteResultStore(ResultStoreBase):
    """SQLite-backed measurement store behind the same interface.

    Records live in one ``measurements`` table keyed by ``(context,
    fingerprint, config_key)``, so lookups are indexed instead of
    replaying a whole JSON-lines file, and stores written under several
    platform calibrations coexist in one database file.  Selected by
    :func:`open_store` when the path ends in ``.sqlite``/``.db``.
    """

    def __init__(
        self,
        path: str,
        *,
        device: FpgaDevice = XCV2000E,
        timing_parameters: Optional[TimingParameters] = None,
    ):
        super().__init__(path, device=device, timing_parameters=timing_parameters)
        self._conn = connect_sqlite(path)
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS measurements ("
            " context TEXT NOT NULL,"
            " fingerprint TEXT NOT NULL,"
            " config_key TEXT NOT NULL,"
            " record TEXT NOT NULL,"
            " PRIMARY KEY (context, fingerprint, config_key))")
        self._conn.commit()

    # a context change needs no hook: every query filters on the live context

    def close(self) -> None:
        """Close the underlying database connection."""
        self._conn.close()

    def __len__(self) -> int:
        row = self._conn.execute(
            "SELECT COUNT(*) FROM measurements WHERE context = ?",
            (self.context,)).fetchone()
        return int(row[0])

    def __contains__(self, key: Tuple[str, str]) -> bool:
        fingerprint, config_key = key
        row = self._conn.execute(
            "SELECT 1 FROM measurements"
            " WHERE context = ? AND fingerprint = ? AND config_key = ?",
            (self.context, fingerprint, config_key)).fetchone()
        return row is not None

    def put(self, workload: Workload, measurement: Measurement) -> bool:
        """Persist one measurement; returns ``False`` when already stored."""
        record = self._encode(workload, measurement)

        def write() -> bool:
            cursor = self._conn.execute(
                "INSERT OR IGNORE INTO measurements"
                " (context, fingerprint, config_key, record) VALUES (?, ?, ?, ?)",
                (self.context, record["fingerprint"], record["config_key"],
                 json.dumps(record, default=_jsonable)))
            self._conn.commit()
            return cursor.rowcount > 0

        # campaign workers on other hosts write the same file concurrently;
        # residual lock timeouts are retried instead of dropping the result
        return busy_retry(write)

    def get(self, workload: Workload, config: Configuration) -> Optional[Measurement]:
        """The stored measurement for ``(workload, config)``, or ``None``."""
        row = self._conn.execute(
            "SELECT record FROM measurements"
            " WHERE context = ? AND fingerprint = ? AND config_key = ?",
            (self.context, workload_fingerprint(workload),
             _config_key_string(config))).fetchone()
        if row is None:
            return None
        return self._measurement_from(json.loads(row[0]), config)


def open_store(path: Optional[str], **kwargs: Any) -> ResultStoreBase:
    """Open the result-store backend matching ``path``'s extension.

    ``.sqlite``/``.sqlite3``/``.db`` select :class:`SqliteResultStore`;
    anything else (including ``None`` for in-memory) gets the JSON-lines
    :class:`ResultStore`.  Keyword arguments pass through to the backend.
    """
    if path and path.lower().endswith(SQLITE_EXTENSIONS):
        return SqliteResultStore(path, **kwargs)
    return ResultStore(path, **kwargs)

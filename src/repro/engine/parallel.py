"""Parallel batch evaluator: dedup, fan out cache simulations, persist.

The expensive part of a measurement is the trace-driven cache simulation;
synthesis and the timing model are vectorised/analytic and cheap.  The
:class:`ParallelEvaluator` therefore plans a batch as follows:

1. collapse duplicate configurations (first-appearance order preserved);
2. answer what it can from the persistent
   :class:`~repro.engine.store.ResultStore` and the wrapped platform's
   in-process memo stores;
3. compute the set of *distinct missing cache simulations* across every
   workload in the batch and fan them out over a
   :class:`~concurrent.futures.ProcessPoolExecutor`;
4. install the results into the platform's memo store **in deterministic
   job order** (completion order never leaks into results) and let the
   platform assemble the final measurements.

Because every cache job replays a fresh cold-cache state whose PRNG is
seeded from its own geometry, a parallel batch is bit-identical to the
sequential path -- including RANDOM replacement.

Worker processes receive the (configuration-independent) execution traces
once, through the pool initializer, and then only exchange small job
chunks and hit/miss counters.  Jobs are planned as *shared-decode
groups*: every job chunk shares one ``(trace fingerprint, kind,
linesize)`` key, so a worker decodes the trace into its columnar
:class:`~repro.microarch.cachekernel.ColumnarTrace` view once (cached
per process) and replays the whole configuration list against it.
"""

from __future__ import annotations

import logging
import math
import os
import signal
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.config.configuration import Configuration
from repro.engine import arena as arena_mod
from repro.engine.arena import ArenaBlock, TraceArena, arena_available
from repro.engine.backend import EngineStats
from repro.engine.store import ResultStoreBase
from repro.fpga.report import ResourceReport
from repro.microarch.cache import CacheStatistics
from repro.microarch.cachekernel import (
    ColumnarTrace,
    PhaseReplay,
    decode_trace,
    kernel_lane,
    replay_phases,
    simulate_many,
)
from repro.microarch.statistics import ExecutionStatistics
from repro.obs.metrics import get_registry
from repro.obs.tracer import (
    SpanRecord,
    enable_tracing,
    get_tracer,
    span,
    tracing_enabled,
)
from repro.platform.liquid import CacheJob, LiquidPlatform, PhaseJob
from repro.platform.measurement import Measurement, PhasedMeasurement
from repro.workloads.base import Workload
from repro.workloads.phased import PhasedWorkload

__all__ = ["ParallelEvaluator"]

_LOG = logging.getLogger(__name__)

#: Per-worker trace registry, populated by the pool initializer.  Values are
#: either the pickled ``(pcs, data_addresses, data_is_write)`` arrays or an
#: :class:`~repro.engine.arena.ArenaBlock` naming the shared-memory segment
#: holding them (attached lazily, zero-copy).
_WORKER_TRACES: Dict[str, object] = {}
#: Per-worker phase boundaries of phased workloads: fingerprint ->
#: (instruction-stream bounds, data-access-stream bounds).
_WORKER_PHASES: Dict[str, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}
#: Per-worker decoded columnar views, keyed by (workload, kind, linesize).
_WORKER_VIEWS: Dict[Tuple[str, str, int], ColumnarTrace] = {}
#: Per-worker decoded per-phase views, keyed like :data:`_WORKER_VIEWS`.
_WORKER_PHASE_VIEWS: Dict[Tuple[str, str, int], List[ColumnarTrace]] = {}


#: Telemetry payload shipped home with every worker task: the spans the
#: task produced (empty when tracing is off) and the worker registry's
#: metric deltas since the last task.
Telemetry = Tuple[List[SpanRecord], Dict[str, Dict[str, Any]]]


def _init_worker(
    traces: Dict[str, object],
    phases: Optional[Dict[str, Tuple[Tuple[int, ...], Tuple[int, ...]]]] = None,
    tracing: bool = False,
) -> None:
    global _WORKER_TRACES, _WORKER_PHASES, _WORKER_VIEWS, _WORKER_PHASE_VIEWS
    # fork-started workers inherit the parent's signal handlers; a resident
    # server routes SIGTERM/SIGINT into a graceful-drain flag, and a worker
    # that inherits that handler swallows the executor's own terminate()
    # during broken-pool cleanup and parks forever.  Workers are anonymous
    # compute processes: restore the default dispositions.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_DFL)
    _WORKER_TRACES = traces
    _WORKER_PHASES = phases or {}
    _WORKER_VIEWS = {}
    _WORKER_PHASE_VIEWS = {}
    if tracing:
        # the worker traces into its own process tracer; tasks drain it at
        # their boundary and ship the spans home inside the result tuple
        enable_tracing()


def _worker_telemetry() -> Telemetry:
    """Drain this worker's spans and metric deltas (task boundary)."""
    tracer = get_tracer()
    events = tracer.drain() if tracer.enabled else []
    return events, get_registry().drain()


def _worker_arrays(workload_key: str) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Resolve a registered trace to arrays, attaching arena blocks lazily."""
    entry = _WORKER_TRACES[workload_key]
    if isinstance(entry, ArenaBlock):
        arrays = arena_mod.attach(entry)
        return arrays["pcs"], arrays["data_addresses"], arrays["data_is_write"]
    return entry


def _worker_view(workload_key: str, kind: str, linesize_bytes: int) -> ColumnarTrace:
    key = (workload_key, kind, linesize_bytes)
    view = _WORKER_VIEWS.get(key)
    if view is None:
        pcs, data_addresses, data_is_write = _worker_arrays(workload_key)
        if kind == "icache":
            view = decode_trace(pcs, linesize_bytes=linesize_bytes)
        else:
            view = decode_trace(
                data_addresses, data_is_write, linesize_bytes=linesize_bytes)
        _WORKER_VIEWS[key] = view
    return view


def _worker_phase_views(
    workload_key: str, kind: str, linesize_bytes: int
) -> List[ColumnarTrace]:
    """Per-phase views of a phased workload, decoded once per worker."""
    key = (workload_key, kind, linesize_bytes)
    views = _WORKER_PHASE_VIEWS.get(key)
    if views is None:
        pcs, data_addresses, data_is_write = _worker_arrays(workload_key)
        pc_bounds, data_bounds = _WORKER_PHASES[workload_key]
        views = []
        if kind == "icache":
            for lo, hi in zip(pc_bounds, pc_bounds[1:]):
                views.append(decode_trace(pcs[lo:hi], linesize_bytes=linesize_bytes))
        else:
            for lo, hi in zip(data_bounds, data_bounds[1:]):
                views.append(decode_trace(
                    data_addresses[lo:hi], data_is_write[lo:hi],
                    linesize_bytes=linesize_bytes))
        _WORKER_PHASE_VIEWS[key] = views
    return views


def _run_cache_group(
    chunk: Tuple[CacheJob, ...]
) -> Tuple[Tuple[CacheJob, ...], List[CacheStatistics], int, float, Telemetry]:
    """Replay one shared-decode job chunk; results align with the chunk.

    Also returns the fresh-decode count / wall-clock this call paid (zero
    when this worker already held the group's view), so the engine's
    decode accounting stays truthful across the pool, and the task's
    telemetry (spans plus metric deltas) for the host to merge.
    """
    workload_key, kind, first_cfg = chunk[0]
    fresh = (workload_key, kind, first_cfg.linesize_bytes) not in _WORKER_VIEWS
    decode_start = time.perf_counter()
    view = _worker_view(workload_key, kind, first_cfg.linesize_bytes)
    decode_seconds = time.perf_counter() - decode_start if fresh else 0.0
    statistics = simulate_many(view, [job[2] for job in chunk])
    return chunk, statistics, (1 if fresh else 0), decode_seconds, _worker_telemetry()


def _run_cache_group_arena(
    chunk: Tuple[CacheJob, ...], block: ArenaBlock
) -> Tuple[Tuple[CacheJob, ...], List[CacheStatistics], int, float, Telemetry]:
    """Replay one job chunk against a host-published decoded view.

    The view was decoded once in the parent and published to the arena;
    this worker attaches it zero-copy, so the decode count is always
    zero -- which is exactly what the one-decode-per-host assertion of
    the sweep benchmark measures.
    """
    view = arena_mod.attach_view(block)
    statistics = simulate_many(view, [job[2] for job in chunk])
    return chunk, statistics, 0, 0.0, _worker_telemetry()


def _run_phase_group(
    chunk: Tuple[PhaseJob, ...]
) -> Tuple[Tuple[PhaseJob, ...], List[PhaseReplay], int, float, Telemetry]:
    """Replay one shared-decode chunk of warm phase chains.

    The worker decodes the group's phases once and keeps each
    configuration's :class:`~repro.microarch.cachekernel.KernelState`
    resident across its whole chain.  Returns the chunk, its replays,
    the fresh-decode count / wall-clock this call paid (zero when this
    worker already held the group's views) so the engine's decode
    accounting stays truthful across the pool, and the task telemetry.
    """
    workload_key, kind, first_cfg = chunk[0]
    fresh = (workload_key, kind, first_cfg.linesize_bytes) not in _WORKER_PHASE_VIEWS
    decode_start = time.perf_counter()
    views = _worker_phase_views(workload_key, kind, first_cfg.linesize_bytes)
    decode_seconds = time.perf_counter() - decode_start if fresh else 0.0
    decodes = len(views) if fresh else 0
    replays = [replay_phases(views, job[2]) for job in chunk]
    return chunk, replays, decodes, decode_seconds, _worker_telemetry()


class ParallelEvaluator:
    """Batched :class:`~repro.engine.backend.EvaluationBackend` over a platform.

    Parameters
    ----------
    platform:
        The sequential build-and-measure platform to accelerate.  All
        memoisation and effort accounting stays on the platform, so the
        evaluator can be dropped into any consumer that previously held a
        bare :class:`~repro.platform.LiquidPlatform`.
    workers:
        Worker-process budget; ``None`` uses the CPU count.  With one
        worker (or tiny batches) simulations run inline.
    store:
        Optional persistent result store (JSON-lines
        :class:`~repro.engine.store.ResultStore` or
        :class:`~repro.engine.store.SqliteResultStore`); measurements
        found there skip simulation entirely and newly computed ones are
        appended, which makes campaigns resumable.
    arena:
        ``True`` forces the zero-copy shared-memory trace arena on for
        every batch, ``False`` disables it, ``None`` (default) probes the
        host and then applies the adaptive cost model: a batch publishes
        (and fans out to the worker pool) only when
        :func:`~repro.engine.arena.publish_worthwhile` says the shared
        trace bytes x job count clears the threshold; smaller batches
        replay inline, which keeps tiny sweeps from paying pool and
        publish overhead for nothing (``EngineStats.arena_skipped``
        audits those decisions).  With the arena on, worker pools receive
        trace columns and decoded columnar views through
        :class:`~repro.engine.arena.TraceArena` segments instead of
        pickles, so a batch decodes once per host; every segment is
        unlinked deterministically when the evaluator closes.
    arena_threshold:
        Override for the adaptive publish threshold (product of trace
        bytes and cache-job count); ``0`` publishes always, ``None``
        (default) uses :data:`~repro.engine.arena.DEFAULT_PUBLISH_THRESHOLD`
        or the ``REPRO_ARENA_THRESHOLD`` environment variable.  Ignored
        when ``arena=True`` forces publishing.
    """

    def __init__(
        self,
        platform: Optional[LiquidPlatform] = None,
        *,
        workers: Optional[int] = None,
        store: Optional[ResultStoreBase] = None,
        min_parallel_jobs: int = 2,
        arena: Optional[bool] = None,
        arena_threshold: Optional[int] = None,
    ):
        self.platform = platform or LiquidPlatform()
        self.workers = max(1, workers if workers is not None else (os.cpu_count() or 1))
        self.store = store
        if store is not None:
            store.bind_platform(self.platform.device, self.platform.timing_parameters)
        self.min_parallel_jobs = max(2, min_parallel_jobs)
        self.stats = EngineStats(workers=self.workers)
        # The pool lives as long as the evaluator so consecutive batches skip
        # process startup and trace pickling; it is rebuilt only when a batch
        # introduces a workload (identified by trace fingerprint, not name)
        # the current workers have never seen.
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_traces: Dict[str, object] = {}
        self._pool_phases: Dict[str, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}
        #: Whether the current pool was spawned with tracing workers; a
        #: toggle of the process tracer forces a respawn so worker spans
        #: start (or stop) flowing without surprising stale pools.
        self._pool_tracing = False
        self._arena_enabled = arena_available() if arena is None else bool(arena)
        self._arena_forced = arena is True
        # adaptive mode: only the probed default applies the cost model;
        # explicit True/False are contracts the caller asked for
        self._arena_adaptive = arena is None and self._arena_enabled
        self._arena_threshold = arena_threshold
        self._arena: Optional[TraceArena] = None
        #: Published decoded views: (fingerprint, kind, linesize) -> ArenaBlock.
        self._view_blocks: Dict[Tuple[str, str, int], ArenaBlock] = {}
        #: Observer invoked after a worker pool is lost to
        #: ``BrokenProcessPool``/``OSError`` (the batch that saw the break
        #: has already completed inline by then).  A supervisor installs
        #: its restart/backoff policy here; the evaluator itself only
        #: accounts the break and respawns lazily on the next batch.
        self.pool_break_hook: Optional[Any] = None

    def _get_arena(self) -> Optional[TraceArena]:
        """The live arena, created lazily; ``None`` when unavailable/disabled."""
        if not self._arena_enabled:
            return None
        if self._arena is None:
            try:
                self._arena = TraceArena()
            except OSError:  # pragma: no cover - restricted sandboxes
                self._arena_enabled = False
                return None
        return self._arena

    def _shutdown_pool(self, *, wait: bool = True) -> None:
        """Stop the worker pool only (arena segments stay published)."""
        if self._pool is not None:
            self._pool.shutdown(wait=wait)
            self._pool = None

    def _pool_failed(self) -> None:
        """A worker pool died mid-batch: account the break, drop the pool.

        ``wait=False``: the broken executor's processes are gone (or
        wedged); joining them is exactly the hang this path exists to
        avoid.  The next batch respawns lazily -- published arena
        segments stay up, so the respawned workers re-attach the same
        views without a republish.

        The dead worker's *siblings* are killed explicitly: when the
        executor's manager thread loses the race against our
        ``shutdown(wait=False)``, a surviving worker never receives its
        exit sentinel and parks on the call queue forever -- and the
        non-daemon manager thread joining it then blocks interpreter
        exit (a resident server that "stopped" but never exits).  Their
        results are discarded either way, so SIGKILL is safe.
        """
        self.stats.pool_breaks += 1
        pool, self._pool = self._pool, None
        if pool is not None:
            # capture the workers BEFORE shutdown(): the executor drops its
            # _processes reference there even with wait=False
            survivors = list((getattr(pool, "_processes", None) or {}).values())
            pool.shutdown(wait=False)
            for process in survivors:
                try:
                    if process.is_alive():
                        process.kill()
                except (OSError, ValueError):  # already reaped / closed handle
                    pass

    def close(self, *, wait: bool = True) -> None:
        """Shut down the worker pool and unlink every arena segment.

        The evaluator stays usable: pools restart lazily and traces/views
        are republished on the next batch.  After this call no shared
        memory segment published by this evaluator exists on the host.
        ``wait=False`` skips joining the worker processes (the finalizer
        path: joining from ``__del__`` can block interpreter teardown).
        """
        self._shutdown_pool(wait=wait)
        if self._arena is not None:
            self._arena.close()
            self._arena = None
        self.stats.arena_segments = 0
        self.stats.arena_bytes = 0
        self._view_blocks.clear()
        # registered traces referenced arena segments; force a clean respawn
        self._pool_traces.clear()
        self._pool_phases.clear()

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter shutdown ordering varies
        # never join workers from a finalizer: GC (or interpreter
        # teardown) must not block on pool shutdown -- explicit close()
        # keeps waiting, the finalizer only swallows and logs
        try:
            self.close(wait=False)
        except Exception as exc:
            try:
                _LOG.debug("evaluator finalizer teardown failed: %r", exc)
            except Exception:
                pass

    def _ensure_pool(
        self,
        traces: Dict[str, Tuple[np.ndarray, np.ndarray, np.ndarray]],
        phases: Optional[Dict[str, Tuple[Tuple[int, ...], Tuple[int, ...]]]] = None,
    ) -> ProcessPoolExecutor:
        phases = phases or {}
        new_workloads = [key for key in traces if key not in self._pool_traces]
        new_phases = [key for key in phases if key not in self._pool_phases]
        tracing = tracing_enabled()
        if (self._pool is None or new_workloads or new_phases
                or tracing != self._pool_tracing):
            self._shutdown_pool()
            for key, entry in traces.items():
                if key in self._pool_traces:
                    continue
                arena = self._get_arena()
                if arena is not None:
                    # workers then attach the columns zero-copy instead of
                    # unpickling their own copies
                    pcs, data_addresses, data_is_write = entry
                    entry = arena.publish_trace(pcs, data_addresses, data_is_write)
                self._pool_traces[key] = entry
            self._sync_arena_stats()
            self._pool_phases.update(phases)
            self._pool_tracing = tracing
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(self._pool_traces, self._pool_phases, tracing),
            )
            self.stats.pool_spawns += 1
        return self._pool

    def _sync_arena_stats(self) -> None:
        if self._arena is not None:
            self.stats.arena_segments = self._arena.segment_count
            self.stats.arena_bytes = self._arena.published_bytes

    @contextmanager
    def _stage(self, name: str, **attrs):
        """Time one pipeline stage: a span plus the ``stage_seconds`` sum.

        The span and the accumulated stage share one clock read, so the
        span tree of a traced run reconciles with ``stats.stage_seconds``
        exactly (a property the observability tests assert).
        """
        with span(name, **attrs):
            start = time.perf_counter()
            try:
                yield
            finally:
                self.stats.add_stage(name, time.perf_counter() - start)

    def _absorb_telemetry(self, telemetry: Telemetry) -> None:
        """Merge one worker task's spans and metric deltas into this engine."""
        events, deltas = telemetry
        if events:
            get_tracer().absorb(events)
        if deltas:
            self.stats.registry.merge(deltas)

    def _merge_host_metrics(self) -> None:
        """Fold the process-global metrics into this engine's registry.

        Library layers without an engine reference (arena publish/attach,
        store lock retries) count into the process registry; draining it
        at batch end parents those metrics under the run's
        :attr:`EngineStats.registry` without double counting across
        batches or evaluators.
        """
        deltas = get_registry().drain()
        if deltas:
            self.stats.registry.merge(deltas)

    def _skip_small_batch(self, trace_bytes: int, job_count: int) -> bool:
        """Adaptive cost model: ``True`` means replay this batch inline.

        Applies only in the probed-default arena mode: publishing the
        traces *and* fanning the jobs out both cost time that scales with
        the shared trace bytes, so when ``trace bytes x job count`` falls
        below the publish threshold the whole batch runs inline instead
        (``stats.arena_skipped`` audits each skip).  The threshold is the
        per-host calibrated one (:func:`~repro.engine.arena.calibrate_threshold`)
        unless the constructor or the environment pinned an explicit
        value; either way ``stats.arena_threshold`` records what was
        applied.  Forced arenas (``arena=True``) and explicit
        ``arena=False`` pools never skip.
        """
        if not self._arena_adaptive or self._arena_forced:
            return False
        threshold = self._arena_threshold
        if threshold is None:
            threshold = arena_mod.calibrate_threshold()
        self.stats.arena_threshold = arena_mod.publish_threshold(threshold)
        if arena_mod.publish_worthwhile(trace_bytes, job_count, threshold):
            return False
        self.stats.arena_skipped += 1
        return True

    # -- delegated single-shot API ---------------------------------------------------------

    @property
    def device(self):
        return self.platform.device

    def build(self, config: Configuration) -> ResourceReport:
        return self.platform.build(config)

    def profile(self, workload: Workload, config: Configuration) -> ExecutionStatistics:
        return self.platform.profile(workload, config)

    def fits(self, config: Configuration) -> bool:
        return self.platform.fits(config)

    def effort(self) -> Dict[str, int]:
        return self.platform.effort()

    def measure(self, workload: Workload, config: Configuration) -> Measurement:
        return self.measure_many(workload, [config])[0]

    # -- batched API -----------------------------------------------------------------------

    def measure_many(
        self, workload: Workload, configs: Sequence[Configuration]
    ) -> List[Measurement]:
        """Measure a batch for one workload; results align with ``configs``."""
        return self.measure_many_multi({workload: configs})[workload]

    def measure_many_multi(
        self, batches: Mapping[Workload, Sequence[Configuration]]
    ) -> Dict[Workload, List[Measurement]]:
        """Measure several workloads' batches concurrently.

        The cache simulations of *all* workloads form one job pool, so a
        campaign over four workloads keeps every worker busy even when a
        single workload has few distinct geometries.  Results are keyed by
        the workload *instances* (names may legitimately repeat across
        differently scaled variants of one benchmark).
        """
        start = time.perf_counter()
        self.stats.batches += 1

        # materialise every workload's trace up front so trace generation is
        # accounted as its own stage instead of leaking into cache planning
        with self._stage("trace_generation", workloads=len(batches)):
            for workload in batches:
                workload.trace()

        plan: List[Tuple[Workload, List[Configuration],
                         Dict[Configuration, Measurement]]] = []
        jobs: List[CacheJob] = []
        seen_jobs = set()
        for workload, configs in batches.items():
            missing, ready = self._plan_workload_batch(workload, configs)
            plan.append((workload, missing, ready))

            for job in self.platform.cache_requests(workload, missing):
                if job not in seen_jobs:
                    seen_jobs.add(job)
                    jobs.append(job)

        with self._stage("cache_simulation", jobs=len(jobs)):
            self._execute_cache_jobs(
                {workload: missing for workload, missing, _ in plan}, jobs)

        with self._stage("model_build"):
            results: Dict[Workload, List[Measurement]] = {}
            for workload, missing, ready in plan:
                for config in missing:
                    measurement = self.platform.measure(workload, config)
                    ready[config] = measurement
                    if self.store is not None and self.store.put(workload, measurement):
                        self.stats.store_writes += 1
                results[workload] = [ready[c] for c in batches[workload]]

        self.stats.wall_seconds += time.perf_counter() - start
        self._merge_host_metrics()
        return results

    def _plan_workload_batch(
        self, workload: Workload, configs: Sequence[Configuration]
    ) -> Tuple[List[Configuration], Dict[Configuration, Measurement]]:
        """Collapse duplicates and consult the store for one workload's batch.

        Returns the configurations still needing simulation (first-appearance
        order) and the measurements already answered, keyed by the
        configuration itself (hashing a :class:`Configuration` reuses its
        cached key hash, where hashing the raw key tuple would rewalk every
        parameter on each planning pass).  Shared by
        :meth:`measure_many_multi` and :meth:`measure_sweep` so the
        dedup/store accounting can never drift between the paths.
        """
        self.stats.requested += len(configs)
        seen = set()
        ready: Dict[Configuration, Measurement] = {}
        missing: List[Configuration] = []
        consult_store = self.store is not None
        for config in configs:
            if config in seen:
                self.stats.dedup_hits += 1
                continue
            seen.add(config)
            stored = self._from_store(workload, config) if consult_store else None
            if stored is not None:
                ready[config] = stored
                self.stats.store_hits += 1
            else:
                missing.append(config)
        return missing, ready

    def measure_sweep(
        self, workload: Workload, configs: Sequence[Configuration]
    ) -> List[Measurement]:
        """Measure a configuration grid through the broadcast-batched path.

        Planning matches :meth:`measure_many` exactly -- duplicates are
        collapsed, the persistent store is consulted, and the distinct
        missing cache simulations fan out over the worker pool (with the
        shared-memory arena supplying host-decoded views when enabled).
        The difference is the assembly stage: instead of a per-config
        Python loop, the remaining configurations are evaluated in one
        :meth:`LiquidPlatform.measure_sweep
        <repro.platform.liquid.LiquidPlatform.measure_sweep>` broadcast,
        bit-identical to the scalar path.
        """
        start = time.perf_counter()
        self.stats.batches += 1

        with self._stage("trace_generation"):
            workload.trace()

        missing, ready = self._plan_workload_batch(workload, configs)

        with self._stage("cache_simulation"):
            # one planning pass: the pairs feed the platform sweep below so
            # it never rewalks the grid's parameter keys after the fan-out
            key_pairs, jobs = self.platform.cache_plan(workload, missing)
            self._execute_cache_jobs({workload: missing}, jobs)

        with self._stage("sweep_evaluate", configs=len(missing)):
            for config, measurement in zip(
                    missing, self.platform.measure_sweep(
                        workload, missing, cache_pairs=key_pairs)):
                ready[config] = measurement
                if self.store is not None and self.store.put(workload, measurement):
                    self.stats.store_writes += 1
            self.stats.sweep_batches += 1
            self.stats.sweep_evaluations += len(missing)

        self.stats.wall_seconds += time.perf_counter() - start
        self._merge_host_metrics()
        return [ready[config] for config in configs]

    # -- phased batches --------------------------------------------------------------------

    def measure_phases(
        self, workload: PhasedWorkload, configs: Sequence[Configuration]
    ) -> List[PhasedMeasurement]:
        """Measure a phased batch: overall measurements plus per-phase views.

        The overall measurements run through :meth:`measure_many`
        unchanged (store lookups, dedup and the shared-decode cache-job
        pool all apply -- warm-chain totals are bit-identical to the
        single-shot concatenated replay, so persisted results stay
        valid).  The warm phase chains are planned as their own jobs,
        grouped by ``(trace fingerprint, kind, linesize)`` so a worker
        decodes each phase once per group and keeps every
        configuration's cache state resident across its chain.
        """
        # register the phase bounds before the pool first spawns so one pool
        # serves both the overall cache jobs and the phase chains (a late
        # registration would force a full worker respawn mid-batch)
        self._register_phase_bounds(workload)
        overall = self.measure_many(workload, configs)

        jobs = self.platform.phase_requests(workload, configs)
        with self._stage("phase_chain", jobs=len(jobs)):
            self._execute_phase_jobs(workload, jobs)
        self._merge_host_metrics()

        results = []
        for config, measurement in zip(configs, overall):
            icache, dcache = self.platform.phase_replays(workload, config)
            results.append(PhasedMeasurement(
                measurement=measurement,
                phases=workload.phase_names,
                icache=icache,
                dcache=dcache,
            ))
        return results

    def _register_phase_bounds(self, workload: PhasedWorkload) -> None:
        """Make a phased workload's bounds part of the next pool spawn.

        Called before any pool use in a phased batch: if the bounds are
        new and a pool is already running without them, it is closed so
        the next :meth:`_ensure_pool` spawn ships traces and bounds
        together instead of respawning between the cache-job and
        phase-chain stages.
        """
        key = workload.fingerprint()
        if key in self._pool_phases:
            return
        self._pool_phases[key] = (
            tuple(workload.phase_bounds()), tuple(workload.data_bounds()))
        if self._pool is not None:
            self._shutdown_pool()

    def _decode_phase_views(self, workload: PhasedWorkload, jobs: Sequence[PhaseJob]
                            ) -> None:
        """Materialise (and account) the per-phase decodes the jobs share.

        Decodes are keyed by ``(kind, linesize, phase)`` only, never by
        configuration; :attr:`EngineStats.phase_decodes` counts each
        fresh decode so the phase benchmarks can assert the warm path
        re-decodes nothing as the configuration sweep grows.
        """
        with self._stage("phase_decode"):
            for kind, linesize in {(kind, cfg.linesize_bytes) for _, kind, cfg in jobs}:
                if not workload.has_phase_views(kind, linesize):
                    self.stats.phase_decodes += workload.phase_count
                workload.phase_views(kind, linesize)

    def _execute_phase_jobs(
        self, workload: PhasedWorkload, jobs: List[PhaseJob]
    ) -> None:
        """Run outstanding phase-chain jobs, pooled when it pays off."""
        if not jobs:
            return
        self.stats.phase_chains += len(jobs)
        groups = self._plan_groups(jobs)
        trace = workload.trace()
        if (self.workers <= 1 or len(jobs) < self.min_parallel_jobs
                or self._skip_small_batch(trace.transfer_nbytes(), len(jobs))):
            self._decode_phase_views(workload, jobs)
            for group in groups:
                for job, result in self.platform.simulate_phase_chains(
                        workload, group).items():
                    self.platform.install_phase_run(job, result)
            return

        key = workload.fingerprint()
        traces = {key: (trace.pcs, trace.data_addresses, trace.data_is_write)}
        phases = {key: (tuple(workload.phase_bounds()), tuple(workload.data_bounds()))}

        completed: Dict[PhaseJob, PhaseReplay] = {}
        try:
            pool = self._ensure_pool(traces, phases)
            futures = [pool.submit(_run_phase_group, chunk)
                       for chunk in self._chunk_groups(groups)]
            for future in as_completed(futures):
                chunk, replays, decodes, decode_seconds, telemetry = future.result()
                self._absorb_telemetry(telemetry)
                completed.update(zip(chunk, replays))
                if decodes:
                    # worker-side decode accounting: fresh decodes per worker
                    # per group (cumulative wall-clock across workers)
                    self.stats.phase_decodes += decodes
                    self.stats.add_stage("phase_decode", decode_seconds)
        except (OSError, BrokenProcessPool):
            # restricted sandboxes or killed workers: finish inline
            self._pool_failed()
            self._decode_phase_views(workload, jobs)
            for job in jobs:
                if job not in completed:
                    completed[job] = self.platform.simulate_phase_chain(workload, job)
            if self.pool_break_hook is not None:
                self.pool_break_hook()
        # deterministic merge: install in request order, not completion order
        for job in jobs:
            self.platform.install_phase_run(job, completed[job])

    # -- internals -------------------------------------------------------------------------

    def _from_store(self, workload: Workload, config: Configuration) -> Optional[Measurement]:
        if self.store is None:
            return None
        if self.platform.is_measured(workload, config):
            return None  # in-process memo is cheaper and already counted
        return self.store.get(workload, config)

    @staticmethod
    def _plan_groups(jobs: Sequence[CacheJob]) -> List[List[CacheJob]]:
        """Group pending jobs by their shared decode: (trace, kind, linesize).

        Every group's jobs replay one decoded columnar view; order within
        a group and across groups follows first-need order, so the plan
        is deterministic for a given batch.
        """
        groups: Dict[Tuple[str, str, int], List[CacheJob]] = {}
        for job in jobs:
            workload_key, kind, cache_cfg = job
            groups.setdefault(
                (workload_key, kind, cache_cfg.linesize_bytes), []).append(job)
        return list(groups.values())

    def _chunk_groups(self, groups: List[List[CacheJob]]) -> List[Tuple[CacheJob, ...]]:
        """Split large shared-decode groups so one group can span all workers.

        The per-process view cache makes the duplicated decode cheap (one
        per worker per group), while chunking keeps e.g. the Figure-2
        sweep -- one workload, one linesize, dozens of geometries --
        from serialising on a single worker.
        """
        chunks: List[Tuple[CacheJob, ...]] = []
        for group in groups:
            size = max(1, math.ceil(len(group) / self.workers))
            chunks.extend(
                tuple(group[i:i + size]) for i in range(0, len(group), size))
        return chunks

    def _group_key(self, group: Sequence[CacheJob]) -> Tuple[str, str, int]:
        workload_key, kind, cache_cfg = group[0]
        return (workload_key, kind, cache_cfg.linesize_bytes)

    def _run_cache_groups_inline(
        self,
        workloads_by_key: Mapping[str, Workload],
        groups: Sequence[Sequence[CacheJob]],
    ) -> None:
        """Replay the planned groups in-process (no pool, no publish)."""
        self._count_host_decodes(workloads_by_key, groups)
        for group in groups:
            workload = workloads_by_key[group[0][0]]
            for job, statistics in self.platform.simulate_cache_jobs(
                    workload, group).items():
                self.platform.install_cache_run(job, statistics)

    def _count_host_decodes(
        self,
        workloads_by_key: Mapping[str, Workload],
        groups: Sequence[Sequence[CacheJob]],
    ) -> None:
        """Account the fresh in-parent decodes the coming groups will pay."""
        for group in groups:
            workload_key, kind, linesize = self._group_key(group)
            trace = workloads_by_key[workload_key].trace()
            if not trace.has_columnar_view(kind, linesize):
                self.stats.host_decodes += 1

    def _publish_group_views(
        self,
        workloads_by_key: Mapping[str, Workload],
        groups: Sequence[Sequence[CacheJob]],
    ) -> Optional[Dict[Tuple[str, str, int], ArenaBlock]]:
        """Decode every group once in the parent and publish to the arena.

        Returns the per-group view blocks, or ``None`` when the arena is
        unavailable (callers then fall back to worker-side decodes).  The
        decode is paid at most once per host: the columnar view is cached
        on the trace and the published block is memoised per group key.
        """
        arena = self._get_arena()
        if arena is None:
            return None
        blocks: Dict[Tuple[str, str, int], ArenaBlock] = {}
        try:
            with self._stage("arena_publish", groups=len(groups)):
                for group in groups:
                    key = self._group_key(group)
                    block = self._view_blocks.get(key)
                    if block is None:
                        workload_key, kind, linesize = key
                        trace = workloads_by_key[workload_key].trace()
                        if not trace.has_columnar_view(kind, linesize):
                            self.stats.host_decodes += 1
                        view = trace.columnar_view(kind, linesize)
                        block = arena.publish_view(view)
                        self._view_blocks[key] = block
                    blocks[key] = block
        except OSError:  # pragma: no cover - /dev/shm exhausted or revoked
            self._arena_enabled = False
            return None
        finally:
            self._sync_arena_stats()
        return blocks

    def _execute_cache_jobs(
        self, batches: Mapping[Workload, Sequence[Configuration]], jobs: List[CacheJob]
    ) -> None:
        """Run outstanding cache jobs, in parallel when it pays off."""
        if not jobs:
            return
        self.stats.cache_simulations += len(jobs)
        self.stats.kernel_lane = kernel_lane()
        workloads_by_key = {w.fingerprint(): w for w in batches}
        groups = self._plan_groups(jobs)
        self.stats.cache_groups += len(groups)
        if self.workers <= 1 or len(jobs) < self.min_parallel_jobs:
            self._run_cache_groups_inline(workloads_by_key, groups)
            return

        needed = {key for key, _, _ in jobs}
        # decide before materialising anything: the masked data columns cost
        # real time to build, and a skipped batch never needs them
        trace_bytes = sum(
            workloads_by_key[key].trace().transfer_nbytes() for key in needed)
        if self._skip_small_batch(trace_bytes, len(jobs)):
            self._run_cache_groups_inline(workloads_by_key, groups)
            return
        traces = {}
        for key in sorted(needed):
            trace = workloads_by_key[key].trace()
            traces[key] = (trace.pcs, trace.data_addresses, trace.data_is_write)
        view_blocks = self._publish_group_views(workloads_by_key, groups)

        completed: Dict[CacheJob, CacheStatistics] = {}
        try:
            pool = self._ensure_pool(traces)
            futures = []
            for group in groups:
                block = None if view_blocks is None else view_blocks[self._group_key(group)]
                for chunk in self._chunk_groups([list(group)]):
                    if block is not None:
                        futures.append(
                            pool.submit(_run_cache_group_arena, chunk, block))
                    else:
                        futures.append(pool.submit(_run_cache_group, chunk))
            for future in as_completed(futures):
                chunk, statistics, decodes, decode_seconds, telemetry = future.result()
                self._absorb_telemetry(telemetry)
                completed.update(zip(chunk, statistics))
                if decodes:
                    # worker-side decode accounting: fresh decodes per worker
                    # per group (cumulative wall-clock across workers)
                    self.stats.worker_decodes += decodes
                    self.stats.add_stage("worker_decode", decode_seconds)
            self.stats.parallel_simulations += len(jobs)
        except (OSError, BrokenProcessPool):
            # restricted sandboxes or killed workers: finish inline
            self._pool_failed()
            for job in jobs:
                if job not in completed:
                    completed[job] = self.platform.simulate_cache_job(
                        workloads_by_key[job[0]], job)
            if self.pool_break_hook is not None:
                self.pool_break_hook()
        # deterministic merge: install in request order, not completion order
        for job in jobs:
            self.platform.install_cache_run(job, completed[job])

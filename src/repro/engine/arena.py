"""Zero-copy shared-memory trace arena.

The parallel evaluator's workers replay *decoded* columnar trace views;
the decode is a property of ``(trace, kind, linesize)`` only.  Before the
arena, every worker process received the raw trace arrays by pickle (the
pool initializer) and re-decoded each shared-decode group it touched, so
a batch fanned over N workers paid up to N decodes per group.  The arena
removes both copies:

* the parent publishes the raw trace columns *and* the decoded
  :class:`~repro.microarch.cachekernel.ColumnarTrace` views into
  :class:`multiprocessing.shared_memory.SharedMemory` segments;
* workers attach by segment name and wrap the buffers in NumPy arrays
  without copying -- a multi-config batch therefore decodes **once per
  host**, and the per-worker trace registry holds page-shared views
  instead of pickled duplicates;
* the parent owns every segment and unlinks them all deterministically
  in :meth:`TraceArena.close` (called from
  ``ParallelEvaluator.close``/``__exit__``), so no ``/dev/shm`` segment
  survives the evaluator.

An :class:`ArenaBlock` is the small picklable handle shipped to workers:
segment name plus the field layout (name, dtype, length, byte offset)
and scalar metadata.  Attachments are cached per process, and attached
arrays are marked read-only -- the arena is strictly a publish-once,
read-many structure.
"""

from __future__ import annotations

import atexit
import gc
import json
import os
import socket
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.obs.metrics import get_registry
from repro.obs.tracer import span

try:  # pragma: no cover - shared_memory ships with CPython >= 3.8
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover
    _shm = None

__all__ = [
    "ARENA_CALIBRATION_CACHE_ENV",
    "ARENA_THRESHOLD_ENV",
    "ArenaBlock",
    "DEFAULT_PUBLISH_THRESHOLD",
    "REFERENCE_PUBLISH_BANDWIDTH",
    "TraceArena",
    "arena_available",
    "attach",
    "attach_view",
    "calibrate_threshold",
    "measure_publish_bandwidth",
    "publish_threshold",
    "publish_worthwhile",
]

#: Byte alignment of each field within a segment (numpy-friendly).
_ALIGN = 16

#: Segment names created by arenas of THIS process (attach consults this:
#: a creator re-attaching its own segment must leave the single tracker
#: registration for unlink to consume).
_CREATED: set = set()


@dataclass(frozen=True)
class ArenaBlock:
    """Picklable handle of one published segment (layout + metadata)."""

    #: Shared-memory segment name (attachable from any process on the host).
    segment: str
    #: Field layout: ``(field name, dtype string, length, byte offset)``.
    fields: Tuple[Tuple[str, str, int, int], ...]
    #: Scalar metadata (e.g. line size and access counts of a view).
    meta: Tuple[Tuple[str, int], ...]
    #: Total segment size in bytes.
    nbytes: int

    def meta_dict(self) -> Dict[str, int]:
        return dict(self.meta)


# -- publish cost model ------------------------------------------------------------------

#: Environment override for the publish threshold (an integer; ``0`` makes
#: every batch publish).
ARENA_THRESHOLD_ENV = "REPRO_ARENA_THRESHOLD"
#: Default publish threshold on ``trace bytes x cache-job count``.
#:
#: The calibration: publishing costs one copy of the trace columns plus
#: the decoded views (tens of milliseconds for multi-megabyte traces) and
#: the worker fan-out costs pool submission latency, while it saves
#: per-worker re-decodes whose cost also scales with trace bytes and
#: amortises over the batch's job count.  On the paper's workloads the
#: break-even sits around a few hundred megabyte-jobs: the geometry-dense
#: Figure-2 grid (a ~4.5 MB blastn trace x ~20 jobs ~ 9e7) loses to the
#: inline replay, while campaign-scale grids (hundreds of geometries)
#: clear it comfortably.
DEFAULT_PUBLISH_THRESHOLD = 1 << 28


def publish_threshold(override: Optional[int] = None) -> int:
    """The effective publish threshold (argument > environment > default)."""
    if override is not None:
        return int(override)
    env = os.environ.get(ARENA_THRESHOLD_ENV, "").strip()
    return int(env) if env else DEFAULT_PUBLISH_THRESHOLD


def publish_worthwhile(
    trace_bytes: int, job_count: int, threshold: Optional[int] = None
) -> bool:
    """True when a batch is big enough for shared-memory publishing to pay.

    The model is deliberately simple -- the product of the trace bytes to
    be shared and the cache jobs that would share them, against a
    calibrated threshold -- because both the publish cost (copying) and
    the avoided cost (per-worker decodes) scale with exactly that
    product.  A non-positive threshold means "always publish".
    """
    effective = publish_threshold(threshold)
    if effective <= 0:
        return True
    return trace_bytes * max(job_count, 0) >= effective


#: Environment override for the calibration cache file location.
ARENA_CALIBRATION_CACHE_ENV = "REPRO_ARENA_CALIBRATION_CACHE"
#: Publish bandwidth (bytes/sec) of the host the default threshold was
#: calibrated on.  :func:`calibrate_threshold` scales the default by the
#: ratio of this to the measured bandwidth: a host that publishes slower
#: needs a proportionally larger batch before publishing pays.
REFERENCE_PUBLISH_BANDWIDTH = 2.0e9
#: Bytes copied by one calibration probe publish (large enough to
#: amortise segment-creation overhead, small enough to stay millisecond
#: scale).
_PROBE_BYTES = 1 << 22
#: Calibrated thresholds are clamped to this range so a wildly noisy
#: probe can never disable the arena outright or force publishing of
#: trivial batches.
_THRESHOLD_BOUNDS = (1 << 24, 1 << 32)

#: Process-level memo of the calibrated threshold (one probe per process
#: at most; usually zero thanks to the per-host cache file).
_CALIBRATED: Optional[int] = None


def _calibration_cache_path() -> str:
    override = os.environ.get(ARENA_CALIBRATION_CACHE_ENV, "").strip()
    if override:
        return override
    return os.path.join(
        os.path.expanduser("~"), ".cache", "repro", "arena_threshold.json")


def measure_publish_bandwidth(
    probe_bytes: int = _PROBE_BYTES, reps: int = 3
) -> float:
    """Measured shared-memory publish bandwidth of this host (bytes/sec).

    Publishes a probe array into a fresh segment ``reps`` times and takes
    the best wall clock (first publishes absorb allocator and page-fault
    warmup).  Every probe segment is unlinked before returning.
    """
    payload = np.zeros(max(1, probe_bytes // 8), dtype=np.int64)
    best = float("inf")
    arena = TraceArena()
    try:
        for _ in range(max(1, reps)):
            start = time.perf_counter()
            arena.publish({"probe": payload})
            best = min(best, time.perf_counter() - start)
    finally:
        arena.close()
    return payload.nbytes / max(best, 1e-9)


def calibrate_threshold(*, force: bool = False) -> int:
    """The adaptive publish threshold, calibrated by a measured probe.

    Resolution order mirrors :func:`publish_threshold`: an explicit
    ``REPRO_ARENA_THRESHOLD`` environment override always wins
    unchanged.  Otherwise the threshold is
    ``DEFAULT_PUBLISH_THRESHOLD x (reference bandwidth / measured
    bandwidth)`` -- a host that publishes into shared memory at half the
    calibration host's speed needs twice the batch before publishing
    pays -- clamped to a sane range and cached per host: first in this
    process, then in a small JSON file (``~/.cache/repro/``, overridable
    via ``REPRO_ARENA_CALIBRATION_CACHE``) keyed by hostname so one
    probe serves every campaign worker on the machine.  ``force=True``
    re-probes and rewrites the cache.  Hosts without shared memory fall
    back to the static default.
    """
    global _CALIBRATED
    env = os.environ.get(ARENA_THRESHOLD_ENV, "").strip()
    if env:
        return int(env)
    if _CALIBRATED is not None and not force:
        return _CALIBRATED
    host = socket.gethostname()
    cache_path = _calibration_cache_path()
    if not force:
        try:
            with open(cache_path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            if entry.get("host") == host:
                _CALIBRATED = int(entry["threshold"])
                return _CALIBRATED
        except (OSError, ValueError, KeyError, TypeError):
            pass  # missing/stale cache: fall through to the probe
    if not arena_available():
        _CALIBRATED = DEFAULT_PUBLISH_THRESHOLD
        return _CALIBRATED
    bandwidth = measure_publish_bandwidth()
    low, high = _THRESHOLD_BOUNDS
    threshold = int(DEFAULT_PUBLISH_THRESHOLD
                    * REFERENCE_PUBLISH_BANDWIDTH / bandwidth)
    _CALIBRATED = max(low, min(high, threshold))
    try:
        directory = os.path.dirname(cache_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(cache_path, "w", encoding="utf-8") as handle:
            json.dump({"host": host, "threshold": _CALIBRATED,
                       "publish_bandwidth": round(bandwidth)}, handle)
    except OSError:  # pragma: no cover - read-only home: memo still applies
        pass
    return _CALIBRATED


def arena_available() -> bool:
    """True when shared-memory segments can be created on this host."""
    if _shm is None:
        return False
    try:
        probe = _shm.SharedMemory(create=True, size=16)
    except (OSError, PermissionError):  # pragma: no cover - restricted sandboxes
        return False
    try:
        probe.close()
        probe.unlink()
    except OSError:  # pragma: no cover
        pass
    return True


class TraceArena:
    """Parent-side owner of the published segments.

    The arena creates segments, copies arrays in, and releases its NumPy
    views immediately, so :meth:`close` can always close and unlink every
    segment (a retained exported buffer would make ``mmap.close`` fail).
    """

    def __init__(self):
        if _shm is None:  # pragma: no cover
            raise OSError("multiprocessing.shared_memory is unavailable")
        self._segments: Dict[str, "_shm.SharedMemory"] = {}
        self.published_bytes = 0

    # -- publishing ------------------------------------------------------------------

    def publish(
        self,
        arrays: Mapping[str, np.ndarray],
        meta: Optional[Mapping[str, int]] = None,
    ) -> ArenaBlock:
        """Copy ``arrays`` into one fresh segment and return its handle."""
        layout: List[Tuple[str, str, int, int]] = []
        offset = 0
        contiguous = {name: np.ascontiguousarray(a) for name, a in arrays.items()}
        for name, array in contiguous.items():
            offset = -(-offset // _ALIGN) * _ALIGN  # round up
            layout.append((name, array.dtype.str, int(array.shape[0]), offset))
            offset += array.nbytes
        with span("publish", fields=len(layout), bytes=max(1, offset)):
            segment = _shm.SharedMemory(create=True, size=max(1, offset))
            try:
                for (name, dtype, length, field_offset), array in zip(
                        layout, contiguous.values()):
                    if length:
                        dst = np.frombuffer(
                            segment.buf, dtype=np.dtype(dtype),
                            count=length, offset=field_offset)
                        dst[:] = array
                        del dst  # release the exported buffer so close() stays legal
            except Exception:  # pragma: no cover - publish must not leak the segment
                segment.close()
                segment.unlink()
                raise
        self._segments[segment.name] = segment
        _CREATED.add(segment.name)
        self.published_bytes += max(1, offset)
        registry = get_registry()
        registry.counter("arena.publishes").inc()
        registry.histogram("arena.publish_bytes").observe(max(1, offset))
        return ArenaBlock(
            segment=segment.name,
            fields=tuple(layout),
            meta=tuple(sorted((meta or {}).items())),
            nbytes=max(1, offset),
        )

    def publish_view(self, view) -> ArenaBlock:
        """Publish a decoded :class:`~repro.microarch.cachekernel.ColumnarTrace`."""
        return self.publish(
            {
                "event_line": view.event_line,
                "event_first_read": view.event_first_read,
                "event_last_pos": view.event_last_pos,
                "event_writes_before_read": view.event_writes_before_read,
            },
            meta={
                "linesize_bytes": view.linesize_bytes,
                "accesses": view.accesses,
                "write_accesses": view.write_accesses,
            },
        )

    def publish_trace(
        self,
        pcs: np.ndarray,
        data_addresses: np.ndarray,
        data_is_write: np.ndarray,
    ) -> ArenaBlock:
        """Publish the raw trace columns the worker registry used to pickle."""
        return self.publish({
            "pcs": pcs,
            "data_addresses": data_addresses,
            "data_is_write": data_is_write,
        })

    # -- lifecycle -------------------------------------------------------------------

    @property
    def segment_names(self) -> Tuple[str, ...]:
        return tuple(self._segments)

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    def close(self) -> None:
        """Close and unlink every published segment (idempotent)."""
        for name, segment in self._segments.items():
            try:
                segment.close()
            except (OSError, BufferError):  # pragma: no cover
                pass
            try:
                segment.unlink()
            except OSError:  # pragma: no cover - already gone
                pass
            _CREATED.discard(name)
        self._segments.clear()


# -- worker-side attachment ------------------------------------------------------------

#: Per-process attachments: segment name -> (SharedMemory, field arrays).
_ATTACHED: Dict[str, Tuple[object, Dict[str, np.ndarray]]] = {}
#: Per-process reconstructed ColumnarTrace views, keyed by segment name so a
#: view's per-set caches survive across tasks.
_ATTACHED_VIEWS: Dict[str, object] = {}
_CLEANUP_REGISTERED = False


def _cleanup_attachments() -> None:  # pragma: no cover - runs at interpreter exit
    """Drop array views, then close the attachments (best effort)."""
    _ATTACHED_VIEWS.clear()
    segments = [segment for segment, _ in _ATTACHED.values()]
    _ATTACHED.clear()
    gc.collect()
    for segment in segments:
        try:
            segment.close()
        except (OSError, BufferError):
            pass


def attach(block: ArenaBlock) -> Dict[str, np.ndarray]:
    """Attach a published block; returns zero-copy read-only field arrays.

    Attachments are cached per process and stay mapped until the process
    exits (an :mod:`atexit` hook closes them).  Ownership stays with the
    parent -- no attaching process may ever unlink.  The resource-tracker
    bookkeeping that attach performs (Python <= 3.12 registers attaches
    too) depends on the start method: under *fork* every process shares
    the parent's tracker, so the attach-register is an idempotent set-add
    that the parent's unlink removes once; under *spawn* (or any
    non-fork method) each child runs its own tracker, which would unlink
    the still-published segment when the child exits, so the attach is
    unregistered from the child's tracker immediately.
    """
    global _CLEANUP_REGISTERED
    cached = _ATTACHED.get(block.segment)
    if cached is not None:
        return cached[1]
    registry = get_registry()
    registry.counter("arena.attaches").inc()
    registry.histogram("arena.attach_bytes").observe(block.nbytes)
    segment = _shm.SharedMemory(name=block.segment)
    try:
        import multiprocessing

        if (block.segment not in _CREATED
                and multiprocessing.get_start_method(allow_none=True) != "fork"):
            # pragma: no cover - Linux CI runs fork; exercised on spawn hosts
            from multiprocessing import resource_tracker

            resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker layout varies per platform
        pass
    arrays: Dict[str, np.ndarray] = {}
    for name, dtype, length, offset in block.fields:
        array = np.frombuffer(
            segment.buf, dtype=np.dtype(dtype), count=length, offset=offset)
        array.flags.writeable = False
        arrays[name] = array
    _ATTACHED[block.segment] = (segment, arrays)
    if not _CLEANUP_REGISTERED:
        atexit.register(_cleanup_attachments)
        _CLEANUP_REGISTERED = True
    return arrays


def attach_view(block: ArenaBlock):
    """Attach a published columnar view as a shared ColumnarTrace.

    The reconstructed view is cached per process by segment name, so its
    per-set potential-miss caches (built lazily during replay) persist
    across tasks exactly like a locally decoded view's would.
    """
    view = _ATTACHED_VIEWS.get(block.segment)
    if view is None:
        from repro.microarch.cachekernel import ColumnarTrace

        arrays = attach(block)
        meta = block.meta_dict()
        view = ColumnarTrace(
            linesize_bytes=meta["linesize_bytes"],
            accesses=meta["accesses"],
            write_accesses=meta["write_accesses"],
            event_line=arrays["event_line"],
            event_first_read=arrays["event_first_read"],
            event_last_pos=arrays["event_last_pos"],
            event_writes_before_read=arrays["event_writes_before_read"],
        )
        _ATTACHED_VIEWS[block.segment] = view
    return view

"""LEON configuration validity rules.

Beyond per-parameter domains, LEON imposes coupling rules between
parameters (paper, Section 4.1 "Parameter Validity Constraints"):

* the LRR (least-recently-replaced) policy is only available with 2-way
  associative caches (exactly 2 sets);
* the LRU policy is only available with multi-way caches (2 or more sets);
* the random policy is available with any associativity.

Feasibility with respect to the FPGA resource envelope is *not* checked
here -- that is the job of the synthesis model and the optimizer's
resource constraints -- but a convenience hook is provided so the platform
can reject configurations that cannot even be built.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.config.configuration import Configuration
from repro.config.leon_space import Replacement
from repro.errors import ConfigurationError

__all__ = ["RuleViolation", "ValidityRule", "leon_rules", "check_rules", "require_valid"]


@dataclass(frozen=True)
class RuleViolation:
    """One violated validity rule, with a human-readable explanation."""

    rule: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.rule}: {self.message}"


@dataclass(frozen=True)
class ValidityRule:
    """A named predicate over configurations.

    ``check`` returns ``None`` when the configuration satisfies the rule,
    or an explanatory message when it does not.
    """

    name: str
    check: Callable[[Configuration], str | None]

    def violations(self, config: Configuration) -> List[RuleViolation]:
        message = self.check(config)
        if message is None:
            return []
        return [RuleViolation(self.name, message)]


def _replacement_rule(prefix: str) -> Callable[[Configuration], str | None]:
    """Build the LRR/LRU coupling check for the cache named by ``prefix``."""

    def check(config: Configuration) -> str | None:
        sets = config[f"{prefix}_sets"]
        policy = config[f"{prefix}_replacement"]
        if policy == Replacement.LRR and sets != 2:
            return (
                f"{prefix} uses LRR replacement which requires exactly 2 sets, "
                f"but {sets} set(s) are configured"
            )
        if policy == Replacement.LRU and sets < 2:
            return (
                f"{prefix} uses LRU replacement which requires a multi-way cache, "
                f"but {sets} set(s) are configured"
            )
        return None

    return check


def _multiplier_inference_rule(config: Configuration) -> str | None:
    """``infer_mult_div=False`` is meaningless without any hardware mult/div.

    LEON's synthesis option only matters when a hardware multiplier or
    divider is instantiated; the rule documents this rather than changing
    behaviour (it never fires for perturbations of the base configuration,
    which has both units).
    """
    if not config.infer_mult_div and config.multiplier == "none" and config.divider == "none":
        return "infer_mult_div=False has no effect when neither multiplier nor divider exists"
    return None


def leon_rules() -> Sequence[ValidityRule]:
    """The LEON coupling rules checked by :func:`check_rules`."""
    return (
        ValidityRule("icache_replacement_associativity", _replacement_rule("icache")),
        ValidityRule("dcache_replacement_associativity", _replacement_rule("dcache")),
        ValidityRule("multiplier_inference", _multiplier_inference_rule),
    )


def check_rules(
    config: Configuration, rules: Sequence[ValidityRule] | None = None
) -> List[RuleViolation]:
    """Return every rule violation of ``config`` (empty list when valid)."""
    violations: List[RuleViolation] = []
    for rule in rules if rules is not None else leon_rules():
        violations.extend(rule.violations(config))
    return violations


def require_valid(
    config: Configuration, rules: Sequence[ValidityRule] | None = None
) -> Configuration:
    """Return ``config`` unchanged, raising :class:`ConfigurationError` if invalid."""
    violations = check_rules(config, rules)
    if violations:
        detail = "; ".join(str(v) for v in violations)
        raise ConfigurationError(f"invalid configuration: {detail}")
    return config

"""Immutable microarchitecture configurations.

A :class:`Configuration` is a full assignment of every parameter in a
:class:`~repro.config.parameters.ParameterSpace`.  Configurations are
hashable and therefore usable as memoisation keys by the measurement
platform (the real Liquid Architecture platform caches bitstreams the same
way).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping, Tuple

from repro.config.parameters import ParameterSpace
from repro.config.leon_space import leon_parameter_space
from repro.errors import ConfigurationError

__all__ = ["Configuration", "base_configuration"]


class Configuration(Mapping[str, Any]):
    """A complete, validated assignment of a parameter space.

    The object behaves like a read-only mapping from parameter name to
    value and additionally exposes attribute-style access
    (``cfg.dcache_setsize_kb``) for readability in the simulator and
    synthesis model.
    """

    __slots__ = ("_space", "_values", "_key", "_hash")

    def __init__(self, space: ParameterSpace, values: Mapping[str, Any]):
        assignment: Dict[str, Any] = {}
        unknown = [name for name in values if name not in space]
        if unknown:
            raise ConfigurationError(f"unknown parameters: {sorted(unknown)}")
        for param in space:
            if param.name not in values:
                raise ConfigurationError(f"missing value for parameter {param.name!r}")
            assignment[param.name] = param.validate(values[param.name])
        self._space = space
        self._values = assignment
        self._key: Tuple[Tuple[str, Any], ...] = tuple(sorted(assignment.items()))
        # configurations are memo keys throughout the platform and engine;
        # tuple hashing is O(parameters), so cache it once at construction
        self._hash = hash(self._key)

    # -- mapping protocol ---------------------------------------------------------

    def __getitem__(self, name: str) -> Any:
        try:
            return self._values[name]
        except KeyError:
            raise ConfigurationError(f"unknown parameter {name!r}") from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __getattr__(self, name: str) -> Any:
        # __getattr__ is only called when normal lookup fails, so the
        # slots above are unaffected.
        values = object.__getattribute__(self, "_values")
        if name in values:
            return values[name]
        raise AttributeError(name)

    # -- identity -----------------------------------------------------------------

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._key == other._key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        diffs = self.diff(Configuration(self._space, self._space.defaults()))
        if not diffs:
            return "Configuration(<base>)"
        inner = ", ".join(f"{k}={v!r}" for k, (_, v) in sorted(diffs.items()))
        return f"Configuration({inner})"

    # -- accessors ------------------------------------------------------------------

    @property
    def space(self) -> ParameterSpace:
        """The parameter space this configuration belongs to."""
        return self._space

    def as_dict(self) -> Dict[str, Any]:
        """A plain mutable copy of the assignment."""
        return dict(self._values)

    def key(self) -> Tuple[Tuple[str, Any], ...]:
        """A canonical hashable key (used for memoisation and sorting)."""
        return self._key

    # -- derived configurations ---------------------------------------------------------

    def replace(self, **changes: Any) -> "Configuration":
        """A new configuration with the given parameters changed."""
        values = dict(self._values)
        values.update(changes)
        return Configuration(self._space, values)

    def diff(self, other: "Configuration") -> Dict[str, Tuple[Any, Any]]:
        """Parameters on which ``self`` and ``other`` differ.

        Returns a mapping ``name -> (other_value, self_value)``; the
        ordering matches the reporting convention of the paper's Figures 5
        and 7 ("Base" column first, application column second).
        """
        if other._space is not self._space and other._space.names != self._space.names:
            raise ConfigurationError("cannot diff configurations from different spaces")
        out: Dict[str, Tuple[Any, Any]] = {}
        for name, value in self._values.items():
            if other._values[name] != value:
                out[name] = (other._values[name], value)
        return out

    def is_base(self) -> bool:
        """True when every parameter is at its default value."""
        return all(self._values[p.name] == p.default for p in self._space)


def base_configuration(space: ParameterSpace | None = None) -> Configuration:
    """The out-of-the-box LEON configuration the paper calls the *base*.

    When ``space`` is omitted, the full LEON space of Figure 1 is used.
    """
    space = space if space is not None else leon_parameter_space()
    return Configuration(space, space.defaults())

"""Design-space definition: parameters, configurations, validity rules, perturbations."""

from repro.config.parameters import Parameter, ParameterSpace, Subsystem
from repro.config.leon_space import (
    Divider,
    Multiplier,
    Replacement,
    leon_parameter_space,
    CACHE_SET_COUNTS,
    CACHE_SET_SIZES_KB,
    CACHE_LINE_SIZES_WORDS,
    REGISTER_WINDOW_COUNTS,
)
from repro.config.configuration import Configuration, base_configuration
from repro.config.rules import (
    RuleViolation,
    ValidityRule,
    check_rules,
    leon_rules,
    require_valid,
)
from repro.config.perturbation import (
    PerturbationGroup,
    PerturbationSpace,
    PerturbationVariable,
    Selection,
)

__all__ = [
    "Parameter",
    "ParameterSpace",
    "Subsystem",
    "Divider",
    "Multiplier",
    "Replacement",
    "leon_parameter_space",
    "CACHE_SET_COUNTS",
    "CACHE_SET_SIZES_KB",
    "CACHE_LINE_SIZES_WORDS",
    "REGISTER_WINDOW_COUNTS",
    "Configuration",
    "base_configuration",
    "RuleViolation",
    "ValidityRule",
    "check_rules",
    "leon_rules",
    "require_valid",
    "PerturbationGroup",
    "PerturbationSpace",
    "PerturbationVariable",
    "Selection",
]

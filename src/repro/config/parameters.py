"""Parameter and parameter-space abstractions.

The paper (Figure 1) describes the reconfigurable microarchitecture of the
LEON2 soft core as a set of *parameters*, each with a finite value domain
and a default ("out of the box") value.  This module provides the generic
machinery: :class:`Parameter` describes one reconfigurable knob and
:class:`ParameterSpace` is an ordered collection of parameters with helpers
for enumeration, neighbourhood generation and size accounting.

The concrete LEON parameter space of the paper lives in
:mod:`repro.config.leon_space`.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = ["Parameter", "ParameterSpace", "Subsystem"]


class Subsystem:
    """Symbolic names for the processor subsystems a parameter belongs to."""

    ICACHE = "icache"
    DCACHE = "dcache"
    INTEGER_UNIT = "iu"
    SYNTHESIS = "synthesis"

    ALL: Tuple[str, ...] = (ICACHE, DCACHE, INTEGER_UNIT, SYNTHESIS)


@dataclass(frozen=True)
class Parameter:
    """One reconfigurable microarchitecture parameter.

    Parameters
    ----------
    name:
        Unique identifier, e.g. ``"dcache_setsize_kb"``.
    values:
        The finite, ordered value domain.  Values may be integers, strings
        or booleans; they are compared with ``==`` and must be hashable.
    default:
        The out-of-the-box value.  Must be a member of ``values``.
    subsystem:
        One of :class:`Subsystem`'s constants; used for grouping in
        reports and in the synthesis cost model.
    description:
        Human readable description used in generated tables.
    """

    name: str
    values: Tuple[Any, ...]
    default: Any
    subsystem: str = Subsystem.INTEGER_UNIT
    description: str = ""

    def __post_init__(self) -> None:
        if not self.values:
            raise ConfigurationError(f"parameter {self.name!r} has an empty domain")
        if len(set(self.values)) != len(self.values):
            raise ConfigurationError(
                f"parameter {self.name!r} has duplicate values: {self.values!r}"
            )
        if self.default not in self.values:
            raise ConfigurationError(
                f"default {self.default!r} of parameter {self.name!r} is not in its "
                f"domain {self.values!r}"
            )
        if self.subsystem not in Subsystem.ALL:
            raise ConfigurationError(
                f"unknown subsystem {self.subsystem!r} for parameter {self.name!r}"
            )

    # -- queries -----------------------------------------------------------------

    @property
    def cardinality(self) -> int:
        """Number of values in the domain."""
        return len(self.values)

    @property
    def non_default_values(self) -> Tuple[Any, ...]:
        """All values except the default, preserving domain order."""
        return tuple(v for v in self.values if v != self.default)

    def validate(self, value: Any) -> Any:
        """Return ``value`` if it belongs to the domain, raise otherwise."""
        if value not in self.values:
            raise ConfigurationError(
                f"value {value!r} is not a legal value of parameter {self.name!r}; "
                f"legal values are {self.values!r}"
            )
        return value

    def index_of(self, value: Any) -> int:
        """Position of ``value`` in the domain (used for stable ordering)."""
        self.validate(value)
        return self.values.index(value)

    def is_binary(self) -> bool:
        """True when the parameter has exactly two values (an on/off knob)."""
        return len(self.values) == 2


@dataclass
class ParameterSpace:
    """An ordered collection of :class:`Parameter` objects.

    The space knows how large exhaustive exploration would be
    (:meth:`exhaustive_size`) and how many one-factor perturbations exist
    (:meth:`perturbation_count`), which is the quantity the paper's
    approach is linear in.
    """

    parameters: Tuple[Parameter, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [p.name for p in self.parameters]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate parameter names in space: {names}")
        self._by_name: Dict[str, Parameter] = {p.name: p for p in self.parameters}

    # -- container protocol --------------------------------------------------------

    def __iter__(self) -> Iterator[Parameter]:
        return iter(self.parameters)

    def __len__(self) -> int:
        return len(self.parameters)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Parameter:
        try:
            return self._by_name[name]
        except KeyError:
            raise ConfigurationError(f"unknown parameter {name!r}") from None

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.parameters)

    # -- construction helpers -------------------------------------------------------

    def defaults(self) -> Dict[str, Any]:
        """Mapping of parameter name to default value (the base configuration)."""
        return {p.name: p.default for p in self.parameters}

    def by_subsystem(self, subsystem: str) -> Tuple[Parameter, ...]:
        """All parameters belonging to ``subsystem``."""
        return tuple(p for p in self.parameters if p.subsystem == subsystem)

    def subset(self, names: Iterable[str]) -> "ParameterSpace":
        """A new space containing only the named parameters (order preserved)."""
        wanted = list(names)
        missing = [n for n in wanted if n not in self._by_name]
        if missing:
            raise ConfigurationError(f"unknown parameters in subset: {missing}")
        return ParameterSpace(tuple(p for p in self.parameters if p.name in wanted))

    # -- size accounting -------------------------------------------------------------

    def exhaustive_size(self) -> int:
        """Number of configurations in the full cross-product of all domains."""
        return math.prod(p.cardinality for p in self.parameters) if self.parameters else 0

    def perturbation_count(self) -> int:
        """Number of one-factor-at-a-time perturbations from the base configuration.

        This is the number of processor builds the paper's campaign
        requires (52 in the paper's Figure 1 accounting); the naive
        exhaustive campaign would require :meth:`exhaustive_size` builds.
        """
        return sum(len(p.non_default_values) for p in self.parameters)

    def value_count(self) -> int:
        """Total number of parameter values across all domains."""
        return sum(p.cardinality for p in self.parameters)

    # -- enumeration -------------------------------------------------------------------

    def iter_assignments(
        self, overrides: Mapping[str, Sequence[Any]] | None = None
    ) -> Iterator[Dict[str, Any]]:
        """Iterate over full assignments of the space.

        ``overrides`` restricts the iterated domain of selected parameters;
        parameters not mentioned keep their *full* domain.  This is used by
        the exhaustive baseline on scaled-down sub-spaces (the paper's
        Section 5 restricts dcache to sets x set size).
        """
        overrides = dict(overrides or {})
        unknown = [n for n in overrides if n not in self._by_name]
        if unknown:
            raise ConfigurationError(f"unknown parameters in overrides: {unknown}")
        domains: List[Tuple[Any, ...]] = []
        for p in self.parameters:
            if p.name in overrides:
                vals = tuple(overrides[p.name])
                for v in vals:
                    p.validate(v)
                domains.append(vals)
            else:
                domains.append(p.values)
        for combo in itertools.product(*domains):
            yield dict(zip(self.names, combo))

    def iter_one_factor_assignments(self) -> Iterator[Tuple[str, Any, Dict[str, Any]]]:
        """Iterate ``(parameter, value, assignment)`` for every one-factor perturbation.

        Each yielded assignment equals the base configuration with exactly
        one parameter set to a non-default value; this is the measurement
        plan of the paper's campaign.
        """
        base = self.defaults()
        for p in self.parameters:
            for value in p.non_default_values:
                assignment = dict(base)
                assignment[p.name] = value
                yield p.name, value, assignment

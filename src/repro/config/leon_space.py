"""The LEON2 reconfigurable parameter space of the paper's Figure 1.

The paper customises the LEON2 soft core along the parameters below.  The
64 KB set size is excluded because it exceeds the BRAM available on the
Virtex XCV2000E by 33 % (paper, Section 2.2); the FPU, MMU and peripheral
options are excluded for the reasons given there as well.

Symbolic value constants are exported so that the rest of the library (the
timing model, the synthesis model, the workloads) never spells replacement
policies or multiplier implementations as raw strings.
"""

from __future__ import annotations

from typing import Tuple

from repro.config.parameters import Parameter, ParameterSpace, Subsystem

__all__ = [
    "Replacement",
    "Multiplier",
    "Divider",
    "leon_parameter_space",
    "CACHE_SET_COUNTS",
    "CACHE_SET_SIZES_KB",
    "CACHE_LINE_SIZES_WORDS",
    "REGISTER_WINDOW_COUNTS",
]


class Replacement:
    """Cache replacement policies supported by LEON2."""

    RANDOM = "random"
    LRR = "lrr"  # least recently replaced (FIFO-like), 2-way only
    LRU = "lru"  # least recently used, any multi-way associativity

    ALL: Tuple[str, ...] = (RANDOM, LRR, LRU)


class Multiplier:
    """Hardware multiplier implementations selectable in LEON2."""

    NONE = "none"                 # no hardware multiplier; MUL is emulated
    ITERATIVE = "iterative"       # bit-serial iterative multiplier
    M16X16 = "m16x16"             # 16x16 multiplier, 4-cycle 32x32 (default)
    M16X16_PIPE = "m16x16_pipe"   # 16x16 with pipeline registers
    M32X8 = "m32x8"               # 32x8, 4-cycle
    M32X16 = "m32x16"             # 32x16, 2-cycle
    M32X32 = "m32x32"             # full single-cycle 32x32

    ALL: Tuple[str, ...] = (NONE, ITERATIVE, M16X16, M16X16_PIPE, M32X8, M32X16, M32X32)


class Divider:
    """Hardware divider implementations selectable in LEON2."""

    RADIX2 = "radix2"   # radix-2 iterative divider (default)
    NONE = "none"       # no hardware divider; DIV is emulated

    ALL: Tuple[str, ...] = (RADIX2, NONE)


#: Cache associativities (number of sets in LEON terminology).
CACHE_SET_COUNTS: Tuple[int, ...] = (1, 2, 3, 4)

#: Per-set cache sizes in kilobytes.  64 KB is excluded (needs 213 BRAM,
#: 33 % more than the XCV2000E provides -- paper Section 2.2).
CACHE_SET_SIZES_KB: Tuple[int, ...] = (1, 2, 4, 8, 16, 32)

#: Cache line sizes in 32-bit words.
CACHE_LINE_SIZES_WORDS: Tuple[int, ...] = (4, 8)

#: Register window counts: the default of 8, or any value in 16..32.
REGISTER_WINDOW_COUNTS: Tuple[int, ...] = (8,) + tuple(range(16, 33))


def leon_parameter_space() -> ParameterSpace:
    """Build the LEON parameter space of the paper's Figure 1.

    Returns a fresh :class:`~repro.config.parameters.ParameterSpace`; the
    defaults of every parameter together form the *base configuration*
    that the measurement campaign perturbs one value at a time.
    """
    params = (
        # --- instruction cache ---------------------------------------------------
        Parameter(
            "icache_sets", CACHE_SET_COUNTS, 1, Subsystem.ICACHE,
            "Number of instruction-cache sets (associativity)"),
        Parameter(
            "icache_setsize_kb", CACHE_SET_SIZES_KB, 4, Subsystem.ICACHE,
            "Size of each instruction-cache set in KB"),
        Parameter(
            "icache_linesize_words", CACHE_LINE_SIZES_WORDS, 8, Subsystem.ICACHE,
            "Instruction-cache line size in 32-bit words"),
        Parameter(
            "icache_replacement", Replacement.ALL, Replacement.RANDOM, Subsystem.ICACHE,
            "Instruction-cache replacement policy"),
        # --- data cache ------------------------------------------------------------
        Parameter(
            "dcache_sets", CACHE_SET_COUNTS, 1, Subsystem.DCACHE,
            "Number of data-cache sets (associativity)"),
        Parameter(
            "dcache_setsize_kb", CACHE_SET_SIZES_KB, 4, Subsystem.DCACHE,
            "Size of each data-cache set in KB"),
        Parameter(
            "dcache_linesize_words", CACHE_LINE_SIZES_WORDS, 8, Subsystem.DCACHE,
            "Data-cache line size in 32-bit words"),
        Parameter(
            "dcache_replacement", Replacement.ALL, Replacement.RANDOM, Subsystem.DCACHE,
            "Data-cache replacement policy"),
        Parameter(
            "dcache_fast_read", (False, True), False, Subsystem.DCACHE,
            "Data-cache fast read (single-cycle load hit) option"),
        Parameter(
            "dcache_fast_write", (False, True), False, Subsystem.DCACHE,
            "Data-cache fast write (write buffer) option"),
        # --- integer unit ------------------------------------------------------------
        Parameter(
            "fast_jump", (True, False), True, Subsystem.INTEGER_UNIT,
            "Fast jump-address generation (reduces taken-branch penalty)"),
        Parameter(
            "icc_hold", (True, False), True, Subsystem.INTEGER_UNIT,
            "Hold pipeline for integer-condition-code dependencies"),
        Parameter(
            "fast_decode", (True, False), True, Subsystem.INTEGER_UNIT,
            "Fast instruction decode"),
        Parameter(
            "load_delay", (1, 2), 1, Subsystem.INTEGER_UNIT,
            "Load-use delay in clock cycles"),
        Parameter(
            "register_windows", REGISTER_WINDOW_COUNTS, 8, Subsystem.INTEGER_UNIT,
            "Number of SPARC register windows"),
        Parameter(
            "divider", Divider.ALL, Divider.RADIX2, Subsystem.INTEGER_UNIT,
            "Hardware divider implementation"),
        Parameter(
            "multiplier", Multiplier.ALL, Multiplier.M16X16, Subsystem.INTEGER_UNIT,
            "Hardware multiplier implementation"),
        # --- synthesis options ----------------------------------------------------------
        Parameter(
            "infer_mult_div", (True, False), True, Subsystem.SYNTHESIS,
            "Let the synthesis tool infer multiplier/divider structures"),
    )
    return ParameterSpace(params)

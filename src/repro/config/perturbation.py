"""One-factor perturbation variables (the x_i of the paper's Section 4).

Starting from the base configuration, each non-default parameter value is
a binary decision variable ``x_i``: selecting it means "set this parameter
to this value", leaving it unselected means "keep the default".  Variables
that belong to the same multi-valued parameter form a *group* with an
at-most-one selection constraint (paper, Section 4.2).

The perturbation space is generated programmatically from the parameter
space rather than hard-coded, so the variable count (52 in the paper's
accounting, 53 with our slightly different multiplier bookkeeping -- see
DESIGN.md) is derived and asserted in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

from repro.config.configuration import Configuration
from repro.config.parameters import ParameterSpace
from repro.config.rules import check_rules
from repro.errors import ConfigurationError

__all__ = ["PerturbationVariable", "PerturbationGroup", "PerturbationSpace", "Selection"]


@dataclass(frozen=True)
class PerturbationVariable:
    """One binary decision variable: ``parameter := value`` (vs. the default)."""

    index: int
    parameter: str
    value: Any
    default: Any
    subsystem: str

    @property
    def label(self) -> str:
        """Short human-readable label, e.g. ``dcache_setsize_kb=32``."""
        return f"{self.parameter}={self.value}"


@dataclass(frozen=True)
class PerturbationGroup:
    """Variables that perturb the same parameter (at most one may be selected)."""

    parameter: str
    variable_indices: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.variable_indices)


#: A selection is a set/sequence of chosen variable indices.
Selection = Sequence[int]


class PerturbationSpace:
    """All one-factor perturbations of a parameter space's base configuration.

    ``parameters`` restricts the perturbations to a subset of parameters
    (all other parameters stay at their defaults).  This is how the
    paper's Section 5 studies the scaled-down dcache-only design space
    while still producing complete, buildable configurations.
    """

    def __init__(self, space: ParameterSpace, parameters: Iterable[str] | None = None):
        self._space = space
        self._base = Configuration(space, space.defaults())
        allowed = set(parameters) if parameters is not None else None
        if allowed is not None:
            unknown = [name for name in allowed if name not in space]
            if unknown:
                raise ConfigurationError(f"unknown parameters in restriction: {sorted(unknown)}")
        variables: List[PerturbationVariable] = []
        groups: List[PerturbationGroup] = []
        index = 0
        for param in space:
            if allowed is not None and param.name not in allowed:
                continue
            indices: List[int] = []
            for value in param.non_default_values:
                variables.append(
                    PerturbationVariable(
                        index=index,
                        parameter=param.name,
                        value=value,
                        default=param.default,
                        subsystem=param.subsystem,
                    )
                )
                indices.append(index)
                index += 1
            if len(indices) >= 2:
                groups.append(PerturbationGroup(param.name, tuple(indices)))
        self._variables: Tuple[PerturbationVariable, ...] = tuple(variables)
        self._groups: Tuple[PerturbationGroup, ...] = tuple(groups)
        self._by_parameter: Dict[str, Tuple[int, ...]] = {}
        for var in variables:
            self._by_parameter.setdefault(var.parameter, ())
            self._by_parameter[var.parameter] += (var.index,)

    # -- accessors ---------------------------------------------------------------

    @property
    def space(self) -> ParameterSpace:
        return self._space

    @property
    def base(self) -> Configuration:
        """The base configuration all perturbations start from."""
        return self._base

    @property
    def variables(self) -> Tuple[PerturbationVariable, ...]:
        return self._variables

    @property
    def groups(self) -> Tuple[PerturbationGroup, ...]:
        """At-most-one groups (multi-valued parameters only)."""
        return self._groups

    def __len__(self) -> int:
        return len(self._variables)

    def __iter__(self) -> Iterator[PerturbationVariable]:
        return iter(self._variables)

    def variable(self, index: int) -> PerturbationVariable:
        try:
            return self._variables[index]
        except IndexError:
            raise ConfigurationError(f"no perturbation variable with index {index}") from None

    def variables_for(self, parameter: str) -> Tuple[PerturbationVariable, ...]:
        """All variables perturbing ``parameter`` (may be empty)."""
        return tuple(self._variables[i] for i in self._by_parameter.get(parameter, ()))

    def find(self, parameter: str, value: Any) -> PerturbationVariable:
        """The variable setting ``parameter`` to ``value``."""
        for var in self.variables_for(parameter):
            if var.value == value:
                return var
        raise ConfigurationError(
            f"no perturbation variable for {parameter}={value!r} "
            f"(is it the default value, or out of domain?)"
        )

    # -- selections --------------------------------------------------------------------

    def validate_selection(self, selection: Selection) -> Tuple[int, ...]:
        """Check group constraints and return the selection as a sorted tuple."""
        chosen = sorted(set(int(i) for i in selection))
        for i in chosen:
            if not 0 <= i < len(self._variables):
                raise ConfigurationError(f"selection references unknown variable {i}")
        per_param: Dict[str, List[int]] = {}
        for i in chosen:
            per_param.setdefault(self._variables[i].parameter, []).append(i)
        conflicts = {p: idx for p, idx in per_param.items() if len(idx) > 1}
        if conflicts:
            raise ConfigurationError(
                "selection picks more than one value for parameter(s): "
                + ", ".join(
                    f"{p} ({[self._variables[i].label for i in idx]})"
                    for p, idx in conflicts.items()
                )
            )
        return tuple(chosen)

    def apply(self, selection: Selection, *, validate_rules: bool = False) -> Configuration:
        """The configuration obtained by applying the selected perturbations.

        With ``validate_rules=True`` the LEON coupling rules are checked and
        a :class:`~repro.errors.ConfigurationError` is raised on violation
        (the optimizer encodes these rules as constraints instead, so it
        never produces violating selections).
        """
        chosen = self.validate_selection(selection)
        changes = {self._variables[i].parameter: self._variables[i].value for i in chosen}
        config = self._base.replace(**changes)
        if validate_rules:
            violations = check_rules(config)
            if violations:
                raise ConfigurationError(
                    "selection produces an invalid configuration: "
                    + "; ".join(str(v) for v in violations)
                )
        return config

    def selection_for(self, config: Configuration) -> Tuple[int, ...]:
        """The selection whose :meth:`apply` yields ``config``.

        Raises if ``config`` differs from the base on a parameter that has
        no corresponding perturbation variable (cannot happen for
        configurations drawn from the same space).
        """
        selection: List[int] = []
        for name, (_, new_value) in config.diff(self._base).items():
            selection.append(self.find(name, new_value).index)
        return tuple(sorted(selection))

    def single(self, index: int) -> Configuration:
        """The configuration with only variable ``index`` applied."""
        return self.apply((index,))

    def iter_single_configurations(self) -> Iterator[Tuple[PerturbationVariable, Configuration]]:
        """Iterate ``(variable, configuration)`` for every one-factor perturbation."""
        for var in self._variables:
            yield var, self.single(var.index)

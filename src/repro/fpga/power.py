"""Power and energy estimation (the paper's "future work" extension).

Section 7 of the paper lists "power and energy optimizations" as the first
extension of the model.  This module provides that extension for the
reproduction: an analytic power model in the spirit of the Xilinx Virtex-E
XPower spreadsheets that turns a :class:`~repro.platform.Measurement`
(resources + cycle-accurate activity) into static and dynamic energy
estimates.  The estimates can be used directly as a third optimisation
dimension: energy per run is a cost just like runtime or chip resources,
and :func:`energy_cost_percent` expresses it relative to a base
measurement so it can be dropped into the existing
:class:`~repro.core.weights.Weights`-style objective.

Model
-----
* **Static power** is proportional to the configured logic: a fixed device
  leakage plus per-LUT and per-BRAM terms.  Static *energy* is that power
  integrated over the runtime, so a faster configuration saves static
  energy even when it uses more logic.
* **Dynamic energy** charges per-event energies: one per executed
  instruction, one per cache access, a larger one per cache miss (line
  fills toggle wide buses), per multiply/divide (wide operand datapaths)
  and per register-window spill/fill trap.

The constants are calibration parameters, not measurements; they are
chosen so the base configuration lands near the ~1.5 W a Virtex-E LEON2
system dissipates at 25 MHz, and every qualitative relationship a designer
would rely on (bigger caches leak more, fewer misses save dynamic energy,
shorter runtime saves static energy) holds by construction and is asserted
in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.microarch.statistics import DEFAULT_CLOCK_MHZ
from repro.platform.measurement import Measurement

__all__ = ["EnergyEstimate", "PowerModel", "energy_cost_percent"]


@dataclass(frozen=True)
class EnergyEstimate:
    """Energy breakdown of one (workload, configuration) measurement."""

    workload: str
    static_millijoules: float
    dynamic_millijoules: float
    runtime_seconds: float

    @property
    def total_millijoules(self) -> float:
        return self.static_millijoules + self.dynamic_millijoules

    @property
    def average_power_milliwatts(self) -> float:
        """Mean power over the run (total energy / runtime)."""
        if self.runtime_seconds <= 0:
            return 0.0
        # millijoules per second are milliwatts
        return self.total_millijoules / self.runtime_seconds

    def summary(self) -> str:
        return (
            f"{self.workload}: {self.total_millijoules:.2f} mJ "
            f"({self.static_millijoules:.2f} static + "
            f"{self.dynamic_millijoules:.2f} dynamic), "
            f"{self.average_power_milliwatts:.0f} mW average")


class PowerModel:
    """Analytic static + dynamic power model of the soft-core system."""

    # -- static power (milliwatts) -------------------------------------------------
    DEVICE_LEAKAGE_MW = 250.0        # quiescent power of the FPGA fabric + I/O
    LUT_STATIC_MICROWATTS = 18.0     # per configured LUT
    BRAM_STATIC_MILLIWATTS = 1.6     # per instantiated block RAM

    # -- dynamic energy (nanojoules per event) -----------------------------------------
    INSTRUCTION_NJ = 1.1             # issue + register file + ALU toggle
    CACHE_ACCESS_NJ = 0.5            # tag compare + data array read/write
    CACHE_MISS_NJ = 14.0             # line fill over the memory bus
    MULDIV_NJ = 3.5                  # wide datapath activity per multiply/divide
    WINDOW_TRAP_NJ = 20.0            # 16-register spill/fill sequence

    def __init__(self, clock_mhz: float = DEFAULT_CLOCK_MHZ):
        self.clock_mhz = clock_mhz

    # -- components -------------------------------------------------------------------------

    def static_power_milliwatts(self, measurement: Measurement) -> float:
        """Static (leakage + clock tree) power of the configuration."""
        resources = measurement.resources
        return (
            self.DEVICE_LEAKAGE_MW
            + resources.luts * self.LUT_STATIC_MICROWATTS / 1000.0
            + resources.brams * self.BRAM_STATIC_MILLIWATTS
        )

    def dynamic_energy_millijoules(self, measurement: Measurement) -> float:
        """Dynamic (switching) energy of one run of the workload."""
        stats = measurement.statistics
        accesses = misses = 0
        for cache in (stats.icache, stats.dcache):
            if cache is not None:
                accesses += cache.accesses
                misses += cache.misses
        # the cycle breakdown stores multiply/divide *latency* cycles; they are a
        # good proxy for datapath activity, scaled down to roughly one event's
        # worth of energy per few busy cycles.
        muldiv_cycles = (stats.cycle_breakdown.get("multiply", 0)
                         + stats.cycle_breakdown.get("divide", 0))
        traps = stats.window_overflows + stats.window_underflows
        nanojoules = (
            stats.instruction_count * self.INSTRUCTION_NJ
            + accesses * self.CACHE_ACCESS_NJ
            + misses * self.CACHE_MISS_NJ
            + muldiv_cycles * self.MULDIV_NJ / 4.0
            + traps * self.WINDOW_TRAP_NJ
        )
        return nanojoules / 1e6

    # -- full estimate ------------------------------------------------------------------------

    def estimate(self, measurement: Measurement) -> EnergyEstimate:
        """Static + dynamic energy of one measurement."""
        runtime_seconds = measurement.statistics.cycles / (self.clock_mhz * 1e6)
        static_mj = self.static_power_milliwatts(measurement) * runtime_seconds
        return EnergyEstimate(
            workload=measurement.workload,
            static_millijoules=static_mj,
            dynamic_millijoules=self.dynamic_energy_millijoules(measurement),
            runtime_seconds=runtime_seconds,
        )


def energy_cost_percent(
    measurement: Measurement, base: Measurement, model: PowerModel | None = None
) -> float:
    """Energy delta of ``measurement`` relative to ``base``, in percent.

    This is the energy analogue of the paper's rho (runtime) cost: negative
    values mean the configuration uses less energy per run than the base
    configuration.  It can be combined with the runtime and chip-resource
    deltas in a weighted objective to add the paper's proposed
    energy-optimisation dimension without changing the optimiser.
    """
    model = model or PowerModel()
    this = model.estimate(measurement).total_millijoules
    ref = model.estimate(base).total_millijoules
    if ref == 0:
        return 0.0
    return 100.0 * (this - ref) / ref

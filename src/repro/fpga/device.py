"""FPGA device resource envelopes.

The paper instantiates LEON2 on a Xilinx Virtex XCV2000E, which provides
38,400 look-up tables (LUTs) and 160 block RAMs (each 4,096 bits).  The
device model knows its capacities and converts absolute resource counts to
the utilisation percentages the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ResourceError

__all__ = ["FpgaDevice", "XCV2000E", "BRAM_BYTES"]

#: Capacity of one Virtex-E block RAM in bytes (4,096 bits).
BRAM_BYTES = 512


@dataclass(frozen=True)
class FpgaDevice:
    """Resource envelope of an FPGA device."""

    name: str
    luts: int
    brams: int
    bram_bytes: int = BRAM_BYTES

    def __post_init__(self) -> None:
        if self.luts <= 0 or self.brams <= 0:
            raise ResourceError(f"device {self.name!r} must have positive capacities")

    # -- utilisation helpers -----------------------------------------------------

    def lut_percent(self, luts: int) -> float:
        """LUT utilisation as a percentage of device capacity."""
        return 100.0 * luts / self.luts

    def bram_percent(self, brams: int) -> float:
        """BRAM utilisation as a percentage of device capacity."""
        return 100.0 * brams / self.brams

    def fits(self, luts: int, brams: int) -> bool:
        """True when the given resource usage fits on the device."""
        return 0 <= luts <= self.luts and 0 <= brams <= self.brams

    def headroom(self, luts: int, brams: int) -> tuple[int, int]:
        """Remaining (LUTs, BRAMs) after subtracting the given usage.

        The paper calls the percentage equivalents of these quantities
        ``L`` and ``B`` (the resources left after the base configuration).
        """
        return self.luts - luts, self.brams - brams


#: The device used throughout the paper.
XCV2000E = FpgaDevice(name="Xilinx Virtex XCV2000E", luts=38_400, brams=160)

"""Analytic synthesis cost model for LEON-like processor configurations.

The paper measures LUT and BRAM utilisation by actually synthesising each
processor configuration from its VHDL sources, which takes about 30
minutes per build.  We replace the synthesis tool with an analytic model
that maps a :class:`~repro.config.Configuration` to LUT/BRAM counts on a
target :class:`~repro.fpga.device.FpgaDevice`.

Calibration
-----------
The model is calibrated against the figures reported in the paper:

* the base configuration uses 14,992 LUTs (39 %) and 82 BRAMs (51 %) of
  the XCV2000E (Section 2.4);
* the dcache sweep of Figure 2 spans roughly 47 %–90 % BRAM, with BRAM
  driven by ``number of sets x set size`` (data arrays) plus tag arrays;
* single-parameter LUT deltas are small (a percent or two): removing the
  divider saves about 2 %, the largest multiplier adds about 1 %
  (Figure 6).

The *structure* of the model mirrors real LEON synthesis results: cache
data and tag arrays consume block RAM proportional to their capacity, the
register file consumes block RAM proportional to the window count, and
LUTs are the sum of per-subsystem contributions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.config.configuration import Configuration
from repro.config.leon_space import Divider, Multiplier, Replacement
from repro.fpga.device import BRAM_BYTES, FpgaDevice, XCV2000E
from repro.fpga.report import ResourceReport

__all__ = ["SynthesisModel", "CacheGeometry"]


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one cache (instruction or data)."""

    sets: int
    setsize_kb: int
    linesize_words: int

    @property
    def total_bytes(self) -> int:
        return self.sets * self.setsize_kb * 1024

    @property
    def linesize_bytes(self) -> int:
        return self.linesize_words * 4

    @property
    def lines_per_set(self) -> int:
        return (self.setsize_kb * 1024) // self.linesize_bytes

    @property
    def total_lines(self) -> int:
        return self.sets * self.lines_per_set


class SynthesisModel:
    """Maps configurations to LUT/BRAM utilisation on an FPGA device."""

    # -- BRAM calibration constants (block RAMs) ----------------------------------
    #: Tag entry width in bytes (tag + valid/dirty bits padded to a word).
    TAG_ENTRY_BYTES = 4
    #: Block RAMs used by everything that is not a cache or the register
    #: file: on-chip AHB RAM, boot PROM image, DSU trace buffer.  Chosen so
    #: the base configuration lands at 82 BRAMs as reported in the paper.
    FIXED_BRAM = 60

    # -- LUT calibration constants (look-up tables) ----------------------------------
    #: Everything outside the knobs below: integer-unit datapath, AHB/APB
    #: bus fabric, memory controller, UART/IRQ/timer peripherals, DSU.
    FIXED_LUTS = 9122
    CACHE_CONTROLLER_LUTS = 1400      # per cache: controller + compare for 1 set
    CACHE_EXTRA_SET_LUTS = 180        # per additional set: compare + way mux
    CACHE_LRU_LUTS = 220              # LRU bookkeeping
    CACHE_LRR_LUTS = 90               # LRR (FIFO) bookkeeping
    CACHE_SHORT_LINE_LUTS = 60        # 4-word lines: more tag bits / fill control
    DCACHE_FAST_READ_LUTS = 80
    DCACHE_FAST_WRITE_LUTS = 120
    FAST_JUMP_LUTS = 300
    ICC_HOLD_LUTS = 120
    FAST_DECODE_LUTS = 250
    LOAD_DELAY1_LUTS = 140            # single-cycle load needs extra forwarding
    REGISTER_WINDOW_LUTS = 55         # control logic per window beyond the default 8
    BASE_REGISTER_WINDOWS = 8
    NO_INFER_LUTS = 150               # explicit mult/div instantiation is less optimal
    MULTIPLIER_LUTS: Dict[str, int] = {
        Multiplier.NONE: 0,
        Multiplier.ITERATIVE: 500,
        Multiplier.M16X16: 1500,
        Multiplier.M16X16_PIPE: 1560,
        Multiplier.M32X8: 1680,
        Multiplier.M32X16: 1760,
        Multiplier.M32X32: 1900,
    }
    DIVIDER_LUTS: Dict[str, int] = {
        Divider.RADIX2: 760,
        Divider.NONE: 0,
    }

    def __init__(self, device: FpgaDevice = XCV2000E):
        self.device = device

    # -- public API ------------------------------------------------------------------

    def synthesize(self, config: Configuration) -> ResourceReport:
        """Synthesise ``config`` and return its resource report.

        The report is not checked against the device capacity; callers
        that need a buildable configuration should use
        :meth:`~repro.fpga.report.ResourceReport.require_fits`.
        """
        lut_breakdown = self._lut_breakdown(config)
        bram_breakdown = self._bram_breakdown(config)
        return ResourceReport(
            device=self.device,
            luts=sum(lut_breakdown.values()),
            brams=sum(bram_breakdown.values()),
            lut_breakdown=lut_breakdown,
            bram_breakdown=bram_breakdown,
        )

    def fits(self, config: Configuration) -> bool:
        """True when ``config`` fits on the device."""
        return self.synthesize(config).fits()

    # -- BRAM model ----------------------------------------------------------------------

    def cache_data_brams(self, geometry: CacheGeometry) -> int:
        """Block RAMs holding the cache data arrays."""
        return math.ceil(geometry.total_bytes / BRAM_BYTES)

    def cache_tag_brams(self, geometry: CacheGeometry) -> int:
        """Block RAMs holding the cache tag arrays."""
        tag_bytes = geometry.total_lines * self.TAG_ENTRY_BYTES
        return max(1, math.ceil(tag_bytes / BRAM_BYTES))

    def cache_brams(self, geometry: CacheGeometry) -> int:
        """Total block RAMs of one cache (data + tags)."""
        return self.cache_data_brams(geometry) + self.cache_tag_brams(geometry)

    def register_file_brams(self, windows: int) -> int:
        """Block RAMs of the windowed register file (dual-ported)."""
        registers = windows * 16 + 8
        bytes_needed = registers * 4
        return 2 * math.ceil(bytes_needed / BRAM_BYTES)

    def _bram_breakdown(self, config: Configuration) -> Dict[str, int]:
        icache = CacheGeometry(
            config.icache_sets, config.icache_setsize_kb, config.icache_linesize_words)
        dcache = CacheGeometry(
            config.dcache_sets, config.dcache_setsize_kb, config.dcache_linesize_words)
        return {
            "icache": self.cache_brams(icache),
            "dcache": self.cache_brams(dcache),
            "register_file": self.register_file_brams(config.register_windows),
            "fixed": self.FIXED_BRAM,
        }

    # -- LUT model ------------------------------------------------------------------------

    def cache_luts(self, geometry: CacheGeometry, replacement: str,
                   fast_read: bool = False, fast_write: bool = False) -> int:
        """LUTs of one cache controller."""
        luts = self.CACHE_CONTROLLER_LUTS
        luts += self.CACHE_EXTRA_SET_LUTS * (geometry.sets - 1)
        if replacement == Replacement.LRU:
            luts += self.CACHE_LRU_LUTS
        elif replacement == Replacement.LRR:
            luts += self.CACHE_LRR_LUTS
        if geometry.linesize_words == 4:
            luts += self.CACHE_SHORT_LINE_LUTS
        if fast_read:
            luts += self.DCACHE_FAST_READ_LUTS
        if fast_write:
            luts += self.DCACHE_FAST_WRITE_LUTS
        return luts

    def integer_unit_luts(self, config: Configuration) -> int:
        """LUTs of the integer unit excluding multiplier and divider."""
        luts = 0
        if config.fast_jump:
            luts += self.FAST_JUMP_LUTS
        if config.icc_hold:
            luts += self.ICC_HOLD_LUTS
        if config.fast_decode:
            luts += self.FAST_DECODE_LUTS
        if config.load_delay == 1:
            luts += self.LOAD_DELAY1_LUTS
        extra_windows = max(0, config.register_windows - self.BASE_REGISTER_WINDOWS)
        luts += self.REGISTER_WINDOW_LUTS * extra_windows
        return luts

    def _lut_breakdown(self, config: Configuration) -> Dict[str, int]:
        icache = CacheGeometry(
            config.icache_sets, config.icache_setsize_kb, config.icache_linesize_words)
        dcache = CacheGeometry(
            config.dcache_sets, config.dcache_setsize_kb, config.dcache_linesize_words)
        mult_luts = self.MULTIPLIER_LUTS[config.multiplier]
        div_luts = self.DIVIDER_LUTS[config.divider]
        infer_luts = 0 if config.infer_mult_div else self.NO_INFER_LUTS
        return {
            "icache": self.cache_luts(icache, config.icache_replacement),
            "dcache": self.cache_luts(
                dcache, config.dcache_replacement,
                fast_read=config.dcache_fast_read, fast_write=config.dcache_fast_write),
            "integer_unit": self.integer_unit_luts(config),
            "multiplier": mult_luts,
            "divider": div_luts,
            "synthesis_options": infer_luts,
            "fixed": self.FIXED_LUTS,
        }

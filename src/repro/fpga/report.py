"""Synthesis resource reports.

A :class:`ResourceReport` is the output of "building" a processor
configuration: absolute LUT and BRAM counts, a per-component breakdown and
utilisation percentages relative to the target device.  The paper works
almost exclusively in utilisation percentages (its chip-resource cost is
``%LUT + %BRAM``), so the report exposes those directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.fpga.device import FpgaDevice
from repro.errors import ResourceError

__all__ = ["ResourceReport"]


@dataclass(frozen=True)
class ResourceReport:
    """Resource utilisation of one synthesised processor configuration."""

    device: FpgaDevice
    luts: int
    brams: int
    lut_breakdown: Mapping[str, int] = field(default_factory=dict)
    bram_breakdown: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.luts < 0 or self.brams < 0:
            raise ResourceError("resource counts cannot be negative")

    # -- utilisation --------------------------------------------------------------

    @property
    def lut_percent(self) -> float:
        """LUT utilisation as a percentage of the device capacity."""
        return self.device.lut_percent(self.luts)

    @property
    def bram_percent(self) -> float:
        """BRAM utilisation as a percentage of the device capacity."""
        return self.device.bram_percent(self.brams)

    @property
    def chip_cost(self) -> float:
        """The paper's unified chip-resource cost: %LUT + %BRAM."""
        return self.lut_percent + self.bram_percent

    def fits(self) -> bool:
        """True when the configuration fits on the device."""
        return self.device.fits(self.luts, self.brams)

    def require_fits(self) -> "ResourceReport":
        """Return ``self`` or raise :class:`ResourceError` when over capacity."""
        if not self.fits():
            raise ResourceError(
                f"configuration does not fit on {self.device.name}: "
                f"{self.luts} LUTs of {self.device.luts}, "
                f"{self.brams} BRAMs of {self.device.brams}"
            )
        return self

    # -- comparisons ------------------------------------------------------------------

    def delta_percent(self, base: "ResourceReport") -> Dict[str, float]:
        """Percentage-point deltas relative to a base report.

        Returns the paper's ``lambda`` (LUT) and ``beta`` (BRAM) values for
        this configuration when ``base`` is the base configuration.
        """
        return {
            "lut": self.lut_percent - base.lut_percent,
            "bram": self.bram_percent - base.bram_percent,
        }

    def summary(self) -> str:
        """One-line human readable summary."""
        return (
            f"{self.luts} LUTs ({self.lut_percent:.1f}%), "
            f"{self.brams} BRAMs ({self.bram_percent:.1f}%) on {self.device.name}"
        )

"""FPGA device model, analytic synthesis cost model and power/energy estimation."""

from repro.fpga.device import BRAM_BYTES, FpgaDevice, XCV2000E
from repro.fpga.report import ResourceReport
from repro.fpga.synthesis import CacheGeometry, SynthesisModel
from repro.fpga.power import EnergyEstimate, PowerModel, energy_cost_percent

__all__ = [
    "BRAM_BYTES",
    "FpgaDevice",
    "XCV2000E",
    "ResourceReport",
    "CacheGeometry",
    "SynthesisModel",
    "EnergyEstimate",
    "PowerModel",
    "energy_cost_percent",
]

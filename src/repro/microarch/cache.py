"""Set-associative cache models (LEON instruction and data caches).

Terminology follows LEON/the paper: a cache is organised as ``sets``
*ways* (1 to 4, 1 meaning direct mapped), each way ("set" in LEON speak)
holding ``setsize_kb`` kilobytes split into lines of ``linesize_words``
32-bit words.  Three replacement policies are supported: random (an LFSR
in the real hardware, a deterministic PRNG here), LRR (least recently
replaced, i.e. FIFO, only defined for 2 ways) and LRU.

The data cache is write-through with no write-allocate, which matches
LEON2: stores update the cache on a hit and go straight to memory on a
miss without fetching the line, so only *load* misses stall the pipeline
for a line fill.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Optional

import numpy as np

from repro.config.configuration import Configuration
from repro.config.leon_space import Replacement
from repro.errors import ConfigurationError

__all__ = ["CacheConfig", "CacheStatistics", "Cache"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of one cache."""

    ways: int
    setsize_kb: int
    linesize_words: int
    replacement: str = Replacement.RANDOM
    seed: int = 0xC0FFEE

    def __post_init__(self) -> None:
        if self.ways < 1:
            raise ConfigurationError("cache must have at least one way")
        if self.setsize_kb < 1:
            raise ConfigurationError("cache way size must be at least 1 KB")
        if self.linesize_words < 1:
            raise ConfigurationError("cache line must contain at least one word")
        if self.replacement not in Replacement.ALL:
            raise ConfigurationError(f"unknown replacement policy {self.replacement!r}")
        # Note: LEON restricts LRR to 2-way and LRU to multi-way caches.  That
        # hardware validity rule lives in repro.config.rules and in the BINLP
        # coupling constraints; the simulator itself degrades gracefully (with a
        # single way every policy is equivalent), which lets the one-factor
        # campaign measure replacement-policy perturbations in isolation.
        if self.lines_per_way < 1:
            raise ConfigurationError("cache way smaller than one line")

    # cached: the replay planners read these once per job on hot sweep
    # paths (equality/hash/pickling stay field-only on a frozen dataclass)
    @cached_property
    def linesize_bytes(self) -> int:
        return self.linesize_words * 4

    @cached_property
    def lines_per_way(self) -> int:
        return (self.setsize_kb * 1024) // self.linesize_bytes

    @property
    def total_bytes(self) -> int:
        return self.ways * self.setsize_kb * 1024

    @classmethod
    def icache_from(cls, config: Configuration) -> "CacheConfig":
        """Instruction-cache geometry from a full processor configuration."""
        return cls(
            ways=config.icache_sets,
            setsize_kb=config.icache_setsize_kb,
            linesize_words=config.icache_linesize_words,
            replacement=config.icache_replacement,
        )

    @classmethod
    def dcache_from(cls, config: Configuration) -> "CacheConfig":
        """Data-cache geometry from a full processor configuration."""
        return cls(
            ways=config.dcache_sets,
            setsize_kb=config.dcache_setsize_kb,
            linesize_words=config.dcache_linesize_words,
            replacement=config.dcache_replacement,
        )


@dataclass(frozen=True)
class CacheStatistics:
    """Hit/miss counts of one cache simulation."""

    accesses: int
    read_accesses: int
    write_accesses: int
    read_misses: int
    write_misses: int

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def read_miss_rate(self) -> float:
        return self.read_misses / self.read_accesses if self.read_accesses else 0.0


class Cache:
    """Trace-driven set-associative cache simulator."""

    def __init__(self, config: CacheConfig):
        self.config = config
        lines = config.lines_per_way
        ways = config.ways
        # tag store: -1 means invalid
        self._tags = np.full((lines, ways), -1, dtype=np.int64)
        # per-line replacement state: LRU ages or LRR/FIFO pointer
        self._age = np.zeros((lines, ways), dtype=np.int64)
        self._fifo = np.zeros(lines, dtype=np.int64)
        self._rng = np.random.default_rng(config.seed)
        self._tick = 0

    # -- single access -----------------------------------------------------------------

    def access(self, address: int, *, write: bool = False) -> bool:
        """Access one address; returns ``True`` on a hit.

        Write misses do not allocate (write-through, no write-allocate).
        """
        cfg = self.config
        line_number = address // cfg.linesize_bytes
        index = line_number % cfg.lines_per_way
        tag = line_number // cfg.lines_per_way
        tags_row = self._tags[index]
        self._tick += 1

        for way in range(cfg.ways):
            if tags_row[way] == tag:
                if cfg.replacement == Replacement.LRU:
                    self._age[index, way] = self._tick
                return True

        # miss
        if write:
            return False
        self._fill(index, tag)
        return False

    def _fill(self, index: int, tag: int) -> None:
        cfg = self.config
        tags_row = self._tags[index]
        # prefer an invalid way
        for way in range(cfg.ways):
            if tags_row[way] == -1:
                tags_row[way] = tag
                self._age[index, way] = self._tick
                if cfg.replacement == Replacement.LRR:
                    self._fifo[index] = (way + 1) % cfg.ways
                return
        if cfg.replacement == Replacement.RANDOM:
            victim = int(self._rng.integers(cfg.ways)) if cfg.ways > 1 else 0
        elif cfg.replacement == Replacement.LRR:
            victim = int(self._fifo[index])
            self._fifo[index] = (victim + 1) % cfg.ways
        else:  # LRU
            victim = int(np.argmin(self._age[index]))
        tags_row[victim] = tag
        self._age[index, victim] = self._tick

    # -- trace simulation ----------------------------------------------------------------

    def simulate(
        self,
        addresses: np.ndarray,
        writes: Optional[np.ndarray] = None,
        *,
        vectorized: Optional[bool] = None,
    ) -> CacheStatistics:
        """Simulate a full address trace and return hit/miss statistics.

        Parameters
        ----------
        addresses:
            Effective byte addresses in access order.
        writes:
            Optional boolean array aligned with ``addresses``; ``True``
            marks a store.  When omitted every access is a read (the
            instruction-cache case).
        vectorized:
            ``None`` (default) dispatches to the columnar kernel layer
            (:mod:`repro.microarch.cachekernel`); ``False`` forces the
            scalar per-access reference loop (the oracle of the kernel
            property tests and the hot-path benchmarks).
        """
        cfg = self.config
        if vectorized is not False:
            from repro.microarch.cachekernel import decode_trace

            view = decode_trace(addresses, writes, linesize_bytes=cfg.linesize_bytes)
            return self.simulate_view(view)

        lines_per_way = cfg.lines_per_way
        line_numbers = np.asarray(addresses, dtype=np.int64) // cfg.linesize_bytes
        indices = line_numbers % lines_per_way
        tags = line_numbers // lines_per_way
        if writes is None:
            writes_arr = np.zeros(len(line_numbers), dtype=bool)
        else:
            writes_arr = np.asarray(writes, dtype=bool)
            if writes_arr.shape != line_numbers.shape:
                raise ConfigurationError("writes mask must match the address trace length")

        read_misses = 0
        write_misses = 0
        write_total = int(np.count_nonzero(writes_arr))

        # local bindings for speed in the hot loop
        tag_store = self._tags
        age = self._age
        fifo = self._fifo
        ways = cfg.ways
        replacement = cfg.replacement
        lru = replacement == Replacement.LRU
        lrr = replacement == Replacement.LRR
        rng = self._rng
        tick = self._tick
        # pre-draw random victims to keep the loop allocation free
        random_victims = (
            rng.integers(0, ways, size=len(line_numbers)) if ways > 1 else None)

        for i in range(len(line_numbers)):
            index = indices[i]
            tag = tags[i]
            row = tag_store[index]
            tick += 1
            hit = False
            for way in range(ways):
                if row[way] == tag:
                    hit = True
                    if lru:
                        age[index, way] = tick
                    break
            if hit:
                continue
            if writes_arr[i]:
                write_misses += 1
                continue  # no write allocate
            read_misses += 1
            # fill: invalid way first, then policy victim
            victim = -1
            for way in range(ways):
                if row[way] == -1:
                    victim = way
                    break
            if victim < 0:
                if lru:
                    victim = int(np.argmin(age[index]))
                elif lrr:
                    victim = int(fifo[index])
                    fifo[index] = (victim + 1) % ways
                else:
                    victim = int(random_victims[i]) if random_victims is not None else 0
            row[victim] = tag
            age[index, victim] = tick

        self._tick = tick
        accesses = len(line_numbers)
        return CacheStatistics(
            accesses=accesses,
            read_accesses=accesses - write_total,
            write_accesses=write_total,
            read_misses=read_misses,
            write_misses=write_misses,
        )

    # -- columnar kernel dispatch --------------------------------------------------------

    def simulate_view(self, view) -> CacheStatistics:
        """Replay a pre-decoded :class:`~repro.microarch.cachekernel.ColumnarTrace`.

        This is the batch-friendly entry point: callers that evaluate
        many geometries against one trace decode it once per line size
        (see :meth:`ExecutionTrace.columnar_view
        <repro.microarch.trace.ExecutionTrace.columnar_view>`) and hand
        the shared view to each cache.  The replay mutates this cache's
        tag/age/FIFO stores and PRNG exactly like the scalar loop, so
        interleaving ``simulate`` and ``simulate_view`` calls is sound.
        """
        from repro.microarch import cachekernel

        state = cachekernel.KernelState(self._tags, self._age, self._fifo, self._tick)
        statistics = cachekernel.replay(view, self.config, state=state, rng=self._rng)
        self._tick = state.tick
        return statistics

    def simulate_phases(self, phases) -> "list[CacheStatistics]":
        """Warm-chained replay of a sequence of program phases.

        ``phases`` is a sequence of either pre-decoded
        :class:`~repro.microarch.cachekernel.ColumnarTrace` views or
        ``(addresses, writes)`` pairs (``writes`` may be ``None``).  Each
        phase replays against the cache state the previous one left
        behind, so the per-phase statistics describe a continuously-warm
        cache; their totals are bit-identical to one :meth:`simulate`
        call over the concatenated trace.
        """
        from repro.microarch.cachekernel import ColumnarTrace, decode_trace

        statistics = []
        for phase in phases:
            if isinstance(phase, ColumnarTrace):
                view = phase
            else:
                addresses, writes = phase
                view = decode_trace(
                    addresses, writes, linesize_bytes=self.config.linesize_bytes)
            statistics.append(self.simulate_view(view))
        return statistics

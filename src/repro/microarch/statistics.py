"""Execution statistics (the Liquid Architecture "statistics module").

The paper relies on a hardware-based, non-intrusive, cycle-accurate
profiler to count the clock cycles an application takes on a given
processor configuration.  :class:`ExecutionStatistics` plays that role
here: it is the result of replaying an execution trace against one
microarchitecture configuration and contains the cycle count, a breakdown
of where the cycles went and the cache statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.config.configuration import Configuration
from repro.microarch.cache import CacheStatistics

__all__ = ["ExecutionStatistics", "DEFAULT_CLOCK_MHZ", "cycles_to_seconds"]

#: LEON2 on the VirtexE platform of the paper runs at roughly 25 MHz.
DEFAULT_CLOCK_MHZ = 25.0


def cycles_to_seconds(cycles: int, clock_mhz: float = DEFAULT_CLOCK_MHZ) -> float:
    """Convert a cycle count to seconds at the given clock frequency."""
    return cycles / (clock_mhz * 1e6)


@dataclass(frozen=True)
class ExecutionStatistics:
    """Cycle-accurate profile of one (workload, configuration) pair."""

    workload: str
    configuration: Configuration
    instruction_count: int
    cycles: int
    cycle_breakdown: Mapping[str, int] = field(default_factory=dict)
    icache: CacheStatistics | None = None
    dcache: CacheStatistics | None = None
    window_overflows: int = 0
    window_underflows: int = 0

    # -- derived metrics -------------------------------------------------------------

    @property
    def cpi(self) -> float:
        """Average cycles per instruction."""
        return self.cycles / self.instruction_count if self.instruction_count else 0.0

    @property
    def seconds(self) -> float:
        """Runtime in seconds at the default platform clock."""
        return cycles_to_seconds(self.cycles)

    @property
    def icache_miss_rate(self) -> float:
        return self.icache.miss_rate if self.icache else 0.0

    @property
    def dcache_miss_rate(self) -> float:
        return self.dcache.miss_rate if self.dcache else 0.0

    def runtime_delta_percent(self, base: "ExecutionStatistics") -> float:
        """Runtime change relative to a base profile, in percent.

        This is the paper's rho: negative values mean the configuration is
        faster than the base configuration.
        """
        if base.cycles == 0:
            return 0.0
        return 100.0 * (self.cycles - base.cycles) / base.cycles

    def breakdown_fractions(self) -> Dict[str, float]:
        """Cycle-breakdown categories as fractions of total cycles."""
        total = max(1, self.cycles)
        return {key: value / total for key, value in self.cycle_breakdown.items()}

    def summary(self) -> str:
        """One-line human readable summary used by examples and reports."""
        return (
            f"{self.workload}: {self.cycles} cycles, CPI {self.cpi:.2f}, "
            f"icache miss {100 * self.icache_miss_rate:.2f}%, "
            f"dcache miss {100 * self.dcache_miss_rate:.2f}%"
        )

"""Processor model: caches + pipeline timing for one configuration.

:class:`ProcessorModel` is the simulation-side equivalent of one
synthesised LEON bitstream: instantiate it with a
:class:`~repro.config.Configuration` and it can evaluate execution traces
(trace-driven, fast) or run whole programs (functional simulation plus
timing, convenient for tests and examples).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config.configuration import Configuration
from repro.isa.program import Program
from repro.microarch.cache import Cache, CacheConfig, CacheStatistics
from repro.microarch.functional import FunctionalSimulator, SimulationResult
from repro.microarch.statistics import ExecutionStatistics
from repro.microarch.timing import TimingModel, TimingParameters
from repro.microarch.trace import ExecutionTrace

__all__ = ["ProcessorModel", "ProgramRun"]


@dataclass(frozen=True)
class ProgramRun:
    """Functional result plus cycle-accurate statistics of one program run."""

    functional: SimulationResult
    statistics: ExecutionStatistics


class ProcessorModel:
    """A LEON-like processor instantiated with one configuration."""

    def __init__(
        self,
        config: Configuration,
        timing_parameters: Optional[TimingParameters] = None,
    ):
        self.config = config
        self.timing_parameters = timing_parameters or TimingParameters()
        self._timing = TimingModel(config, self.timing_parameters)

    # -- cache construction -------------------------------------------------------------

    def instruction_cache(self) -> Cache:
        """A fresh instruction cache matching this configuration."""
        return Cache(CacheConfig.icache_from(self.config))

    def data_cache(self) -> Cache:
        """A fresh data cache matching this configuration."""
        return Cache(CacheConfig.dcache_from(self.config))

    # -- evaluation -----------------------------------------------------------------------

    def simulate_caches(self, trace: ExecutionTrace) -> tuple[CacheStatistics, CacheStatistics]:
        """Run the instruction and data caches over a trace."""
        icache_stats = self.instruction_cache().simulate(trace.pcs)
        dcache_stats = self.data_cache().simulate(trace.data_addresses, trace.data_is_write)
        return icache_stats, dcache_stats

    def evaluate(
        self,
        trace: ExecutionTrace,
        cache_stats: Optional[tuple[CacheStatistics, CacheStatistics]] = None,
    ) -> ExecutionStatistics:
        """Cycle count of ``trace`` on this configuration.

        ``cache_stats`` allows callers (the measurement platform) to reuse
        memoised cache simulations, since many configurations share the
        same cache geometry.
        """
        icache_stats, dcache_stats = cache_stats or self.simulate_caches(trace)
        return self._timing.evaluate(trace, icache_stats, dcache_stats)

    def run_program(self, program: Program) -> ProgramRun:
        """Functionally execute ``program`` and profile it on this configuration."""
        functional = FunctionalSimulator(program).run()
        statistics = self.evaluate(functional.trace)
        return ProgramRun(functional=functional, statistics=statistics)

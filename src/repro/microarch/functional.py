"""Functional (architecture-level) simulator.

Executes a :class:`~repro.isa.program.Program` instruction by instruction,
producing (a) the architectural outcome -- final registers and memory --
used by the workload verification hooks, and (b) a configuration-
independent :class:`~repro.microarch.trace.ExecutionTrace` that the timing
model replays for every candidate microarchitecture (see
:mod:`repro.microarch.timing`).

The simulator corresponds to the "direct execution" of applications on the
Liquid Architecture platform in the paper: it is a black box that needs no
knowledge of the application's internals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import SimulationError
from repro.isa.encoding import INSTRUCTION_BYTES
from repro.isa.instructions import Instruction, Op, OpClass
from repro.isa.program import Program
from repro.isa.registers import RegisterFile, register_number
from repro.microarch.memory import Memory
from repro.microarch.trace import ExecutionTrace, TraceBuilder

__all__ = ["FunctionalSimulator", "SimulationResult"]

_MASK32 = 0xFFFFFFFF


def _signed(value: int) -> int:
    """Interpret a 32-bit pattern as a signed integer."""
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


@dataclass
class SimulationResult:
    """Outcome of one functional simulation."""

    trace: ExecutionTrace
    registers: RegisterFile
    memory: Memory
    instruction_count: int
    halted: bool
    max_window_depth: int

    def register(self, name: str) -> int:
        """Read a register of the final architectural state by name."""
        return self.registers.read(register_number(name))


class FunctionalSimulator:
    """Executes programs and records execution traces."""

    def __init__(self, program: Program, *, max_instructions: int = 2_000_000):
        self.program = program
        self.max_instructions = max_instructions

    # -- public API ------------------------------------------------------------------

    def run(self, *, trace_name: Optional[str] = None) -> SimulationResult:
        """Execute the program until HALT (or the instruction budget is hit)."""
        program = self.program
        layout = program.layout
        memory = Memory.for_program(program)
        regs = RegisterFile()
        regs.write(register_number("sp"), layout.stack_top)
        regs.write(register_number("fp"), layout.stack_top)

        builder = TraceBuilder(trace_name or program.name)
        pc = program.entry_point
        halted = False
        executed = 0

        # condition codes
        icc_n = icc_z = icc_v = icc_c = False
        # hazard bookkeeping
        pending_load_index = -1
        pending_load_rd = -1
        previous_sets_icc = False

        instructions = program.instructions
        text_base = layout.text_base
        text_end = text_base + len(instructions) * INSTRUCTION_BYTES

        while not halted:
            if executed >= self.max_instructions:
                raise SimulationError(
                    f"instruction budget of {self.max_instructions} exceeded in "
                    f"{program.name!r} (infinite loop?)")
            if pc < text_base or pc >= text_end or pc % INSTRUCTION_BYTES:
                raise SimulationError(f"program counter {pc:#x} left the text segment")
            instr = instructions[(pc - text_base) // INSTRUCTION_BYTES]
            op = instr.op
            executed += 1
            next_pc = pc + INSTRUCTION_BYTES

            # ---- load-use hazard detection (pipeline-order dependency) ----------
            if pending_load_index >= 0:
                if pending_load_rd in instr.reads_registers:
                    builder.mark_load_use(pending_load_index)
                pending_load_index = -1

            # ---- operand fetch --------------------------------------------------
            if instr.imm is not None:
                op2 = instr.imm & _MASK32
                op2_signed = instr.imm
            elif instr.rs2 is not None:
                op2 = regs.read(instr.rs2)
                op2_signed = _signed(op2)
            else:
                op2 = 0
                op2_signed = 0
            rs1_val = regs.read(instr.rs1)
            rs1_signed = _signed(rs1_val)

            # ---- execute ---------------------------------------------------------
            if op in (Op.ADD, Op.ADDCC):
                result = (rs1_val + op2) & _MASK32
                regs.write(instr.rd, result)
                if op is Op.ADDCC:
                    icc_n = bool(result & 0x8000_0000)
                    icc_z = result == 0
                    icc_v = bool((~(rs1_val ^ op2) & (rs1_val ^ result)) & 0x8000_0000)
                    icc_c = (rs1_val + op2) > _MASK32
                index = builder.append(pc, OpClass.ALU)
            elif op in (Op.SUB, Op.SUBCC):
                result = (rs1_val - op2) & _MASK32
                regs.write(instr.rd, result)
                if op is Op.SUBCC:
                    icc_n = bool(result & 0x8000_0000)
                    icc_z = result == 0
                    icc_v = bool(((rs1_val ^ op2) & (rs1_val ^ result)) & 0x8000_0000)
                    icc_c = op2 > rs1_val
                index = builder.append(pc, OpClass.ALU)
            elif op in (Op.AND, Op.ANDCC, Op.OR, Op.ORCC, Op.XOR, Op.XORCC):
                if op in (Op.AND, Op.ANDCC):
                    result = rs1_val & op2
                elif op in (Op.OR, Op.ORCC):
                    result = rs1_val | op2
                else:
                    result = rs1_val ^ op2
                regs.write(instr.rd, result)
                if instr.sets_icc:
                    icc_n = bool(result & 0x8000_0000)
                    icc_z = result == 0
                    icc_v = icc_c = False
                index = builder.append(pc, OpClass.ALU)
            elif op in (Op.SLL, Op.SRL, Op.SRA):
                shift = op2 & 31
                if op is Op.SLL:
                    result = (rs1_val << shift) & _MASK32
                elif op is Op.SRL:
                    result = rs1_val >> shift
                else:
                    result = (rs1_signed >> shift) & _MASK32
                regs.write(instr.rd, result)
                index = builder.append(pc, OpClass.ALU)
            elif op is Op.SETHI:
                regs.write(instr.rd, (instr.imm << 11) & _MASK32)
                index = builder.append(pc, OpClass.SETHI)
            elif op in (Op.UMUL, Op.SMUL):
                if op is Op.UMUL:
                    result = (rs1_val * op2) & _MASK32
                else:
                    result = (rs1_signed * op2_signed) & _MASK32
                regs.write(instr.rd, result)
                index = builder.append(pc, OpClass.MUL)
            elif op in (Op.UDIV, Op.SDIV):
                if op2 == 0:
                    raise SimulationError(f"division by zero at pc {pc:#x} in {program.name!r}")
                if op is Op.UDIV:
                    result = (rs1_val // op2) & _MASK32
                else:
                    quotient = abs(rs1_signed) // abs(op2_signed)
                    if (rs1_signed < 0) != (op2_signed < 0):
                        quotient = -quotient
                    result = quotient & _MASK32
                regs.write(instr.rd, result)
                index = builder.append(pc, OpClass.DIV)
            elif op in (Op.LD, Op.LDUB, Op.LDUH, Op.LDSB, Op.LDSH):
                address = (rs1_val + op2_signed) & _MASK32
                if op is Op.LD:
                    value = memory.load_word(address)
                elif op is Op.LDUB:
                    value = memory.load_byte(address)
                elif op is Op.LDUH:
                    value = memory.load_half(address)
                elif op is Op.LDSB:
                    value = memory.load_byte(address)
                    value = value - 0x100 if value & 0x80 else value
                else:
                    value = memory.load_half(address)
                    value = value - 0x1_0000 if value & 0x8000 else value
                regs.write(instr.rd, value)
                index = builder.append(pc, OpClass.LOAD, address)
                pending_load_index = index
                pending_load_rd = instr.rd
            elif op in (Op.ST, Op.STB, Op.STH):
                address = (rs1_val + op2_signed) & _MASK32
                value = regs.read(instr.rd)
                if op is Op.ST:
                    memory.store_word(address, value)
                elif op is Op.STB:
                    memory.store_byte(address, value)
                else:
                    memory.store_half(address, value)
                index = builder.append(pc, OpClass.STORE, address)
            elif op is Op.BRANCH:
                taken = self._condition(instr.condition, icc_n, icc_z, icc_v, icc_c)
                index = builder.append(
                    pc, OpClass.BRANCH_TAKEN if taken else OpClass.BRANCH_UNTAKEN)
                if previous_sets_icc:
                    builder.mark_cc_hazard(index)
                if taken:
                    next_pc = instr.target
            elif op is Op.CALL:
                regs.write(register_number("o7"), pc + INSTRUCTION_BYTES)
                index = builder.append(pc, OpClass.CALL)
                next_pc = instr.target
            elif op is Op.JMPL:
                regs.write(instr.rd, pc + INSTRUCTION_BYTES)
                index = builder.append(pc, OpClass.JUMP)
                next_pc = (rs1_val + op2_signed) & _MASK32
            elif op is Op.RETL:
                index = builder.append(pc, OpClass.JUMP)
                next_pc = regs.read(register_number("o7"))
            elif op is Op.RET:
                index = builder.append(pc, OpClass.JUMP)
                next_pc = regs.read(register_number("i7"))
                regs.restore_window()
                builder.window_event(-1)
            elif op is Op.SAVE:
                value = (rs1_val + op2_signed) & _MASK32
                regs.save_window()
                regs.write(instr.rd, value)
                builder.window_event(+1)
                index = builder.append(pc, OpClass.SAVE)
            elif op is Op.RESTORE:
                value = (rs1_val + op2) & _MASK32
                regs.restore_window()
                regs.write(instr.rd, value)
                builder.window_event(-1)
                index = builder.append(pc, OpClass.RESTORE)
            elif op is Op.NOP:
                index = builder.append(pc, OpClass.NOP)
            elif op is Op.HALT:
                builder.append(pc, OpClass.HALT)
                halted = True
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unimplemented opcode {op!r}")

            previous_sets_icc = instr.sets_icc
            pc = next_pc

        return SimulationResult(
            trace=builder.build(),
            registers=regs,
            memory=memory,
            instruction_count=executed,
            halted=halted,
            max_window_depth=regs.max_depth,
        )

    # -- condition codes -------------------------------------------------------------------

    @staticmethod
    def _condition(condition: str, n: bool, z: bool, v: bool, c: bool) -> bool:
        """Evaluate a SPARC integer condition code predicate."""
        if condition == "a":
            return True
        if condition == "n":
            return False
        if condition == "e":
            return z
        if condition == "ne":
            return not z
        if condition == "g":
            return not (z or (n != v))
        if condition == "le":
            return z or (n != v)
        if condition == "ge":
            return not (n != v)
        if condition == "l":
            return n != v
        if condition == "gu":
            return not (c or z)
        if condition == "leu":
            return c or z
        if condition == "cc":
            return not c
        if condition == "cs":
            return c
        if condition == "pos":
            return not n
        if condition == "neg":
            return n
        raise SimulationError(f"unknown branch condition {condition!r}")

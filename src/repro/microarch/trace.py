"""Execution traces produced by the functional simulator.

The key property that makes the reproduction fast enough to run hundreds
of configuration evaluations is that the *functional* behaviour of a
program is independent of the microarchitecture configuration: caches,
multiplier implementations and pipeline options change *when* things
happen, never *what* happens.  The functional simulator therefore runs a
workload once and records an :class:`ExecutionTrace`; the timing model
then replays the trace against any number of configurations
(trace-driven simulation).

Traces are stored as NumPy arrays so the timing model can compute most of
its cycle terms with vectorised reductions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.isa.instructions import OpClass

__all__ = [
    "ExecutionTrace",
    "TraceBuilder",
    "TraceFeatures",
    "concatenate_traces",
    "slice_trace",
]


@dataclass(frozen=True)
class TraceFeatures:
    """Configuration-independent summary of a trace (one feature vector).

    These are exactly the reductions the timing model consumes: the
    per-class instruction histogram and the hazard counts.  They depend
    only on the trace, never on a configuration, so a sweep computes
    them once and broadcasts them over the whole configuration grid
    (:func:`~repro.microarch.timing.evaluate_many`).
    """

    #: Number of dynamically executed instructions.
    instruction_count: int
    #: Instruction histogram indexed by :class:`~repro.isa.instructions.OpClass` value.
    class_counts: np.ndarray
    #: Loads whose immediately following instruction reads the loaded register.
    load_use_hazards: int
    #: Branches immediately preceded by a condition-code update.
    cc_branch_hazards: int

    def count(self, op_class: OpClass) -> int:
        """Executed instructions of one timing class."""
        return int(self.class_counts[op_class.value])


@dataclass(frozen=True)
class ExecutionTrace:
    """Config-independent record of one program execution."""

    #: Program counter of every executed instruction.
    pcs: np.ndarray
    #: Timing class (:class:`~repro.isa.instructions.OpClass`) of every instruction.
    op_classes: np.ndarray
    #: Effective address of loads/stores (0 elsewhere).
    mem_addrs: np.ndarray
    #: True at loads whose immediately following instruction reads the loaded register.
    load_use_hazard: np.ndarray
    #: True at branches immediately preceded by a condition-code-setting instruction.
    cc_branch_hazard: np.ndarray
    #: +1 for every SAVE, -1 for every RESTORE/RET, in program order.
    window_events: np.ndarray
    #: Name of the workload/program that produced the trace (for reports).
    name: str = "trace"
    #: Cached columnar cache-kernel views, keyed by ``(kind, linesize_bytes)``.
    _views: Dict[Tuple[str, int], object] = field(
        default_factory=dict, repr=False, compare=False)
    #: Cached derived quantities (feature vector, per-window trap counts).
    _derived: Dict[object, object] = field(
        default_factory=dict, repr=False, compare=False)

    # -- derived quantities ------------------------------------------------------------

    def __len__(self) -> int:
        return int(self.pcs.shape[0])

    @property
    def instruction_count(self) -> int:
        """Number of dynamically executed instructions."""
        return len(self)

    def class_counts(self) -> Dict[OpClass, int]:
        """Histogram of executed instructions per timing class."""
        counts = self.features().class_counts
        return {op_class: int(counts[op_class.value]) for op_class in OpClass}

    def features(self) -> TraceFeatures:
        """Memoised configuration-independent feature vector of this trace.

        The histogram and hazard reductions are a property of the trace
        alone; caching them here means a configuration sweep pays for
        them once instead of once per evaluated configuration.
        """
        features = self._derived.get("features")
        if features is None:
            features = TraceFeatures(
                instruction_count=self.instruction_count,
                class_counts=np.bincount(
                    self.op_classes, minlength=len(OpClass)).astype(np.int64),
                load_use_hazards=int(np.count_nonzero(self.load_use_hazard)),
                cc_branch_hazards=int(np.count_nonzero(self.cc_branch_hazard)),
            )
            self._derived["features"] = features
        return features

    def window_trap_counts(self, windows: int) -> Tuple[int, int]:
        """Memoised ``(overflows, underflows)`` for one window count.

        The SAVE/RESTORE event stream is configuration independent, so
        the trap walk depends only on ``windows``; the cache makes every
        configuration sharing a window count reuse one count.
        """
        key = ("window_traps", int(windows))
        counts = self._derived.get(key)
        if counts is None:
            from repro.microarch.timing import count_window_traps

            counts = count_window_traps(self.window_events, windows)
            self._derived[key] = counts
        return counts

    def has_columnar_view(self, kind: str, linesize_bytes: int) -> bool:
        """True when :meth:`columnar_view` would be answered from the cache."""
        return (kind, linesize_bytes) in self._views

    def transfer_nbytes(self) -> int:
        """Memoised byte size of the ``(pcs, data_addresses, data_is_write)`` columns.

        The arena cost model consults this on every sweep; the masked
        data columns cost milliseconds to materialise, so the size is
        computed once per trace instead of once per publish decision.
        """
        nbytes = self._derived.get("transfer_nbytes")
        if nbytes is None:
            nbytes = (self.pcs.nbytes + self.data_addresses.nbytes
                      + self.data_is_write.nbytes)
            self._derived["transfer_nbytes"] = nbytes
        return nbytes

    def count(self, op_class: OpClass) -> int:
        """Number of executed instructions of one timing class."""
        return int(np.count_nonzero(self.op_classes == op_class.value))

    @property
    def load_mask(self) -> np.ndarray:
        return self.op_classes == OpClass.LOAD.value

    @property
    def store_mask(self) -> np.ndarray:
        return self.op_classes == OpClass.STORE.value

    @property
    def memory_mask(self) -> np.ndarray:
        return self.load_mask | self.store_mask

    @property
    def load_addresses(self) -> np.ndarray:
        """Effective addresses of load instructions, in program order."""
        return self.mem_addrs[self.load_mask]

    @property
    def store_addresses(self) -> np.ndarray:
        """Effective addresses of store instructions, in program order."""
        return self.mem_addrs[self.store_mask]

    @property
    def data_addresses(self) -> np.ndarray:
        """Addresses of all data accesses (loads and stores), in program order."""
        return self.mem_addrs[self.memory_mask]

    @property
    def data_is_write(self) -> np.ndarray:
        """Write flags aligned with :attr:`data_addresses`."""
        return self.store_mask[self.memory_mask]

    def columnar_view(self, kind: str, linesize_bytes: int):
        """Shared :class:`~repro.microarch.cachekernel.ColumnarTrace` of this trace.

        ``kind`` is ``"icache"`` (instruction fetches, read-only) or
        ``"dcache"`` (data accesses with the write mask).  The decode
        depends only on the line size, so every cache geometry and
        replacement policy with that line size replays one cached view;
        this is what lets a configuration sweep decode the trace a
        handful of times instead of once per configuration.
        """
        from repro.microarch.cachekernel import decode_trace

        key = (kind, linesize_bytes)
        view = self._views.get(key)
        if view is None:
            if kind == "icache":
                view = decode_trace(self.pcs, linesize_bytes=linesize_bytes)
            elif kind == "dcache":
                view = decode_trace(
                    self.data_addresses, self.data_is_write,
                    linesize_bytes=linesize_bytes)
            else:
                raise ValueError(f"unknown cache kind {kind!r}")
            self._views[key] = view
        return view

    def mix_summary(self) -> Dict[str, float]:
        """Instruction-mix fractions used in workload characterisation reports."""
        total = max(1, self.instruction_count)
        counts = self.class_counts()
        loads = counts[OpClass.LOAD]
        stores = counts[OpClass.STORE]
        branches = counts[OpClass.BRANCH_TAKEN] + counts[OpClass.BRANCH_UNTAKEN]
        muldiv = counts[OpClass.MUL] + counts[OpClass.DIV]
        return {
            "instructions": float(total),
            "load_fraction": loads / total,
            "store_fraction": stores / total,
            "memory_fraction": (loads + stores) / total,
            "branch_fraction": branches / total,
            "muldiv_fraction": muldiv / total,
        }


def concatenate_traces(traces, name: str = "trace") -> ExecutionTrace:
    """Concatenate execution traces back to back (a phase-structured program).

    The result behaves exactly like a single program that ran the traced
    programs in sequence: instruction, address and hazard streams are
    joined in order, and the window-event streams append (each traced
    program enters and leaves at its own base window depth, so the
    concatenated SAVE/RESTORE sequence stays balanced).
    """
    traces = list(traces)
    if not traces:
        raise ValueError("cannot concatenate zero traces")
    if len(traces) == 1:
        return traces[0]
    return ExecutionTrace(
        pcs=np.concatenate([t.pcs for t in traces]),
        op_classes=np.concatenate([t.op_classes for t in traces]),
        mem_addrs=np.concatenate([t.mem_addrs for t in traces]),
        load_use_hazard=np.concatenate([t.load_use_hazard for t in traces]),
        cc_branch_hazard=np.concatenate([t.cc_branch_hazard for t in traces]),
        window_events=np.concatenate([t.window_events for t in traces]),
        name=name,
    )


def slice_trace(trace: ExecutionTrace, start: int, stop: int, name: str) -> ExecutionTrace:
    """One phase of a trace: the instructions in ``[start, stop)``.

    The slice carries everything the cache and mix views need (per-phase
    instruction, address and hazard streams).  The window-event stream is
    not positionally aligned with instructions, so phase slices carry an
    empty one -- window-trap accounting always runs on the full trace.
    """
    return ExecutionTrace(
        pcs=trace.pcs[start:stop],
        op_classes=trace.op_classes[start:stop],
        mem_addrs=trace.mem_addrs[start:stop],
        load_use_hazard=trace.load_use_hazard[start:stop],
        cc_branch_hazard=trace.cc_branch_hazard[start:stop],
        window_events=np.empty(0, dtype=np.int8),
        name=name,
    )


class TraceBuilder:
    """Accumulates per-instruction records and produces an :class:`ExecutionTrace`."""

    def __init__(self, name: str = "trace"):
        self.name = name
        self._pcs: list[int] = []
        self._op_classes: list[int] = []
        self._mem_addrs: list[int] = []
        self._load_use: list[bool] = []
        self._cc_hazard: list[bool] = []
        self._window_events: list[int] = []

    def append(self, pc: int, op_class: OpClass, mem_addr: int = 0) -> int:
        """Record one executed instruction; returns its trace index."""
        self._pcs.append(pc)
        self._op_classes.append(int(op_class))
        self._mem_addrs.append(mem_addr)
        self._load_use.append(False)
        self._cc_hazard.append(False)
        return len(self._pcs) - 1

    def mark_load_use(self, index: int) -> None:
        """Mark the load at ``index`` as having a load-use dependency."""
        self._load_use[index] = True

    def mark_cc_hazard(self, index: int) -> None:
        """Mark the branch at ``index`` as depending on the immediately preceding CC update."""
        self._cc_hazard[index] = True

    def set_op_class(self, index: int, op_class: OpClass) -> None:
        """Reclassify an instruction (used to mark taken branches)."""
        self._op_classes[index] = int(op_class)

    def window_event(self, delta: int) -> None:
        """Record a register-window push (+1) or pop (-1)."""
        self._window_events.append(delta)

    def __len__(self) -> int:
        return len(self._pcs)

    def build(self) -> ExecutionTrace:
        """Freeze the accumulated records into an immutable trace."""
        return ExecutionTrace(
            pcs=np.asarray(self._pcs, dtype=np.uint32),
            op_classes=np.asarray(self._op_classes, dtype=np.uint8),
            mem_addrs=np.asarray(self._mem_addrs, dtype=np.uint32),
            load_use_hazard=np.asarray(self._load_use, dtype=bool),
            cc_branch_hazard=np.asarray(self._cc_hazard, dtype=bool),
            window_events=np.asarray(self._window_events, dtype=np.int8),
            name=self.name,
        )

"""Cycle-level microarchitecture simulation: caches, pipeline timing, traces."""

from repro.microarch.cache import Cache, CacheConfig, CacheStatistics
from repro.microarch.cachekernel import (
    ColumnarTrace,
    decode_trace,
    replay,
    simulate_many,
)
from repro.microarch.functional import FunctionalSimulator, SimulationResult
from repro.microarch.memory import Memory
from repro.microarch.processor import ProcessorModel, ProgramRun
from repro.microarch.statistics import (
    DEFAULT_CLOCK_MHZ,
    ExecutionStatistics,
    cycles_to_seconds,
)
from repro.microarch.timing import TimingModel, TimingParameters, count_window_traps
from repro.microarch.trace import ExecutionTrace, TraceBuilder

__all__ = [
    "Cache",
    "CacheConfig",
    "CacheStatistics",
    "ColumnarTrace",
    "decode_trace",
    "replay",
    "simulate_many",
    "FunctionalSimulator",
    "SimulationResult",
    "Memory",
    "ProcessorModel",
    "ProgramRun",
    "DEFAULT_CLOCK_MHZ",
    "ExecutionStatistics",
    "cycles_to_seconds",
    "TimingModel",
    "TimingParameters",
    "count_window_traps",
    "ExecutionTrace",
    "TraceBuilder",
]

"""Byte-addressable main memory for the functional simulator.

The memory is a flat little-endian byte array sized by the program's
:class:`~repro.isa.program.MemoryLayout`.  It performs bounds and
alignment checking so buggy workload programs fail loudly instead of
corrupting the simulation, and it exposes convenience readers that the
workload verification hooks use to inspect results.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.errors import SimulationError
from repro.isa.program import MemoryLayout, Program

__all__ = ["Memory"]


class Memory:
    """Flat little-endian memory with alignment and bounds checking."""

    __slots__ = ("_data", "size")

    def __init__(self, size: int):
        if size <= 0:
            raise SimulationError("memory size must be positive")
        self.size = size
        self._data = bytearray(size)

    # -- construction ---------------------------------------------------------------

    @classmethod
    def for_program(cls, program: Program) -> "Memory":
        """A memory image with the program's data segment loaded."""
        layout: MemoryLayout = program.layout
        memory = cls(layout.memory_size)
        if program.data:
            memory.write_bytes(layout.data_base, program.data)
        return memory

    # -- bounds / alignment -------------------------------------------------------------

    def _check(self, address: int, size: int, *, aligned: bool = True) -> None:
        if address < 0 or address + size > self.size:
            raise SimulationError(
                f"memory access at {address:#x} (+{size}) outside memory of size {self.size:#x}")
        if aligned and size > 1 and address % size:
            raise SimulationError(f"misaligned {size}-byte access at {address:#x}")

    # -- word/half/byte accessors -----------------------------------------------------------

    def load_word(self, address: int) -> int:
        self._check(address, 4)
        return int.from_bytes(self._data[address:address + 4], "little")

    def load_half(self, address: int) -> int:
        self._check(address, 2)
        return int.from_bytes(self._data[address:address + 2], "little")

    def load_byte(self, address: int) -> int:
        self._check(address, 1)
        return self._data[address]

    def store_word(self, address: int, value: int) -> None:
        self._check(address, 4)
        self._data[address:address + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")

    def store_half(self, address: int, value: int) -> None:
        self._check(address, 2)
        self._data[address:address + 2] = (value & 0xFFFF).to_bytes(2, "little")

    def store_byte(self, address: int, value: int) -> None:
        self._check(address, 1)
        self._data[address] = value & 0xFF

    # -- bulk helpers (verification & program loading) -----------------------------------------

    def write_bytes(self, address: int, data: bytes) -> None:
        self._check(address, max(1, len(data)), aligned=False)
        self._data[address:address + len(data)] = data

    def read_bytes(self, address: int, length: int) -> bytes:
        self._check(address, max(1, length), aligned=False)
        return bytes(self._data[address:address + length])

    def read_words(self, address: int, count: int) -> List[int]:
        """Read ``count`` consecutive 32-bit words starting at ``address``."""
        return [self.load_word(address + 4 * i) for i in range(count)]

    def write_words(self, address: int, values: Sequence[int] | Iterable[int]) -> None:
        """Write consecutive 32-bit words starting at ``address``."""
        for i, value in enumerate(values):
            self.store_word(address + 4 * i, value)

"""Cycle-level timing model of the LEON-like integer pipeline.

The timing model replays a configuration-independent
:class:`~repro.microarch.trace.ExecutionTrace` against one
:class:`~repro.config.Configuration` and produces the cycle count the
paper's profiler would report.  Every reconfigurable parameter of the
paper's Figure 1 that affects runtime has a term here:

===========================  =====================================================
Parameter                    Timing effect
===========================  =====================================================
icache geometry/replacement  instruction-fetch miss penalty per icache miss
dcache geometry/replacement  load miss penalty per dcache read miss
dcache fast read             load hit costs 1 cycle instead of 2
dcache fast write            store costs 1 cycle instead of 2
fast jump                    taken-branch/call/jump penalty of 1 instead of 2
icc hold                     removes the 1-cycle stall of a branch that
                             immediately follows a condition-code update
fast decode                  removes the 1-cycle decode bubble of control
                             transfer, SETHI and window instructions
load delay                   1-cycle load-use interlock when set to 2
register windows             window overflow/underflow trap costs
multiplier                   latency of UMUL/SMUL
divider                      latency of UDIV/SDIV (software emulation when absent)
infer mult/div               synthesis-only option: no runtime effect
===========================  =====================================================

The absolute constants are documented class attributes of
:class:`TimingParameters`; they are chosen to give the base configuration
a CPI in the 1.3-2.5 range LEON2 exhibits on memory-bound codes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.config.configuration import Configuration
from repro.config.leon_space import Divider, Multiplier
from repro.isa.instructions import OpClass
from repro.microarch.cache import CacheStatistics
from repro.microarch.statistics import ExecutionStatistics
from repro.microarch.trace import ExecutionTrace

__all__ = ["TimingParameters", "TimingModel", "count_window_traps"]


@dataclass(frozen=True)
class TimingParameters:
    """Calibration constants of the cycle model."""

    #: Cycles from a cache miss to the first word arriving from memory.
    memory_latency: int = 6
    #: Additional cycles per word of a cache line fill.
    word_transfer: int = 1
    #: Extra cycles of a data-cache load hit without the fast-read option.
    slow_read_extra: int = 1
    #: Extra cycles of a store without the fast-write option (write buffer).
    slow_write_extra: int = 1
    #: Taken branch / call / jump penalty with and without fast jump.
    taken_penalty_fast: int = 1
    taken_penalty_slow: int = 2
    #: Decode bubble per "complex" instruction when fast decode is disabled.
    slow_decode_extra: int = 1
    #: Stall when a branch immediately follows a condition-code update and
    #: the ICC hold/forwarding hardware is absent.
    icc_stall: int = 1
    #: Register-window overflow (spill) and underflow (fill) trap costs.
    window_overflow_cost: int = 24
    window_underflow_cost: int = 26
    #: Extra multiply latency (cycles beyond the 1-cycle base) per implementation.
    multiplier_extra: Tuple[Tuple[str, int], ...] = (
        (Multiplier.NONE, 37),        # software emulation trap
        (Multiplier.ITERATIVE, 33),
        (Multiplier.M16X16, 3),
        (Multiplier.M16X16_PIPE, 2),
        (Multiplier.M32X8, 2),
        (Multiplier.M32X16, 1),
        (Multiplier.M32X32, 0),
    )
    #: Extra divide latency per implementation.
    divider_extra: Tuple[Tuple[str, int], ...] = (
        (Divider.RADIX2, 34),
        (Divider.NONE, 129),          # software emulation
    )

    def multiplier_latency(self, multiplier: str) -> int:
        return dict(self.multiplier_extra)[multiplier]

    def divider_latency(self, divider: str) -> int:
        return dict(self.divider_extra)[divider]

    def line_fill_penalty(self, linesize_words: int) -> int:
        """Cache miss penalty for a line of the given size."""
        return self.memory_latency + self.word_transfer * linesize_words


def count_window_traps(window_events: np.ndarray, windows: int) -> Tuple[int, int]:
    """Count register-window overflow and underflow traps.

    ``window_events`` is the +1/-1 SAVE/RESTORE sequence recorded by the
    functional simulator; ``windows`` is the configured window count.  One
    window is reserved (the SPARC WIM convention), so ``windows - 1``
    nested activations fit before the first spill.
    """
    usable = max(1, windows - 1)
    overflows = 0
    underflows = 0
    depth = 0
    resident_base = 0
    for event in window_events:
        if event > 0:
            depth += 1
            if depth - resident_base >= usable:
                overflows += 1
                resident_base += 1
        else:
            depth -= 1
            if depth < resident_base:
                underflows += 1
                resident_base -= 1
    return overflows, underflows


class TimingModel:
    """Computes the cycle count of a trace on one configuration."""

    def __init__(self, config: Configuration, parameters: TimingParameters | None = None):
        self.config = config
        self.parameters = parameters or TimingParameters()

    def evaluate(
        self,
        trace: ExecutionTrace,
        icache_stats: CacheStatistics,
        dcache_stats: CacheStatistics,
    ) -> ExecutionStatistics:
        """Combine the trace and cache statistics into a cycle count."""
        cfg = self.config
        p = self.parameters
        counts = trace.class_counts()
        n_instr = trace.instruction_count

        breakdown: Dict[str, int] = {}
        breakdown["base"] = n_instr  # one cycle per issued instruction

        # instruction fetch misses
        icache_penalty = p.line_fill_penalty(cfg.icache_linesize_words)
        breakdown["icache_misses"] = icache_stats.read_misses * icache_penalty

        # data cache: only load misses stall (write-through, no allocate)
        dcache_penalty = p.line_fill_penalty(cfg.dcache_linesize_words)
        breakdown["dcache_misses"] = dcache_stats.read_misses * dcache_penalty

        # load/store structural costs
        loads = counts[OpClass.LOAD]
        stores = counts[OpClass.STORE]
        breakdown["load_access"] = 0 if cfg.dcache_fast_read else loads * p.slow_read_extra
        breakdown["store_access"] = 0 if cfg.dcache_fast_write else stores * p.slow_write_extra

        # load-use interlock
        load_use = int(np.count_nonzero(trace.load_use_hazard))
        breakdown["load_use_stalls"] = load_use * (cfg.load_delay - 1)

        # multiply / divide latency
        breakdown["multiply"] = counts[OpClass.MUL] * p.multiplier_latency(cfg.multiplier)
        breakdown["divide"] = counts[OpClass.DIV] * p.divider_latency(cfg.divider)

        # control transfer penalties
        taken = (
            counts[OpClass.BRANCH_TAKEN]
            + counts[OpClass.CALL]
            + counts[OpClass.JUMP]
        )
        penalty = p.taken_penalty_fast if cfg.fast_jump else p.taken_penalty_slow
        breakdown["control_transfer"] = taken * penalty

        # condition-code hazards
        cc_hazards = int(np.count_nonzero(trace.cc_branch_hazard))
        breakdown["icc_stalls"] = 0 if cfg.icc_hold else cc_hazards * p.icc_stall

        # decode bubbles
        complex_instrs = (
            counts[OpClass.SETHI]
            + counts[OpClass.SAVE]
            + counts[OpClass.RESTORE]
            + counts[OpClass.CALL]
            + counts[OpClass.JUMP]
            + counts[OpClass.BRANCH_TAKEN]
            + counts[OpClass.BRANCH_UNTAKEN]
        )
        breakdown["decode"] = 0 if cfg.fast_decode else complex_instrs * p.slow_decode_extra

        # register window traps
        overflows, underflows = count_window_traps(trace.window_events, cfg.register_windows)
        breakdown["window_traps"] = (
            overflows * p.window_overflow_cost + underflows * p.window_underflow_cost)

        cycles = int(sum(breakdown.values()))
        return ExecutionStatistics(
            workload=trace.name,
            configuration=cfg,
            instruction_count=n_instr,
            cycles=cycles,
            cycle_breakdown=breakdown,
            icache=icache_stats,
            dcache=dcache_stats,
            window_overflows=overflows,
            window_underflows=underflows,
        )

"""Cycle-level timing model of the LEON-like integer pipeline.

The timing model replays a configuration-independent
:class:`~repro.microarch.trace.ExecutionTrace` against one
:class:`~repro.config.Configuration` and produces the cycle count the
paper's profiler would report.  Every reconfigurable parameter of the
paper's Figure 1 that affects runtime has a term here:

===========================  =====================================================
Parameter                    Timing effect
===========================  =====================================================
icache geometry/replacement  instruction-fetch miss penalty per icache miss
dcache geometry/replacement  load miss penalty per dcache read miss
dcache fast read             load hit costs 1 cycle instead of 2
dcache fast write            store costs 1 cycle instead of 2
fast jump                    taken-branch/call/jump penalty of 1 instead of 2
icc hold                     removes the 1-cycle stall of a branch that
                             immediately follows a condition-code update
fast decode                  removes the 1-cycle decode bubble of control
                             transfer, SETHI and window instructions
load delay                   1-cycle load-use interlock when set to 2
register windows             window overflow/underflow trap costs
multiplier                   latency of UMUL/SMUL
divider                      latency of UDIV/SDIV (software emulation when absent)
infer mult/div               synthesis-only option: no runtime effect
===========================  =====================================================

The absolute constants are documented class attributes of
:class:`TimingParameters`; they are chosen to give the base configuration
a CPI in the 1.3-2.5 range LEON2 exhibits on memory-bound codes.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config.configuration import Configuration
from repro.config.leon_space import Divider, Multiplier
from repro.isa.instructions import OpClass
from repro.microarch.cache import CacheStatistics
from repro.microarch.statistics import ExecutionStatistics
from repro.microarch.trace import ExecutionTrace

__all__ = [
    "TimingParameters",
    "TimingModel",
    "count_window_traps",
    "count_window_traps_reference",
    "evaluate_many",
]


@dataclass(frozen=True)
class TimingParameters:
    """Calibration constants of the cycle model."""

    #: Cycles from a cache miss to the first word arriving from memory.
    memory_latency: int = 6
    #: Additional cycles per word of a cache line fill.
    word_transfer: int = 1
    #: Extra cycles of a data-cache load hit without the fast-read option.
    slow_read_extra: int = 1
    #: Extra cycles of a store without the fast-write option (write buffer).
    slow_write_extra: int = 1
    #: Taken branch / call / jump penalty with and without fast jump.
    taken_penalty_fast: int = 1
    taken_penalty_slow: int = 2
    #: Decode bubble per "complex" instruction when fast decode is disabled.
    slow_decode_extra: int = 1
    #: Stall when a branch immediately follows a condition-code update and
    #: the ICC hold/forwarding hardware is absent.
    icc_stall: int = 1
    #: Register-window overflow (spill) and underflow (fill) trap costs.
    window_overflow_cost: int = 24
    window_underflow_cost: int = 26
    #: Extra multiply latency (cycles beyond the 1-cycle base) per implementation.
    multiplier_extra: Tuple[Tuple[str, int], ...] = (
        (Multiplier.NONE, 37),        # software emulation trap
        (Multiplier.ITERATIVE, 33),
        (Multiplier.M16X16, 3),
        (Multiplier.M16X16_PIPE, 2),
        (Multiplier.M32X8, 2),
        (Multiplier.M32X16, 1),
        (Multiplier.M32X32, 0),
    )
    #: Extra divide latency per implementation.
    divider_extra: Tuple[Tuple[str, int], ...] = (
        (Divider.RADIX2, 34),
        (Divider.NONE, 129),          # software emulation
    )

    # The lookup dicts are built once per TimingParameters instance (the
    # latency tables are frozen tuples); cached_property writes straight to
    # __dict__, which a frozen dataclass permits.
    @cached_property
    def _multiplier_latencies(self) -> Dict[str, int]:
        return dict(self.multiplier_extra)

    @cached_property
    def _divider_latencies(self) -> Dict[str, int]:
        return dict(self.divider_extra)

    def multiplier_latency(self, multiplier: str) -> int:
        return self._multiplier_latencies[multiplier]

    def divider_latency(self, divider: str) -> int:
        return self._divider_latencies[divider]

    def line_fill_penalty(self, linesize_words: int) -> int:
        """Cache miss penalty for a line of the given size."""
        return self.memory_latency + self.word_transfer * linesize_words


def count_window_traps_reference(
    window_events: np.ndarray, windows: int
) -> Tuple[int, int]:
    """Scalar per-event reference of :func:`count_window_traps`.

    Kept as the oracle of the vectorized walk (the property suite replays
    random SAVE/RESTORE streams through both) and as the faithful
    per-configuration baseline of the sweep benchmarks.
    """
    usable = max(1, windows - 1)
    overflows = 0
    underflows = 0
    depth = 0
    resident_base = 0
    for event in window_events:
        if event > 0:
            depth += 1
            if depth - resident_base >= usable:
                overflows += 1
                resident_base += 1
        else:
            depth -= 1
            if depth < resident_base:
                underflows += 1
                resident_base -= 1
    return overflows, underflows


def count_window_traps(window_events: np.ndarray, windows: int) -> Tuple[int, int]:
    """Count register-window overflow and underflow traps.

    ``window_events`` is the +1/-1 SAVE/RESTORE sequence recorded by the
    functional simulator; ``windows`` is the configured window count.  One
    window is reserved (the SPARC WIM convention), so ``windows - 1``
    nested activations fit before the first spill.

    The count is a saturating walk of the resident-window gap
    ``g = depth - resident_base`` over ``[0, usable - 1]``: a SAVE that
    would push ``g`` past the top spills (overflow), a RESTORE that would
    pull it below zero fills (underflow).  Two NumPy fast paths cover the
    common cases -- the walk never leaving the band (no traps at all) and
    a single usable window (every event traps) -- and the general case
    walks *runs* of consecutive same-direction events with closed-form
    per-run trap counts, so the Python-level loop runs once per direction
    change instead of once per event.
    """
    usable = max(1, windows - 1)
    events = np.asarray(window_events, dtype=np.int64)
    if events.size == 0:
        return 0, 0
    top = usable - 1  # largest gap that fits without spilling
    depth = np.cumsum(events)
    if int(depth.min()) >= 0 and int(depth.max()) <= top:
        return 0, 0  # the clamp never binds: the unclamped walk stays in band
    if top == 0:
        saves = int(np.count_nonzero(events > 0))
        return saves, int(events.size) - saves
    saves_mask = events > 0
    boundaries = np.flatnonzero(saves_mask[1:] != saves_mask[:-1]) + 1
    run_starts = np.concatenate((np.zeros(1, dtype=np.int64), boundaries))
    run_lengths = np.diff(np.append(run_starts, events.size))
    run_is_save = saves_mask[run_starts]
    overflows = 0
    underflows = 0
    gap = 0
    for is_save, length in zip(run_is_save, run_lengths):
        length = int(length)
        if is_save:
            overflows += max(0, gap + length - top)
            gap = min(gap + length, top)
        else:
            underflows += max(0, length - gap)
            gap = max(gap - length, 0)
    return overflows, underflows


class TimingModel:
    """Computes the cycle count of a trace on one configuration."""

    def __init__(self, config: Configuration, parameters: TimingParameters | None = None):
        self.config = config
        self.parameters = parameters or TimingParameters()

    def evaluate(
        self,
        trace: ExecutionTrace,
        icache_stats: CacheStatistics,
        dcache_stats: CacheStatistics,
    ) -> ExecutionStatistics:
        """Combine the trace and cache statistics into a cycle count.

        The configuration-independent trace reductions come from the
        memoised :meth:`ExecutionTrace.features
        <repro.microarch.trace.ExecutionTrace.features>` vector and the
        per-window-count trap memo, so a sweep pays for them once; the
        result is bit-identical to :meth:`evaluate_reference`.
        """
        cfg = self.config
        p = self.parameters
        f = trace.features()

        breakdown: Dict[str, int] = {}
        breakdown["base"] = f.instruction_count  # one cycle per issued instruction

        # instruction fetch misses
        icache_penalty = p.line_fill_penalty(cfg.icache_linesize_words)
        breakdown["icache_misses"] = icache_stats.read_misses * icache_penalty

        # data cache: only load misses stall (write-through, no allocate)
        dcache_penalty = p.line_fill_penalty(cfg.dcache_linesize_words)
        breakdown["dcache_misses"] = dcache_stats.read_misses * dcache_penalty

        # load/store structural costs
        loads = f.count(OpClass.LOAD)
        stores = f.count(OpClass.STORE)
        breakdown["load_access"] = 0 if cfg.dcache_fast_read else loads * p.slow_read_extra
        breakdown["store_access"] = 0 if cfg.dcache_fast_write else stores * p.slow_write_extra

        # load-use interlock
        breakdown["load_use_stalls"] = f.load_use_hazards * (cfg.load_delay - 1)

        # multiply / divide latency
        breakdown["multiply"] = f.count(OpClass.MUL) * p.multiplier_latency(cfg.multiplier)
        breakdown["divide"] = f.count(OpClass.DIV) * p.divider_latency(cfg.divider)

        # control transfer penalties
        penalty = p.taken_penalty_fast if cfg.fast_jump else p.taken_penalty_slow
        breakdown["control_transfer"] = _taken_transfers(f) * penalty

        # condition-code hazards
        breakdown["icc_stalls"] = 0 if cfg.icc_hold else f.cc_branch_hazards * p.icc_stall

        # decode bubbles
        breakdown["decode"] = (
            0 if cfg.fast_decode else _complex_instructions(f) * p.slow_decode_extra)

        # register window traps (memoised per window count on the trace)
        overflows, underflows = trace.window_trap_counts(cfg.register_windows)
        breakdown["window_traps"] = (
            overflows * p.window_overflow_cost + underflows * p.window_underflow_cost)

        cycles = int(sum(breakdown.values()))
        return ExecutionStatistics(
            workload=trace.name,
            configuration=cfg,
            instruction_count=f.instruction_count,
            cycles=cycles,
            cycle_breakdown=breakdown,
            icache=icache_stats,
            dcache=dcache_stats,
            window_overflows=overflows,
            window_underflows=underflows,
        )

    def evaluate_reference(
        self,
        trace: ExecutionTrace,
        icache_stats: CacheStatistics,
        dcache_stats: CacheStatistics,
    ) -> ExecutionStatistics:
        """Unmemoised per-configuration evaluation (the pre-sweep behaviour).

        Recomputes every trace reduction from the raw arrays on each call
        -- histogram, hazard counts and the scalar window-trap walk --
        exactly like the original per-configuration path did.  This is
        the oracle of the batched-path property tests and the honest
        baseline of the sweep-throughput benchmark.
        """
        cfg = self.config
        p = self.parameters
        counts = np.bincount(trace.op_classes, minlength=len(OpClass))
        n_instr = trace.instruction_count

        breakdown: Dict[str, int] = {}
        breakdown["base"] = n_instr
        breakdown["icache_misses"] = (
            icache_stats.read_misses * p.line_fill_penalty(cfg.icache_linesize_words))
        breakdown["dcache_misses"] = (
            dcache_stats.read_misses * p.line_fill_penalty(cfg.dcache_linesize_words))
        loads = int(counts[OpClass.LOAD.value])
        stores = int(counts[OpClass.STORE.value])
        breakdown["load_access"] = 0 if cfg.dcache_fast_read else loads * p.slow_read_extra
        breakdown["store_access"] = 0 if cfg.dcache_fast_write else stores * p.slow_write_extra
        load_use = int(np.count_nonzero(trace.load_use_hazard))
        breakdown["load_use_stalls"] = load_use * (cfg.load_delay - 1)
        breakdown["multiply"] = (
            int(counts[OpClass.MUL.value]) * dict(p.multiplier_extra)[cfg.multiplier])
        breakdown["divide"] = (
            int(counts[OpClass.DIV.value]) * dict(p.divider_extra)[cfg.divider])
        taken = int(counts[OpClass.BRANCH_TAKEN.value]
                    + counts[OpClass.CALL.value] + counts[OpClass.JUMP.value])
        penalty = p.taken_penalty_fast if cfg.fast_jump else p.taken_penalty_slow
        breakdown["control_transfer"] = taken * penalty
        cc_hazards = int(np.count_nonzero(trace.cc_branch_hazard))
        breakdown["icc_stalls"] = 0 if cfg.icc_hold else cc_hazards * p.icc_stall
        complex_instrs = int(
            counts[OpClass.SETHI.value] + counts[OpClass.SAVE.value]
            + counts[OpClass.RESTORE.value] + counts[OpClass.CALL.value]
            + counts[OpClass.JUMP.value] + counts[OpClass.BRANCH_TAKEN.value]
            + counts[OpClass.BRANCH_UNTAKEN.value])
        breakdown["decode"] = 0 if cfg.fast_decode else complex_instrs * p.slow_decode_extra
        overflows, underflows = count_window_traps_reference(
            trace.window_events, cfg.register_windows)
        breakdown["window_traps"] = (
            overflows * p.window_overflow_cost + underflows * p.window_underflow_cost)

        cycles = int(sum(breakdown.values()))
        return ExecutionStatistics(
            workload=trace.name,
            configuration=cfg,
            instruction_count=n_instr,
            cycles=cycles,
            cycle_breakdown=breakdown,
            icache=icache_stats,
            dcache=dcache_stats,
            window_overflows=overflows,
            window_underflows=underflows,
        )


def _taken_transfers(f) -> int:
    """Taken control transfers: taken branches, calls and jumps."""
    return f.count(OpClass.BRANCH_TAKEN) + f.count(OpClass.CALL) + f.count(OpClass.JUMP)


def _complex_instructions(f) -> int:
    """Instructions paying the slow-decode bubble when fast decode is off."""
    return (
        f.count(OpClass.SETHI) + f.count(OpClass.SAVE) + f.count(OpClass.RESTORE)
        + f.count(OpClass.CALL) + f.count(OpClass.JUMP)
        + f.count(OpClass.BRANCH_TAKEN) + f.count(OpClass.BRANCH_UNTAKEN))


#: Cycle-breakdown category order of :meth:`TimingModel.evaluate`, shared by
#: :func:`evaluate_many` so batched breakdown dicts iterate identically.
BREAKDOWN_CATEGORIES: Tuple[str, ...] = (
    "base", "icache_misses", "dcache_misses", "load_access", "store_access",
    "load_use_stalls", "multiply", "divide", "control_transfer", "icc_stalls",
    "decode", "window_traps")


def evaluate_many(
    trace: ExecutionTrace,
    configs: Sequence[Configuration],
    cache_stats: Sequence[Tuple[CacheStatistics, CacheStatistics]],
    parameters: Optional[TimingParameters] = None,
) -> List[ExecutionStatistics]:
    """Broadcast-batched timing evaluation of one trace over a config grid.

    ``cache_stats`` holds the ``(icache, dcache)`` statistics aligned with
    ``configs``.  The trace is summarised once into its feature vector;
    the configuration grid is compiled into NumPy coefficient columns and
    every cycle-breakdown term is produced for the whole grid as one
    array operation.  Results are bit-identical -- cycles, the full
    ``cycle_breakdown``, and the window-trap counts -- to calling
    :meth:`TimingModel.evaluate` once per configuration.
    """
    p = parameters or TimingParameters()
    n = len(configs)
    if n == 0:
        return []
    if len(cache_stats) != n:
        raise ValueError("cache_stats must align with configs")
    f = trace.features()

    def column(getter) -> np.ndarray:
        return np.fromiter((getter(c) for c in configs), dtype=np.int64, count=n)

    icache_read_misses = np.fromiter(
        (s[0].read_misses for s in cache_stats), dtype=np.int64, count=n)
    dcache_read_misses = np.fromiter(
        (s[1].read_misses for s in cache_stats), dtype=np.int64, count=n)

    terms: Dict[str, np.ndarray] = {}
    terms["base"] = np.full(n, f.instruction_count, dtype=np.int64)
    # line_fill_penalty is pure arithmetic, so it broadcasts over the columns
    terms["icache_misses"] = icache_read_misses * p.line_fill_penalty(
        column(lambda c: c.icache_linesize_words))
    terms["dcache_misses"] = dcache_read_misses * p.line_fill_penalty(
        column(lambda c: c.dcache_linesize_words))
    terms["load_access"] = np.where(
        column(lambda c: c.dcache_fast_read).astype(bool),
        0, f.count(OpClass.LOAD) * p.slow_read_extra)
    terms["store_access"] = np.where(
        column(lambda c: c.dcache_fast_write).astype(bool),
        0, f.count(OpClass.STORE) * p.slow_write_extra)
    terms["load_use_stalls"] = f.load_use_hazards * (column(lambda c: c.load_delay) - 1)
    terms["multiply"] = f.count(OpClass.MUL) * column(
        lambda c: p.multiplier_latency(c.multiplier))
    terms["divide"] = f.count(OpClass.DIV) * column(
        lambda c: p.divider_latency(c.divider))
    terms["control_transfer"] = _taken_transfers(f) * np.where(
        column(lambda c: c.fast_jump).astype(bool),
        p.taken_penalty_fast, p.taken_penalty_slow)
    terms["icc_stalls"] = np.where(
        column(lambda c: c.icc_hold).astype(bool),
        0, f.cc_branch_hazards * p.icc_stall)
    terms["decode"] = np.where(
        column(lambda c: c.fast_decode).astype(bool),
        0, _complex_instructions(f) * p.slow_decode_extra)

    # window traps: one memoised walk per distinct window count in the grid
    windows_col = column(lambda c: c.register_windows)
    overflows = np.empty(n, dtype=np.int64)
    underflows = np.empty(n, dtype=np.int64)
    for windows in np.unique(windows_col):
        over, under = trace.window_trap_counts(int(windows))
        mask = windows_col == windows
        overflows[mask] = over
        underflows[mask] = under
    terms["window_traps"] = (
        overflows * p.window_overflow_cost + underflows * p.window_underflow_cost)

    cycles = np.zeros(n, dtype=np.int64)
    for name in BREAKDOWN_CATEGORIES:
        cycles += terms[name]

    results: List[ExecutionStatistics] = []
    for i, config in enumerate(configs):
        breakdown = {name: int(terms[name][i]) for name in BREAKDOWN_CATEGORIES}
        results.append(ExecutionStatistics(
            workload=trace.name,
            configuration=config,
            instruction_count=f.instruction_count,
            cycles=int(cycles[i]),
            cycle_breakdown=breakdown,
            icache=cache_stats[i][0],
            dcache=cache_stats[i][1],
            window_overflows=int(overflows[i]),
            window_underflows=int(underflows[i]),
        ))
    return results

"""Columnar cache-simulation kernel: decode once, replay many.

This module is the pure-function layer underneath
:class:`~repro.microarch.cache.Cache`.  It splits trace-driven cache
simulation into two stages with very different sharing profiles:

* **Decode** (:func:`decode_trace`) is a property of the *trace and the
  line size only*: byte addresses become cache-line numbers, and maximal
  runs of consecutive accesses to the same line are compressed into one
  *event* each.  Within such a run the line's presence cannot change
  except at the run's first read (write misses do not allocate in the
  LEON2 write-through, no-write-allocate data cache), so an event fully
  describes the run with its line number, the position of its first
  read, the number of leading writes and its last access position.  A
  decoded :class:`ColumnarTrace` is therefore shared by *every* cache
  geometry and replacement policy with that line size -- the paper's
  exhaustive dcache sweep decodes each workload trace twice (one per
  line size) instead of once per configuration.

* **Replay** (:func:`replay`) turns the surviving potential-miss events
  into hit/miss statistics for one concrete geometry.  Direct-mapped
  caches replay as pure NumPy reductions (a stable sort by set index
  plus a running maximum).  Set-associative caches replay
  *rank-synchronously*: events are grouped by set, and iteration ``k``
  applies the ``k``-th event of every set at once with vectorised
  LRU / LRR(FIFO) / RANDOM victim selection, so the Python-level loop
  count is the maximum events-per-set, never the access count.

Both paths are bit-identical to the scalar per-access reference loop in
:meth:`Cache.simulate(vectorized=False) <repro.microarch.cache.Cache.simulate>`:
statistics, final tag/age/FIFO state, and the seeded RANDOM stream
(victims are pre-drawn positionally, one per *access*, exactly like the
reference) all match, which the property tests in
``tests/test_cache_vectorized.py`` enforce for every policy and
associativity.

Replay is *warm-chainable*: :func:`replay` mutates the
:class:`KernelState` it is given, and the run/chain compression algebra
is closed under trace splitting -- a same-line run cut at a phase
boundary replays to the same statistics and state as the uncut run.
:func:`replay_chain` exploits this to replay a sequence of
:class:`ColumnarTrace` views (program phases) against one
continuously-warm cache; the result is bit-identical -- statistics,
tag/age/FIFO state, and the seeded RANDOM victim stream (NumPy bounded
integer draws consume the bit stream value by value, so per-phase
batches concatenate to the single-shot batch) -- to replaying the
concatenated trace in one shot, which ``tests/test_warm_replay.py``
property-tests against the scalar warm oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config.leon_space import Replacement
from repro.errors import ConfigurationError
from repro.microarch.cache import CacheConfig, CacheStatistics

__all__ = [
    "ColumnarTrace",
    "KernelState",
    "PhaseReplay",
    "decode_trace",
    "fresh_state",
    "replay",
    "replay_chain",
    "replay_phases",
    "simulate_many",
]


@dataclass(frozen=True)
class ColumnarTrace:
    """Run-compressed columnar view of one address trace at one line size.

    One *event* per maximal run of consecutive same-line accesses.  The
    positions stored per event index into the original access stream, so
    tick accounting and the positional RANDOM victim stream of the
    scalar reference are reproducible without the uncompressed arrays.
    """

    #: Line size the addresses were decoded against.
    linesize_bytes: int
    #: Length of the original access stream.
    accesses: int
    #: Number of writes in the original access stream.
    write_accesses: int
    #: Cache-line number of each event's run.
    event_line: np.ndarray
    #: Original position of the run's first read; ``accesses`` when the run has none.
    event_first_read: np.ndarray
    #: Original position of the run's last access.
    event_last_pos: np.ndarray
    #: Number of writes preceding the run's first read (the whole run if no read).
    event_writes_before_read: np.ndarray
    #: Cached per-set potential-miss views, keyed by ``lines_per_way``.
    _set_views: Dict[int, "_SetView"] = field(
        default_factory=dict, repr=False, compare=False)

    def __len__(self) -> int:
        return int(self.event_line.shape[0])

    def set_view(self, lines_per_way: int) -> "_SetView":
        """Chain-collapsed per-set event stream for one set count (cached).

        Shared by every associativity and replacement policy with this
        ``lines_per_way``: the mapping of lines to sets -- and therefore
        which events can possibly miss -- depends only on the set count.
        """
        view = self._set_views.get(lines_per_way)
        if view is None:
            view = _build_set_view(self, lines_per_way)
            self._set_views[lines_per_way] = view
        return view

    @property
    def event_has_read(self) -> np.ndarray:
        """Boolean mask of events whose run contains at least one read."""
        return self.event_first_read < self.accesses

    @property
    def compression(self) -> float:
        """Accesses per event (1.0 means no consecutive same-line runs)."""
        return self.accesses / len(self) if len(self) else 1.0


def decode_trace(
    addresses: np.ndarray,
    writes: Optional[np.ndarray] = None,
    *,
    linesize_bytes: int,
) -> ColumnarTrace:
    """Decode an address trace into a :class:`ColumnarTrace` for one line size.

    ``writes`` is the optional store mask aligned with ``addresses``
    (omitted for the read-only instruction-cache case).  The result is
    geometry- and policy-independent: every configuration with this line
    size replays the same decoded view.
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    n = len(addresses)
    if writes is None:
        writes_arr = np.zeros(n, dtype=bool)
    else:
        writes_arr = np.asarray(writes, dtype=bool)
        if writes_arr.shape != addresses.shape:
            raise ConfigurationError("writes mask must match the address trace length")
    write_total = int(np.count_nonzero(writes_arr))
    lines = addresses // linesize_bytes
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return ColumnarTrace(linesize_bytes, 0, 0, empty, empty, empty, empty)

    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    boundary[1:] = lines[1:] != lines[:-1]
    run_start = np.flatnonzero(boundary)
    run_end = np.append(run_start[1:], n)  # exclusive

    positions = np.arange(n, dtype=np.int64)
    # first read of each run: min over read positions, n as "no read" sentinel
    read_positions = np.where(writes_arr, n, positions)
    first_read = np.minimum.reduceat(read_positions, run_start)
    # every access before a run's first read is a write by construction
    writes_before = np.where(first_read < n, first_read - run_start, run_end - run_start)

    return ColumnarTrace(
        linesize_bytes=linesize_bytes,
        accesses=n,
        write_accesses=write_total,
        event_line=lines[run_start],
        event_first_read=first_read,
        event_last_pos=run_end - 1,
        event_writes_before_read=writes_before,
    )


@dataclass
class KernelState:
    """Mutable replay state, layout-compatible with :class:`Cache`'s stores."""

    #: ``(lines_per_way, ways)`` tag store; -1 marks an invalid way.
    tags: np.ndarray
    #: Per-way replacement ages (LRU recency; fill tick otherwise).
    age: np.ndarray
    #: Per-set LRR/FIFO replacement pointer.
    fifo: np.ndarray
    #: Accesses replayed so far (ages are ticks: position + tick + 1).
    tick: int = 0
    #: RANDOM-victim stream position, carried so a chained replay keeps
    #: drawing where the previous phase stopped (``None`` for callers that
    #: manage their own generator, e.g. :class:`~repro.microarch.cache.Cache`).
    rng: Optional[np.random.Generator] = None


def fresh_state(config: CacheConfig) -> KernelState:
    """Cold-cache state for one geometry (what a fresh :class:`Cache` holds)."""
    lines = config.lines_per_way
    return KernelState(
        tags=np.full((lines, config.ways), -1, dtype=np.int64),
        age=np.zeros((lines, config.ways), dtype=np.int64),
        fifo=np.zeros(lines, dtype=np.int64),
        tick=0,
        rng=np.random.default_rng(config.seed),
    )


def replay(
    view: ColumnarTrace,
    config: CacheConfig,
    state: Optional[KernelState] = None,
    rng: Optional[np.random.Generator] = None,
) -> CacheStatistics:
    """Replay a decoded trace against one geometry, mutating ``state``.

    With ``state``/``rng`` omitted the replay starts from a cold cache
    with the geometry's own seeded PRNG -- exactly what a fresh
    :class:`~repro.microarch.cache.Cache` would do.  Passing the state of
    a previous replay continues against the warm cache (its own ``rng``
    keeps the RANDOM victim stream in step); an explicit ``rng`` argument
    overrides the state's generator.
    """
    if view.linesize_bytes != config.linesize_bytes:
        raise ConfigurationError(
            f"decoded view has linesize {view.linesize_bytes}, "
            f"configuration expects {config.linesize_bytes}")
    if state is None:
        state = fresh_state(config)
    if rng is None:
        rng = state.rng if state.rng is not None else np.random.default_rng(config.seed)
    n = view.accesses
    # the scalar reference pre-draws one victim per *access* regardless of
    # policy or use; match it so the stream position stays identical
    random_victims = rng.integers(0, config.ways, size=n) if config.ways > 1 else None

    if n == 0:
        return CacheStatistics(0, 0, 0, 0, 0)
    if config.ways == 1:
        read_misses, write_misses = _replay_direct_mapped(view, config, state)
    else:
        read_misses, write_misses = _replay_set_associative(
            view, config, state, random_victims)
    state.tick += n
    return CacheStatistics(
        accesses=n,
        read_accesses=n - view.write_accesses,
        write_accesses=view.write_accesses,
        read_misses=read_misses,
        write_misses=write_misses,
    )


def simulate_many(
    view: ColumnarTrace, configs: Sequence[CacheConfig]
) -> List[CacheStatistics]:
    """Replay one decoded trace against many cold-cache configurations.

    Equivalent to ``[Cache(c).simulate(addresses, writes) for c in configs]``
    but the columnar decode is paid once for the whole batch.  Every
    configuration must share the view's line size (group by line size
    before calling; :meth:`LiquidPlatform.simulate_cache_jobs
    <repro.platform.liquid.LiquidPlatform.simulate_cache_jobs>` does).
    """
    return [replay(view, config) for config in configs]


def replay_chain(
    views: Sequence[ColumnarTrace],
    config: CacheConfig,
    state: Optional[KernelState] = None,
) -> Tuple[List[CacheStatistics], KernelState]:
    """Replay a sequence of phase views against one continuously-warm cache.

    Every view must share the configuration's line size.  Returns the
    per-phase statistics and the final :class:`KernelState`, which can be
    passed back in to extend the chain.  The chain is bit-identical --
    per-phase statistics sum to the one-shot statistics, and the final
    tag/age/FIFO state and RANDOM victim stream match exactly -- to
    replaying the concatenated trace in a single :func:`replay` call:
    run compression never merges events across phase boundaries, but a
    run split at a boundary replays to the same misses and state because
    presence can only change at a run's first read, which stays at the
    same global position.
    """
    if state is None:
        state = fresh_state(config)
    statistics = [replay(view, config, state=state) for view in views]
    return statistics, state


@dataclass(frozen=True)
class PhaseReplay:
    """Per-phase statistics of one geometry, warm-chained and cold-started.

    ``warm`` replays the phases against one continuously-warm cache (the
    deployment view: cache state carries across program phases);
    ``cold`` replays each phase from a cold cache with a freshly seeded
    PRNG (the paper's per-measurement view).  The warm statistics sum to
    the single-shot replay of the concatenated trace; the cold ones do
    not, and the difference is exactly the phase-transition effect the
    phase benchmarks report.
    """

    warm: Tuple[CacheStatistics, ...]
    cold: Tuple[CacheStatistics, ...]

    def warm_total(self) -> CacheStatistics:
        """Sum of the warm per-phase statistics (== the one-shot replay)."""
        return CacheStatistics(
            accesses=sum(s.accesses for s in self.warm),
            read_accesses=sum(s.read_accesses for s in self.warm),
            write_accesses=sum(s.write_accesses for s in self.warm),
            read_misses=sum(s.read_misses for s in self.warm),
            write_misses=sum(s.write_misses for s in self.warm),
        )


def replay_phases(
    views: Sequence[ColumnarTrace], config: CacheConfig
) -> PhaseReplay:
    """Warm-chained plus cold-started per-phase replay of one geometry.

    The expensive part -- decoding each phase -- is shared between the
    two replays (and with every other geometry at this line size), so
    asking for both costs two cheap replays of the same views.
    """
    warm, _ = replay_chain(views, config)
    return PhaseReplay(
        warm=tuple(warm),
        cold=tuple(replay(view, config) for view in views),
    )


# -- per-set potential-miss views --------------------------------------------------------


@dataclass(frozen=True)
class _SetView:
    """Chain-collapsed per-set event stream for one ``lines_per_way``.

    Events are grouped by set (per-set temporal order preserved) and
    maximal chains of *consecutive same-line events within a set* are
    collapsed into one potential-miss event each: between chain members
    no other line of that set is accessed, so the line's presence cannot
    change except at the chain's first read -- the same algebra that
    collapses same-line runs at decode time, applied after the
    set mapping is known.  Arrays come in two orderings: set-grouped
    (``set_index`` .. ``has_read``, used by the direct-mapped replay) and
    rank-ordered (``r_*``, used by the rank-synchronous set-associative
    replay, where slice ``k`` of ``rank_bounds`` holds every set's
    ``k``-th event).
    """

    # set-grouped order: each populated set's events, concatenated
    set_index: np.ndarray
    tag: np.ndarray
    first_read: np.ndarray
    last_pos: np.ndarray
    w_pre: np.ndarray
    has_read: np.ndarray
    group_starts: np.ndarray
    group_start_per_event: np.ndarray
    # rank order: the k-th event of every set is contiguous
    rank_bounds: np.ndarray
    r_set: np.ndarray
    r_tag: np.ndarray
    r_first_read: np.ndarray
    r_last_pos: np.ndarray
    r_w_pre: np.ndarray
    r_has_read: np.ndarray


def _build_set_view(view: ColumnarTrace, lines_per_way: int) -> _SetView:
    n = view.accesses
    indices = view.event_line % lines_per_way
    order = np.argsort(indices, kind="stable")
    idx_s = indices[order]
    line_s = view.event_line[order]
    first_read_s = view.event_first_read[order]
    last_pos_s = view.event_last_pos[order]
    w_pre_s = view.event_writes_before_read[order]
    events = len(idx_s)

    # chains: consecutive events on the same line within the same set
    chain_start = np.empty(events, dtype=bool)
    chain_start[0] = True
    chain_start[1:] = (idx_s[1:] != idx_s[:-1]) | (line_s[1:] != line_s[:-1])
    starts = np.flatnonzero(chain_start)
    ends = np.append(starts[1:], events) - 1
    chain_id = np.cumsum(chain_start) - 1

    # a chain member's leading writes can only miss while no earlier chain
    # member carried a read; compute "read seen before me, within my chain"
    # with a per-chain running minimum (the id*big offset confines the
    # accumulate to one chain: earlier chains' values are strictly larger)
    big = n + 1
    running_min = np.minimum.accumulate(first_read_s - chain_id * big)
    prior = np.empty(events, dtype=np.int64)
    prior[0] = big
    prior[1:] = running_min[:-1] + chain_id[1:] * big
    no_read_before = prior >= n
    w_pre_chain = np.add.reduceat(np.where(no_read_before, w_pre_s, 0), starts)

    cset = idx_s[starts]
    ctag = line_s[starts] // lines_per_way
    cfirst = np.minimum.reduceat(first_read_s, starts)
    clast = last_pos_s[ends]
    chas_read = cfirst < n
    chains = len(starts)

    group_boundary = np.empty(chains, dtype=bool)
    group_boundary[0] = True
    group_boundary[1:] = cset[1:] != cset[:-1]
    group_starts = np.flatnonzero(group_boundary)
    group_lengths = np.diff(np.append(group_starts, chains))
    start_per_event = np.repeat(group_starts, group_lengths)
    rank = np.arange(chains, dtype=np.int64) - start_per_event
    by_rank = np.argsort(rank, kind="stable")
    max_rank = int(rank.max())
    rank_bounds = np.searchsorted(rank[by_rank], np.arange(max_rank + 2))

    return _SetView(
        set_index=cset, tag=ctag, first_read=cfirst, last_pos=clast,
        w_pre=w_pre_chain, has_read=chas_read,
        group_starts=group_starts, group_start_per_event=start_per_event,
        rank_bounds=rank_bounds,
        r_set=cset[by_rank], r_tag=ctag[by_rank], r_first_read=cfirst[by_rank],
        r_last_pos=clast[by_rank], r_w_pre=w_pre_chain[by_rank],
        r_has_read=chas_read[by_rank],
    )


# -- direct-mapped replay ----------------------------------------------------------------


def _replay_direct_mapped(
    view: ColumnarTrace, config: CacheConfig, state: KernelState
) -> Tuple[int, int]:
    """Event replay of a 1-way cache as pure NumPy reductions.

    With a single way the stored tag of a set only changes at *reads*
    (write-through, no write-allocate), so an event starts present
    exactly when its tag matches the most recent earlier read-carrying
    event of the same set -- or the pre-existing tag store content when
    there is none.  On the set-grouped event stream that "previous
    read-carrying event in my set" relation is a running maximum.
    """
    lru = config.replacement == Replacement.LRU
    sv = view.set_view(config.lines_per_way)
    events = len(sv.set_index)

    positions = np.arange(events, dtype=np.int64)
    last_read = np.maximum.accumulate(np.where(sv.has_read, positions, -1))
    prev_read = np.empty(events, dtype=np.int64)
    prev_read[0] = -1
    prev_read[1:] = last_read[:-1]
    # a "previous read" carried over from a different set is invalid; the
    # event then sees the tag store's current content (-1 never matches)
    has_prev = prev_read >= sv.group_start_per_event
    initial_tags = state.tags[sv.set_index, 0]
    effective_tag = np.where(
        has_prev, sv.tag[np.maximum(prev_read, 0)], initial_tags)
    present = effective_tag == sv.tag

    absent = ~present
    read_misses = int(np.count_nonzero(absent & sv.has_read))
    write_misses = int(sv.w_pre[absent].sum())

    # final tag store: the last read-carrying event of each set wins
    group_ends = np.append(sv.group_starts[1:], events) - 1
    final_read = last_read[group_ends]
    touched = final_read >= sv.group_starts
    state.tags[sv.set_index[sv.group_starts[touched]], 0] = sv.tag[final_read[touched]]

    # replacement age, matching the scalar loop tick for tick: LRU updates
    # on every hit and fill (so the chain's last non-write-miss access
    # wins), other policies only at fills (the chain's first read)
    tick0 = state.tick + 1
    if lru:
        qualifies = present | sv.has_read
        age_tick = tick0 + sv.last_pos
    else:
        qualifies = absent & sv.has_read
        age_tick = tick0 + sv.first_read
    last_qualifying = np.maximum.accumulate(
        np.where(qualifies, positions, -1))[group_ends]
    aged = last_qualifying >= sv.group_starts
    state.age[sv.set_index[sv.group_starts[aged]], 0] = age_tick[last_qualifying[aged]]
    return read_misses, write_misses


# -- set-associative replay --------------------------------------------------------------


def _replay_set_associative(
    view: ColumnarTrace,
    config: CacheConfig,
    state: KernelState,
    random_victims: np.ndarray,
) -> Tuple[int, int]:
    """Rank-synchronous replay: all sets advance one event per iteration.

    Iteration ``k`` applies every set's ``k``-th potential-miss event
    simultaneously with vectorised presence tests and victim selection.
    Per-set event order is preserved and sets never interact, so the
    replay is exact; the Python-level loop runs max-events-per-set
    times, never once per access.
    """
    ways = config.ways
    lru = config.replacement == Replacement.LRU
    lrr = config.replacement == Replacement.LRR
    sv = view.set_view(config.lines_per_way)
    bounds = sv.rank_bounds

    tags, age, fifo = state.tags, state.age, state.fifo
    tick0 = state.tick + 1  # the k-th access of this replay runs at tick0 + k
    read_misses = 0
    write_misses = 0

    for k in range(len(bounds) - 1):
        sl = slice(bounds[k], bounds[k + 1])
        sets = sv.r_set[sl]       # distinct within a rank slice by construction
        tag = sv.r_tag[sl]
        rows = tags[sets]
        match = rows == tag[:, None]
        present = match.any(axis=1)
        absent = ~present
        write_misses += int(sv.r_w_pre[sl][absent].sum())

        if lru and present.any():
            hit_sets = sets[present]
            hit_way = np.argmax(match[present], axis=1)
            age[hit_sets, hit_way] = tick0 + sv.r_last_pos[sl][present]

        fill = absent & sv.r_has_read[sl]
        filled = int(np.count_nonzero(fill))
        read_misses += filled
        if not filled:
            continue
        fill_sets = sets[fill]
        fill_rows = rows[fill]
        invalid = fill_rows == -1
        has_invalid = invalid.any(axis=1)
        if lru:
            policy_victim = np.argmin(age[fill_sets], axis=1)
        elif lrr:
            policy_victim = fifo[fill_sets]
        else:
            policy_victim = random_victims[sv.r_first_read[sl][fill]]
        victim = np.where(has_invalid, np.argmax(invalid, axis=1), policy_victim)
        if lrr:
            evicting = ~has_invalid
            fifo[fill_sets[evicting]] = (victim[evicting] + 1) % ways
        tags[fill_sets, victim] = tag[fill]
        # LRU: in-chain hits after the fill promote the line to the chain's last tick
        fill_tick = sv.r_last_pos[sl] if lru else sv.r_first_read[sl]
        age[fill_sets, victim] = tick0 + fill_tick[fill]

    return read_misses, write_misses

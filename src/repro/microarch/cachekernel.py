"""Columnar cache-simulation kernel: decode once, replay many.

This module is the pure-function layer underneath
:class:`~repro.microarch.cache.Cache`.  It splits trace-driven cache
simulation into two stages with very different sharing profiles:

* **Decode** (:func:`decode_trace`) is a property of the *trace and the
  line size only*: byte addresses become cache-line numbers, and maximal
  runs of consecutive accesses to the same line are compressed into one
  *event* each.  Within such a run the line's presence cannot change
  except at the run's first read (write misses do not allocate in the
  LEON2 write-through, no-write-allocate data cache), so an event fully
  describes the run with its line number, the position of its first
  read, the number of leading writes and its last access position.  A
  decoded :class:`ColumnarTrace` is therefore shared by *every* cache
  geometry and replacement policy with that line size -- the paper's
  exhaustive dcache sweep decodes each workload trace twice (one per
  line size) instead of once per configuration.

* **Replay** (:func:`replay`) turns the surviving potential-miss events
  into hit/miss statistics for one concrete geometry.  Direct-mapped
  caches replay as pure NumPy reductions (a stable sort by set index
  plus a running maximum).  Set-associative caches replay
  *rank-synchronously*: events are grouped by set, and iteration ``k``
  applies the ``k``-th event of every set at once with vectorised
  LRU / LRR(FIFO) / RANDOM victim selection, so the Python-level loop
  count is the maximum events-per-set, never the access count.

Both paths are bit-identical to the scalar per-access reference loop in
:meth:`Cache.simulate(vectorized=False) <repro.microarch.cache.Cache.simulate>`:
statistics, final tag/age/FIFO state, and the seeded RANDOM stream
(victims are pre-drawn positionally, one per *access*, exactly like the
reference) all match, which the property tests in
``tests/test_cache_vectorized.py`` enforce for every policy and
associativity.

Replay is *warm-chainable*: :func:`replay` mutates the
:class:`KernelState` it is given, and the run/chain compression algebra
is closed under trace splitting -- a same-line run cut at a phase
boundary replays to the same statistics and state as the uncut run.
:func:`replay_chain` exploits this to replay a sequence of
:class:`ColumnarTrace` views (program phases) against one
continuously-warm cache; the result is bit-identical -- statistics,
tag/age/FIFO state, and the seeded RANDOM victim stream (NumPy bounded
integer draws consume the bit stream value by value, so per-phase
batches concatenate to the single-shot batch) -- to replaying the
concatenated trace in one shot, which ``tests/test_warm_replay.py``
property-tests against the scalar warm oracle.

**Kernel lanes.**  The set-associative replay has three interchangeable
implementations, selected by the ``REPRO_KERNEL_LANE`` environment
variable (or an explicit ``lane=`` argument) and all bit-identical to
the scalar reference:

* ``crossconfig`` (default) -- :func:`simulate_many` merges every
  associative configuration of a batch into one rank-synchronous pass
  through :func:`replay_many_associative`: tag/age/FIFO state is held
  as one stacked ``(configs, sets, ways)`` array (sets and ways padded
  to the batch maxima) and the per-rank event streams of all
  configurations are concatenated, so the Python-level loop runs
  ``max_c ranks(c)`` times for the whole group instead of
  ``sum_c ranks(c)`` -- on the paper's geometry-dense Figure-2 grid
  that is a ~4-5x cut in loop trips.
* ``numpy`` -- the per-configuration rank-synchronous replay (the
  pre-cross-config behaviour; also what single :func:`replay` calls
  use regardless of lane).
* ``jit`` -- a Numba-compiled per-set event loop
  (:func:`_replay_events_loop`).  Numba is optional: when it cannot be
  imported (or compilation fails) the lane silently resolves back to
  the default NumPy lane, which :func:`kernel_lane` makes auditable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config.leon_space import Replacement
from repro.errors import ConfigurationError
from repro.microarch.cache import CacheConfig, CacheStatistics
from repro.obs.tracer import span

__all__ = [
    "ColumnarTrace",
    "KERNEL_LANE_ENV",
    "KernelState",
    "LANE_CROSSCONFIG",
    "LANE_JIT",
    "LANE_NUMPY",
    "PhaseReplay",
    "decode_trace",
    "fresh_state",
    "jit_available",
    "kernel_lane",
    "replay",
    "replay_chain",
    "replay_many_associative",
    "replay_phases",
    "simulate_many",
]

#: Environment knob selecting the set-associative replay implementation.
KERNEL_LANE_ENV = "REPRO_KERNEL_LANE"
#: Per-configuration rank-synchronous NumPy replay (the pre-lane behaviour).
LANE_NUMPY = "numpy"
#: Batched rank-synchronous replay shared across a whole config group.
LANE_CROSSCONFIG = "crossconfig"
#: Numba-compiled per-set event loop (optional; falls back to the default).
LANE_JIT = "jit"
_LANES = (LANE_NUMPY, LANE_CROSSCONFIG, LANE_JIT)
DEFAULT_LANE = LANE_CROSSCONFIG


@dataclass(frozen=True)
class ColumnarTrace:
    """Run-compressed columnar view of one address trace at one line size.

    One *event* per maximal run of consecutive same-line accesses.  The
    positions stored per event index into the original access stream, so
    tick accounting and the positional RANDOM victim stream of the
    scalar reference are reproducible without the uncompressed arrays.
    """

    #: Line size the addresses were decoded against.
    linesize_bytes: int
    #: Length of the original access stream.
    accesses: int
    #: Number of writes in the original access stream.
    write_accesses: int
    #: Cache-line number of each event's run.
    event_line: np.ndarray
    #: Original position of the run's first read; ``accesses`` when the run has none.
    event_first_read: np.ndarray
    #: Original position of the run's last access.
    event_last_pos: np.ndarray
    #: Number of writes preceding the run's first read (the whole run if no read).
    event_writes_before_read: np.ndarray
    #: Cached per-set potential-miss views, keyed by ``lines_per_way``.
    _set_views: Dict[int, "_SetView"] = field(
        default_factory=dict, repr=False, compare=False)

    def __len__(self) -> int:
        return int(self.event_line.shape[0])

    def set_view(self, lines_per_way: int) -> "_SetView":
        """Chain-collapsed per-set event stream for one set count (cached).

        Shared by every associativity and replacement policy with this
        ``lines_per_way``: the mapping of lines to sets -- and therefore
        which events can possibly miss -- depends only on the set count.
        """
        view = self._set_views.get(lines_per_way)
        if view is None:
            view = _build_set_view(self, lines_per_way)
            self._set_views[lines_per_way] = view
        return view

    @property
    def event_has_read(self) -> np.ndarray:
        """Boolean mask of events whose run contains at least one read."""
        return self.event_first_read < self.accesses

    @property
    def compression(self) -> float:
        """Accesses per event (1.0 means no consecutive same-line runs)."""
        return self.accesses / len(self) if len(self) else 1.0


def decode_trace(
    addresses: np.ndarray,
    writes: Optional[np.ndarray] = None,
    *,
    linesize_bytes: int,
) -> ColumnarTrace:
    """Decode an address trace into a :class:`ColumnarTrace` for one line size.

    ``writes`` is the optional store mask aligned with ``addresses``
    (omitted for the read-only instruction-cache case).  The result is
    geometry- and policy-independent: every configuration with this line
    size replays the same decoded view.
    """
    with span("decode", linesize=linesize_bytes) as decode_span:
        view = _decode_trace(addresses, writes, linesize_bytes=linesize_bytes)
        decode_span.set(accesses=view.accesses, events=len(view))
        return view


def _decode_trace(
    addresses: np.ndarray,
    writes: Optional[np.ndarray],
    *,
    linesize_bytes: int,
) -> ColumnarTrace:
    addresses = np.asarray(addresses, dtype=np.int64)
    n = len(addresses)
    if writes is None:
        writes_arr = np.zeros(n, dtype=bool)
    else:
        writes_arr = np.asarray(writes, dtype=bool)
        if writes_arr.shape != addresses.shape:
            raise ConfigurationError("writes mask must match the address trace length")
    write_total = int(np.count_nonzero(writes_arr))
    lines = addresses // linesize_bytes
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return ColumnarTrace(linesize_bytes, 0, 0, empty, empty, empty, empty)

    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    boundary[1:] = lines[1:] != lines[:-1]
    run_start = np.flatnonzero(boundary)
    run_end = np.append(run_start[1:], n)  # exclusive

    positions = np.arange(n, dtype=np.int64)
    # first read of each run: min over read positions, n as "no read" sentinel
    read_positions = np.where(writes_arr, n, positions)
    first_read = np.minimum.reduceat(read_positions, run_start)
    # every access before a run's first read is a write by construction
    writes_before = np.where(first_read < n, first_read - run_start, run_end - run_start)

    return ColumnarTrace(
        linesize_bytes=linesize_bytes,
        accesses=n,
        write_accesses=write_total,
        event_line=lines[run_start],
        event_first_read=first_read,
        event_last_pos=run_end - 1,
        event_writes_before_read=writes_before,
    )


@dataclass
class KernelState:
    """Mutable replay state, layout-compatible with :class:`Cache`'s stores."""

    #: ``(lines_per_way, ways)`` tag store; -1 marks an invalid way.
    tags: np.ndarray
    #: Per-way replacement ages (LRU recency; fill tick otherwise).
    age: np.ndarray
    #: Per-set LRR/FIFO replacement pointer.
    fifo: np.ndarray
    #: Accesses replayed so far (ages are ticks: position + tick + 1).
    tick: int = 0
    #: RANDOM-victim stream position, carried so a chained replay keeps
    #: drawing where the previous phase stopped (``None`` for callers that
    #: manage their own generator, e.g. :class:`~repro.microarch.cache.Cache`).
    rng: Optional[np.random.Generator] = None


def fresh_state(config: CacheConfig) -> KernelState:
    """Cold-cache state for one geometry (what a fresh :class:`Cache` holds)."""
    lines = config.lines_per_way
    return KernelState(
        tags=np.full((lines, config.ways), -1, dtype=np.int64),
        age=np.zeros((lines, config.ways), dtype=np.int64),
        fifo=np.zeros(lines, dtype=np.int64),
        tick=0,
        rng=np.random.default_rng(config.seed),
    )


def kernel_lane(requested: Optional[str] = None) -> str:
    """Resolve the effective set-associative replay lane.

    ``requested`` overrides the :data:`KERNEL_LANE_ENV` environment
    variable; an empty/unset value means the default
    (:data:`LANE_CROSSCONFIG`).  Requesting :data:`LANE_JIT` when Numba
    is unavailable resolves to the default lane instead of failing --
    the returned value is therefore what will actually run, which
    :class:`~repro.engine.backend.EngineStats` records as
    ``kernel_lane`` for auditability.
    """
    lane = requested if requested is not None else os.environ.get(KERNEL_LANE_ENV, "")
    lane = (lane or DEFAULT_LANE).strip().lower()
    if lane == "numba":  # convenience alias
        lane = LANE_JIT
    if lane not in _LANES:
        raise ConfigurationError(
            f"unknown kernel lane {lane!r}; choose one of {sorted(_LANES)}")
    if lane == LANE_JIT and _jit_loop() is None:
        return DEFAULT_LANE
    return lane


def jit_available() -> bool:
    """True when the Numba-compiled event loop can actually run."""
    return _jit_loop() is not None


def replay(
    view: ColumnarTrace,
    config: CacheConfig,
    state: Optional[KernelState] = None,
    rng: Optional[np.random.Generator] = None,
    *,
    lane: Optional[str] = None,
) -> CacheStatistics:
    """Replay a decoded trace against one geometry, mutating ``state``.

    With ``state``/``rng`` omitted the replay starts from a cold cache
    with the geometry's own seeded PRNG -- exactly what a fresh
    :class:`~repro.microarch.cache.Cache` would do.  Passing the state of
    a previous replay continues against the warm cache (its own ``rng``
    keeps the RANDOM victim stream in step); an explicit ``rng`` argument
    overrides the state's generator.  ``lane`` picks the set-associative
    implementation (see :func:`kernel_lane`); for a single replay the
    cross-config lane has nothing to share and behaves like the NumPy
    lane.
    """
    if view.linesize_bytes != config.linesize_bytes:
        raise ConfigurationError(
            f"decoded view has linesize {view.linesize_bytes}, "
            f"configuration expects {config.linesize_bytes}")
    if state is None:
        state = fresh_state(config)
    if rng is None:
        rng = state.rng if state.rng is not None else np.random.default_rng(config.seed)
    n = view.accesses
    # the scalar reference pre-draws one victim per *access* regardless of
    # policy or use; match it so the stream position stays identical
    random_victims = rng.integers(0, config.ways, size=n) if config.ways > 1 else None

    if n == 0:
        return CacheStatistics(0, 0, 0, 0, 0)
    if config.ways == 1:
        read_misses, write_misses = _replay_direct_mapped(view, config, state)
    elif kernel_lane(lane) == LANE_JIT:
        read_misses, write_misses = _replay_set_associative_events(
            view, config, state, random_victims)
    else:
        read_misses, write_misses = _replay_set_associative(
            view, config, state, random_victims)
    state.tick += n
    return CacheStatistics(
        accesses=n,
        read_accesses=n - view.write_accesses,
        write_accesses=view.write_accesses,
        read_misses=read_misses,
        write_misses=write_misses,
    )


def simulate_many(
    view: ColumnarTrace,
    configs: Sequence[CacheConfig],
    *,
    lane: Optional[str] = None,
) -> List[CacheStatistics]:
    """Replay one decoded trace against many cold-cache configurations.

    Equivalent to ``[Cache(c).simulate(addresses, writes) for c in configs]``
    but the columnar decode is paid once for the whole batch.  Every
    configuration must share the view's line size (group by line size
    before calling; :meth:`LiquidPlatform.simulate_cache_jobs
    <repro.platform.liquid.LiquidPlatform.simulate_cache_jobs>` does).

    Under the default :data:`LANE_CROSSCONFIG` lane the batch's
    associative configurations (``ways > 1``) additionally share the
    rank-synchronous replay loop itself through
    :func:`replay_many_associative`; direct-mapped configurations always
    replay individually (their replay is loop-free NumPy reductions).
    """
    resolved = kernel_lane(lane)
    configs = list(configs)
    with span("replay", configs=len(configs), lane=resolved,
              linesize=view.linesize_bytes):
        if resolved == LANE_CROSSCONFIG and view.accesses and len(view):
            associative = [i for i, c in enumerate(configs) if c.ways > 1]
            if len(associative) >= 2:
                results: List[Optional[CacheStatistics]] = [None] * len(configs)
                stacked, _ = replay_many_associative(
                    view, [configs[i] for i in associative])
                for i, statistics in zip(associative, stacked):
                    results[i] = statistics
                for i, config in enumerate(configs):
                    if results[i] is None:
                        results[i] = replay(view, config, lane=resolved)
                return results
        return [replay(view, config, lane=resolved) for config in configs]


def replay_chain(
    views: Sequence[ColumnarTrace],
    config: CacheConfig,
    state: Optional[KernelState] = None,
) -> Tuple[List[CacheStatistics], KernelState]:
    """Replay a sequence of phase views against one continuously-warm cache.

    Every view must share the configuration's line size.  Returns the
    per-phase statistics and the final :class:`KernelState`, which can be
    passed back in to extend the chain.  The chain is bit-identical --
    per-phase statistics sum to the one-shot statistics, and the final
    tag/age/FIFO state and RANDOM victim stream match exactly -- to
    replaying the concatenated trace in a single :func:`replay` call:
    run compression never merges events across phase boundaries, but a
    run split at a boundary replays to the same misses and state because
    presence can only change at a run's first read, which stays at the
    same global position.
    """
    if state is None:
        state = fresh_state(config)
    statistics = [replay(view, config, state=state) for view in views]
    return statistics, state


@dataclass(frozen=True)
class PhaseReplay:
    """Per-phase statistics of one geometry, warm-chained and cold-started.

    ``warm`` replays the phases against one continuously-warm cache (the
    deployment view: cache state carries across program phases);
    ``cold`` replays each phase from a cold cache with a freshly seeded
    PRNG (the paper's per-measurement view).  The warm statistics sum to
    the single-shot replay of the concatenated trace; the cold ones do
    not, and the difference is exactly the phase-transition effect the
    phase benchmarks report.
    """

    warm: Tuple[CacheStatistics, ...]
    cold: Tuple[CacheStatistics, ...]

    def warm_total(self) -> CacheStatistics:
        """Sum of the warm per-phase statistics (== the one-shot replay)."""
        return CacheStatistics(
            accesses=sum(s.accesses for s in self.warm),
            read_accesses=sum(s.read_accesses for s in self.warm),
            write_accesses=sum(s.write_accesses for s in self.warm),
            read_misses=sum(s.read_misses for s in self.warm),
            write_misses=sum(s.write_misses for s in self.warm),
        )


def replay_phases(
    views: Sequence[ColumnarTrace], config: CacheConfig
) -> PhaseReplay:
    """Warm-chained plus cold-started per-phase replay of one geometry.

    The expensive part -- decoding each phase -- is shared between the
    two replays (and with every other geometry at this line size), so
    asking for both costs two cheap replays of the same views.
    """
    with span("replay_phases", phases=len(views), ways=config.ways):
        warm, _ = replay_chain(views, config)
        return PhaseReplay(
            warm=tuple(warm),
            cold=tuple(replay(view, config) for view in views),
        )


# -- per-set potential-miss views --------------------------------------------------------


@dataclass(frozen=True)
class _SetView:
    """Chain-collapsed per-set event stream for one ``lines_per_way``.

    Events are grouped by set (per-set temporal order preserved) and
    maximal chains of *consecutive same-line events within a set* are
    collapsed into one potential-miss event each: between chain members
    no other line of that set is accessed, so the line's presence cannot
    change except at the chain's first read -- the same algebra that
    collapses same-line runs at decode time, applied after the
    set mapping is known.  Arrays come in two orderings: set-grouped
    (``set_index`` .. ``has_read``, used by the direct-mapped replay) and
    rank-ordered (``r_*``, used by the rank-synchronous set-associative
    replay, where slice ``k`` of ``rank_bounds`` holds every set's
    ``k``-th event).
    """

    # set-grouped order: each populated set's events, concatenated
    set_index: np.ndarray
    tag: np.ndarray
    first_read: np.ndarray
    last_pos: np.ndarray
    w_pre: np.ndarray
    has_read: np.ndarray
    group_starts: np.ndarray
    group_start_per_event: np.ndarray
    # rank order: the k-th event of every set is contiguous
    rank_bounds: np.ndarray
    r_set: np.ndarray
    r_tag: np.ndarray
    r_first_read: np.ndarray
    r_last_pos: np.ndarray
    r_w_pre: np.ndarray
    r_has_read: np.ndarray


def _build_set_view(view: ColumnarTrace, lines_per_way: int) -> _SetView:
    n = view.accesses
    indices = view.event_line % lines_per_way
    order = np.argsort(indices, kind="stable")
    idx_s = indices[order]
    line_s = view.event_line[order]
    first_read_s = view.event_first_read[order]
    last_pos_s = view.event_last_pos[order]
    w_pre_s = view.event_writes_before_read[order]
    events = len(idx_s)

    # chains: consecutive events on the same line within the same set
    chain_start = np.empty(events, dtype=bool)
    chain_start[0] = True
    chain_start[1:] = (idx_s[1:] != idx_s[:-1]) | (line_s[1:] != line_s[:-1])
    starts = np.flatnonzero(chain_start)
    ends = np.append(starts[1:], events) - 1
    chain_id = np.cumsum(chain_start) - 1

    # a chain member's leading writes can only miss while no earlier chain
    # member carried a read; compute "read seen before me, within my chain"
    # with a per-chain running minimum (the id*big offset confines the
    # accumulate to one chain: earlier chains' values are strictly larger)
    big = n + 1
    running_min = np.minimum.accumulate(first_read_s - chain_id * big)
    prior = np.empty(events, dtype=np.int64)
    prior[0] = big
    prior[1:] = running_min[:-1] + chain_id[1:] * big
    no_read_before = prior >= n
    w_pre_chain = np.add.reduceat(np.where(no_read_before, w_pre_s, 0), starts)

    cset = idx_s[starts]
    ctag = line_s[starts] // lines_per_way
    cfirst = np.minimum.reduceat(first_read_s, starts)
    clast = last_pos_s[ends]
    chas_read = cfirst < n
    chains = len(starts)

    group_boundary = np.empty(chains, dtype=bool)
    group_boundary[0] = True
    group_boundary[1:] = cset[1:] != cset[:-1]
    group_starts = np.flatnonzero(group_boundary)
    group_lengths = np.diff(np.append(group_starts, chains))
    start_per_event = np.repeat(group_starts, group_lengths)
    rank = np.arange(chains, dtype=np.int64) - start_per_event
    by_rank = np.argsort(rank, kind="stable")
    max_rank = int(rank.max())
    rank_bounds = np.searchsorted(rank[by_rank], np.arange(max_rank + 2))

    return _SetView(
        set_index=cset, tag=ctag, first_read=cfirst, last_pos=clast,
        w_pre=w_pre_chain, has_read=chas_read,
        group_starts=group_starts, group_start_per_event=start_per_event,
        rank_bounds=rank_bounds,
        r_set=cset[by_rank], r_tag=ctag[by_rank], r_first_read=cfirst[by_rank],
        r_last_pos=clast[by_rank], r_w_pre=w_pre_chain[by_rank],
        r_has_read=chas_read[by_rank],
    )


# -- direct-mapped replay ----------------------------------------------------------------


def _replay_direct_mapped(
    view: ColumnarTrace, config: CacheConfig, state: KernelState
) -> Tuple[int, int]:
    """Event replay of a 1-way cache as pure NumPy reductions.

    With a single way the stored tag of a set only changes at *reads*
    (write-through, no write-allocate), so an event starts present
    exactly when its tag matches the most recent earlier read-carrying
    event of the same set -- or the pre-existing tag store content when
    there is none.  On the set-grouped event stream that "previous
    read-carrying event in my set" relation is a running maximum.
    """
    lru = config.replacement == Replacement.LRU
    sv = view.set_view(config.lines_per_way)
    events = len(sv.set_index)

    positions = np.arange(events, dtype=np.int64)
    last_read = np.maximum.accumulate(np.where(sv.has_read, positions, -1))
    prev_read = np.empty(events, dtype=np.int64)
    prev_read[0] = -1
    prev_read[1:] = last_read[:-1]
    # a "previous read" carried over from a different set is invalid; the
    # event then sees the tag store's current content (-1 never matches)
    has_prev = prev_read >= sv.group_start_per_event
    initial_tags = state.tags[sv.set_index, 0]
    effective_tag = np.where(
        has_prev, sv.tag[np.maximum(prev_read, 0)], initial_tags)
    present = effective_tag == sv.tag

    absent = ~present
    read_misses = int(np.count_nonzero(absent & sv.has_read))
    write_misses = int(sv.w_pre[absent].sum())

    # final tag store: the last read-carrying event of each set wins
    group_ends = np.append(sv.group_starts[1:], events) - 1
    final_read = last_read[group_ends]
    touched = final_read >= sv.group_starts
    state.tags[sv.set_index[sv.group_starts[touched]], 0] = sv.tag[final_read[touched]]

    # replacement age, matching the scalar loop tick for tick: LRU updates
    # on every hit and fill (so the chain's last non-write-miss access
    # wins), other policies only at fills (the chain's first read)
    tick0 = state.tick + 1
    if lru:
        qualifies = present | sv.has_read
        age_tick = tick0 + sv.last_pos
    else:
        qualifies = absent & sv.has_read
        age_tick = tick0 + sv.first_read
    last_qualifying = np.maximum.accumulate(
        np.where(qualifies, positions, -1))[group_ends]
    aged = last_qualifying >= sv.group_starts
    state.age[sv.set_index[sv.group_starts[aged]], 0] = age_tick[last_qualifying[aged]]
    return read_misses, write_misses


# -- set-associative replay --------------------------------------------------------------


def _replay_set_associative(
    view: ColumnarTrace,
    config: CacheConfig,
    state: KernelState,
    random_victims: np.ndarray,
) -> Tuple[int, int]:
    """Rank-synchronous replay: all sets advance one event per iteration.

    Iteration ``k`` applies every set's ``k``-th potential-miss event
    simultaneously with vectorised presence tests and victim selection.
    Per-set event order is preserved and sets never interact, so the
    replay is exact; the Python-level loop runs max-events-per-set
    times, never once per access.
    """
    ways = config.ways
    lru = config.replacement == Replacement.LRU
    lrr = config.replacement == Replacement.LRR
    sv = view.set_view(config.lines_per_way)
    bounds = sv.rank_bounds

    tags, age, fifo = state.tags, state.age, state.fifo
    tick0 = state.tick + 1  # the k-th access of this replay runs at tick0 + k
    read_misses = 0
    write_misses = 0

    for k in range(len(bounds) - 1):
        sl = slice(bounds[k], bounds[k + 1])
        sets = sv.r_set[sl]       # distinct within a rank slice by construction
        tag = sv.r_tag[sl]
        rows = tags[sets]
        match = rows == tag[:, None]
        present = match.any(axis=1)
        absent = ~present
        write_misses += int(sv.r_w_pre[sl][absent].sum())

        if lru and present.any():
            hit_sets = sets[present]
            hit_way = np.argmax(match[present], axis=1)
            age[hit_sets, hit_way] = tick0 + sv.r_last_pos[sl][present]

        fill = absent & sv.r_has_read[sl]
        filled = int(np.count_nonzero(fill))
        read_misses += filled
        if not filled:
            continue
        fill_sets = sets[fill]
        fill_rows = rows[fill]
        invalid = fill_rows == -1
        has_invalid = invalid.any(axis=1)
        if lru:
            policy_victim = np.argmin(age[fill_sets], axis=1)
        elif lrr:
            policy_victim = fifo[fill_sets]
        else:
            policy_victim = random_victims[sv.r_first_read[sl][fill]]
        victim = np.where(has_invalid, np.argmax(invalid, axis=1), policy_victim)
        if lrr:
            evicting = ~has_invalid
            fifo[fill_sets[evicting]] = (victim[evicting] + 1) % ways
        tags[fill_sets, victim] = tag[fill]
        # LRU: in-chain hits after the fill promote the line to the chain's last tick
        fill_tick = sv.r_last_pos[sl] if lru else sv.r_first_read[sl]
        age[fill_sets, victim] = tick0 + fill_tick[fill]

    return read_misses, write_misses


# -- cross-config replay sharing ---------------------------------------------------------

_POLICY_CODES = {Replacement.LRU: 0, Replacement.LRR: 1, Replacement.RANDOM: 2}
_POLICY_LRU, _POLICY_LRR, _POLICY_RANDOM = 0, 1, 2
#: Tag value of padded ways in the stacked state: never matches a real tag
#: (tags are non-negative) and is never mistaken for an invalid way (-1).
_PAD_TAG = -2
#: Age of padded ways: never wins the LRU argmin against real ages (>= 0).
_PAD_AGE = np.iinfo(np.int64).max
#: Rank width below which the merged replay leaves the vectorized rank
#: loop for the event-serial tail.  Past the hottest few hundred ranks a
#: handful of sets carry all remaining events, so an iteration's dozen
#: numpy calls dwarf its per-event work; serialized Python-scalar replay
#: of the (already rank-ordered) remainder is cheaper.  The crossover
#: sits near fixed-iteration-cost / per-event-scalar-cost.  Tests pin
#: this to force either phase; 0 disables the tail entirely.
_TAIL_SWITCH = 32


def _policy_code(replacement: str) -> int:
    return _POLICY_CODES[replacement]


def _replay_tail_serial(rest, m_row, m_tag, m_read, m_code, m_rv, m_last1,
                        m_fill_tick1, m_ways, tags2d, age2d, fifo1d,
                        fills_so_far, absent_all):
    """Event-serial replay of the merged stream's narrow tail.

    The merged stream is rank-ordered and a row's events sit in distinct
    ranks, so walking the remaining events one by one in stream order
    executes exactly the schedule the vectorized loop would have run --
    without paying a dozen numpy dispatches per near-empty rank.  State
    for the few rows still active is lifted into plain Python lists and
    written back at the end.
    """
    e_row = m_row[rest].tolist()
    e_tag = m_tag[rest].tolist()
    e_read = m_read[rest].tolist()
    e_code = m_code[rest].tolist()
    e_rv = m_rv[rest].tolist()
    e_last1 = m_last1[rest].tolist()
    e_tick1 = m_fill_tick1[rest].tolist()
    e_ways = m_ways[rest].tolist()

    tags_l: Dict[int, list] = {}
    age_l: Dict[int, list] = {}
    fifo_l: Dict[int, int] = {}
    fills_l: Dict[int, int] = {}
    for r in set(e_row):
        tags_l[r] = tags2d[r].tolist()
        age_l[r] = age2d[r].tolist()
        fifo_l[r] = int(fifo1d[r])
        fills_l[r] = int(fills_so_far[r])

    absent_local = []
    for i in range(len(e_row)):
        r = e_row[i]
        t = e_tag[i]
        tl = tags_l[r]
        if t in tl:
            if e_code[i] == _POLICY_LRU:
                age_l[r][tl.index(t)] = e_last1[i]
            continue
        absent_local.append(i)
        if not e_read[i]:
            continue
        w = e_ways[i]
        f = fills_l[r]
        if f < w:
            victim = f   # cold start: first invalid way == fills so far
        else:
            code = e_code[i]
            if code == _POLICY_LRU:
                al = age_l[r]
                victim = al.index(min(al[:w]))
            elif code == _POLICY_LRR:
                victim = fifo_l[r]
                fifo_l[r] = (victim + 1) % w
            else:
                victim = e_rv[i]
        fills_l[r] = f + 1
        tl[victim] = t
        age_l[r][victim] = e_tick1[i]

    if absent_local:
        absent_all[np.asarray(absent_local, dtype=np.int64) + rest.start] = True
    for r, tl in tags_l.items():
        tags2d[r] = tl
        age2d[r] = age_l[r]
        fifo1d[r] = fifo_l[r]


def replay_many_associative(
    view: ColumnarTrace, configs: Sequence[CacheConfig]
) -> Tuple[List[CacheStatistics], List[KernelState]]:
    """Replay one decoded trace against many cold associative geometries at once.

    The whole batch advances through a single rank-synchronous loop:
    tag/age/FIFO state is stacked into one ``(configs, sets, ways)``
    array padded to the batch maxima, and the rank-``k`` event slices of
    every configuration's :class:`_SetView` are concatenated (with a
    per-event configuration index) so one iteration applies rank ``k``
    of *every* configuration.  The Python-level loop therefore runs
    ``max_c ranks(c)`` times for the group instead of
    ``sum_c ranks(c)`` -- the win grows with geometry density, which is
    exactly the shape of the paper's Figure-2 sweep.

    Mixed ``lines_per_way``, mixed ways and mixed replacement policies
    are all fine; only the line size must match the view's.  Results are
    bit-identical to per-config :func:`replay` from cold state: the same
    statistics, the same final (unpadded) :class:`KernelState`, and the
    same per-config seeded RANDOM victim stream (each configuration
    draws its full positional victim array exactly like :func:`replay`).
    Returns ``(statistics, states)`` in input order.
    """
    configs = list(configs)
    if not configs:
        return [], []
    for config in configs:
        if config.linesize_bytes != view.linesize_bytes:
            raise ConfigurationError(
                f"decoded view has linesize {view.linesize_bytes}, "
                f"configuration expects {config.linesize_bytes}")
        if config.ways < 2:
            raise ConfigurationError(
                "replay_many_associative requires ways >= 2; replay "
                "direct-mapped configurations individually")
    n = view.accesses
    if n == 0 or len(view) == 0:
        states = [fresh_state(config) for config in configs]
        stats = [replay(view, config, state=state)
                 for config, state in zip(configs, states)]
        return stats, states

    count = len(configs)
    ways_arr = np.asarray([c.ways for c in configs], dtype=np.int64)
    lpw_arr = np.asarray([c.lines_per_way for c in configs], dtype=np.int64)
    codes = np.asarray([_policy_code(c.replacement) for c in configs],
                       dtype=np.int64)
    max_ways = int(ways_arr.max())
    max_sets = int(lpw_arr.max())
    rngs = [np.random.default_rng(c.seed) for c in configs]

    # merged rank-ordered event stream: concatenate every config's
    # rank-ordered arrays, then stable-sort by rank so slice k holds the
    # rank-k events of all configs (config order preserved within a rank)
    rank_id_cache: Dict[int, np.ndarray] = {}
    rank_parts, cidx_parts, rv_parts = [], [], []
    set_parts, tag_parts, first_parts, last_parts = [], [], [], []
    wpre_parts, read_parts = [], []
    for c, config in enumerate(configs):
        lpw = int(lpw_arr[c])
        sv = view.set_view(lpw)
        rank_ids = rank_id_cache.get(lpw)
        if rank_ids is None:
            rank_ids = np.repeat(
                np.arange(len(sv.rank_bounds) - 1, dtype=np.int64),
                np.diff(sv.rank_bounds))
            rank_id_cache[lpw] = rank_ids
        # full positional draw, exactly like replay(), so the per-config
        # generator ends at the identical stream position
        draws = rngs[c].integers(0, int(ways_arr[c]), size=n)
        rank_parts.append(rank_ids)
        cidx_parts.append(np.full(len(rank_ids), c, dtype=np.int64))
        set_parts.append(sv.r_set)
        tag_parts.append(sv.r_tag)
        first_parts.append(sv.r_first_read)
        last_parts.append(sv.r_last_pos)
        wpre_parts.append(sv.r_w_pre)
        read_parts.append(sv.r_has_read)
        if codes[c] == _POLICY_RANDOM:
            # the clip only touches read-less events, which never fill
            rv_parts.append(draws[np.minimum(sv.r_first_read, n - 1)])
        else:
            rv_parts.append(np.zeros(len(rank_ids), dtype=np.int64))

    m_rank = np.concatenate(rank_parts)
    order = np.argsort(m_rank, kind="stable")
    m_rank = m_rank[order]
    m_cidx = np.concatenate(cidx_parts)[order]
    m_set = np.concatenate(set_parts)[order]
    m_tag = np.concatenate(tag_parts)[order]
    m_read = np.concatenate(read_parts)[order]
    m_rv = np.concatenate(rv_parts)[order]
    m_code = codes[m_cidx]
    m_is_lru = m_code == _POLICY_LRU
    # precompute everything the rank loop would otherwise recompute per
    # iteration: ages are always "tick0 + position" with tick0 == 1 (the
    # whole batch is cold), and the fill tick is policy-determined per
    # event (LRU promotes to the chain's last access, others stamp the
    # fill itself)
    m_first = np.concatenate(first_parts)[order]
    m_last1 = np.concatenate(last_parts)[order] + 1
    m_fill_tick1 = np.where(m_is_lru, m_last1, m_first + 1)
    # flattened (config, set) row index: every gather/scatter in the rank
    # loop then uses ONE integer index array instead of a (cidx, sets)
    # pair, which roughly halves the fancy-indexing cost per iteration
    m_row = m_cidx * max_sets + m_set
    m_ways = ways_arr[m_cidx]
    # fused per-event fill operands -- victim draw, tag, fill tick, ways,
    # policy code -- so handling a rank's fills costs ONE row gather
    # instead of five scattered ones (the loop is fixed-overhead bound:
    # its cost is numpy calls per iteration, not bytes moved)
    total_events = len(m_rank)
    m_fill_ops = np.empty((total_events, 5), dtype=np.int64)
    m_fill_ops[:, 0] = m_rv
    m_fill_ops[:, 1] = m_tag
    m_fill_ops[:, 2] = m_fill_tick1
    m_fill_ops[:, 3] = m_ways
    m_fill_ops[:, 4] = m_code
    bounds = np.searchsorted(m_rank, np.arange(int(m_rank[-1]) + 2)).tolist()

    tags = np.full((count, max_sets, max_ways), _PAD_TAG, dtype=np.int64)
    age = np.full((count, max_sets, max_ways), _PAD_AGE, dtype=np.int64)
    fifo = np.zeros((count, max_sets), dtype=np.int64)
    for c in range(count):
        tags[c, :lpw_arr[c], :ways_arr[c]] = -1
        age[c, :lpw_arr[c], :ways_arr[c]] = 0
    # 2-D views over the same storage, addressed by the flattened row ids
    tags2d = tags.reshape(count * max_sets, max_ways)
    age2d = age.reshape(count * max_sets, max_ways)
    fifo1d = fifo.reshape(count * max_sets)

    has_lru = bool(np.any(codes == _POLICY_LRU))
    has_lrr = bool(np.any(codes == _POLICY_LRR))
    # homogeneous-LRU groups (the Figure-2 geometry grid) take a leaner
    # path: invalid ways keep age 0 while every valid age is >= tick0, so
    # argmin(age) alone lands on the first invalid way of a cold set --
    # the oracle's invalid-first rule -- and the fill counter, policy
    # dispatch and per-event victim draws all drop out of the loop
    all_lru = has_lru and not bool(np.any(codes != _POLICY_LRU))
    # miss *accounting* is independent across ranks; record the per-event
    # outcomes and fold them into per-config counts with one bincount
    # after the loop instead of two per rank
    absent_all = np.zeros(total_events, dtype=bool)
    # the kernel starts cold and ways never re-invalidate, so the first
    # invalid way of a row is simply the number of fills it has absorbed;
    # a per-row counter replaces the per-fill invalid-way scan
    fills_so_far = np.zeros(count * max_sets, dtype=np.int64)

    # vectorize while ranks are wide; once they narrow to a handful of
    # hot sets, serialize the remainder (rank order is a valid schedule,
    # so replaying the leftover events one by one is the same machine)
    switch = len(bounds) - 1
    for k in range(len(bounds) - 1):
        if bounds[k + 1] - bounds[k] < _TAIL_SWITCH:
            switch = k
            break

    for k in range(switch):
        sl = slice(bounds[k], bounds[k + 1])
        rowsl = m_row[sl]
        rows = tags2d[rowsl]   # (events, max_ways); (config, set) pairs distinct
        match = rows == m_tag[sl][:, None]
        present = match.any(axis=1)
        absent = ~present
        absent_all[sl] = absent

        if has_lru:
            hits = (present if all_lru
                    else (present & m_is_lru[sl])).nonzero()[0]
            if len(hits):
                hit_way = np.argmax(match[hits], axis=1)
                age2d[rowsl[hits], hit_way] = m_last1[sl][hits]

        fill = (absent & m_read[sl]).nonzero()[0]
        if not len(fill):
            continue
        frow = rowsl[fill]
        ops = m_fill_ops[sl][fill]   # victim draw, tag, fill tick, ways, code
        if all_lru:
            victim = np.argmin(age2d[frow], axis=1)
        else:
            fills = fills_so_far[frow]
            full = fills >= ops[:, 3]
            policy_victim = ops[:, 0]
            if has_lru:
                code = ops[:, 4]
                policy_victim = np.where(
                    code == _POLICY_LRU,
                    np.argmin(age2d[frow], axis=1), policy_victim)
            if has_lrr:
                code = ops[:, 4]
                policy_victim = np.where(
                    code == _POLICY_LRR, fifo1d[frow], policy_victim)
            victim = np.where(full, policy_victim, fills)
            if has_lrr:
                evicting = ((code == _POLICY_LRR) & full).nonzero()[0]
                if len(evicting):
                    fifo1d[frow[evicting]] = (
                        victim[evicting] + 1) % ops[evicting, 3]
            fills_so_far[frow] = fills + 1
        tags2d[frow, victim] = ops[:, 1]
        age2d[frow, victim] = ops[:, 2]

    if switch < len(bounds) - 1:
        _replay_tail_serial(
            slice(bounds[switch], total_events),
            m_row, m_tag, m_read, m_code, m_rv, m_last1, m_fill_tick1,
            m_ways, tags2d, age2d, fifo1d, fills_so_far, absent_all)

    fill_all = absent_all & m_read
    read_misses = np.bincount(m_cidx[fill_all], minlength=count)
    write_misses = np.bincount(
        m_cidx[absent_all],
        weights=np.concatenate(wpre_parts)[order][absent_all], minlength=count)

    statistics: List[CacheStatistics] = []
    states: List[KernelState] = []
    write_counts = write_misses.astype(np.int64)
    for c, config in enumerate(configs):
        lpw, ways = int(lpw_arr[c]), int(ways_arr[c])
        states.append(KernelState(
            tags=tags[c, :lpw, :ways].copy(),
            age=age[c, :lpw, :ways].copy(),
            fifo=fifo[c, :lpw].copy(),
            tick=n,
            rng=rngs[c],
        ))
        statistics.append(CacheStatistics(
            accesses=n,
            read_accesses=n - view.write_accesses,
            write_accesses=view.write_accesses,
            read_misses=int(read_misses[c]),
            write_misses=int(write_counts[c]),
        ))
    return statistics, states


# -- JIT lane: per-set event loop --------------------------------------------------------


def _replay_events_loop(set_index, tag, first_read, last_pos, w_pre, has_read,
                        tags, age, fifo, random_victims, tick0, ways, policy):
    """Scalar per-event replay over a set-grouped :class:`_SetView`.

    Written in the Numba-compilable subset (plain loops, scalar branches,
    in-place ndarray mutation) and kept importable without Numba: this
    exact function object is what :func:`_jit_loop` hands to
    ``numba.njit``, and it is also directly runnable as plain Python,
    which the property tests use to pin the lane's semantics on hosts
    without Numba.
    """
    read_misses = 0
    write_misses = 0
    for e in range(set_index.shape[0]):
        s = set_index[e]
        t = tag[e]
        hit = False
        for w in range(ways):
            if tags[s, w] == t:
                if policy == 0:  # LRU promotes on hit
                    age[s, w] = tick0 + last_pos[e]
                hit = True
                break
        if hit:
            continue
        write_misses += w_pre[e]
        if not has_read[e]:
            continue
        read_misses += 1
        victim = -1
        for w in range(ways):
            if tags[s, w] == -1:
                victim = w
                break
        if victim < 0:
            if policy == 0:  # LRU
                victim = 0
                best = age[s, 0]
                for w in range(1, ways):
                    if age[s, w] < best:
                        best = age[s, w]
                        victim = w
            elif policy == 1:  # LRR: FIFO pointer advances only on eviction
                victim = fifo[s]
                fifo[s] = (victim + 1) % ways
            else:  # RANDOM: positional pre-drawn victim of the fill access
                victim = random_victims[first_read[e]]
        tags[s, victim] = t
        if policy == 0:
            age[s, victim] = tick0 + last_pos[e]
        else:
            age[s, victim] = tick0 + first_read[e]
    return read_misses, write_misses


#: Lazily-resolved compiled loop: ``None`` = not tried, ``False`` = unavailable.
_JIT_LOOP = None


def _jit_loop():
    global _JIT_LOOP
    if _JIT_LOOP is None:
        try:
            from numba import njit

            _JIT_LOOP = njit(cache=True, nogil=True)(_replay_events_loop)
        except Exception:
            _JIT_LOOP = False
    return _JIT_LOOP if _JIT_LOOP else None


def _replay_set_associative_events(
    view: ColumnarTrace,
    config: CacheConfig,
    state: KernelState,
    random_victims: np.ndarray,
    loop=None,
) -> Tuple[int, int]:
    """JIT-lane replay: run the per-set event loop over the set view.

    ``loop`` defaults to the compiled loop (plain Python as a last
    resort); the tests pass :func:`_replay_events_loop` explicitly to
    exercise the lane's semantics without Numba.
    """
    if loop is None:
        loop = _jit_loop() or _replay_events_loop
    sv = view.set_view(config.lines_per_way)
    read_misses, write_misses = loop(
        sv.set_index, sv.tag, sv.first_read, sv.last_pos, sv.w_pre, sv.has_read,
        state.tags, state.age, state.fifo, random_victims,
        state.tick + 1, config.ways, _policy_code(config.replacement))
    return int(read_misses), int(write_misses)

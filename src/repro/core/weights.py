"""Objective weights of the optimisation (the paper's w1 and w2).

The paper's objective is ``minimise sum_i [w1 * rho_i * x_i +
w2 * (lambda_i + beta_i) * x_i]``: ``w1`` weights application runtime,
``w2`` weights the combined chip-resource cost.  Making one weight
dominate the other selects the optimisation goal:

* ``w1 = 100, w2 = 1``  -- application runtime optimisation (Section 6.1)
* ``w1 = 1,   w2 = 100`` -- chip-resource optimisation (Section 6.2)
* ``w1 = 100, w2 = 0``  -- pure runtime optimisation used in the dcache
  study of Section 5.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Weights",
    "RUNTIME_OPTIMIZATION",
    "RESOURCE_OPTIMIZATION",
    "RUNTIME_ONLY",
]


@dataclass(frozen=True)
class Weights:
    """Objective weights: ``runtime`` is the paper's w1, ``resources`` is w2."""

    runtime: float
    resources: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.runtime < 0 or self.resources < 0:
            raise ValueError("weights must be non-negative")
        if self.runtime == 0 and self.resources == 0:
            raise ValueError("at least one weight must be positive")

    def objective_coefficient(self, rho: float, lam: float, beta: float) -> float:
        """The objective coefficient of one perturbation variable."""
        return self.runtime * rho + self.resources * (lam + beta)

    def describe(self) -> str:
        name = self.label or "custom"
        return f"{name} (w1={self.runtime:g}, w2={self.resources:g})"


#: Optimise application runtime over chip resources (paper Section 6.1).
RUNTIME_OPTIMIZATION = Weights(runtime=100.0, resources=1.0, label="runtime optimisation")

#: Optimise chip resources over application runtime (paper Section 6.2).
RESOURCE_OPTIMIZATION = Weights(runtime=1.0, resources=100.0, label="resource optimisation")

#: Pure runtime optimisation used by the dcache study (paper Section 5).
RUNTIME_ONLY = Weights(runtime=100.0, resources=0.0, label="runtime only")

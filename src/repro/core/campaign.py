"""The one-factor-at-a-time measurement campaign (Section 3 of the paper).

Starting from the base configuration, every perturbation variable's
configuration is built and the application is executed on it; the
resulting rho/lambda/beta deltas populate a :class:`~repro.core.model.CostModel`.
The number of builds is *linear* in the number of parameter values
(52-ish for the full LEON space) instead of the ~3.6 billion exhaustive
configurations -- this is the feasibility/scalability argument of the
paper, and :meth:`OneFactorCampaign.effort` exposes the actual counts so
the scalability benchmark can report them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.config.configuration import Configuration
from repro.config.leon_space import leon_parameter_space
from repro.config.parameters import ParameterSpace
from repro.config.perturbation import PerturbationSpace
from repro.errors import MeasurementError
from repro.platform.liquid import LiquidPlatform
from repro.platform.measurement import CostDelta, Measurement
from repro.core.model import CostModel
from repro.workloads.base import Workload

__all__ = ["OneFactorCampaign", "CampaignRecord"]


@dataclass(frozen=True)
class CampaignRecord:
    """One measured perturbation (kept for the per-variable cost tables)."""

    index: int
    label: str
    configuration: Configuration
    measurement: Measurement
    delta: CostDelta


class OneFactorCampaign:
    """Runs the linear measurement campaign for one workload."""

    def __init__(
        self,
        platform: LiquidPlatform,
        parameter_space: Optional[ParameterSpace] = None,
    ):
        self.platform = platform
        self.parameter_space = parameter_space or leon_parameter_space()
        self._records: List[CampaignRecord] = []

    # -- execution -------------------------------------------------------------------------

    def run(
        self,
        workload: Workload,
        *,
        parameters: Optional[Iterable[str]] = None,
        perturbation_space: Optional[PerturbationSpace] = None,
    ) -> CostModel:
        """Measure the base configuration and every one-factor perturbation.

        ``parameters`` restricts the campaign to a parameter subset (the
        dcache-only study of the paper's Section 5); alternatively a
        pre-built ``perturbation_space`` can be supplied.
        """
        space = perturbation_space or PerturbationSpace(self.parameter_space, parameters)
        base_measurement = self.platform.measure(workload, space.base)

        deltas: List[CostDelta] = []
        measurements: List[Measurement] = []
        records: List[CampaignRecord] = []
        for variable, configuration in space.iter_single_configurations():
            if not self.platform.fits(configuration):
                # The paper excludes such values a priori (e.g. 64 KB set
                # size); with the default LEON space every perturbation
                # fits, but a custom space may not.
                raise MeasurementError(
                    f"perturbation {variable.label} does not fit on the device; "
                    f"exclude the value from the parameter space")
            measurement = self.platform.measure(workload, configuration)
            delta = measurement.delta(base_measurement)
            deltas.append(delta)
            measurements.append(measurement)
            records.append(CampaignRecord(
                index=variable.index,
                label=variable.label,
                configuration=configuration,
                measurement=measurement,
                delta=delta,
            ))
        self._records = records
        return CostModel(
            workload=workload.name,
            space=space,
            base=base_measurement,
            deltas=tuple(deltas),
            measurements=tuple(measurements),
        )

    # -- reporting ------------------------------------------------------------------------------

    @property
    def records(self) -> Tuple[CampaignRecord, ...]:
        """Records of the most recent campaign run."""
        return tuple(self._records)

    def effort(self) -> Dict[str, int]:
        """Distinct builds and profiling runs performed by the platform so far."""
        return self.platform.effort()

    def exhaustive_size(self) -> int:
        """Size of the exhaustive design space for comparison in reports."""
        return self.parameter_space.exhaustive_size()

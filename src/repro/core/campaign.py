"""The one-factor-at-a-time measurement campaign (Section 3 of the paper).

Starting from the base configuration, every perturbation variable's
configuration is built and the application is executed on it; the
resulting rho/lambda/beta deltas populate a :class:`~repro.core.model.CostModel`.
The number of builds is *linear* in the number of parameter values
(52-ish for the full LEON space) instead of the ~3.6 billion exhaustive
configurations -- this is the feasibility/scalability argument of the
paper, and :meth:`OneFactorCampaign.effort` exposes the actual counts so
the scalability benchmark can report them.

The campaign submits the base configuration and every perturbation as
**one batch** through the backend's
:meth:`~repro.engine.backend.EvaluationBackend.measure_many`, so a
parallel backend (:class:`~repro.engine.ParallelEvaluator`) can
deduplicate and fan the underlying simulations out over worker
processes; :meth:`OneFactorCampaign.run_many` extends the batch across
several workloads at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.config.configuration import Configuration
from repro.config.leon_space import leon_parameter_space
from repro.config.parameters import ParameterSpace
from repro.config.perturbation import PerturbationSpace, PerturbationVariable
from repro.errors import MeasurementError
from repro.engine.backend import EvaluationBackend
from repro.platform.measurement import CostDelta, Measurement
from repro.core.model import CostModel
from repro.workloads.base import Workload

__all__ = ["OneFactorCampaign", "CampaignRecord"]


@dataclass(frozen=True)
class CampaignRecord:
    """One measured perturbation (kept for the per-variable cost tables)."""

    index: int
    label: str
    configuration: Configuration
    measurement: Measurement
    delta: CostDelta


class OneFactorCampaign:
    """Runs the linear measurement campaign for one or more workloads."""

    def __init__(
        self,
        platform: EvaluationBackend,
        parameter_space: Optional[ParameterSpace] = None,
    ):
        self.platform = platform
        self.parameter_space = parameter_space or leon_parameter_space()
        self._records: List[CampaignRecord] = []

    # -- planning --------------------------------------------------------------------------

    def _plan(
        self,
        *,
        parameters: Optional[Iterable[str]] = None,
        perturbation_space: Optional[PerturbationSpace] = None,
    ) -> Tuple[PerturbationSpace, List[PerturbationVariable], List[Configuration]]:
        """The batch of configurations one campaign run needs, base first.

        Every perturbation is screened with the backend's (memoised)
        :meth:`fits` before anything is measured: the paper excludes
        unbuildable values a priori (e.g. a 64 KB set size), and with the
        default LEON space every perturbation fits.
        """
        space = perturbation_space or PerturbationSpace(self.parameter_space, parameters)
        variables: List[PerturbationVariable] = []
        configurations: List[Configuration] = [space.base]
        for variable, configuration in space.iter_single_configurations():
            if not self.platform.fits(configuration):
                raise MeasurementError(
                    f"perturbation {variable.label} does not fit on the device; "
                    f"exclude the value from the parameter space")
            variables.append(variable)
            configurations.append(configuration)
        return space, variables, configurations

    @staticmethod
    def _assemble(
        workload: Workload,
        space: PerturbationSpace,
        variables: List[PerturbationVariable],
        measurements: List[Measurement],
    ) -> Tuple[CostModel, List[CampaignRecord]]:
        base_measurement, perturbed = measurements[0], measurements[1:]
        deltas: List[CostDelta] = []
        records: List[CampaignRecord] = []
        for variable, measurement in zip(variables, perturbed):
            delta = measurement.delta(base_measurement)
            deltas.append(delta)
            records.append(CampaignRecord(
                index=variable.index,
                label=variable.label,
                configuration=measurement.configuration,
                measurement=measurement,
                delta=delta,
            ))
        model = CostModel(
            workload=workload.name,
            space=space,
            base=base_measurement,
            deltas=tuple(deltas),
            measurements=tuple(perturbed),
        )
        return model, records

    # -- execution -------------------------------------------------------------------------

    def run(
        self,
        workload: Workload,
        *,
        parameters: Optional[Iterable[str]] = None,
        perturbation_space: Optional[PerturbationSpace] = None,
    ) -> CostModel:
        """Measure the base configuration and every one-factor perturbation.

        ``parameters`` restricts the campaign to a parameter subset (the
        dcache-only study of the paper's Section 5); alternatively a
        pre-built ``perturbation_space`` can be supplied.
        """
        space, variables, configurations = self._plan(
            parameters=parameters, perturbation_space=perturbation_space)
        measurements = self.platform.measure_many(workload, configurations)
        model, records = self._assemble(workload, space, variables, measurements)
        self._records = records
        return model

    def run_many(
        self,
        workloads: Iterable[Workload],
        *,
        parameters: Optional[Iterable[str]] = None,
    ) -> Dict[str, CostModel]:
        """Run the campaign for several workloads as one concurrent batch.

        With a batch-capable backend the cache simulations of every
        workload share one worker pool; with a plain platform this
        degrades to sequential per-workload runs.  Results are keyed by
        workload name; :attr:`records` afterwards holds the records of the
        *last* workload in iteration order (matching repeated :meth:`run`
        calls).
        """
        workloads = list(workloads)
        space, variables, configurations = self._plan(parameters=parameters)
        batch_api = getattr(self.platform, "measure_many_multi", None)
        if batch_api is not None:
            by_workload = batch_api({w: configurations for w in workloads})
        else:
            by_workload = {
                w: self.platform.measure_many(w, configurations) for w in workloads}
        models: Dict[str, CostModel] = {}
        for workload in workloads:
            model, records = self._assemble(
                workload, space, variables, by_workload[workload])
            models[workload.name] = model
            self._records = records
        return models

    # -- reporting ------------------------------------------------------------------------------

    @property
    def records(self) -> Tuple[CampaignRecord, ...]:
        """Records of the most recent campaign run."""
        return tuple(self._records)

    def effort(self) -> Dict[str, int]:
        """Distinct builds and profiling runs performed by the platform so far."""
        return self.platform.effort()

    def exhaustive_size(self) -> int:
        """Size of the exhaustive design space for comparison in reports."""
        return self.parameter_space.exhaustive_size()

"""Solvers for the BINLP problem.

The paper uses the commercial Tomlab /MINLP solver (a MATLAB plug-in);
we provide our own solvers over the exact same formulation:

* :class:`BranchAndBoundSolver` -- the primary solver.  It branches over
  the at-most-one groups (and the free binary variables), uses a
  separable lower bound (the best possible objective of the not-yet-fixed
  variables, ignoring resource constraints) for pruning, seeds the search
  with a greedy incumbent and checks the coupling/resource constraints at
  every node.  On the paper's problem sizes it explores a few hundred to
  a few thousand nodes.
* :class:`ExhaustiveSolver` -- enumerates every combination; only usable
  on scaled-down spaces (the dcache study) and used as the ground truth
  in tests.
* :class:`GreedyIndependentSolver` -- picks the best option per group
  ignoring resources and then repairs feasibility by dropping the least
  valuable picks; serves as the ablation baseline showing why the
  constrained formulation matters.
* :class:`RandomSearchSolver` -- samples random feasible selections.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import OptimizationError
from repro.core.binlp import BinlpProblem

__all__ = [
    "Solution",
    "BranchAndBoundSolver",
    "ExhaustiveSolver",
    "GreedyIndependentSolver",
    "RandomSearchSolver",
]


@dataclass(frozen=True)
class Solution:
    """Result of one solver run."""

    selection: Tuple[int, ...]
    objective: float
    feasible: bool
    optimal: bool
    nodes_explored: int = 0
    solver: str = ""

    def describe(self) -> str:
        status = "optimal" if self.optimal else ("feasible" if self.feasible else "infeasible")
        return (
            f"{self.solver}: objective {self.objective:.3f}, {len(self.selection)} variables "
            f"selected, {status}, {self.nodes_explored} nodes")


def _decision_groups(problem: BinlpProblem) -> List[Tuple[int, ...]]:
    """Groups plus singleton pseudo-groups for free binary variables."""
    grouped = {i for group in problem.groups for i in group}
    decisions: List[Tuple[int, ...]] = [tuple(group) for group in problem.groups]
    for i in range(problem.variable_count):
        if i not in grouped:
            decisions.append((i,))
    return decisions


def _order_decisions(problem: BinlpProblem, decisions: List[Tuple[int, ...]]) -> List[Tuple[int, ...]]:
    """Order decisions so constraint-coupled groups are fixed first.

    Fixing the cache-structure groups early makes the bilinear resource
    terms concrete as soon as possible, which lets infeasible branches be
    pruned high in the tree.
    """
    coupled: set[int] = set()
    for constraint in problem.resource_constraints:
        for _, factor_a, factor_b in constraint.products:
            coupled.update(factor_a)
            coupled.update(factor_b)
    for constraint in problem.linear_constraints:
        coupled.update(constraint.coefficients)

    def sort_key(group: Tuple[int, ...]) -> Tuple[int, float]:
        touches = any(i in coupled for i in group)
        best = min(problem.objective[i] for i in group)
        return (0 if touches else 1, best)

    return sorted(decisions, key=sort_key)


class GreedyIndependentSolver:
    """Pick the best option of every group independently, then repair feasibility."""

    name = "greedy"

    def solve(self, problem: BinlpProblem) -> Solution:
        decisions = _decision_groups(problem)
        picks: List[int] = []
        for group in decisions:
            best = min(group, key=lambda i: problem.objective[i])
            if problem.objective[best] < 0:
                picks.append(best)
        picks.sort()
        # repair: drop the least valuable picks until every constraint holds
        nodes = 1
        current = list(picks)
        while current and problem.violations(current):
            nodes += 1
            # prefer dropping variables that participate in violated constraints
            worst = max(current, key=lambda i: problem.objective[i])
            candidates = []
            chosen = set(current)
            for constraint in list(problem.linear_constraints) + list(problem.resource_constraints):
                if not constraint.satisfied(chosen):
                    for i in current:
                        candidates.append(i)
                    break
            drop = max(candidates or current, key=lambda i: problem.objective[i])
            if drop == worst and problem.objective[drop] < 0 and candidates:
                # dropping an improving variable: pick the one with the least benefit
                drop = max(candidates, key=lambda i: problem.objective[i])
            current.remove(drop)
        feasible = problem.is_feasible(current)
        return Solution(
            selection=tuple(sorted(current)),
            objective=problem.objective_value(current),
            feasible=feasible,
            optimal=False,
            nodes_explored=nodes,
            solver=self.name,
        )


class BranchAndBoundSolver:
    """Depth-first branch and bound over the group structure."""

    name = "branch-and-bound"

    def __init__(self, node_limit: int = 500_000):
        self.node_limit = node_limit

    def solve(self, problem: BinlpProblem) -> Solution:
        decisions = _order_decisions(problem, _decision_groups(problem))
        n_decisions = len(decisions)

        # The decisions are ordered so that every group touching a coupling or
        # bilinear resource constraint comes first.  Once those are fixed, the
        # remaining variables only interact through the two scalar resource
        # budgets, so the unconstrained-optimal completion (take every
        # improving option) is optimal for the subtree whenever it is
        # feasible -- which it almost always is, because the non-cache deltas
        # are tiny compared to the head-room.  This keeps the search exact
        # while visiting only a few hundred nodes on the paper's problems.
        coupled: set[int] = set()
        for constraint in problem.resource_constraints:
            for _, factor_a, factor_b in constraint.products:
                coupled.update(factor_a)
                coupled.update(factor_b)
        for constraint in problem.linear_constraints:
            coupled.update(constraint.coefficients)
        n_coupled = sum(1 for group in decisions if any(i in coupled for i in group))

        # optimistic objective obtainable from decisions[k:] (ignoring constraints)
        suffix_bound = [0.0] * (n_decisions + 1)
        for k in range(n_decisions - 1, -1, -1):
            best = min(0.0, min(problem.objective[i] for i in decisions[k]))
            suffix_bound[k] = suffix_bound[k + 1] + best

        # largest possible *decrease* of each resource constraint achievable by
        # decisions[k:] -- used to prune prefixes that can never become feasible.
        # Beyond the coupled prefix only the linear terms of the constraints can
        # change, so the computation is exact there.
        resource_constraints = list(problem.resource_constraints)
        suffix_reduction = {
            c.name: [0.0] * (n_decisions + 1) for c in resource_constraints}
        for constraint in resource_constraints:
            column = suffix_reduction[constraint.name]
            for k in range(n_decisions - 1, -1, -1):
                best = min(
                    0.0,
                    min(constraint.linear.get(i, 0.0) for i in decisions[k]))
                column[k] = column[k + 1] + best

        def greedy_completion(k: int) -> Tuple[List[int], float]:
            """Best possible (unconstrained) completion of decisions[k:]."""
            picks: List[int] = []
            objective = 0.0
            for group in decisions[k:]:
                best = min(group, key=lambda i: problem.objective[i])
                if problem.objective[best] < 0:
                    picks.append(best)
                    objective += problem.objective[best]
            return picks, objective

        # incumbent from the greedy solver (only if feasible)
        greedy = GreedyIndependentSolver().solve(problem)
        best_objective = greedy.objective if greedy.feasible else 0.0
        best_selection: Tuple[int, ...] = greedy.selection if greedy.feasible else ()
        # the empty selection (keep the base configuration) is always feasible
        if not problem.is_feasible(best_selection):
            best_selection, best_objective = (), 0.0

        nodes = 0
        limit_hit = False

        def dfs(k: int, chosen: List[int], objective: float) -> None:
            nonlocal nodes, best_objective, best_selection, limit_hit
            nodes += 1
            if nodes > self.node_limit:
                limit_hit = True
                return
            if objective + suffix_bound[k] >= best_objective - 1e-12:
                return
            if k == n_decisions:
                if problem.is_feasible(chosen) and objective < best_objective - 1e-12:
                    best_objective = objective
                    best_selection = tuple(sorted(chosen))
                return
            if k >= n_coupled:
                chosen_set = set(chosen)
                # coupling rules involve only coupled variables, which are all
                # decided by now: violations can never be repaired downstream.
                for constraint in problem.linear_constraints:
                    if not constraint.satisfied(chosen_set):
                        return
                # a prefix whose resource usage cannot be brought back under the
                # budget by any remaining choice is a dead end.
                for constraint in resource_constraints:
                    if (constraint.value(chosen_set)
                            + suffix_reduction[constraint.name][k]
                            > constraint.bound + 1e-9):
                        return
                # all coupled decisions fixed: try the unconstrained-optimal completion
                picks, completion_objective = greedy_completion(k)
                candidate = chosen + picks
                if problem.is_feasible(candidate):
                    total = objective + completion_objective
                    if total < best_objective - 1e-12:
                        best_objective = total
                        best_selection = tuple(sorted(candidate))
                    return
            group = decisions[k]
            # explore the most promising options first: skip (0) and each member
            options: List[Optional[int]] = [None] + list(group)
            options.sort(key=lambda i: 0.0 if i is None else problem.objective[i])
            for option in options:
                if limit_hit:
                    return
                if option is None:
                    dfs(k + 1, chosen, objective)
                else:
                    chosen.append(option)
                    dfs(k + 1, chosen, objective + problem.objective[option])
                    chosen.pop()

        dfs(0, [], 0.0)
        return Solution(
            selection=best_selection,
            objective=best_objective,
            feasible=problem.is_feasible(best_selection),
            optimal=not limit_hit,
            nodes_explored=nodes,
            solver=self.name,
        )


class ExhaustiveSolver:
    """Enumerate every combination of the decision groups (small problems only)."""

    name = "exhaustive"

    def __init__(self, max_combinations: int = 2_000_000):
        self.max_combinations = max_combinations

    def solve(self, problem: BinlpProblem) -> Solution:
        decisions = _decision_groups(problem)
        total = 1
        for group in decisions:
            total *= len(group) + 1
            if total > self.max_combinations:
                raise OptimizationError(
                    f"exhaustive enumeration would need {total}+ combinations "
                    f"(limit {self.max_combinations}); use branch and bound instead")
        best_selection: Tuple[int, ...] = ()
        best_objective = 0.0
        nodes = 0
        option_lists = [[None] + list(group) for group in decisions]
        for combo in itertools.product(*option_lists):
            nodes += 1
            selection = [i for i in combo if i is not None]
            objective = sum(problem.objective[i] for i in selection)
            if objective >= best_objective - 1e-12:
                continue
            if problem.is_feasible(selection):
                best_objective = objective
                best_selection = tuple(sorted(selection))
        return Solution(
            selection=best_selection,
            objective=best_objective,
            feasible=True,
            optimal=True,
            nodes_explored=nodes,
            solver=self.name,
        )


class RandomSearchSolver:
    """Uniform random sampling baseline used in the solver ablation."""

    name = "random-search"

    def __init__(self, samples: int = 2000, seed: int = 7):
        self.samples = samples
        self.seed = seed

    def solve(self, problem: BinlpProblem) -> Solution:
        rng = random.Random(self.seed)
        decisions = _decision_groups(problem)
        best_selection: Tuple[int, ...] = ()
        best_objective = 0.0
        for _ in range(self.samples):
            selection: List[int] = []
            for group in decisions:
                choice = rng.randrange(len(group) + 1)
                if choice:
                    selection.append(group[choice - 1])
            objective = sum(problem.objective[i] for i in selection)
            if objective < best_objective - 1e-12 and problem.is_feasible(selection):
                best_objective = objective
                best_selection = tuple(sorted(selection))
        return Solution(
            selection=best_selection,
            objective=best_objective,
            feasible=True,
            optimal=False,
            nodes_explored=self.samples,
            solver=self.name,
        )

"""The paper's contribution: linear campaign + BINLP-based microarchitecture tuning."""

from repro.core.weights import (
    RESOURCE_OPTIMIZATION,
    RUNTIME_ONLY,
    RUNTIME_OPTIMIZATION,
    Weights,
)
from repro.core.model import CostModel
from repro.core.campaign import CampaignRecord, OneFactorCampaign
from repro.core.binlp import BilinearConstraint, BinlpProblem, LinearConstraint, build_problem
from repro.core.solvers import (
    BranchAndBoundSolver,
    ExhaustiveSolver,
    GreedyIndependentSolver,
    RandomSearchSolver,
    Solution,
)
from repro.core.approximations import PredictedCosts, predict_costs, prediction_errors
from repro.core.tuner import MicroarchTuner, TuningResult

__all__ = [
    "RESOURCE_OPTIMIZATION",
    "RUNTIME_ONLY",
    "RUNTIME_OPTIMIZATION",
    "Weights",
    "CostModel",
    "CampaignRecord",
    "OneFactorCampaign",
    "BilinearConstraint",
    "BinlpProblem",
    "LinearConstraint",
    "build_problem",
    "BranchAndBoundSolver",
    "ExhaustiveSolver",
    "GreedyIndependentSolver",
    "RandomSearchSolver",
    "Solution",
    "PredictedCosts",
    "predict_costs",
    "prediction_errors",
    "MicroarchTuner",
    "TuningResult",
]

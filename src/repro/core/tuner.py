"""End-to-end automatic microarchitecture tuner (the paper's contribution).

:class:`MicroarchTuner` runs the full pipeline of the paper's Section 3:

1. one-factor measurement campaign over the (possibly restricted)
   parameter space;
2. BINLP formulation with the requested weights;
3. solve (branch and bound by default);
4. apply the selected perturbations to obtain the recommended
   configuration, predict its cost under the independence assumption and
   -- optionally -- actually build and measure it for comparison.

The :class:`TuningResult` carries everything the paper's result tables
need: the recommended configuration, which parameters changed, the
predicted and measured costs and the solver diagnostics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from repro.config.configuration import Configuration
from repro.config.leon_space import leon_parameter_space
from repro.config.parameters import ParameterSpace
from repro.config.rules import require_valid
from repro.engine.backend import EngineStats, EvaluationBackend
from repro.errors import OptimizationError
from repro.platform.liquid import LiquidPlatform
from repro.platform.measurement import Measurement
from repro.core.approximations import PredictedCosts, predict_costs, prediction_errors
from repro.core.binlp import BinlpProblem, build_problem
from repro.core.campaign import OneFactorCampaign
from repro.core.model import CostModel
from repro.core.solvers import BranchAndBoundSolver, Solution
from repro.core.weights import RUNTIME_OPTIMIZATION, Weights
from repro.workloads.base import Workload

__all__ = ["MicroarchTuner", "TuningResult"]


@dataclass(frozen=True)
class TuningResult:
    """Everything produced by one tuning run."""

    workload: str
    weights: Weights
    model: CostModel
    problem: BinlpProblem
    solution: Solution
    configuration: Configuration
    predicted: PredictedCosts
    base: Measurement
    actual: Optional[Measurement] = None

    # -- convenience accessors -----------------------------------------------------------------

    @property
    def selection(self) -> Tuple[int, ...]:
        return self.solution.selection

    def changed_parameters(self) -> Dict[str, Tuple[Any, Any]]:
        """Parameters reconfigured from the base configuration: name -> (base, new)."""
        return self.configuration.diff(self.base.configuration)

    def predicted_runtime_gain_percent(self) -> float:
        """Predicted runtime improvement over the base configuration (positive = faster)."""
        return -self.predicted.runtime_percent

    def actual_runtime_gain_percent(self) -> float:
        """Measured runtime improvement (requires ``verify=True`` at tuning time)."""
        if self.actual is None:
            raise OptimizationError("tuning was run with verify=False; no actual measurement")
        return -100.0 * (self.actual.cycles - self.base.cycles) / self.base.cycles

    def actual_resource_delta(self) -> Dict[str, float]:
        """Measured (LUT, BRAM) utilisation change in percentage points."""
        if self.actual is None:
            raise OptimizationError("tuning was run with verify=False; no actual measurement")
        delta = self.actual.resources.delta_percent(self.base.resources)
        return {"lut": delta["lut"], "bram": delta["bram"]}

    def prediction_errors(self) -> Dict[str, float]:
        """Signed prediction errors of the optimizer's approximations."""
        if self.actual is None:
            raise OptimizationError("tuning was run with verify=False; no actual measurement")
        return prediction_errors(self.predicted, self.actual, self.base)

    def summary(self) -> str:
        lines = [f"{self.workload} / {self.weights.describe()}:"]
        changes = self.changed_parameters()
        if not changes:
            lines.append("  recommended configuration: base (no change)")
        else:
            for name, (old, new) in sorted(changes.items()):
                lines.append(f"  {name}: {old!r} -> {new!r}")
        lines.append(f"  predicted runtime change: {self.predicted.runtime_percent:+.2f}%")
        if self.actual is not None:
            lines.append(f"  measured runtime change: {-self.actual_runtime_gain_percent():+.2f}%")
        return "\n".join(lines)


class MicroarchTuner:
    """Automatic application-specific microarchitecture reconfiguration."""

    def __init__(
        self,
        platform: Optional[EvaluationBackend] = None,
        parameter_space: Optional[ParameterSpace] = None,
        solver: Optional[Any] = None,
    ):
        self.platform = platform or LiquidPlatform()
        self.parameter_space = parameter_space or leon_parameter_space()
        self.solver = solver or BranchAndBoundSolver()
        self.campaign = OneFactorCampaign(self.platform, self.parameter_space)

    def _record_stage(self, stage: str, seconds: float) -> None:
        """Account a pipeline stage on an engine backend's statistics, if any."""
        stats = getattr(self.platform, "stats", None)
        if isinstance(stats, EngineStats):
            stats.add_stage(stage, seconds)

    # -- pipeline --------------------------------------------------------------------------------

    def build_model(
        self, workload: Workload, *, parameters: Optional[Iterable[str]] = None
    ) -> CostModel:
        """Run (or re-use) the one-factor campaign for ``workload``."""
        return self.campaign.run(workload, parameters=parameters)

    def build_models(
        self,
        workloads: Iterable[Workload],
        *,
        parameters: Optional[Iterable[str]] = None,
    ) -> Dict[str, CostModel]:
        """One-factor campaigns for several workloads as a single batch.

        With an engine backend the measurement work of every workload
        shares one worker pool (and one persistent store); the models are
        keyed by workload name and individually identical to
        :meth:`build_model` output.
        """
        return self.campaign.run_many(workloads, parameters=parameters)

    def tune(
        self,
        workload: Workload,
        weights: Weights = RUNTIME_OPTIMIZATION,
        *,
        parameters: Optional[Iterable[str]] = None,
        model: Optional[CostModel] = None,
        verify: bool = True,
        lut_nonlinear: bool = False,
        bram_nonlinear: bool = True,
    ) -> TuningResult:
        """Recommend a configuration for ``workload`` under ``weights``.

        ``parameters`` restricts the tuned parameter subset (the dcache
        study); ``model`` allows reusing a campaign across several weight
        settings; ``verify`` additionally builds and measures the
        recommended configuration (the paper's "actual synthesis" rows).
        """
        model = model or self.build_model(workload, parameters=parameters)
        solve_start = time.perf_counter()
        problem = build_problem(
            model, weights, lut_nonlinear=lut_nonlinear, bram_nonlinear=bram_nonlinear)
        solution = self.solver.solve(problem)
        self._record_stage("solve", time.perf_counter() - solve_start)
        configuration = require_valid(model.space.apply(solution.selection))
        predicted = predict_costs(model, solution.selection)
        actual = self.platform.measure(workload, configuration) if verify else None
        return TuningResult(
            workload=workload.name,
            weights=weights,
            model=model,
            problem=problem,
            solution=solution,
            configuration=configuration,
            predicted=predicted,
            base=model.base,
            actual=actual,
        )

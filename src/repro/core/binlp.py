"""Constrained Binary Integer Nonlinear Program (BINLP) formulation.

This module reproduces Section 4 of the paper.  Each perturbation
variable x_i is binary; the objective minimises
``sum_i [w1 * rho_i + w2 * (lambda_i + beta_i)] * x_i``; the constraints
are:

* *parameter validity*: at most one variable per multi-valued parameter
  group (``sum_{i in group} x_i <= 1``);
* *LEON coupling rules*: LRR replacement requires the 2-set variable of
  the same cache (``x_LRR - x_2sets <= 0``) and LRU requires some
  multi-set variable (``x_LRU - sum_sets x_i <= 0``);
* *FPGA resources*: the LUT and BRAM deltas of the selection must fit in
  the headroom left by the base configuration, where the cache terms are
  *bilinear*: the set-count group multiplies the set-size group
  (``(1 + x1 + 2 x2 + 3 x3) * sum_i beta_i x_i``).  Following the paper,
  the LUT constraint is kept linear by default because LUT variation is
  minimal; the BRAM constraint is nonlinear.

The problem object is solver agnostic: it can evaluate the objective and
check feasibility of any selection, which is all the solvers in
:mod:`repro.core.solvers` need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.config.perturbation import PerturbationSpace, Selection
from repro.errors import OptimizationError
from repro.core.model import CostModel
from repro.core.weights import Weights

__all__ = ["LinearConstraint", "BilinearConstraint", "BinlpProblem", "build_problem"]


@dataclass(frozen=True)
class LinearConstraint:
    """``sum_i coefficients[i] * x_i <= bound``."""

    name: str
    coefficients: Mapping[int, float]
    bound: float

    def value(self, chosen: frozenset[int] | set[int]) -> float:
        return sum(c for i, c in self.coefficients.items() if i in chosen)

    def satisfied(self, chosen: frozenset[int] | set[int], tolerance: float = 1e-9) -> bool:
        return self.value(chosen) <= self.bound + tolerance


@dataclass(frozen=True)
class BilinearConstraint:
    """``sum_products (a0 + sum a_i x_i) * (sum b_j x_j) + sum_i linear_i x_i <= bound``.

    This is the exact shape of the paper's FPGA resource constraints: one
    product per cache (set-count factor times set-size deltas) plus linear
    terms for every other variable.
    """

    name: str
    products: Tuple[Tuple[float, Mapping[int, float], Mapping[int, float]], ...]
    linear: Mapping[int, float]
    bound: float

    def value(self, chosen: frozenset[int] | set[int]) -> float:
        total = sum(c for i, c in self.linear.items() if i in chosen)
        for constant, factor_a, factor_b in self.products:
            a = constant + sum(c for i, c in factor_a.items() if i in chosen)
            b = sum(c for i, c in factor_b.items() if i in chosen)
            total += a * b
        return total

    def satisfied(self, chosen: frozenset[int] | set[int], tolerance: float = 1e-9) -> bool:
        return self.value(chosen) <= self.bound + tolerance


@dataclass
class BinlpProblem:
    """A complete problem instance over one workload's cost model."""

    space: PerturbationSpace
    objective: Tuple[float, ...]
    groups: Tuple[Tuple[int, ...], ...]
    linear_constraints: Tuple[LinearConstraint, ...]
    resource_constraints: Tuple[BilinearConstraint, ...]
    weights: Weights
    name: str = "binlp"

    def __post_init__(self) -> None:
        if len(self.objective) != len(self.space):
            raise OptimizationError("objective length does not match the variable count")

    @property
    def variable_count(self) -> int:
        return len(self.objective)

    # -- evaluation ---------------------------------------------------------------------------

    def objective_value(self, selection: Selection) -> float:
        chosen = self.space.validate_selection(selection)
        return sum(self.objective[i] for i in chosen)

    def violations(self, selection: Selection) -> List[str]:
        """Names of all constraints violated by ``selection`` (group rules included)."""
        chosen = set(self.space.validate_selection(selection))
        out: List[str] = []
        for group in self.groups:
            if sum(1 for i in group if i in chosen) > 1:
                out.append(f"group:{self.space.variable(group[0]).parameter}")
        for constraint in self.linear_constraints:
            if not constraint.satisfied(chosen):
                out.append(constraint.name)
        for constraint in self.resource_constraints:
            if not constraint.satisfied(chosen):
                out.append(constraint.name)
        return out

    def is_feasible(self, selection: Selection) -> bool:
        return not self.violations(selection)


def _cache_products(
    model: CostModel, values: Dict[int, float]
) -> Tuple[Tuple[float, Mapping[int, float], Mapping[int, float]], ...]:
    """The per-cache bilinear products of the paper's resource constraints."""
    groups = model.cache_group_indices()
    products = []
    for cache in ("icache", "dcache"):
        sets_idx = groups[f"{cache}_sets"]
        size_idx = groups[f"{cache}_setsize"]
        if not size_idx:
            continue
        factor_a = {index: float(position + 1) for position, index in enumerate(sets_idx)}
        factor_b = {i: values[i] for i in size_idx}
        products.append((1.0, factor_a, factor_b))
    return tuple(products)


def _coupling_constraints(space: PerturbationSpace) -> List[LinearConstraint]:
    """LRR/LRU coupling rules as linear constraints (when the variables exist)."""
    constraints: List[LinearConstraint] = []
    for cache in ("icache", "dcache"):
        sets_vars = {v.value: v.index for v in space.variables_for(f"{cache}_sets")}
        repl_vars = {v.value: v.index for v in space.variables_for(f"{cache}_replacement")}
        if "lrr" in repl_vars and 2 in sets_vars:
            constraints.append(LinearConstraint(
                name=f"{cache}_lrr_requires_2_sets",
                coefficients={repl_vars["lrr"]: 1.0, sets_vars[2]: -1.0},
                bound=0.0,
            ))
        elif "lrr" in repl_vars:
            # no 2-set variable available: LRR can never be selected
            constraints.append(LinearConstraint(
                name=f"{cache}_lrr_unavailable",
                coefficients={repl_vars["lrr"]: 1.0},
                bound=0.0,
            ))
        if "lru" in repl_vars:
            coefficients: Dict[int, float] = {repl_vars["lru"]: 1.0}
            for value, index in sets_vars.items():
                if value >= 2:
                    coefficients[index] = -1.0
            bound = 0.0
            if len(coefficients) == 1:
                # no multi-set variable in the space: LRU is unavailable
                bound = 0.0
            constraints.append(LinearConstraint(
                name=f"{cache}_lru_requires_multiway",
                coefficients=coefficients,
                bound=bound,
            ))
    return constraints


def build_problem(
    model: CostModel,
    weights: Weights,
    *,
    lut_nonlinear: bool = False,
    bram_nonlinear: bool = True,
    name: str = "",
) -> BinlpProblem:
    """Build the paper's BINLP from a measured cost model and weights.

    ``lut_nonlinear`` / ``bram_nonlinear`` select whether the cache terms
    of the corresponding resource constraint use the bilinear product
    form; the paper keeps LUTs linear ("variation in LUTs utilisation is
    very minimal") and BRAM nonlinear, and Section 6 analyses the effect
    of that simplification -- our ablation benchmark does the same.
    """
    space = model.space
    objective = tuple(
        weights.objective_coefficient(d.rho, d.lam, d.beta) for d in model.deltas)
    groups = tuple(g.variable_indices for g in space.groups)

    lam = {i: model.deltas[i].lam for i in range(len(space))}
    beta = {i: model.deltas[i].beta for i in range(len(space))}
    size_indices = set(
        model.cache_group_indices()["icache_setsize"]
        + model.cache_group_indices()["dcache_setsize"])

    def resource_constraint(label: str, values: Dict[int, float], bound: float,
                            nonlinear: bool) -> BilinearConstraint:
        if nonlinear:
            products = _cache_products(model, values)
            linear = {i: v for i, v in values.items() if i not in size_indices}
        else:
            products = ()
            linear = dict(values)
        return BilinearConstraint(name=label, products=products, linear=linear, bound=bound)

    constraints = (
        resource_constraint("lut_capacity", lam, model.lut_headroom, lut_nonlinear),
        resource_constraint("bram_capacity", beta, model.bram_headroom, bram_nonlinear),
    )
    return BinlpProblem(
        space=space,
        objective=objective,
        groups=groups,
        linear_constraints=tuple(_coupling_constraints(space)),
        resource_constraints=constraints,
        weights=weights,
        name=name or f"{model.workload}:{weights.describe()}",
    )

"""Cost approximations performed by the optimizer.

The optimizer never measures the combined configuration it recommends
before recommending it; it *predicts* the configuration's cost from the
one-factor deltas under the parameter-independence assumption.  The paper
reports these predictions next to the actually synthesised/measured
values in Figures 5 and 7 (rows "Cost approximations by the optimizer"
vs. "Actual synthesis"), including both the linear and the nonlinear
variants of the LUT and BRAM approximations.

:func:`predict_costs` computes all of those numbers for a selection;
:func:`prediction_errors` compares them with an actual measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config.perturbation import Selection
from repro.core.model import CostModel
from repro.platform.measurement import Measurement

__all__ = ["PredictedCosts", "predict_costs", "prediction_errors"]


@dataclass(frozen=True)
class PredictedCosts:
    """Optimizer-side cost predictions for one selection."""

    runtime_percent: float          # predicted runtime change (rho sum)
    runtime_cycles: float           # predicted absolute runtime
    lut_percent_linear: float       # linear LUT approximation (paper default)
    lut_percent_nonlinear: float    # nonlinear LUT approximation (reported for comparison)
    bram_percent_linear: float      # linear BRAM approximation (reported for comparison)
    bram_percent_nonlinear: float   # nonlinear BRAM approximation (paper default)

    @property
    def runtime_seconds(self) -> float:
        """Predicted runtime in seconds at the default platform clock."""
        from repro.microarch.statistics import cycles_to_seconds

        return cycles_to_seconds(int(round(self.runtime_cycles)))


def predict_costs(model: CostModel, selection: Selection) -> PredictedCosts:
    """All optimizer-side predictions for ``selection`` on ``model``."""
    return PredictedCosts(
        runtime_percent=model.predict_runtime_percent(selection),
        runtime_cycles=model.predict_runtime_cycles(selection),
        lut_percent_linear=model.predict_lut_percent(selection, nonlinear=False),
        lut_percent_nonlinear=model.predict_lut_percent(selection, nonlinear=True),
        bram_percent_linear=model.predict_bram_percent(selection, nonlinear=False),
        bram_percent_nonlinear=model.predict_bram_percent(selection, nonlinear=True),
    )


def prediction_errors(predicted: PredictedCosts, actual: Measurement,
                      base: Measurement) -> Dict[str, float]:
    """Signed prediction errors against the actually measured configuration.

    Runtime error is expressed in percentage points of the base runtime
    (the paper's "range of overestimation"); resource errors are in
    percentage points of device utilisation.
    """
    actual_runtime_percent = 100.0 * (actual.cycles - base.cycles) / base.cycles
    return {
        "runtime_percent_error": predicted.runtime_percent - actual_runtime_percent,
        "lut_error_linear": predicted.lut_percent_linear - actual.lut_percent,
        "lut_error_nonlinear": predicted.lut_percent_nonlinear - actual.lut_percent,
        "bram_error_linear": predicted.bram_percent_linear - actual.bram_percent,
        "bram_error_nonlinear": predicted.bram_percent_nonlinear - actual.bram_percent,
    }

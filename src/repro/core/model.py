"""The one-factor cost model (rho/lambda/beta deltas per perturbation).

The measurement campaign produces, for every perturbation variable x_i,
the runtime delta ``rho_i`` (percent of the base runtime), the LUT delta
``lambda_i`` and the BRAM delta ``beta_i`` (percentage points of the
device capacity), all relative to the base configuration.  The cost
model stores these together with the base measurement and provides the
*approximations* the optimizer uses to predict the cost of combined
configurations under the parameter-independence assumption:

* runtime and linear resource predictions simply add the deltas;
* the nonlinear resource prediction reproduces the paper's cache
  coupling, where the number-of-sets group multiplies the set-size group
  (Section 4.2, "FPGA Resource Constraints").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Sequence, Tuple

from repro.config.perturbation import PerturbationSpace, Selection
from repro.errors import OptimizationError
from repro.platform.measurement import CostDelta, Measurement

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Measured one-factor deltas plus the base measurement for one workload."""

    workload: str
    space: PerturbationSpace
    base: Measurement
    deltas: Tuple[CostDelta, ...]
    measurements: Tuple[Measurement, ...] = field(default=())

    def __post_init__(self) -> None:
        if len(self.deltas) != len(self.space):
            raise OptimizationError(
                f"cost model has {len(self.deltas)} deltas for {len(self.space)} variables")

    # -- element access ------------------------------------------------------------------

    def delta(self, index: int) -> CostDelta:
        return self.deltas[index]

    def measurement(self, index: int) -> Measurement:
        if not self.measurements:
            raise OptimizationError("this cost model was built without raw measurements")
        return self.measurements[index]

    def rho(self) -> Tuple[float, ...]:
        """Runtime deltas (percent) for all variables, in index order."""
        return tuple(d.rho for d in self.deltas)

    def lam(self) -> Tuple[float, ...]:
        return tuple(d.lam for d in self.deltas)

    def beta(self) -> Tuple[float, ...]:
        return tuple(d.beta for d in self.deltas)

    # -- headroom (the paper's L and B) -------------------------------------------------------

    @property
    def lut_headroom(self) -> float:
        """Percentage points of LUTs left after the base configuration (the paper's L)."""
        return 100.0 - self.base.lut_percent

    @property
    def bram_headroom(self) -> float:
        """Percentage points of BRAM left after the base configuration (the paper's B)."""
        return 100.0 - self.base.bram_percent

    # -- cache group bookkeeping ------------------------------------------------------------------

    def _group_indices(self, parameter: str) -> Tuple[int, ...]:
        return tuple(v.index for v in self.space.variables_for(parameter))

    def cache_group_indices(self) -> Dict[str, Tuple[int, ...]]:
        """Variable indices of the four cache-structure groups (may be empty)."""
        return {
            "icache_sets": self._group_indices("icache_sets"),
            "icache_setsize": self._group_indices("icache_setsize_kb"),
            "dcache_sets": self._group_indices("dcache_sets"),
            "dcache_setsize": self._group_indices("dcache_setsize_kb"),
        }

    # -- predictions (the optimizer's approximations) ----------------------------------------------

    def predict_runtime_percent(self, selection: Selection) -> float:
        """Predicted runtime change in percent (sum of rho over the selection)."""
        chosen = self.space.validate_selection(selection)
        return sum(self.deltas[i].rho for i in chosen)

    def predict_runtime_cycles(self, selection: Selection) -> float:
        """Predicted absolute runtime in cycles."""
        return self.base.cycles * (1.0 + self.predict_runtime_percent(selection) / 100.0)

    def _sets_multiplier(self, chosen: Sequence[int], sets_indices: Tuple[int, ...]) -> float:
        """The paper's ``(1 + x1 + 2 x2 + 3 x3)`` factor for one cache."""
        factor = 1.0
        for position, index in enumerate(sets_indices):
            if index in chosen:
                factor += position + 1
        return factor

    def _predict_resource(self, selection: Selection, attribute: str, nonlinear: bool) -> float:
        chosen = set(self.space.validate_selection(selection))
        base_value = getattr(self.base, attribute)
        values = {i: getattr(self.deltas[i], "lam" if attribute == "lut_percent" else "beta")
                  for i in range(len(self.space))}
        if not nonlinear:
            return base_value + sum(values[i] for i in chosen)
        groups = self.cache_group_indices()
        total = base_value
        nonlinear_handled: set[int] = set()
        for cache in ("icache", "dcache"):
            sets_idx = groups[f"{cache}_sets"]
            size_idx = groups[f"{cache}_setsize"]
            multiplier = self._sets_multiplier(tuple(chosen), sets_idx)
            size_term = sum(values[i] for i in size_idx if i in chosen)
            total += multiplier * size_term
            nonlinear_handled.update(size_idx)
        total += sum(values[i] for i in chosen if i not in nonlinear_handled)
        return total

    def predict_lut_percent(self, selection: Selection, *, nonlinear: bool = False) -> float:
        """Predicted LUT utilisation; the paper keeps this linear by default."""
        return self._predict_resource(selection, "lut_percent", nonlinear)

    def predict_bram_percent(self, selection: Selection, *, nonlinear: bool = True) -> float:
        """Predicted BRAM utilisation; the paper keeps this nonlinear by default."""
        return self._predict_resource(selection, "bram_percent", nonlinear)

    # -- reporting ------------------------------------------------------------------------------------

    def table_rows(self, indices: Iterable[int] | None = None) -> Tuple[Mapping[str, object], ...]:
        """Per-variable rows (label, rho, lambda, beta) for the experiment tables."""
        rows = []
        for i in (indices if indices is not None else range(len(self.space))):
            var = self.space.variable(i)
            delta = self.deltas[i]
            rows.append({
                "index": i,
                "label": var.label,
                "rho_percent": delta.rho,
                "lambda_percent": delta.lam,
                "beta_percent": delta.beta,
            })
        return tuple(rows)

"""Workload abstractions.

A workload is one of the paper's benchmark applications: it knows how to
build its program (via the assembler DSL), how to generate its synthetic
input data, what results the program is expected to produce (computed
independently in Python) and how to extract those results from a finished
simulation for verification.

The functional execution of a workload is configuration independent, so
the resulting :class:`~repro.microarch.trace.ExecutionTrace` is cached on
the workload instance and shared by every configuration evaluation -- this
is what makes the measurement campaign cheap enough to run hundreds of
configuration evaluations.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from typing import Dict, Mapping, Optional

import numpy as np

from repro.errors import VerificationError
from repro.isa.program import Program
from repro.microarch.functional import FunctionalSimulator, SimulationResult
from repro.microarch.trace import ExecutionTrace

__all__ = ["Workload"]


class Workload(ABC):
    """One benchmark application with synthetic inputs and a reference output."""

    #: Short identifier used in tables (e.g. ``"blastn"``).
    name: str = "workload"
    #: One-line description for reports.
    description: str = ""
    #: The paper's characterisation ("memory-access intensive", "computation intensive").
    characterization: str = ""

    def __init__(self, *, max_instructions: int = 2_000_000):
        self.max_instructions = max_instructions
        self._program: Optional[Program] = None
        self._result: Optional[SimulationResult] = None
        self._fingerprint: Optional[str] = None

    # -- to be provided by concrete workloads -----------------------------------------

    @abstractmethod
    def build_program(self) -> Program:
        """Assemble the workload program (called once and cached)."""

    @abstractmethod
    def reference(self) -> Mapping[str, int]:
        """Expected observable results, computed independently in Python."""

    @abstractmethod
    def extract_results(self, result: SimulationResult) -> Mapping[str, int]:
        """Observable results of a finished simulation (same keys as :meth:`reference`)."""

    # -- cached execution -----------------------------------------------------------------

    @property
    def program(self) -> Program:
        """The assembled program (built lazily, cached)."""
        if self._program is None:
            self._program = self.build_program()
        return self._program

    def run_functional(self, *, force: bool = False) -> SimulationResult:
        """Execute the workload functionally (cached across calls)."""
        if self._result is None or force:
            simulator = FunctionalSimulator(self.program, max_instructions=self.max_instructions)
            self._result = simulator.run(trace_name=self.name)
        return self._result

    def trace(self) -> ExecutionTrace:
        """The configuration-independent execution trace of this workload."""
        return self.run_functional().trace

    def columnar_view(self, kind: str, linesize_bytes: int):
        """Cached columnar cache-kernel view of this workload's trace.

        Delegates to :meth:`ExecutionTrace.columnar_view
        <repro.microarch.trace.ExecutionTrace.columnar_view>`; the view is
        cached on the trace, so every cache geometry sharing a line size
        replays one decode.
        """
        return self.trace().columnar_view(kind, linesize_bytes)

    def features(self):
        """Memoised configuration-independent feature vector of the trace.

        Delegates to :meth:`ExecutionTrace.features
        <repro.microarch.trace.ExecutionTrace.features>`; this is the
        summary the broadcast-batched sweep path
        (:func:`~repro.microarch.timing.evaluate_many`) multiplies
        against a compiled configuration grid, so a sweep reduces the
        trace once, not once per configuration.
        """
        return self.trace().features()

    def fingerprint(self) -> str:
        """Content digest identifying this workload's execution trace.

        Measurement memoisation and the persistent result store key on
        this instead of :attr:`name`, so two same-named workloads with
        different inputs (e.g. a scaled-down test variant) can never
        alias each other's results.
        """
        if self._fingerprint is None:
            trace = self.trace()
            digest = hashlib.sha1()
            for array in (trace.pcs, trace.op_classes, trace.mem_addrs,
                          trace.load_use_hazard, trace.cc_branch_hazard,
                          trace.window_events):
                digest.update(np.ascontiguousarray(array).tobytes())
            self._fingerprint = (
                f"{self.name}:{trace.instruction_count}:{digest.hexdigest()[:16]}")
        return self._fingerprint

    # -- verification ------------------------------------------------------------------------

    def verify(self, result: Optional[SimulationResult] = None) -> Dict[str, int]:
        """Check the simulation results against the Python reference.

        Returns the extracted results on success and raises
        :class:`~repro.errors.VerificationError` on the first mismatch.
        """
        result = result or self.run_functional()
        expected = dict(self.reference())
        actual = dict(self.extract_results(result))
        for key, value in expected.items():
            if key not in actual:
                raise VerificationError(f"{self.name}: result {key!r} missing from simulation")
            if actual[key] != value:
                raise VerificationError(
                    f"{self.name}: result {key!r} mismatch: expected {value}, got {actual[key]}")
        return actual

    # -- reporting ------------------------------------------------------------------------------

    def mix_summary(self) -> Dict[str, float]:
        """Instruction-mix characterisation of the workload."""
        return self.trace().mix_summary()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"

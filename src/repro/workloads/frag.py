"""CommBench FRAG benchmark (Benchmark III of the paper).

FRAG is IP packet fragmentation: each input packet is split into
MTU-sized fragments; every fragment gets a copy of the IP header with the
length, flags and fragment-offset fields adjusted and the header checksum
recomputed, and the corresponding slice of the payload is copied to the
output buffer (paper, Section 2.5: "computation intensive").

Inputs are a synthetic packet trace; payload lengths are multiples of
four bytes so the copy loop can move whole words (the real CommBench
kernel does the same word-wise copy).  The workload is verified by
comparing the fragment count, the running sum of all fragment header
checksums and the number of payload bytes copied against a bit-exact
Python reference.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

import numpy as np

from repro.isa.assembler import Assembler
from repro.isa.program import MemoryLayout, Program
from repro.microarch.functional import SimulationResult
from repro.workloads.base import Workload
from repro.workloads.data import make_packet_trace

__all__ = ["FragWorkload"]

_MASK32 = 0xFFFFFFFF
_IP_HEADER_BYTES = 20
_IP_HEADER_HALFWORDS = 10
#: "More fragments" flag in the flags/offset halfword.
_MF_FLAG = 0x2000


def _checksum(halfwords: List[int]) -> int:
    """RFC 791 one's-complement header checksum over 16-bit fields."""
    total = sum(h & 0xFFFF for h in halfwords)
    total = (total & 0xFFFF) + (total >> 16)
    total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


class FragWorkload(Workload):
    """IP fragmentation over a synthetic packet trace."""

    name = "frag"
    description = "CommBench FRAG: IP packet fragmentation with header checksums"
    characterization = "computation intensive, streaming memory"

    def __init__(
        self,
        packet_count: int = 48,
        mtu: int = 276,
        seed: int = 424242,
        **kwargs,
    ):
        super().__init__(**kwargs)
        if mtu <= _IP_HEADER_BYTES or (mtu - _IP_HEADER_BYTES) % 8:
            raise ValueError("MTU must leave a payload chunk that is a multiple of 8 bytes")
        self.packet_count = packet_count
        self.mtu = mtu
        self.chunk = mtu - _IP_HEADER_BYTES
        self.seed = seed
        self._packets = self._generate_packets()

    # -- synthetic inputs ----------------------------------------------------------------

    def _generate_packets(self) -> List[Tuple[List[int], bytes]]:
        """Per packet: the 10 header halfwords and the payload bytes."""
        trace = make_packet_trace(self.packet_count, seed=self.seed,
                                  minimum_length=64, maximum_length=1204)
        rng = np.random.default_rng(self.seed + 1)
        packets: List[Tuple[List[int], bytes]] = []
        for i in range(self.packet_count):
            payload_len = int(trace.lengths[i])
            payload_len -= payload_len % 4          # keep the copy loop word aligned
            payload_len = max(payload_len, 64)
            total_length = payload_len + _IP_HEADER_BYTES
            src = int(trace.source_addresses[i])
            dst = int(trace.destination_addresses[i])
            header = [
                0x4500,                      # version/IHL/TOS
                total_length & 0xFFFF,       # total length
                (0x3000 + i) & 0xFFFF,       # identification
                0x0000,                      # flags / fragment offset
                (64 << 8) | 17,              # TTL / protocol (UDP)
                0x0000,                      # header checksum (filled per fragment)
                (src >> 16) & 0xFFFF, src & 0xFFFF,
                (dst >> 16) & 0xFFFF, dst & 0xFFFF,
            ]
            payload = bytes(int(v) for v in rng.integers(0, 256, size=payload_len))
            packets.append((header, payload))
        return packets

    # -- program --------------------------------------------------------------------------

    def build_program(self) -> Program:
        total_output = sum(
            ((len(payload) + self.chunk - 1) // self.chunk) * self.mtu
            for _, payload in self._packets)
        total_input = sum(_IP_HEADER_BYTES + len(payload) for _, payload in self._packets)
        needed = 0x0008_0000 + total_input + total_output + 4096
        layout = MemoryLayout(memory_size=max(0x0020_0000, (needed + 0xFFFF) & ~0xFFFF | 0))
        asm = Assembler(self.name, layout=layout)

        # ---- data segment -------------------------------------------------------------
        asm.data_label("results")
        asm.word_data([0, 0, 0])
        asm.data_label("input")
        for header, payload in self._packets:
            asm.half_data(header)
            asm.byte_data(payload)
        asm.align(4)
        asm.data_label("output")
        asm.zeros(total_output)

        # ---- main ------------------------------------------------------------------------
        asm.label("start")
        asm.set("g1", "input")       # input packet pointer
        asm.set("g2", "output")      # output fragment pointer
        asm.set("g3", self.packet_count)
        asm.set("g5", 0)             # fragment count
        asm.set("g6", 0)             # checksum accumulator
        asm.set("g7", 0)             # payload bytes copied
        asm.label("packet_loop")
        asm.cmp("g3", 0)
        asm.be("finish")
        asm.call("process_packet")
        asm.sub("g3", "g3", 1)
        asm.ba("packet_loop")
        asm.label("finish")
        asm.set("o0", "results")
        asm.st("g5", "o0", 0)
        asm.st("g6", "o0", 4)
        asm.st("g7", "o0", 8)
        asm.halt()

        # ---- per-packet fragmentation (uses a register window) ----------------------------
        asm.label("process_packet")
        asm.save(96)
        asm.lduh("l0", "g1", 2)              # total length
        asm.sub("l0", "l0", _IP_HEADER_BYTES)  # payload length
        asm.mov("l1", "l0")                  # remaining payload
        asm.add("l2", "g1", _IP_HEADER_BYTES)  # source payload pointer
        asm.set("l3", 0)                     # fragment offset in 8-byte units
        asm.label("frag_loop")
        asm.set("l4", self.chunk)
        asm.cmp("l1", "l4")
        asm.bge("chunk_ready")
        asm.mov("l4", "l1")                  # last fragment: chunk = remaining
        asm.label("chunk_ready")
        # more-fragments flag
        asm.set("l7", 0)
        asm.cmp("l1", "l4")
        asm.ble("no_more_flag")
        asm.set("l7", _MF_FLAG)
        asm.label("no_more_flag")
        # build the fragment header at the output pointer (g2)
        asm.lduh("o1", "g1", 0)
        asm.sth("o1", "g2", 0)               # version/IHL/TOS
        asm.add("o1", "l4", _IP_HEADER_BYTES)
        asm.sth("o1", "g2", 2)               # fragment total length
        asm.lduh("o1", "g1", 4)
        asm.sth("o1", "g2", 4)               # identification
        asm.or_("o1", "l7", "l3")
        asm.sth("o1", "g2", 6)               # flags / fragment offset
        asm.lduh("o1", "g1", 8)
        asm.sth("o1", "g2", 8)               # TTL / protocol
        asm.sth("g0", "g2", 10)              # checksum field zeroed before summing
        asm.lduh("o1", "g1", 12)
        asm.sth("o1", "g2", 12)
        asm.lduh("o1", "g1", 14)
        asm.sth("o1", "g2", 14)
        asm.lduh("o1", "g1", 16)
        asm.sth("o1", "g2", 16)
        asm.lduh("o1", "g1", 18)
        asm.sth("o1", "g2", 18)
        # checksum over the freshly built header
        asm.mov("o0", "g2")
        asm.call("checksum")
        asm.sth("o0", "g2", 10)
        asm.add("g6", "g6", "o0")            # accumulate checksums (32-bit wrap)
        # copy the payload chunk word by word
        asm.add("o1", "g2", _IP_HEADER_BYTES)  # destination
        asm.mov("o2", "l2")                    # source
        asm.srl("o3", "l4", 2)                 # words to copy
        asm.label("copy_loop")
        asm.cmp("o3", 0)
        asm.be("copy_done")
        asm.ld("o4", "o2", 0)
        asm.st("o4", "o1", 0)
        asm.add("o2", "o2", 4)
        asm.add("o1", "o1", 4)
        asm.sub("o3", "o3", 1)
        asm.ba("copy_loop")
        asm.label("copy_done")
        # bookkeeping
        asm.add("g5", "g5", 1)               # fragment count
        asm.add("g7", "g7", "l4")            # payload bytes copied
        asm.add("g2", "g2", _IP_HEADER_BYTES)
        asm.add("g2", "g2", "l4")            # advance output pointer
        asm.add("l2", "l2", "l4")            # advance source pointer
        asm.srl("o1", "l4", 3)
        asm.add("l3", "l3", "o1")            # advance fragment offset (8-byte units)
        asm.subcc("l1", "l1", "l4")
        asm.bg("frag_loop")
        # advance the global input pointer past header + payload
        asm.add("g1", "g1", _IP_HEADER_BYTES)
        asm.add("g1", "g1", "l0")
        asm.ret()

        # ---- leaf function: RFC 791 header checksum over 10 halfwords ------------------------
        asm.label("checksum")
        asm.set("o1", 0)
        asm.set("o2", _IP_HEADER_HALFWORDS)
        asm.mov("o5", "o0")
        asm.label("ck_loop")
        asm.lduh("o3", "o5", 0)
        asm.add("o1", "o1", "o3")
        asm.add("o5", "o5", 2)
        asm.subcc("o2", "o2", 1)
        asm.bne("ck_loop")
        asm.set("o4", 0xFFFF)
        asm.srl("o3", "o1", 16)
        asm.and_("o1", "o1", "o4")
        asm.add("o1", "o1", "o3")
        asm.srl("o3", "o1", 16)
        asm.and_("o1", "o1", "o4")
        asm.add("o1", "o1", "o3")
        asm.xor("o0", "o1", "o4")
        asm.and_("o0", "o0", "o4")
        asm.retl()

        return asm.assemble()

    # -- reference ---------------------------------------------------------------------------

    def reference(self) -> Mapping[str, int]:
        fragment_count = 0
        checksum_sum = 0
        bytes_copied = 0
        for header, payload in self._packets:
            remaining = len(payload)
            offset_units = 0
            while remaining > 0:
                chunk = min(remaining, self.chunk)
                more = _MF_FLAG if remaining > chunk else 0
                frag_header = [
                    header[0],
                    (chunk + _IP_HEADER_BYTES) & 0xFFFF,
                    header[2],
                    more | offset_units,
                    header[4],
                    0,
                    header[6], header[7], header[8], header[9],
                ]
                checksum = _checksum(frag_header)
                checksum_sum = (checksum_sum + checksum) & _MASK32
                bytes_copied += chunk
                fragment_count += 1
                offset_units += chunk // 8
                remaining -= chunk
        return {
            "fragment_count": fragment_count,
            "checksum_sum": checksum_sum,
            "bytes_copied": bytes_copied,
        }

    def extract_results(self, result: SimulationResult) -> Dict[str, int]:
        base = result.memory  # results live at the start of the data segment
        results_addr = self.program.address_of("results")
        return {
            "fragment_count": base.load_word(results_addr),
            "checksum_sum": base.load_word(results_addr + 4),
            "bytes_copied": base.load_word(results_addr + 8),
        }

"""CommBench DRR benchmark (Benchmark II of the paper).

DRR (Deficit Round Robin) is the fair packet-scheduling algorithm used
for bandwidth scheduling on network links (paper, Section 2.5:
"computation intensive").  Our kernel models a switch line card:

1. *Classification / enqueue*: each arriving packet is hashed on its
   source/destination addresses, looked up in a direct-indexed flow table
   (32 KB of flow records -- the structure whose reuse makes DRR sensitive
   to the data-cache size), its per-flow counters are updated and its
   length is appended to the flow's queue.
2. *Service*: the deficit-round-robin loop visits the flows in round
   robin order, adds the quantum to the flow's deficit counter and
   dequeues packets while they fit, zeroing the deficit when a queue
   empties (the classic DRR rule).

The simulated program and the Python reference share every arithmetic
detail (32-bit wrapping hash, table aliasing, deficit bookkeeping), so
verification is bit exact: total packets and bytes served, per-flow byte
counts and the number of service rounds all have to match.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

import numpy as np

from repro.isa.assembler import Assembler
from repro.isa.program import MemoryLayout, Program
from repro.microarch.functional import SimulationResult
from repro.workloads.base import Workload
from repro.workloads.data import make_packet_trace

__all__ = ["DrrWorkload"]

_MASK32 = 0xFFFFFFFF
#: Knuth's multiplicative hash constant (2654435761).
_HASH_CONSTANT = 0x9E3779B1


class DrrWorkload(Workload):
    """Deficit-round-robin scheduling with hash-based flow classification."""

    name = "drr"
    description = "CommBench DRR: deficit round robin fair scheduling with flow classification"
    characterization = "computation intensive with a large reused flow table"

    #: Number of scheduling flows (power of two).
    FLOWS = 16
    #: Flow-table entries (power of two); each entry is 16 bytes.
    TABLE_ENTRIES = 2048
    #: Per-flow queue capacity in packets (power of two so addresses use shifts).
    QUEUE_CAPACITY = 4096
    #: DRR quantum in bytes; must be >= the maximum packet length.
    QUANTUM = 1500

    def __init__(self, packet_count: int = 3000, seed: int = 77, **kwargs):
        super().__init__(**kwargs)
        if packet_count < 1 or packet_count > self.QUEUE_CAPACITY:
            raise ValueError(f"packet_count must be in 1..{self.QUEUE_CAPACITY}")
        self.packet_count = packet_count
        self.seed = seed
        trace = make_packet_trace(packet_count, flow_count=self.FLOWS, seed=seed)
        self._sources = [int(v) for v in trace.source_addresses]
        self._destinations = [int(v) for v in trace.destination_addresses]
        self._lengths = [int(v) for v in trace.lengths]

    # -- shared model of the classification stage -------------------------------------------

    def _classify(self) -> List[int]:
        """Flow id of every packet, replicating the program's hash/table behaviour."""
        table_keys = [0] * self.TABLE_ENTRIES
        table_flows = [0] * self.TABLE_ENTRIES
        flows: List[int] = []
        for src, dst in zip(self._sources, self._destinations):
            x = (src ^ dst) & _MASK32
            h = (x * _HASH_CONSTANT) & _MASK32
            index = (h >> 16) & (self.TABLE_ENTRIES - 1)
            if table_keys[index] != x:
                table_keys[index] = x
                table_flows[index] = (h >> 8) & (self.FLOWS - 1)
            flows.append(table_flows[index])
        return flows

    # -- program -----------------------------------------------------------------------------

    def build_program(self) -> Program:
        flows = self.FLOWS
        entries = self.TABLE_ENTRIES
        qcap_shift = 14  # QUEUE_CAPACITY * 4 bytes == 2**14
        assert self.QUEUE_CAPACITY * 4 == 1 << qcap_shift

        layout = MemoryLayout(memory_size=0x0020_0000)
        asm = Assembler(self.name, layout=layout)

        # ---- data segment ---------------------------------------------------------------
        asm.data_label("results")
        asm.word_data([0, 0, 0])                       # packets served, bytes served, rounds
        asm.data_label("flow_state")
        asm.word_data([0] * flows)                     # +0   : count per flow
        asm.word_data([0] * flows)                     # +64  : head per flow
        asm.word_data([0] * flows)                     # +128 : deficit per flow
        asm.word_data([0] * flows)                     # +192 : served bytes per flow
        asm.data_label("input")
        for src, dst, length in zip(self._sources, self._destinations, self._lengths):
            asm.word_data([src, dst, length])
        asm.data_label("table")
        asm.zeros(entries * 16)
        asm.data_label("queues")
        asm.zeros(flows * self.QUEUE_CAPACITY * 4)

        # ---- main --------------------------------------------------------------------------
        asm.label("start")
        asm.set("g1", "table")
        asm.set("g2", "queues")
        asm.set("g3", "flow_state")
        asm.set("g4", "input")
        asm.set("g6", self.packet_count)
        asm.set("g7", _HASH_CONSTANT)
        asm.call("enqueue_phase")
        asm.call("service_phase")
        asm.halt()

        # ---- classification + enqueue ---------------------------------------------------------
        asm.label("enqueue_phase")
        asm.save(96)
        asm.set("l0", 0)                     # packet index
        asm.mov("l1", "g4")                  # input pointer
        asm.label("enq_loop")
        asm.cmp("l0", "g6")
        asm.be("enq_done")
        asm.ld("l3", "l1", 0)                # src
        asm.ld("o0", "l1", 4)                # dst
        asm.ld("l2", "l1", 8)                # length
        asm.xor("l3", "l3", "o0")            # x = src ^ dst
        asm.umul("l4", "l3", "g7")           # h = x * KNUTH (32-bit wrap)
        asm.srl("o0", "l4", 16)
        asm.and_("o0", "o0", entries - 1)    # table index
        asm.sll("o0", "o0", 4)
        asm.add("o0", "g1", "o0")            # entry address
        asm.ld("o1", "o0", 0)                # stored key
        asm.cmp("o1", "l3")
        asm.be("probe_hit")
        asm.st("l3", "o0", 0)                # install key
        asm.srl("o1", "l4", 8)
        asm.and_("o1", "o1", flows - 1)
        asm.st("o1", "o0", 4)                # flow id
        asm.st("g0", "o0", 8)                # packet counter
        asm.st("g0", "o0", 12)               # byte counter
        asm.label("probe_hit")
        asm.ld("l5", "o0", 4)                # flow id
        asm.ld("o1", "o0", 8)
        asm.add("o1", "o1", 1)
        asm.st("o1", "o0", 8)                # per-flow packet counter
        asm.ld("o1", "o0", 12)
        asm.add("o1", "o1", "l2")
        asm.st("o1", "o0", 12)               # per-flow byte counter
        # append the packet length to the flow's queue
        asm.sll("o2", "l5", 2)
        asm.ld("o1", "g3", "o2")             # count[flow] (flow_state + flow*4)
        asm.sll("o3", "l5", qcap_shift)
        asm.sll("o4", "o1", 2)
        asm.add("o3", "o3", "o4")
        asm.add("o3", "g2", "o3")
        asm.st("l2", "o3", 0)                # queue[flow][count] = length
        asm.add("o1", "o1", 1)
        asm.st("o1", "g3", "o2")             # count[flow] += 1
        asm.add("l1", "l1", 12)
        asm.add("l0", "l0", 1)
        asm.ba("enq_loop")
        asm.label("enq_done")
        asm.ret()

        # ---- deficit round robin service --------------------------------------------------------
        asm.label("service_phase")
        asm.save(96)
        asm.set("l0", 0)                     # packets served
        asm.set("l6", 0)                     # rounds
        asm.label("round_loop")
        asm.cmp("l0", "g6")
        asm.be("service_done")
        asm.add("l6", "l6", 1)
        asm.set("l1", 0)                     # flow index
        asm.label("flow_loop")
        asm.sll("o0", "l1", 2)               # flow * 4
        asm.ld("l2", "g3", "o0")             # count[flow]
        asm.add("o1", "o0", 64)
        asm.ld("l3", "g3", "o1")             # head[flow]
        asm.cmp("l3", "l2")
        asm.be("next_flow")                  # nothing queued
        asm.add("o1", "o0", 128)
        asm.ld("l4", "g3", "o1")             # deficit[flow]
        asm.set("o2", self.QUANTUM)
        asm.add("l4", "l4", "o2")
        asm.label("dequeue_loop")
        asm.cmp("l3", "l2")
        asm.be("flow_emptied")
        asm.sll("o2", "l1", qcap_shift)
        asm.sll("o3", "l3", 2)
        asm.add("o2", "o2", "o3")
        asm.ld("l5", "g2", "o2")             # head packet length
        asm.cmp("l5", "l4")
        asm.bg("dequeue_done")               # does not fit in the deficit
        asm.sub("l4", "l4", "l5")
        asm.add("o1", "o0", 192)
        asm.ld("o3", "g3", "o1")
        asm.add("o3", "o3", "l5")
        asm.st("o3", "g3", "o1")             # served_bytes[flow] += length
        asm.add("l3", "l3", 1)
        asm.add("l0", "l0", 1)
        asm.ba("dequeue_loop")
        asm.label("flow_emptied")
        asm.set("l4", 0)                     # DRR rule: empty queue resets the deficit
        asm.label("dequeue_done")
        asm.add("o1", "o0", 64)
        asm.st("l3", "g3", "o1")             # write back head
        asm.add("o1", "o0", 128)
        asm.st("l4", "g3", "o1")             # write back deficit
        asm.label("next_flow")
        asm.add("l1", "l1", 1)
        asm.cmp("l1", flows)
        asm.bl("flow_loop")
        asm.ba("round_loop")
        asm.label("service_done")
        # accumulate total served bytes across flows
        asm.set("o0", 0)                     # flow index
        asm.set("o1", 0)                     # total bytes
        asm.label("sum_loop")
        asm.cmp("o0", flows)
        asm.be("sum_done")
        asm.sll("o2", "o0", 2)
        asm.add("o2", "o2", 192)
        asm.ld("o3", "g3", "o2")
        asm.add("o1", "o1", "o3")
        asm.add("o0", "o0", 1)
        asm.ba("sum_loop")
        asm.label("sum_done")
        asm.set("o4", "results")
        asm.st("l0", "o4", 0)                # packets served
        asm.st("o1", "o4", 4)                # bytes served
        asm.st("l6", "o4", 8)                # rounds
        asm.ret()

        return asm.assemble()

    # -- reference ---------------------------------------------------------------------------------

    def reference(self) -> Mapping[str, int]:
        flows = self._classify()
        queues: List[List[int]] = [[] for _ in range(self.FLOWS)]
        for flow, length in zip(flows, self._lengths):
            queues[flow].append(length)
        heads = [0] * self.FLOWS
        deficits = [0] * self.FLOWS
        served_bytes = [0] * self.FLOWS
        packets_served = 0
        rounds = 0
        total = self.packet_count
        while packets_served < total:
            rounds += 1
            for flow in range(self.FLOWS):
                if heads[flow] == len(queues[flow]):
                    continue
                deficits[flow] += self.QUANTUM
                while heads[flow] < len(queues[flow]):
                    length = queues[flow][heads[flow]]
                    if length > deficits[flow]:
                        break
                    deficits[flow] -= length
                    served_bytes[flow] += length
                    heads[flow] += 1
                    packets_served += 1
                else:
                    deficits[flow] = 0
        return {
            "packets_served": packets_served,
            "bytes_served": sum(served_bytes) & _MASK32,
            "rounds": rounds,
        }

    def reference_per_flow_bytes(self) -> List[int]:
        """Bytes served per flow according to the Python reference (for property tests)."""
        flows = self._classify()
        served = [0] * self.FLOWS
        for flow, length in zip(flows, self._lengths):
            served[flow] += length
        return served

    def extract_results(self, result: SimulationResult) -> Dict[str, int]:
        results_addr = self.program.address_of("results")
        memory = result.memory
        return {
            "packets_served": memory.load_word(results_addr),
            "bytes_served": memory.load_word(results_addr + 4),
            "rounds": memory.load_word(results_addr + 8),
        }

    def served_bytes_per_flow(self, result: SimulationResult) -> List[int]:
        """Per-flow served byte counters read back from the simulated memory."""
        state = self.program.address_of("flow_state")
        return [result.memory.load_word(state + 192 + 4 * f) for f in range(self.FLOWS)]

"""Benchmark workloads of the paper (BLASTN, CommBench DRR, CommBench FRAG, BYTE Arith)."""

from typing import Dict, List

from repro.workloads.base import Workload
from repro.workloads.arith import ArithWorkload
from repro.workloads.blastn import BlastnWorkload
from repro.workloads.drr import DrrWorkload
from repro.workloads.frag import FragWorkload
from repro.workloads.phased import (
    PhasedWorkload,
    blastn_seed_extend,
    drr_enqueue_service,
    frag_per_packet,
    phase_scenarios,
)
from repro.workloads import data

__all__ = [
    "Workload",
    "ArithWorkload",
    "BlastnWorkload",
    "DrrWorkload",
    "FragWorkload",
    "PhasedWorkload",
    "blastn_seed_extend",
    "drr_enqueue_service",
    "frag_per_packet",
    "phase_scenarios",
    "data",
    "standard_workloads",
    "small_workloads",
    "WORKLOAD_ORDER",
]

#: Presentation order used throughout the paper's tables.
WORKLOAD_ORDER: List[str] = ["blastn", "drr", "frag", "arith"]


def standard_workloads() -> Dict[str, Workload]:
    """The four benchmarks at their benchmark-scale default sizes.

    These are the sizes used by the experiment harness in ``benchmarks/``;
    they are scaled-down versions of the paper's inputs (see DESIGN.md)
    but large enough to exhibit the cache behaviour the paper relies on.
    """
    return {
        "blastn": BlastnWorkload(),
        "drr": DrrWorkload(),
        "frag": FragWorkload(),
        "arith": ArithWorkload(),
    }


def small_workloads() -> Dict[str, Workload]:
    """Reduced-size variants used by the test suite (fast to simulate)."""
    return {
        "blastn": BlastnWorkload(database_length=1500, query_length=64, query_count=1),
        "drr": DrrWorkload(packet_count=200),
        "frag": FragWorkload(packet_count=6),
        "arith": ArithWorkload(iterations=300),
    }

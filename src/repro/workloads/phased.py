"""Phase-structured workloads for warm-cache chained replay.

The paper's design-space exploration measures every workload from a cold
cache, but deployed programs are phase structured: BLASTN builds its
seed table and then scans the database, DRR alternates enqueue and
service stages, and a line card context-switches between applications.
Across such phase boundaries cache state *carries over*, which the
cold-start engine cannot express.

A :class:`PhasedWorkload` names the phases of a program and exposes
per-phase traces and columnar cache-kernel views, so the measurement
stack can replay the phases against one continuously-warm cache
(:func:`~repro.microarch.cachekernel.replay_chain`) and report per-phase
statistics.  Two construction modes cover the scenario space:

* **splits** cut one workload's trace at program-counter markers (the
  first execution of a label) or at instruction fractions -- the phases
  concatenate back to exactly the original trace, so overall
  measurements of the phased workload are bit-identical to the plain
  workload and only the per-phase view is new;
* **compositions** chain several workloads back to back (context-switch
  scenarios) -- the combined trace behaves like one program that ran
  them in sequence.

:func:`phase_scenarios` packages the standard multi-phase scenarios used
by ``scripts/run_experiments.py --phases`` and
``benchmarks/bench_phase_transitions.py``.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.microarch.trace import ExecutionTrace, concatenate_traces, slice_trace
from repro.workloads.base import Workload
from repro.workloads.blastn import BlastnWorkload
from repro.workloads.drr import DrrWorkload
from repro.workloads.frag import FragWorkload

__all__ = [
    "PhasedWorkload",
    "blastn_seed_extend",
    "drr_enqueue_service",
    "frag_per_packet",
    "phase_scenarios",
]


class PhasedWorkload(Workload):
    """A workload whose execution decomposes into named program phases.

    Instances behave like any other :class:`~repro.workloads.Workload`
    towards the measurement stack (``trace``/``fingerprint``/
    ``columnar_view`` describe the concatenated execution), and
    additionally expose the phase structure: :meth:`phase_bounds`,
    :meth:`phase_traces` and the per-phase cache-kernel views of
    :meth:`phase_views`.
    """

    def __init__(
        self,
        name: str,
        phase_names: Sequence[str],
        *,
        components: Optional[Sequence[Workload]] = None,
        base: Optional[Workload] = None,
        boundaries: Optional[Sequence[int]] = None,
    ):
        super().__init__()
        if (components is None) == (base is None):
            raise ConfigurationError(
                "a phased workload wraps either component workloads or a split base")
        if components is not None and len(components) != len(phase_names):
            raise ConfigurationError("one component workload per phase name")
        if base is not None and len(list(boundaries or ())) != len(phase_names) - 1:
            raise ConfigurationError(
                "a split into N phases needs exactly N-1 boundaries")
        self.name = name
        self.description = f"{len(phase_names)}-phase scenario: {', '.join(phase_names)}"
        self.phase_names: Tuple[str, ...] = tuple(phase_names)
        self._components = list(components) if components is not None else None
        self._base = base
        self._boundaries = [int(b) for b in boundaries] if boundaries is not None else None
        self._trace: Optional[ExecutionTrace] = None
        self._phase_traces: Optional[List[ExecutionTrace]] = None
        self._phase_view_cache: Dict[Tuple[str, int], list] = {}

    # -- constructors ----------------------------------------------------------------------

    @classmethod
    def from_workloads(
        cls, name: str, phases: Sequence[Tuple[str, Workload]]
    ) -> "PhasedWorkload":
        """Chain several workloads back to back (a context-switch scenario).

        The same workload instance may appear in several phases (resume
        after a context switch); its functional simulation still runs
        once.
        """
        if not phases:
            raise ConfigurationError("a phased workload needs at least one phase")
        return cls(name, [p for p, _ in phases], components=[w for _, w in phases])

    @classmethod
    def from_split(
        cls,
        workload: Workload,
        phase_names: Sequence[str],
        boundaries: Sequence[int],
        *,
        name: Optional[str] = None,
    ) -> "PhasedWorkload":
        """Split one workload's trace at explicit instruction indices."""
        n = workload.trace().instruction_count
        bounds = [int(b) for b in boundaries]
        if any(not 0 < b < n for b in bounds) or sorted(set(bounds)) != bounds:
            raise ConfigurationError(
                f"boundaries must be strictly increasing within (0, {n}): {bounds}")
        return cls(
            name or f"{workload.name}-phased", phase_names,
            base=workload, boundaries=bounds)

    @classmethod
    def split_at_labels(
        cls,
        workload: Workload,
        phase_names: Sequence[str],
        labels: Sequence[str],
        *,
        name: Optional[str] = None,
    ) -> "PhasedWorkload":
        """Split at the first execution of each program label, in order.

        ``labels[i]`` marks where phase ``i+1`` begins: the boundary is
        the first trace position (after the previous boundary) whose
        program counter equals the label's address.
        """
        if len(labels) != len(phase_names) - 1:
            raise ConfigurationError("a split into N phases needs exactly N-1 labels")
        trace = workload.trace()
        pcs = trace.pcs
        boundaries: List[int] = []
        search_from = 0
        for label in labels:
            address = workload.program.address_of(label)
            hits = np.flatnonzero(pcs[search_from:] == address)
            if not len(hits):
                raise ConfigurationError(
                    f"label {label!r} (pc={address:#x}) never executes after "
                    f"position {search_from} of {workload.name}")
            boundary = search_from + int(hits[0])
            boundaries.append(boundary)
            search_from = boundary
        return cls.from_split(workload, phase_names, boundaries, name=name)

    @classmethod
    def split_at_calls(
        cls,
        workload: Workload,
        label: str,
        *,
        phase_prefix: str = "phase",
        name: Optional[str] = None,
    ) -> "PhasedWorkload":
        """One phase per execution of ``label`` (e.g. per packet, per query).

        The instructions before the first execution of the label join the
        first phase.
        """
        trace = workload.trace()
        address = workload.program.address_of(label)
        hits = np.flatnonzero(trace.pcs == address)
        if not len(hits):
            raise ConfigurationError(
                f"label {label!r} (pc={address:#x}) never executes in {workload.name}")
        boundaries = [int(h) for h in hits[1:]]
        phase_names = [f"{phase_prefix}{i}" for i in range(len(boundaries) + 1)]
        return cls.from_split(workload, phase_names, boundaries, name=name)

    @classmethod
    def split_at_fractions(
        cls,
        workload: Workload,
        phase_names: Sequence[str],
        fractions: Optional[Sequence[float]] = None,
        *,
        name: Optional[str] = None,
    ) -> "PhasedWorkload":
        """Split at instruction-count fractions (equal phases by default)."""
        n = workload.trace().instruction_count
        count = len(phase_names)
        if fractions is None:
            fractions = [i / count for i in range(1, count)]
        boundaries = [max(1, min(n - 1, int(n * f))) for f in fractions]
        return cls.from_split(workload, phase_names, boundaries, name=name)

    # -- phase structure ----------------------------------------------------------------------

    @property
    def phase_count(self) -> int:
        return len(self.phase_names)

    def trace(self) -> ExecutionTrace:
        """The concatenated execution trace of all phases."""
        if self._trace is None:
            if self._base is not None:
                self._trace = self._base.trace()
            else:
                self._trace = concatenate_traces(
                    [component.trace() for component in self._components],
                    name=self.name)
        return self._trace

    def phase_bounds(self) -> List[int]:
        """Instruction-index phase boundaries: ``[0, b_1, ..., n]``."""
        if self._base is not None:
            return [0, *self._boundaries, self.trace().instruction_count]
        bounds = [0]
        for component in self._components:
            bounds.append(bounds[-1] + component.trace().instruction_count)
        return bounds

    def data_bounds(self) -> List[int]:
        """Phase boundaries within the data-access (load/store) stream."""
        memory_counts = np.cumsum(self.trace().memory_mask)
        return [0] + [int(memory_counts[b - 1]) if b else 0
                      for b in self.phase_bounds()[1:]]

    def phase_traces(self) -> List[ExecutionTrace]:
        """Per-phase execution traces, in phase order.

        Composition phases are the component workloads' own traces;
        split phases are slices of the base trace (with empty
        window-event streams -- see
        :func:`~repro.microarch.trace.slice_trace`).
        """
        if self._phase_traces is None:
            if self._base is not None:
                bounds = self.phase_bounds()
                self._phase_traces = [
                    slice_trace(self.trace(), lo, hi, f"{self.name}:{phase}")
                    for phase, lo, hi in zip(self.phase_names, bounds, bounds[1:])]
            else:
                self._phase_traces = [c.trace() for c in self._components]
        return self._phase_traces

    def phase_views(self, kind: str, linesize_bytes: int) -> list:
        """Per-phase columnar cache-kernel views (cached per line size).

        These are the views :func:`~repro.microarch.cachekernel.replay_chain`
        consumes: every cache geometry and replacement policy at this
        line size replays the same once-decoded phase views.
        """
        key = (kind, linesize_bytes)
        views = self._phase_view_cache.get(key)
        if views is None:
            views = [trace.columnar_view(kind, linesize_bytes)
                     for trace in self.phase_traces()]
            self._phase_view_cache[key] = views
        return views

    def has_phase_views(self, kind: str, linesize_bytes: int) -> bool:
        """True when :meth:`phase_views` would be answered from the cache."""
        return (kind, linesize_bytes) in self._phase_view_cache

    def phase_summaries(self) -> Dict[str, Dict[str, float]]:
        """Per-phase instruction-mix characterisation (phase name -> mix)."""
        return {phase: trace.mix_summary()
                for phase, trace in zip(self.phase_names, self.phase_traces())}

    def fingerprint(self) -> str:
        """Trace fingerprint extended with the phase structure.

        Two phased workloads over the same trace but with different cuts
        must never alias each other's per-phase results, so the digest
        covers the boundaries and phase names on top of the base trace
        fingerprint.
        """
        if self._fingerprint is None or ":ph" not in self._fingerprint:
            base = super().fingerprint()
            structure = hashlib.sha1(
                ("|".join(self.phase_names)
                 + ":" + ",".join(map(str, self.phase_bounds()))).encode())
            self._fingerprint = f"{base}:ph{structure.hexdigest()[:8]}"
        return self._fingerprint

    # -- Workload interface -----------------------------------------------------------------

    def build_program(self):
        if self._base is not None:
            return self._base.build_program()
        raise NotImplementedError(
            "a composed phased workload chains separately built programs; "
            "use the component workloads' programs")

    @property
    def program(self):
        if self._base is not None:
            return self._base.program
        raise NotImplementedError(
            "a composed phased workload has no single program image")

    def run_functional(self, *, force: bool = False):
        if self._base is not None:
            return self._base.run_functional(force=force)
        raise NotImplementedError(
            "a composed phased workload has no single functional run; "
            "its trace() concatenates the components' runs")

    def reference(self):
        if self._base is not None:
            return self._base.reference()
        merged: Dict[str, int] = {}
        for phase, component in zip(self.phase_names, self._components):
            for key, value in component.reference().items():
                merged[f"{phase}:{key}"] = value
        return merged

    def extract_results(self, result):
        if self._base is not None:
            return self._base.extract_results(result)
        raise NotImplementedError(
            "composed phases verify through their component workloads")

    def verify(self, result=None) -> Dict[str, int]:
        """Verify the underlying execution(s) against the Python references."""
        if self._base is not None:
            return self._base.verify(result)
        merged: Dict[str, int] = {}
        for phase, component in zip(self.phase_names, self._components):
            for key, value in component.verify().items():
                merged[f"{phase}:{key}"] = value
        return merged


# -- standard multi-phase scenarios ----------------------------------------------------------


def blastn_seed_extend(**kwargs) -> PhasedWorkload:
    """BLASTN split at its seed-table/scan boundary.

    Phase ``seed`` clears and builds the query word table; phase
    ``extend`` scans the database and extends seed hits.  The split is
    exact for a single query (the default here); with more queries the
    later build stages fold into the ``extend`` phase.
    """
    kwargs.setdefault("query_count", 1)
    workload = BlastnWorkload(**kwargs)
    return PhasedWorkload.split_at_labels(
        workload, ("seed", "extend"), ("prime_db",),
        name="blastn-seed-extend")


def drr_enqueue_service(**kwargs) -> PhasedWorkload:
    """DRR split at its enqueue/service alternation boundary.

    Phase ``enqueue`` classifies packets through the flow table; phase
    ``service`` runs the deficit-round-robin dequeue loop over the flow
    state the enqueue phase left warm in the cache.
    """
    workload = DrrWorkload(**kwargs)
    return PhasedWorkload.split_at_labels(
        workload, ("enqueue", "service"), ("service_phase",),
        name="drr-enqueue-service")


def frag_per_packet(**kwargs) -> PhasedWorkload:
    """FRAG with one phase per processed packet (arrival-driven phases)."""
    workload = FragWorkload(**kwargs)
    return PhasedWorkload.split_at_calls(
        workload, "process_packet", phase_prefix="packet",
        name="frag-per-packet")


def phase_scenarios(*, small: bool = False) -> Dict[str, PhasedWorkload]:
    """The standard multi-phase scenarios of the phase-transition study.

    ``small=True`` selects scaled-down inputs (test/CI scale).  The
    scenarios cover the three phase-structure classes: an in-program
    split whose phases share a working set (BLASTN seed/extend), one
    whose phases stream different structures (DRR enqueue/service), and
    a context switch between applications (BLASTN interrupted by DRR,
    then resumed).
    """
    if small:
        blastn_kwargs = dict(database_length=1500, query_length=64)
        drr_kwargs = dict(packet_count=200)
    else:
        blastn_kwargs = {}
        drr_kwargs = {}
    blastn = BlastnWorkload(query_count=1, **blastn_kwargs)
    drr = DrrWorkload(**drr_kwargs)
    return {
        "blastn-seed-extend": blastn_seed_extend(**blastn_kwargs),
        "drr-enqueue-service": drr_enqueue_service(**drr_kwargs),
        "blastn-drr-switch": PhasedWorkload.from_workloads(
            "blastn-drr-switch",
            [("blastn", blastn), ("drr-interrupt", drr), ("blastn-resume", blastn)]),
    }

"""BLASTN benchmark (Benchmark I of the paper).

BLASTN compares DNA sequences using the classic seed-and-extend strategy:
a lookup table of query words (w-mers) is built, the database sequence is
scanned with a rolling key, and every seed hit is extended by comparing
the following bases (paper, Section 2.5: "computation and memory-access
intensive").

The database plus the word table form a working set of roughly 17 KB that
is re-traversed once per query; configurations whose data cache holds the
working set (32 KB total, and marginally 24 KB) avoid re-fetching it, which
reproduces the behaviour behind the paper's Figure 2 where only the 32 KB
data-cache organisations improve BLASTN's runtime noticeably.

Inputs are synthetic DNA sequences with planted query matches so the
seed-and-extend path genuinely executes; hits and extension scores are
verified against a bit-exact Python reference.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

import numpy as np

from repro.isa.assembler import Assembler
from repro.isa.program import MemoryLayout, Program
from repro.microarch.functional import SimulationResult
from repro.workloads.base import Workload
from repro.workloads.data import dna_sequence, plant_matches

__all__ = ["BlastnWorkload"]


class BlastnWorkload(Workload):
    """Seed-and-extend DNA word matching over a synthetic database."""

    name = "blastn"
    description = "BLASTN: seed-and-extend DNA sequence comparison"
    characterization = "computation and memory-access intensive"

    #: Word (w-mer) size; the lookup table has 4**WORD_SIZE halfword entries.
    WORD_SIZE = 5
    #: Bases compared to the right of every seed hit.
    EXTENSION = 4

    def __init__(
        self,
        database_length: int = 15000,
        query_length: int = 96,
        query_count: int = 2,
        planted_matches: int = 6,
        seed: int = 1990,
        **kwargs,
    ):
        kwargs.setdefault("max_instructions", 5_000_000)
        super().__init__(**kwargs)
        if query_length <= self.WORD_SIZE + self.EXTENSION:
            raise ValueError("query too short for the word size and extension length")
        if database_length <= self.WORD_SIZE + self.EXTENSION:
            raise ValueError("database too short")
        self.database_length = database_length
        self.query_length = query_length
        self.query_count = query_count
        self.seed = seed
        self._queries: List[np.ndarray] = [
            dna_sequence(query_length, seed + 10 + q) for q in range(query_count)
        ]
        database = dna_sequence(database_length, seed)
        for q, query in enumerate(self._queries):
            database = plant_matches(
                database, query, planted_matches, self.WORD_SIZE + self.EXTENSION + 4,
                seed + 100 + q)
        self._database = database

    # -- geometry ------------------------------------------------------------------------

    @property
    def table_entries(self) -> int:
        return 4 ** self.WORD_SIZE

    @property
    def key_mask(self) -> int:
        return self.table_entries - 1

    # -- program ----------------------------------------------------------------------------

    def build_program(self) -> Program:
        w = self.WORD_SIZE
        ext = self.EXTENSION
        qlen = self.query_length
        dblen = self.database_length
        mask = self.key_mask
        table_words = (self.table_entries * 2) // 4

        asm = Assembler(self.name, layout=MemoryLayout())

        # ---- data segment -------------------------------------------------------------
        asm.data_label("results")
        asm.word_data([0, 0])
        asm.data_label("database")
        asm.byte_data(self._database.tolist())
        asm.align(4)
        asm.data_label("queries")
        for query in self._queries:
            asm.byte_data(query.tolist())
        asm.align(4)
        asm.data_label("table")
        asm.zeros(self.table_entries * 2)

        # ---- main -------------------------------------------------------------------------
        asm.label("start")
        asm.set("g1", "database")
        asm.set("g2", "table")
        asm.set("g3", "queries")
        asm.set("g4", 0)                  # seed hits
        asm.set("g5", 0)                  # extension score
        asm.set("g6", self.query_count)
        asm.mov("g7", "g3")               # current query pointer
        asm.label("query_loop")
        asm.cmp("g6", 0)
        asm.be("finish")
        asm.call("process_query")
        asm.add("g7", "g7", qlen)
        asm.sub("g6", "g6", 1)
        asm.ba("query_loop")
        asm.label("finish")
        asm.set("o0", "results")
        asm.st("g4", "o0", 0)
        asm.st("g5", "o0", 4)
        asm.halt()

        # ---- per-query processing -------------------------------------------------------------
        asm.label("process_query")
        asm.save(96)
        # clear the word table
        asm.set("l0", table_words)
        asm.mov("l1", "g2")
        asm.label("clear_loop")
        asm.st("g0", "l1", 0)
        asm.add("l1", "l1", 4)
        asm.subcc("l0", "l0", 1)
        asm.bne("clear_loop")
        # build the table from the query with a rolling key
        asm.set("l0", 0)                  # base index
        asm.set("l1", 0)                  # rolling key
        asm.set("l2", w - 1)              # priming counter
        asm.label("prime_query")
        asm.ldub("o0", "g7", "l0")
        asm.sll("l1", "l1", 2)
        asm.or_("l1", "l1", "o0")
        asm.add("l0", "l0", 1)
        asm.subcc("l2", "l2", 1)
        asm.bne("prime_query")
        asm.set("l3", qlen - ext)
        asm.label("build_loop")
        asm.cmp("l0", "l3")
        asm.bge("build_done")
        asm.ldub("o0", "g7", "l0")
        asm.sll("l1", "l1", 2)
        asm.or_("l1", "l1", "o0")
        asm.and_("l1", "l1", mask)
        asm.sub("o1", "l0", w - 2)        # word start position + 1
        asm.sll("o2", "l1", 1)
        asm.sth("o1", "g2", "o2")
        asm.add("l0", "l0", 1)
        asm.ba("build_loop")
        asm.label("build_done")
        # scan the database
        asm.set("l0", 0)
        asm.set("l1", 0)
        asm.set("l2", w - 1)
        asm.label("prime_db")
        asm.ldub("o0", "g1", "l0")
        asm.sll("l1", "l1", 2)
        asm.or_("l1", "l1", "o0")
        asm.add("l0", "l0", 1)
        asm.subcc("l2", "l2", 1)
        asm.bne("prime_db")
        asm.set("l3", dblen - ext)
        asm.label("scan_loop")
        asm.cmp("l0", "l3")
        asm.bge("scan_done")
        asm.ldub("o0", "g1", "l0")
        asm.sll("l1", "l1", 2)
        asm.or_("l1", "l1", "o0")
        asm.and_("l1", "l1", mask)
        asm.sll("o2", "l1", 1)
        asm.lduh("o1", "g2", "o2")        # table probe
        asm.cmp("o1", 0)
        asm.be("no_hit")
        asm.add("g4", "g4", 1)            # seed hit
        # extension: compare the EXT bases following the word in query and database
        asm.add("o3", "g7", "o1")
        asm.add("o3", "o3", w - 1)        # query extension pointer (start-1 + w)
        asm.add("o4", "g1", "l0")
        asm.add("o4", "o4", 1)            # database extension pointer
        asm.set("o5", ext)
        asm.label("ext_loop")
        asm.ldub("l5", "o4", 0)
        asm.ldub("l6", "o3", 0)
        asm.cmp("l5", "l6")
        asm.bne("ext_next")
        asm.add("g5", "g5", 1)            # extension score
        asm.label("ext_next")
        asm.add("o3", "o3", 1)
        asm.add("o4", "o4", 1)
        asm.subcc("o5", "o5", 1)
        asm.bne("ext_loop")
        asm.label("no_hit")
        asm.add("l0", "l0", 1)
        asm.ba("scan_loop")
        asm.label("scan_done")
        asm.ret()

        return asm.assemble()

    # -- reference -----------------------------------------------------------------------------

    def reference(self) -> Mapping[str, int]:
        w = self.WORD_SIZE
        ext = self.EXTENSION
        mask = self.key_mask
        database = self._database
        hits = 0
        score = 0
        for query in self._queries:
            table = [0] * self.table_entries
            key = 0
            for i in range(w - 1):
                key = ((key << 2) | int(query[i])) & 0xFFFFFFFF
            for i in range(w - 1, self.query_length - ext):
                key = ((key << 2) | int(query[i])) & mask
                start = i - w + 1
                table[key] = start + 1
            key = 0
            for i in range(w - 1):
                key = ((key << 2) | int(database[i])) & 0xFFFFFFFF
            for i in range(w - 1, self.database_length - ext):
                key = ((key << 2) | int(database[i])) & mask
                entry = table[key]
                if entry == 0:
                    continue
                hits += 1
                qpos = entry - 1 + w
                dpos = i + 1
                for k in range(ext):
                    if int(database[dpos + k]) == int(query[qpos + k]):
                        score += 1
        return {"hits": hits, "score": score}

    def extract_results(self, result: SimulationResult) -> Dict[str, int]:
        results_addr = self.program.address_of("results")
        return {
            "hits": result.memory.load_word(results_addr),
            "score": result.memory.load_word(results_addr + 4),
        }

"""BYTE Arith benchmark (Benchmark IV of the paper).

Arith performs simple additions, multiplications and divisions in a loop;
it is used to test processor speed for arithmetic and is explicitly *not*
memory intensive (paper, Section 2.5).  Consequently its runtime is
sensitive to the multiplier and divider implementations and insensitive
to the data-cache geometry -- the property the paper's Figure 4 relies on
("No effect, as application is not data intensive").

The loop body is fixed; the iteration count scales the dynamic
instruction count.  All arithmetic wraps at 32 bits exactly as the
simulated processor does, so the Python reference matches bit for bit.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.microarch.functional import SimulationResult
from repro.workloads.base import Workload

__all__ = ["ArithWorkload"]

_MASK32 = 0xFFFFFFFF


class ArithWorkload(Workload):
    """Tight arithmetic loop exercising the ALU, multiplier and divider."""

    name = "arith"
    description = "BYTE Arith: additions, multiplications and divisions in a loop"
    characterization = "computation intensive, not memory intensive"

    def __init__(self, iterations: int = 4000, **kwargs):
        super().__init__(**kwargs)
        if iterations < 1:
            raise ValueError("iterations must be positive")
        self.iterations = iterations

    # -- program ------------------------------------------------------------------

    def build_program(self) -> Program:
        asm = Assembler(self.name)
        asm.label("start")
        asm.set("g1", self.iterations)   # loop counter
        asm.set("g2", 1)                 # a
        asm.set("g3", 7)                 # b
        asm.set("g4", 123_456)           # c
        asm.set("g5", 0)                 # d
        asm.label("loop")
        asm.add("g2", "g2", 3)           # a += 3
        asm.smul("g3", "g3", "g2")       # b *= a            (hardware multiply)
        asm.add("g4", "g4", "g3")        # c += b
        asm.udiv("g5", "g4", 7)          # d = c / 7          (hardware divide)
        asm.sub("g4", "g4", "g5")        # c -= d
        asm.xor("g3", "g3", "g5")        # b ^= d (keeps b from collapsing to zero)
        asm.or_("g3", "g3", 1)           # keep b odd so the product stays non-trivial
        asm.subcc("g1", "g1", 1)
        asm.bne("loop")
        asm.halt()
        return asm.assemble()

    # -- reference ------------------------------------------------------------------

    def reference(self) -> Mapping[str, int]:
        a, b, c, d = 1, 7, 123_456, 0
        for _ in range(self.iterations):
            a = (a + 3) & _MASK32
            b = (b * a) & _MASK32
            c = (c + b) & _MASK32
            d = c // 7
            c = (c - d) & _MASK32
            b = (b ^ d) & _MASK32
            b |= 1
        return {"a": a, "b": b, "c": c, "d": d}

    def extract_results(self, result: SimulationResult) -> Dict[str, int]:
        return {
            "a": result.register("g2"),
            "b": result.register("g3"),
            "c": result.register("g4"),
            "d": result.register("g5"),
        }

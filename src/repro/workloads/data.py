"""Synthetic input generators for the benchmark workloads.

The paper's benchmarks consume real inputs (genomic databases, packet
traces).  We do not have those, so each workload gets a deterministic
synthetic generator that preserves the relevant characteristics:

* DNA sequences are uniform random over {A, C, G, T} with a configurable
  number of *planted* query matches, so BLASTN has genuine seed hits to
  extend and its output can be verified against a Python reference.
* Packet traces are random packet lengths in realistic IP ranges
  (40-1500 bytes), optionally with per-flow identifiers, for DRR and FRAG.

All generators take an explicit seed; default seeds make every workload
reproducible run to run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "dna_sequence",
    "plant_matches",
    "DnaDataset",
    "make_dna_dataset",
    "packet_lengths",
    "PacketTrace",
    "make_packet_trace",
]

#: DNA bases are encoded as 2-bit values 0..3 (A, C, G, T).
DNA_ALPHABET = 4


def dna_sequence(length: int, seed: int) -> np.ndarray:
    """A uniform random DNA sequence of ``length`` bases encoded as 0..3."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, DNA_ALPHABET, size=length, dtype=np.uint8)


def plant_matches(
    database: np.ndarray,
    query: np.ndarray,
    count: int,
    match_length: int,
    seed: int,
) -> np.ndarray:
    """Copy ``count`` random query substrings into the database.

    Returns the modified database (a copy).  Planting guarantees that the
    BLASTN kernel has true positives to find, which makes the verification
    meaningful rather than vacuous.
    """
    database = database.copy()
    if count <= 0 or match_length <= 0:
        return database
    rng = np.random.default_rng(seed)
    match_length = min(match_length, len(query))
    for _ in range(count):
        q_start = int(rng.integers(0, len(query) - match_length + 1))
        d_start = int(rng.integers(0, len(database) - match_length + 1))
        database[d_start:d_start + match_length] = query[q_start:q_start + match_length]
    return database


@dataclass(frozen=True)
class DnaDataset:
    """Inputs of the BLASTN workload."""

    database: np.ndarray
    query: np.ndarray
    word_size: int

    @property
    def database_length(self) -> int:
        return int(len(self.database))

    @property
    def query_length(self) -> int:
        return int(len(self.query))

    @property
    def table_entries(self) -> int:
        """Number of entries of the word lookup table (4^word_size)."""
        return DNA_ALPHABET ** self.word_size


def make_dna_dataset(
    database_length: int = 4096,
    query_length: int = 192,
    word_size: int = 7,
    planted_matches: int = 12,
    planted_length: int = 24,
    seed: int = 2006,
) -> DnaDataset:
    """Build a reproducible BLASTN dataset with planted matches."""
    database = dna_sequence(database_length, seed)
    query = dna_sequence(query_length, seed + 1)
    database = plant_matches(database, query, planted_matches, planted_length, seed + 2)
    return DnaDataset(database=database, query=query, word_size=word_size)


def packet_lengths(count: int, seed: int, minimum: int = 40, maximum: int = 1500) -> np.ndarray:
    """Random IP packet lengths in bytes (inclusive range)."""
    rng = np.random.default_rng(seed)
    return rng.integers(minimum, maximum + 1, size=count, dtype=np.int64)


@dataclass(frozen=True)
class PacketTrace:
    """A synthetic packet trace shared by the network workloads."""

    lengths: np.ndarray
    flow_ids: np.ndarray
    source_addresses: np.ndarray
    destination_addresses: np.ndarray

    @property
    def packet_count(self) -> int:
        return int(len(self.lengths))

    def lengths_for_flow(self, flow: int) -> np.ndarray:
        """Packet lengths belonging to one flow, in arrival order."""
        return self.lengths[self.flow_ids == flow]


def make_packet_trace(
    packet_count: int = 2048,
    flow_count: int = 16,
    seed: int = 1972,
    minimum_length: int = 40,
    maximum_length: int = 1500,
) -> PacketTrace:
    """Build a reproducible packet trace with per-packet flow assignment."""
    rng = np.random.default_rng(seed)
    lengths = rng.integers(minimum_length, maximum_length + 1, size=packet_count, dtype=np.int64)
    flow_ids = rng.integers(0, flow_count, size=packet_count, dtype=np.int64)
    sources = rng.integers(0, 2**31, size=packet_count, dtype=np.int64)
    destinations = rng.integers(0, 2**31, size=packet_count, dtype=np.int64)
    return PacketTrace(
        lengths=lengths,
        flow_ids=flow_ids,
        source_addresses=sources,
        destination_addresses=destinations,
    )

"""repro: reproduction of "Automatic Application-Specific Microarchitecture Reconfiguration".

The package re-implements, in pure Python, the complete system of
Padmanabhan et al. (IPPS 2006): a LEON2-like soft-core processor
simulator with the reconfigurable microarchitecture of the paper's
Figure 1, an analytic FPGA synthesis cost model of the Virtex XCV2000E, a
black-box build-and-measure platform, the paper's four benchmarks and --
the contribution itself -- the linear one-factor measurement campaign and
constrained Binary Integer Nonlinear Program that recommends an
application-specific processor configuration.

Quickstart
----------
>>> from repro import LiquidPlatform, MicroarchTuner, RUNTIME_OPTIMIZATION
>>> from repro.workloads import ArithWorkload
>>> tuner = MicroarchTuner(LiquidPlatform())
>>> result = tuner.tune(ArithWorkload(iterations=500), RUNTIME_OPTIMIZATION)
>>> sorted(result.changed_parameters())  # doctest: +SKIP
['divider', 'icache_setsize_kb', ...]
"""

from repro.config import (
    Configuration,
    PerturbationSpace,
    base_configuration,
    leon_parameter_space,
)
from repro.core import (
    RESOURCE_OPTIMIZATION,
    RUNTIME_ONLY,
    RUNTIME_OPTIMIZATION,
    BranchAndBoundSolver,
    ExhaustiveSolver,
    MicroarchTuner,
    OneFactorCampaign,
    TuningResult,
    Weights,
    build_problem,
)
from repro.engine import EngineStats, EvaluationBackend, ParallelEvaluator, ResultStore
from repro.fpga import SynthesisModel, XCV2000E
from repro.microarch import ProcessorModel
from repro.platform import LiquidPlatform, Measurement, PhasedMeasurement

__version__ = "1.0.0"

__all__ = [
    "Configuration",
    "PerturbationSpace",
    "base_configuration",
    "leon_parameter_space",
    "RESOURCE_OPTIMIZATION",
    "RUNTIME_ONLY",
    "RUNTIME_OPTIMIZATION",
    "BranchAndBoundSolver",
    "ExhaustiveSolver",
    "MicroarchTuner",
    "OneFactorCampaign",
    "TuningResult",
    "Weights",
    "build_problem",
    "SynthesisModel",
    "XCV2000E",
    "ProcessorModel",
    "LiquidPlatform",
    "Measurement",
    "PhasedMeasurement",
    "EngineStats",
    "EvaluationBackend",
    "ParallelEvaluator",
    "ResultStore",
    "__version__",
]

"""The Liquid Architecture measurement platform (simulation-backed).

The paper's Liquid Architecture platform instantiates a LEON2 processor
configuration on the FPGA, runs the application directly on it and uses a
hardware cycle counter to report the runtime; synthesis reports provide
the chip resources.  :class:`LiquidPlatform` provides the same black-box
"build and measure" interface on top of our substrates:

* *build* = run the analytic synthesis model (instead of a ~30-minute
  FPGA synthesis run);
* *measure* = replay the workload's configuration-independent execution
  trace through the cache and pipeline timing models (instead of a
  multi-second/minute run on real hardware).

Builds and measurements are memoised exactly like the real platform
caches bitstreams: the campaign asks for many configurations that share
cache geometries, and re-simulating them would dominate the cost of the
experiments.  The platform also counts how many *distinct* builds and
runs were needed, which is the quantity the paper's scalability argument
(linear versus exponential) is about.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.config.configuration import Configuration
from repro.errors import MeasurementError
from repro.fpga.device import FpgaDevice, XCV2000E
from repro.fpga.report import ResourceReport
from repro.fpga.synthesis import SynthesisModel
from repro.microarch.cache import Cache, CacheConfig, CacheStatistics
from repro.microarch.cachekernel import PhaseReplay, replay_phases, simulate_many
from repro.microarch.statistics import ExecutionStatistics
from repro.microarch.timing import TimingModel, TimingParameters, evaluate_many
from repro.obs.tracer import span
from repro.platform.measurement import Measurement, PhasedMeasurement
from repro.workloads.base import Workload
from repro.workloads.phased import PhasedWorkload

__all__ = ["LiquidPlatform", "CacheJob", "PhaseJob", "job_group_key", "plan_job_groups"]

#: One outstanding cache simulation: ``(workload_fingerprint, "icache"|"dcache",
#: geometry)``.  The engine layer fans these out over worker processes and
#: installs the resulting statistics back into the platform's memo store.
#: Keys use :meth:`~repro.workloads.base.Workload.fingerprint` rather than the
#: workload name so same-named workloads with different traces never alias.
CacheJob = Tuple[str, str, CacheConfig]

#: One outstanding warm phase-chain replay, same key shape as :data:`CacheJob`
#: but resolving to a :class:`~repro.microarch.cachekernel.PhaseReplay` (the
#: per-phase warm-chained and cold-started statistics of one geometry).  The
#: fingerprint of a :class:`~repro.workloads.phased.PhasedWorkload` covers its
#: phase boundaries, so two different cuts of one trace never share a job.
PhaseJob = Tuple[str, str, CacheConfig]


def job_group_key(job: CacheJob) -> Tuple[str, str, int]:
    """Shared-decode group of one job: ``(workload, kind, linesize)``.

    Jobs with the same key replay one decoded
    :class:`~repro.microarch.cachekernel.ColumnarTrace`; this is the
    single definition of "same group" used by the platform's batch
    simulation, the parallel engine's chunk planner and the arena's
    published-view keys, so a planning change cannot desynchronise them.
    """
    workload_key, kind, cache_cfg = job
    return (workload_key, kind, cache_cfg.linesize_bytes)


def plan_job_groups(jobs: Sequence[CacheJob]) -> Dict[Tuple[str, str, int], List[CacheJob]]:
    """Group jobs by :func:`job_group_key`, preserving first-need order."""
    groups: Dict[Tuple[str, str, int], List[CacheJob]] = {}
    for job in jobs:
        groups.setdefault(job_group_key(job), []).append(job)
    return groups


class LiquidPlatform:
    """Black-box build-and-measure service used by the optimisation campaign."""

    def __init__(
        self,
        device: FpgaDevice = XCV2000E,
        synthesis_model: Optional[SynthesisModel] = None,
        timing_parameters: Optional[TimingParameters] = None,
        *,
        enforce_fit: bool = True,
    ):
        self.device = device
        self.synthesis = synthesis_model or SynthesisModel(device)
        self.timing_parameters = timing_parameters or TimingParameters()
        self.enforce_fit = enforce_fit
        # memoisation stores
        self._reports: Dict[Tuple, ResourceReport] = {}
        self._built: set = set()
        # keyed by (workload fingerprint, configuration): hashing the
        # Configuration reuses its cached key hash, so the sweep path's
        # per-grid-point membership probes cost a dict lookup, not a walk
        # over every parameter
        self._runs: Dict[Tuple, ExecutionStatistics] = {}
        self._cache_runs: Dict[Tuple, CacheStatistics] = {}
        self._phase_runs: Dict[Tuple, PhaseReplay] = {}
        # (icache, dcache) CacheConfig pair per configuration key: the
        # sweep planners re-derive job keys for every batch, and building
        # the geometry dataclasses dominates that planning cost
        self._cache_cfg_memo: Dict[Configuration, Tuple[CacheConfig, CacheConfig]] = {}
        # effort accounting
        self.build_count = 0
        self.run_count = 0

    # -- synthesis ------------------------------------------------------------------------

    def _synthesize(self, config: Configuration) -> ResourceReport:
        """Run (or reuse) the synthesis model without fit enforcement."""
        key = config.key()
        report = self._reports.get(key)
        if report is None:
            report = self.synthesis.synthesize(config)
            self._reports[key] = report
        return report

    def build(self, config: Configuration) -> ResourceReport:
        """Synthesise a configuration (memoised)."""
        key = config.key()
        report = self._synthesize(config)
        if key not in self._built:
            if self.enforce_fit and not report.fits():
                raise MeasurementError(
                    f"configuration does not fit on {self.device.name}: {report.summary()}")
            self._built.add(key)
            self.build_count += 1
        return report

    def fits(self, config: Configuration) -> bool:
        """True when the configuration can be built on the platform's device.

        The synthesis report is memoised and shared with :meth:`build`, so
        a campaign that pre-screens every perturbation never synthesises a
        configuration twice.
        """
        return self._synthesize(config).fits()

    # -- execution -------------------------------------------------------------------------

    def _cache_configs(self, config: Configuration) -> Tuple[CacheConfig, CacheConfig]:
        """Memoised (icache, dcache) geometry pair of one configuration.

        Keyed by the configuration itself: its hash is computed once at
        construction, where hashing the raw key tuple would rewalk every
        parameter on each of the sweep path's planning passes.
        """
        pair = self._cache_cfg_memo.get(config)
        if pair is None:
            pair = (CacheConfig.icache_from(config), CacheConfig.dcache_from(config))
            self._cache_cfg_memo[config] = pair
        return pair

    def _cache_keys(self, workload_key: str, config: Configuration) -> Tuple[Tuple, Tuple]:
        icache_cfg, dcache_cfg = self._cache_configs(config)
        return (workload_key, "icache", icache_cfg), (workload_key, "dcache", dcache_cfg)

    def cache_requests(
        self, workload: Workload, configs: Sequence[Configuration]
    ) -> List[CacheJob]:
        """Distinct, not-yet-simulated cache runs needed to measure ``configs``.

        The returned jobs are deterministic in order (first-need order over
        the batch) and safe to execute independently: every job gets a
        fresh :class:`Cache` whose PRNG is seeded from its own geometry,
        exactly as the sequential path does.
        """
        jobs: List[CacheJob] = []
        seen = set()
        workload_key = workload.fingerprint()
        # membership probes hash the full parameter key; on a fresh
        # platform (every sweep benchmark rep, every new campaign) the
        # memo is empty and the probe is pure overhead per grid point
        measured = self._runs
        for config in configs:
            if measured and (workload_key, config) in measured:
                continue
            for key in self._cache_keys(workload_key, config):
                if key in self._cache_runs or key in seen:
                    continue
                seen.add(key)
                jobs.append(key)
        return jobs

    def cache_plan(
        self, workload: Workload, configs: Sequence[Configuration]
    ) -> Tuple[List[Tuple[CacheJob, CacheJob]], List[CacheJob]]:
        """One planning pass over a sweep batch: key pairs plus pending jobs.

        Returns the per-config ``(icache job, dcache job)`` keys aligned
        with ``configs`` and the distinct not-yet-simulated jobs in
        first-need order (exactly :meth:`cache_requests` restricted to a
        batch with no already-measured configurations).  Callers that
        both fan the jobs out and assemble the statistics afterwards --
        the engine sweep path -- reuse the pairs instead of walking every
        configuration's parameter key a second time.
        """
        workload_key = workload.fingerprint()
        key_pairs = [self._cache_keys(workload_key, c) for c in configs]
        jobs: List[CacheJob] = []
        seen = set()
        for pair in key_pairs:
            for key in pair:
                if key in self._cache_runs or key in seen:
                    continue
                seen.add(key)
                jobs.append(key)
        return key_pairs, jobs

    def is_measured(self, workload: Workload, config: Configuration) -> bool:
        """True when :meth:`measure` would be answered entirely from memos."""
        return ((workload.fingerprint(), config) in self._runs
                and config.key() in self._built)

    def install_cache_run(self, job: CacheJob, statistics: CacheStatistics) -> None:
        """Install an externally simulated cache result into the memo store."""
        self._cache_runs.setdefault(job, statistics)

    def simulate_cache_job(self, workload: Workload, job: CacheJob) -> CacheStatistics:
        """Run one cache job in-process (the engine's worker does the same remotely)."""
        _, kind, cache_cfg = job
        view = workload.columnar_view(kind, cache_cfg.linesize_bytes)
        return Cache(cache_cfg).simulate_view(view)

    def simulate_cache_jobs(
        self, workload: Workload, jobs: Sequence[CacheJob]
    ) -> Dict[CacheJob, CacheStatistics]:
        """Run a batch of cache jobs for one workload with shared decodes.

        Jobs are grouped by ``(kind, linesize)``; each group replays the
        workload's single decoded columnar view once per configuration
        through :func:`~repro.microarch.cachekernel.simulate_many`.  The
        result of every job is bit-identical to
        :meth:`simulate_cache_job` run in isolation.
        """
        results: Dict[CacheJob, CacheStatistics] = {}
        for (_, kind, linesize), group in plan_job_groups(jobs).items():
            view = workload.columnar_view(kind, linesize)
            statistics = simulate_many(view, [job[2] for job in group])
            results.update(zip(group, statistics))
        return results

    # -- warm phase chains -----------------------------------------------------------------

    def phase_requests(
        self, workload: PhasedWorkload, configs: Sequence[Configuration]
    ) -> List[PhaseJob]:
        """Distinct, not-yet-replayed phase chains needed for ``configs``.

        The analogue of :meth:`cache_requests` for warm phase-chain
        replays; job order is deterministic (first-need order) and every
        job is independent: a chain replays against its own fresh state
        with the geometry's seeded PRNG.
        """
        jobs: List[PhaseJob] = []
        seen = set()
        workload_key = workload.fingerprint()
        for config in configs:
            for key in self._cache_keys(workload_key, config):
                if key in self._phase_runs or key in seen:
                    continue
                seen.add(key)
                jobs.append(key)
        return jobs

    def install_phase_run(self, job: PhaseJob, replay: PhaseReplay) -> None:
        """Install an externally replayed phase chain into the memo store."""
        self._phase_runs.setdefault(job, replay)

    def simulate_phase_chain(
        self, workload: PhasedWorkload, job: PhaseJob
    ) -> PhaseReplay:
        """Replay one warm phase chain (plus cold starts) in-process."""
        _, kind, cache_cfg = job
        views = workload.phase_views(kind, cache_cfg.linesize_bytes)
        return replay_phases(views, cache_cfg)

    def simulate_phase_chains(
        self, workload: PhasedWorkload, jobs: Sequence[PhaseJob]
    ) -> Dict[PhaseJob, PhaseReplay]:
        """Replay a batch of phase chains with shared per-phase decodes.

        Jobs are grouped by ``(kind, linesize)``; each group decodes the
        workload's phases once (cached on the workload) and replays every
        configuration's chain against the shared views with its own
        resident :class:`~repro.microarch.cachekernel.KernelState`.
        """
        results: Dict[PhaseJob, PhaseReplay] = {}
        for (_, kind, linesize), group in plan_job_groups(jobs).items():
            views = workload.phase_views(kind, linesize)
            for job in group:
                results[job] = replay_phases(views, job[2])
        return results

    def phase_replays(
        self, workload: PhasedWorkload, config: Configuration
    ) -> Tuple[PhaseReplay, PhaseReplay]:
        """Memoised (icache, dcache) phase replays of one configuration."""
        ikey, dkey = self._cache_keys(workload.fingerprint(), config)
        for key in (ikey, dkey):
            if key not in self._phase_runs:
                self._phase_runs[key] = self.simulate_phase_chain(workload, key)
        return self._phase_runs[ikey], self._phase_runs[dkey]

    def measure_phases(
        self, workload: PhasedWorkload, configs: Sequence[Configuration]
    ) -> List[PhasedMeasurement]:
        """Measure a batch of configurations with per-phase cache views.

        The overall measurement of each configuration is exactly
        :meth:`measure` (warm-chain totals are bit-identical to the
        single-shot replay of the concatenated trace); the phased result
        adds the warm-chained and cold-started per-phase statistics.
        """
        measurements = self.measure_many(workload, configs)
        results = []
        for config, measurement in zip(configs, measurements):
            icache, dcache = self.phase_replays(workload, config)
            results.append(PhasedMeasurement(
                measurement=measurement,
                phases=workload.phase_names,
                icache=icache,
                dcache=dcache,
            ))
        return results

    def _cache_statistics(
        self, workload: Workload, config: Configuration
    ) -> Tuple[CacheStatistics, CacheStatistics]:
        ikey, dkey = self._cache_keys(workload.fingerprint(), config)
        if ikey not in self._cache_runs:
            self._cache_runs[ikey] = self.simulate_cache_job(workload, ikey)
        if dkey not in self._cache_runs:
            self._cache_runs[dkey] = self.simulate_cache_job(workload, dkey)
        return self._cache_runs[ikey], self._cache_runs[dkey]

    def profile(self, workload: Workload, config: Configuration) -> ExecutionStatistics:
        """Cycle-accurate profile of ``workload`` on ``config`` (memoised)."""
        key = (workload.fingerprint(), config)
        if key not in self._runs:
            cache_stats = self._cache_statistics(workload, config)
            timing = TimingModel(config, self.timing_parameters)
            self._runs[key] = timing.evaluate(workload.trace(), *cache_stats)
            self.run_count += 1
        return self._runs[key]

    # -- combined measurement -------------------------------------------------------------------

    def measure(self, workload: Workload, config: Configuration) -> Measurement:
        """Build ``config`` and run ``workload`` on it."""
        resources = self.build(config)
        statistics = self.profile(workload, config)
        return Measurement(
            workload=workload.name,
            configuration=config,
            resources=resources,
            statistics=statistics,
        )

    def measure_many(
        self, workload: Workload, configs: Sequence[Configuration]
    ) -> List[Measurement]:
        """Measure a batch of configurations; results align with ``configs``.

        Duplicate configurations are measured once.  This is the batch
        entry point of the :class:`~repro.engine.backend.EvaluationBackend`
        protocol; the sequential platform evaluates the unique
        configurations in first-appearance order, which parallel backends
        must reproduce bit-identically.
        """
        unique: Dict[Tuple, Measurement] = {}
        for config in configs:
            key = config.key()
            if key not in unique:
                unique[key] = self.measure(workload, config)
        return [unique[config.key()] for config in configs]

    def measure_sweep(
        self,
        workload: Workload,
        configs: Sequence[Configuration],
        *,
        batched: bool = True,
        cache_pairs: Optional[List[Tuple[CacheJob, CacheJob]]] = None,
    ) -> List[Measurement]:
        """Measure a configuration grid through the broadcast-batched path.

        The sweep fast path factors the work the per-configuration loop
        repeats: cache statistics come from the shared-decode
        :meth:`simulate_cache_jobs` batch (grouped by geometry), and the
        timing model evaluates the whole grid at once through
        :func:`~repro.microarch.timing.evaluate_many` -- the trace is
        summarised into one feature vector and each cycle term is a
        single array operation over the grid.  Results are bit-identical
        to :meth:`measure_many` (which ``batched=False`` falls back to),
        and all memo stores are shared, so the two paths interleave
        freely.

        ``cache_pairs`` lets a caller that already planned the batch
        through :meth:`cache_plan` (the engine sweep path) hand the
        per-config job keys back in, skipping the second planning pass;
        it must align positionally with ``configs`` and is ignored
        whenever deduplication or memo hits would break that alignment.
        """
        if not batched:
            return self.measure_many(workload, configs)
        workload_key = workload.fingerprint()
        unique: List[Configuration] = []
        seen = set()
        for config in configs:
            key = config.key()
            if key not in seen:
                seen.add(key)
                unique.append(config)
        # builds first (memoised; fit enforcement raises on the first
        # non-buildable configuration, like the per-config path)
        reports = {config.key(): self.build(config) for config in unique}

        missing = (list(unique) if not self._runs else
                   [c for c in unique if (workload_key, c) not in self._runs])
        if missing:
            # one planning pass serves both the job dispatch and the
            # statistics-pair assembly below (an engine that already fanned
            # the jobs out over its pool finds nothing left to simulate)
            if cache_pairs is not None and len(cache_pairs) == len(missing) == len(configs):
                key_pairs = cache_pairs
                jobs = [key for key in dict.fromkeys(
                    key for pair in key_pairs for key in pair)
                    if key not in self._cache_runs]
            else:
                key_pairs, jobs = self.cache_plan(workload, missing)
            if jobs:
                for job, statistics in self.simulate_cache_jobs(
                        workload, jobs).items():
                    self.install_cache_run(job, statistics)
            pairs = [(self._cache_runs[ikey], self._cache_runs[dkey])
                     for ikey, dkey in key_pairs]
            with span("solve", configs=len(missing), workload=workload.name):
                evaluated = evaluate_many(
                    workload.trace(), missing, pairs, self.timing_parameters)
            for config, statistics in zip(missing, evaluated):
                self._runs[(workload_key, config)] = statistics
                self.run_count += 1
        return [
            Measurement(
                workload=workload.name,
                configuration=config,
                resources=reports[config.key()],
                statistics=self._runs[(workload_key, config)],
            )
            for config in configs
        ]

    def effort(self) -> Dict[str, int]:
        """Distinct builds and runs performed so far (scalability accounting)."""
        return {"builds": self.build_count, "runs": self.run_count}

"""The Liquid Architecture measurement platform (simulation-backed).

The paper's Liquid Architecture platform instantiates a LEON2 processor
configuration on the FPGA, runs the application directly on it and uses a
hardware cycle counter to report the runtime; synthesis reports provide
the chip resources.  :class:`LiquidPlatform` provides the same black-box
"build and measure" interface on top of our substrates:

* *build* = run the analytic synthesis model (instead of a ~30-minute
  FPGA synthesis run);
* *measure* = replay the workload's configuration-independent execution
  trace through the cache and pipeline timing models (instead of a
  multi-second/minute run on real hardware).

Builds and measurements are memoised exactly like the real platform
caches bitstreams: the campaign asks for many configurations that share
cache geometries, and re-simulating them would dominate the cost of the
experiments.  The platform also counts how many *distinct* builds and
runs were needed, which is the quantity the paper's scalability argument
(linear versus exponential) is about.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.config.configuration import Configuration
from repro.errors import MeasurementError
from repro.fpga.device import FpgaDevice, XCV2000E
from repro.fpga.report import ResourceReport
from repro.fpga.synthesis import SynthesisModel
from repro.microarch.cache import Cache, CacheConfig, CacheStatistics
from repro.microarch.statistics import ExecutionStatistics
from repro.microarch.timing import TimingModel, TimingParameters
from repro.platform.measurement import Measurement
from repro.workloads.base import Workload

__all__ = ["LiquidPlatform"]


class LiquidPlatform:
    """Black-box build-and-measure service used by the optimisation campaign."""

    def __init__(
        self,
        device: FpgaDevice = XCV2000E,
        synthesis_model: Optional[SynthesisModel] = None,
        timing_parameters: Optional[TimingParameters] = None,
        *,
        enforce_fit: bool = True,
    ):
        self.device = device
        self.synthesis = synthesis_model or SynthesisModel(device)
        self.timing_parameters = timing_parameters or TimingParameters()
        self.enforce_fit = enforce_fit
        # memoisation stores
        self._builds: Dict[Tuple, ResourceReport] = {}
        self._runs: Dict[Tuple, ExecutionStatistics] = {}
        self._cache_runs: Dict[Tuple, CacheStatistics] = {}
        # effort accounting
        self.build_count = 0
        self.run_count = 0

    # -- synthesis ------------------------------------------------------------------------

    def build(self, config: Configuration) -> ResourceReport:
        """Synthesise a configuration (memoised)."""
        key = config.key()
        if key not in self._builds:
            report = self.synthesis.synthesize(config)
            if self.enforce_fit and not report.fits():
                raise MeasurementError(
                    f"configuration does not fit on {self.device.name}: {report.summary()}")
            self._builds[key] = report
            self.build_count += 1
        return self._builds[key]

    def fits(self, config: Configuration) -> bool:
        """True when the configuration can be built on the platform's device."""
        return self.synthesis.synthesize(config).fits()

    # -- execution -------------------------------------------------------------------------

    def _cache_statistics(
        self, workload: Workload, config: Configuration
    ) -> Tuple[CacheStatistics, CacheStatistics]:
        trace = workload.trace()
        icache_cfg = CacheConfig.icache_from(config)
        dcache_cfg = CacheConfig.dcache_from(config)
        ikey = (workload.name, "icache", icache_cfg)
        dkey = (workload.name, "dcache", dcache_cfg)
        if ikey not in self._cache_runs:
            self._cache_runs[ikey] = Cache(icache_cfg).simulate(trace.pcs)
        if dkey not in self._cache_runs:
            self._cache_runs[dkey] = Cache(dcache_cfg).simulate(
                trace.data_addresses, trace.data_is_write)
        return self._cache_runs[ikey], self._cache_runs[dkey]

    def profile(self, workload: Workload, config: Configuration) -> ExecutionStatistics:
        """Cycle-accurate profile of ``workload`` on ``config`` (memoised)."""
        key = (workload.name, config.key())
        if key not in self._runs:
            cache_stats = self._cache_statistics(workload, config)
            timing = TimingModel(config, self.timing_parameters)
            self._runs[key] = timing.evaluate(workload.trace(), *cache_stats)
            self.run_count += 1
        return self._runs[key]

    # -- combined measurement -------------------------------------------------------------------

    def measure(self, workload: Workload, config: Configuration) -> Measurement:
        """Build ``config`` and run ``workload`` on it."""
        resources = self.build(config)
        statistics = self.profile(workload, config)
        return Measurement(
            workload=workload.name,
            configuration=config,
            resources=resources,
            statistics=statistics,
        )

    def effort(self) -> Dict[str, int]:
        """Distinct builds and runs performed so far (scalability accounting)."""
        return {"builds": self.build_count, "runs": self.run_count}

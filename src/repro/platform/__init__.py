"""Black-box build-and-measure platform (the paper's Liquid Architecture platform)."""

from repro.platform.liquid import LiquidPlatform
from repro.platform.measurement import CostDelta, Measurement, PhasedMeasurement

__all__ = ["LiquidPlatform", "CostDelta", "Measurement", "PhasedMeasurement"]

"""Measurement records returned by the Liquid platform.

A :class:`Measurement` bundles everything the paper's campaign extracts
from one (configuration, application) pair: the synthesis resource report
(LUT/BRAM utilisation) and the cycle-accurate runtime profile.  The
convenience delta methods compute the paper's rho (runtime %), lambda
(LUT %) and beta (BRAM %) values relative to a base measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.config.configuration import Configuration
from repro.fpga.report import ResourceReport
from repro.microarch.cachekernel import PhaseReplay
from repro.microarch.statistics import ExecutionStatistics

__all__ = ["Measurement", "CostDelta", "PhasedMeasurement"]


@dataclass(frozen=True)
class CostDelta:
    """Per-perturbation cost deltas relative to the base configuration."""

    #: Runtime delta in percent of the base runtime (the paper's rho_i).
    rho: float
    #: LUT utilisation delta in percentage points (the paper's lambda_i).
    lam: float
    #: BRAM utilisation delta in percentage points (the paper's beta_i).
    beta: float

    @property
    def chip(self) -> float:
        """Combined chip-resource delta (lambda + beta), the paper's chip cost term."""
        return self.lam + self.beta


@dataclass(frozen=True)
class Measurement:
    """Resources and runtime of one workload on one configuration."""

    workload: str
    configuration: Configuration
    resources: ResourceReport
    statistics: ExecutionStatistics

    # -- absolute values --------------------------------------------------------------

    @property
    def cycles(self) -> int:
        return self.statistics.cycles

    @property
    def seconds(self) -> float:
        return self.statistics.seconds

    @property
    def lut_percent(self) -> float:
        return self.resources.lut_percent

    @property
    def bram_percent(self) -> float:
        return self.resources.bram_percent

    @property
    def chip_cost(self) -> float:
        return self.resources.chip_cost

    # -- deltas ---------------------------------------------------------------------------

    def delta(self, base: "Measurement") -> CostDelta:
        """rho/lambda/beta of this measurement relative to ``base``."""
        rho = self.statistics.runtime_delta_percent(base.statistics)
        resource_delta = self.resources.delta_percent(base.resources)
        return CostDelta(rho=rho, lam=resource_delta["lut"], beta=resource_delta["bram"])

    def summary(self) -> Dict[str, float]:
        """Row-ready summary used by the experiment tables."""
        return {
            "cycles": float(self.cycles),
            "seconds": self.seconds,
            "lut_percent": self.lut_percent,
            "bram_percent": self.bram_percent,
        }


@dataclass(frozen=True)
class PhasedMeasurement:
    """A measurement of a phase-structured workload, per-phase views included.

    The overall :attr:`measurement` is bit-identical to measuring the
    workload without phase structure (the warm chain's totals equal the
    single-shot replay of the concatenated trace); what the phase view
    adds is the per-phase cache behaviour, warm-chained *and*
    cold-started, for both caches.
    """

    measurement: Measurement
    #: Phase names, aligned with the per-phase statistics tuples.
    phases: Tuple[str, ...]
    #: Per-phase instruction-cache replay (warm chain + cold starts).
    icache: PhaseReplay
    #: Per-phase data-cache replay (warm chain + cold starts).
    dcache: PhaseReplay

    @property
    def configuration(self) -> Configuration:
        return self.measurement.configuration

    @property
    def cycles(self) -> int:
        return self.measurement.cycles

    def phase_rows(self) -> List[Dict[str, float]]:
        """Per-phase cold/warm miss-rate rows for the phase-transition tables."""
        rows = []
        for i, phase in enumerate(self.phases):
            cold = self.dcache.cold[i]
            warm = self.dcache.warm[i]
            rows.append({
                "phase": phase,
                "accesses": cold.accesses,
                "cold_misses": cold.misses,
                "warm_misses": warm.misses,
                "cold_miss_rate": cold.miss_rate,
                "warm_miss_rate": warm.miss_rate,
                "icache_cold_miss_rate": self.icache.cold[i].miss_rate,
                "icache_warm_miss_rate": self.icache.warm[i].miss_rate,
            })
        return rows

"""Measurement records returned by the Liquid platform.

A :class:`Measurement` bundles everything the paper's campaign extracts
from one (configuration, application) pair: the synthesis resource report
(LUT/BRAM utilisation) and the cycle-accurate runtime profile.  The
convenience delta methods compute the paper's rho (runtime %), lambda
(LUT %) and beta (BRAM %) values relative to a base measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config.configuration import Configuration
from repro.fpga.report import ResourceReport
from repro.microarch.statistics import ExecutionStatistics

__all__ = ["Measurement", "CostDelta"]


@dataclass(frozen=True)
class CostDelta:
    """Per-perturbation cost deltas relative to the base configuration."""

    #: Runtime delta in percent of the base runtime (the paper's rho_i).
    rho: float
    #: LUT utilisation delta in percentage points (the paper's lambda_i).
    lam: float
    #: BRAM utilisation delta in percentage points (the paper's beta_i).
    beta: float

    @property
    def chip(self) -> float:
        """Combined chip-resource delta (lambda + beta), the paper's chip cost term."""
        return self.lam + self.beta


@dataclass(frozen=True)
class Measurement:
    """Resources and runtime of one workload on one configuration."""

    workload: str
    configuration: Configuration
    resources: ResourceReport
    statistics: ExecutionStatistics

    # -- absolute values --------------------------------------------------------------

    @property
    def cycles(self) -> int:
        return self.statistics.cycles

    @property
    def seconds(self) -> float:
        return self.statistics.seconds

    @property
    def lut_percent(self) -> float:
        return self.resources.lut_percent

    @property
    def bram_percent(self) -> float:
        return self.resources.bram_percent

    @property
    def chip_cost(self) -> float:
        return self.resources.chip_cost

    # -- deltas ---------------------------------------------------------------------------

    def delta(self, base: "Measurement") -> CostDelta:
        """rho/lambda/beta of this measurement relative to ``base``."""
        rho = self.statistics.runtime_delta_percent(base.statistics)
        resource_delta = self.resources.delta_percent(base.resources)
        return CostDelta(rho=rho, lam=resource_delta["lut"], beta=resource_delta["bram"])

    def summary(self) -> Dict[str, float]:
        """Row-ready summary used by the experiment tables."""
        return {
            "cycles": float(self.cycles),
            "seconds": self.seconds,
            "lut_percent": self.lut_percent,
            "bram_percent": self.bram_percent,
        }

"""Instruction set definition for the LEON-like (SPARC V8 subset) core.

The reproduction does not need binary compatibility with SPARC; it needs
an instruction set rich enough to express the paper's four benchmarks and
whose dynamic instruction mix exercises every microarchitecture parameter
of Figure 1 (integer ALU, hardware multiply/divide, loads/stores of
word/half/byte, condition-code branches, calls and register windows).

Instructions are represented as decoded :class:`Instruction` objects; the
functional simulator dispatches on :attr:`Instruction.op` and the timing
model groups ops into :class:`OpClass` categories.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import AssemblyError

__all__ = ["Op", "OpClass", "Instruction", "OP_CLASS", "CONDITION_CODES"]


class Op(str, enum.Enum):
    """Instruction mnemonics."""

    # ALU (register/immediate second operand)
    ADD = "add"
    ADDCC = "addcc"
    SUB = "sub"
    SUBCC = "subcc"
    AND = "and"
    ANDCC = "andcc"
    OR = "or"
    ORCC = "orcc"
    XOR = "xor"
    XORCC = "xorcc"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    SETHI = "sethi"
    # multiply / divide (hardware presence is a timing property only)
    UMUL = "umul"
    SMUL = "smul"
    UDIV = "udiv"
    SDIV = "sdiv"
    # memory
    LD = "ld"       # load word
    LDUB = "ldub"   # load unsigned byte
    LDUH = "lduh"   # load unsigned halfword
    LDSB = "ldsb"   # load signed byte
    LDSH = "ldsh"   # load signed halfword
    ST = "st"       # store word
    STB = "stb"     # store byte
    STH = "sth"     # store halfword
    # control transfer
    BRANCH = "b"    # conditional branch on integer condition codes
    CALL = "call"   # call label, return address in %o7
    JMPL = "jmpl"   # jump to register + immediate, link into rd
    RET = "ret"     # return to %i7 and restore the register window
    RETL = "retl"   # leaf return to %o7 (no window change)
    SAVE = "save"   # new register window (+ ADD semantics for the stack pointer)
    RESTORE = "restore"
    # misc
    NOP = "nop"
    HALT = "halt"   # stop the simulation (not a SPARC instruction)


class OpClass(enum.IntEnum):
    """Timing classes used by the cycle model (values are stable/trace-encoded)."""

    ALU = 0
    SETHI = 1
    LOAD = 2
    STORE = 3
    BRANCH_UNTAKEN = 4
    BRANCH_TAKEN = 5
    CALL = 6
    JUMP = 7
    MUL = 8
    DIV = 9
    SAVE = 10
    RESTORE = 11
    NOP = 12
    HALT = 13


#: Static mapping from mnemonic to timing class.  Branches are classified
#: dynamically (taken vs. untaken) by the functional simulator.
OP_CLASS: Dict[Op, OpClass] = {
    Op.ADD: OpClass.ALU, Op.ADDCC: OpClass.ALU, Op.SUB: OpClass.ALU,
    Op.SUBCC: OpClass.ALU, Op.AND: OpClass.ALU, Op.ANDCC: OpClass.ALU,
    Op.OR: OpClass.ALU, Op.ORCC: OpClass.ALU, Op.XOR: OpClass.ALU,
    Op.XORCC: OpClass.ALU, Op.SLL: OpClass.ALU, Op.SRL: OpClass.ALU,
    Op.SRA: OpClass.ALU, Op.SETHI: OpClass.SETHI,
    Op.UMUL: OpClass.MUL, Op.SMUL: OpClass.MUL,
    Op.UDIV: OpClass.DIV, Op.SDIV: OpClass.DIV,
    Op.LD: OpClass.LOAD, Op.LDUB: OpClass.LOAD, Op.LDUH: OpClass.LOAD,
    Op.LDSB: OpClass.LOAD, Op.LDSH: OpClass.LOAD,
    Op.ST: OpClass.STORE, Op.STB: OpClass.STORE, Op.STH: OpClass.STORE,
    Op.CALL: OpClass.CALL, Op.JMPL: OpClass.JUMP, Op.RET: OpClass.JUMP,
    Op.RETL: OpClass.JUMP, Op.SAVE: OpClass.SAVE, Op.RESTORE: OpClass.RESTORE,
    Op.NOP: OpClass.NOP, Op.HALT: OpClass.HALT,
}

#: Branch conditions over the integer condition codes (N, Z, V, C).
CONDITION_CODES: Tuple[str, ...] = (
    "a",    # always
    "n",    # never
    "e",    # equal                 (Z)
    "ne",   # not equal             (!Z)
    "g",    # signed greater        (!(Z | (N ^ V)))
    "le",   # signed less-or-equal  (Z | (N ^ V))
    "ge",   # signed greater-equal  (!(N ^ V))
    "l",    # signed less           (N ^ V)
    "gu",   # unsigned greater      (!(C | Z))
    "leu",  # unsigned less-equal   (C | Z)
    "cc",   # carry clear / unsigned greater-equal (!C)
    "cs",   # carry set / unsigned less            (C)
    "pos",  # positive (!N)
    "neg",  # negative (N)
)


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    Fields not used by a given mnemonic are left at their defaults; the
    assembler is responsible for filling in the correct combination and
    :meth:`validate` enforces it.
    """

    op: Op
    rd: int = 0
    rs1: int = 0
    rs2: Optional[int] = None          # register source 2, mutually exclusive with imm
    imm: Optional[int] = None          # immediate operand
    condition: Optional[str] = None    # branch condition
    target: Optional[int] = None       # resolved absolute address for branch/call
    label: Optional[str] = None        # symbolic target (pre-resolution)
    annul_sets_cc: bool = False        # unused placeholder kept for encoding symmetry

    # -- queries ---------------------------------------------------------------

    @property
    def op_class(self) -> OpClass:
        return OP_CLASS[self.op]

    @property
    def is_load(self) -> bool:
        return self.op_class == OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.op_class == OpClass.STORE

    @property
    def is_branch(self) -> bool:
        return self.op == Op.BRANCH

    @property
    def is_control(self) -> bool:
        return self.op in (Op.BRANCH, Op.CALL, Op.JMPL, Op.RET, Op.RETL)

    @property
    def sets_icc(self) -> bool:
        """True when the instruction updates the integer condition codes."""
        return self.op in (Op.ADDCC, Op.SUBCC, Op.ANDCC, Op.ORCC, Op.XORCC)

    @property
    def reads_registers(self) -> Tuple[int, ...]:
        """Architectural registers read by this instruction (window-relative 0..31)."""
        if self.op in (Op.SETHI, Op.NOP, Op.HALT, Op.CALL):
            return ()
        if self.op == Op.BRANCH:
            return ()
        regs = [self.rs1]
        if self.rs2 is not None:
            regs.append(self.rs2)
        if self.is_store:
            regs.append(self.rd)  # stores read the "destination" register as data
        return tuple(regs)

    @property
    def writes_register(self) -> Optional[int]:
        """The architectural register written, or ``None``."""
        if self.op in (Op.NOP, Op.HALT, Op.BRANCH) or self.is_store:
            return None
        if self.op in (Op.RET, Op.RETL):
            return None
        if self.op == Op.CALL:
            return 15  # %o7
        return self.rd

    # -- validation ----------------------------------------------------------------

    def validate(self) -> "Instruction":
        """Check operand consistency; returns ``self`` for chaining."""
        if not 0 <= self.rd < 32 or not 0 <= self.rs1 < 32:
            raise AssemblyError(f"register out of range in {self}")
        if self.rs2 is not None and not 0 <= self.rs2 < 32:
            raise AssemblyError(f"register out of range in {self}")
        if self.rs2 is not None and self.imm is not None:
            raise AssemblyError(f"instruction {self} has both a register and an immediate operand")
        if self.op == Op.BRANCH:
            if self.condition not in CONDITION_CODES:
                raise AssemblyError(f"unknown branch condition {self.condition!r}")
            if self.target is None and self.label is None:
                raise AssemblyError("branch without a target")
        if self.op == Op.CALL and self.target is None and self.label is None:
            raise AssemblyError("call without a target")
        if self.op == Op.SETHI and self.imm is None:
            raise AssemblyError("sethi requires an immediate")
        return self

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.op.value]
        if self.condition:
            parts[0] = f"b{self.condition}"
        if self.label is not None:
            parts.append(self.label)
        elif self.target is not None and self.is_control:
            parts.append(hex(self.target))
        else:
            operand = f"r{self.rs2}" if self.rs2 is not None else (
                str(self.imm) if self.imm is not None else "")
            parts.append(f"r{self.rd}, r{self.rs1}, {operand}")
        return " ".join(p for p in parts if p)

"""LEON-like instruction set: instructions, registers, assembler, programs."""

from repro.isa.instructions import CONDITION_CODES, Instruction, Op, OpClass, OP_CLASS
from repro.isa.registers import RegisterFile, register_name, register_number
from repro.isa.encoding import INSTRUCTION_BYTES, IMM13_MAX, IMM13_MIN, decode, encode
from repro.isa.program import MemoryLayout, Program
from repro.isa.assembler import Assembler

__all__ = [
    "CONDITION_CODES",
    "Instruction",
    "Op",
    "OpClass",
    "OP_CLASS",
    "RegisterFile",
    "register_name",
    "register_number",
    "INSTRUCTION_BYTES",
    "IMM13_MAX",
    "IMM13_MIN",
    "decode",
    "encode",
    "MemoryLayout",
    "Program",
    "Assembler",
]

"""Binary encoding of instructions to 32-bit words.

The encoding is *not* SPARC V8 machine code; it is a compact fixed-width
format used (a) to give every instruction a realistic 4-byte footprint for
the instruction-cache model and (b) to support round-trip property tests
(assemble -> encode -> decode -> identical instruction).

Word layout (most significant bits first)::

    [31:26] opcode           (Op enum position, 6 bits)
    [25:21] rd               (5 bits)
    [20:16] rs1              (5 bits)
    [15]    immediate flag   (1 = 13-bit immediate, 0 = rs2)
    [14:11] condition        (branches only, 4 bits)
    [12:0]  rs2 or imm13     (two's complement immediate)

Branches and calls store their target as a signed *word* displacement from
the instruction's own address in bits [20:0]; SETHI stores a 21-bit
immediate in bits [20:0] (the simulator implements ``rd = imm << 11``).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import AssemblyError
from repro.isa.instructions import CONDITION_CODES, Instruction, Op

__all__ = ["encode", "decode", "IMM13_MIN", "IMM13_MAX", "INSTRUCTION_BYTES"]

#: Size of every encoded instruction in bytes.
INSTRUCTION_BYTES = 4

IMM13_MIN = -(1 << 12)
IMM13_MAX = (1 << 12) - 1

_OPS = list(Op)
_OP_INDEX = {op: i for i, op in enumerate(_OPS)}
_DISP_BITS = 21
_DISP_MIN = -(1 << (_DISP_BITS - 1))
_DISP_MAX = (1 << (_DISP_BITS - 1)) - 1


def _to_unsigned(value: int, bits: int) -> int:
    lo = -(1 << (bits - 1))
    hi = (1 << (bits - 1)) - 1
    if not lo <= value <= hi:
        raise AssemblyError(f"value {value} does not fit in {bits} signed bits")
    return value & ((1 << bits) - 1)


def _to_signed(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return value - (1 << bits) if value & sign else value


def encode(instr: Instruction, address: int) -> int:
    """Encode ``instr`` located at ``address`` into a 32-bit word."""
    instr.validate()
    opcode = _OP_INDEX[instr.op]
    word = opcode << 26

    if instr.op in (Op.CALL, Op.BRANCH):
        if instr.target is None:
            raise AssemblyError(f"cannot encode unresolved control transfer {instr}")
        disp_words = (instr.target - address) // INSTRUCTION_BYTES
        disp = _to_unsigned(disp_words, _DISP_BITS)
        cond = CONDITION_CODES.index(instr.condition) if instr.condition else 0
        word |= (cond & 0xF) << 21
        word |= disp
        return word

    if instr.op == Op.SETHI:
        if instr.imm is None or not 0 <= instr.imm < (1 << 21):
            raise AssemblyError(f"sethi immediate out of range: {instr.imm!r}")
        # SETHI uses its own layout: rd sits above a 21-bit immediate.
        return (opcode << 26) | ((instr.rd & 0x1F) << 21) | (instr.imm & 0x1FFFFF)

    word |= (instr.rd & 0x1F) << 21
    word |= (instr.rs1 & 0x1F) << 16
    if instr.imm is not None:
        word |= 1 << 15
        word |= _to_unsigned(instr.imm, 13)
    else:
        word |= (instr.rs2 or 0) & 0x1F
    return word


def decode(word: int, address: int) -> Instruction:
    """Decode a word produced by :func:`encode` back into an :class:`Instruction`."""
    opcode = (word >> 26) & 0x3F
    if opcode >= len(_OPS):
        raise AssemblyError(f"illegal opcode {opcode} in word {word:#010x}")
    op = _OPS[opcode]

    if op in (Op.CALL, Op.BRANCH):
        cond_idx = (word >> 21) & 0xF
        disp = _to_signed(word & ((1 << _DISP_BITS) - 1), _DISP_BITS)
        target = address + disp * INSTRUCTION_BYTES
        condition = CONDITION_CODES[cond_idx] if op == Op.BRANCH else None
        return Instruction(op=op, condition=condition, target=target)

    if op == Op.SETHI:
        rd = (word >> 21) & 0x1F
        imm = word & 0x1FFFFF
        return Instruction(op=op, rd=rd, imm=imm)

    if op in (Op.RET, Op.RETL, Op.NOP, Op.HALT):
        return Instruction(op=op)

    rd = (word >> 21) & 0x1F
    rs1 = (word >> 16) & 0x1F
    if word & (1 << 15):
        imm: Optional[int] = _to_signed(word & 0x1FFF, 13)
        rs2: Optional[int] = None
    else:
        imm = None
        rs2 = word & 0x1F
    return Instruction(op=op, rd=rd, rs1=rs1, rs2=rs2, imm=imm)

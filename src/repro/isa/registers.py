"""SPARC-style windowed register file.

The visible architectural registers are the eight globals (``%g0``–``%g7``,
with ``%g0`` hard-wired to zero) plus 24 windowed registers: ``%o0``–``%o7``
(outs), ``%l0``–``%l7`` (locals) and ``%i0``–``%i7`` (ins).  ``SAVE`` rotates
to a new window in which the caller's *outs* become the callee's *ins*;
``RESTORE`` rotates back.

The functional register file is *unbounded*: windows are allocated on
demand so program results never depend on the configured window count.
The configured count (8 or 16–32 in the paper's Figure 1) only matters to
the *timing* model, which charges window overflow/underflow trap costs
based on the call-depth trace recorded by the functional simulator (see
:mod:`repro.microarch.timing`).
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import SimulationError

__all__ = ["RegisterFile", "register_number", "register_name", "REGISTER_ALIASES"]

#: Friendly aliases accepted by the assembler.
REGISTER_ALIASES: Dict[str, str] = {"sp": "o6", "fp": "i6", "ra": "o7", "zero": "g0"}

_GROUP_BASE = {"g": 0, "o": 8, "l": 16, "i": 24}
_GROUP_NAME = {0: "g", 8: "o", 16: "l", 24: "i"}

_MASK32 = 0xFFFFFFFF


def register_number(name: str) -> int:
    """Translate a register name (``"g3"``, ``"%o2"``, ``"sp"``) to 0..31."""
    text = name.lower().lstrip("%")
    text = REGISTER_ALIASES.get(text, text)
    if len(text) != 2 or text[0] not in _GROUP_BASE or not text[1].isdigit():
        raise SimulationError(f"unknown register name {name!r}")
    index = int(text[1])
    if index > 7:
        raise SimulationError(f"unknown register name {name!r}")
    return _GROUP_BASE[text[0]] + index


def register_name(number: int) -> str:
    """Inverse of :func:`register_number` (canonical ``g/o/l/i`` form)."""
    if not 0 <= number < 32:
        raise SimulationError(f"register number {number} out of range")
    base = (number // 8) * 8
    return f"{_GROUP_NAME[base]}{number - base}"


class RegisterFile:
    """Unbounded windowed register file with 32-bit wrap-around semantics."""

    __slots__ = ("_globals", "_windows", "_bottom_ins", "_cwp", "max_depth")

    def __init__(self) -> None:
        self._globals: List[int] = [0] * 8
        # each window holds locals[0:8] + outs[8:16]
        self._windows: List[List[int]] = [[0] * 16]
        self._bottom_ins: List[int] = [0] * 8
        self._cwp = 0
        self.max_depth = 0

    # -- window management --------------------------------------------------------

    @property
    def window(self) -> int:
        """Current window (call depth relative to the initial window)."""
        return self._cwp

    def save_window(self) -> None:
        """Enter a new register window (callee side of SAVE)."""
        self._cwp += 1
        if self._cwp == len(self._windows):
            self._windows.append([0] * 16)
        self.max_depth = max(self.max_depth, self._cwp)

    def restore_window(self) -> None:
        """Return to the caller's register window (RESTORE / RET)."""
        if self._cwp == 0:
            raise SimulationError("register window underflow below the initial window")
        self._cwp -= 1

    # -- register access --------------------------------------------------------------

    def read(self, reg: int) -> int:
        """Read architectural register ``reg`` (0..31) in the current window."""
        if reg == 0:
            return 0
        if reg < 8:
            return self._globals[reg]
        if reg < 16:  # outs
            return self._windows[self._cwp][8 + (reg - 8)]
        if reg < 24:  # locals
            return self._windows[self._cwp][reg - 16]
        # ins: the caller's outs
        if self._cwp == 0:
            return self._bottom_ins[reg - 24]
        return self._windows[self._cwp - 1][8 + (reg - 24)]

    def write(self, reg: int, value: int) -> None:
        """Write ``value`` (wrapped to 32 bits) to register ``reg``."""
        value &= _MASK32
        if reg == 0:
            return  # %g0 ignores writes
        if reg < 8:
            self._globals[reg] = value
        elif reg < 16:
            self._windows[self._cwp][8 + (reg - 8)] = value
        elif reg < 24:
            self._windows[self._cwp][reg - 16] = value
        else:
            if self._cwp == 0:
                self._bottom_ins[reg - 24] = value
            else:
                self._windows[self._cwp - 1][8 + (reg - 24)] = value

    def read_signed(self, reg: int) -> int:
        """Read a register interpreting the value as a signed 32-bit integer."""
        value = self.read(reg)
        return value - 0x1_0000_0000 if value & 0x8000_0000 else value

    # -- debugging --------------------------------------------------------------------

    def snapshot(self) -> Dict[str, int]:
        """All visible registers of the current window as a name->value mapping."""
        return {register_name(i): self.read(i) for i in range(32)}

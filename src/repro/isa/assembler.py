"""Assembler DSL for building programs in Python.

The benchmarks of the paper (BLASTN, CommBench DRR, CommBench FRAG, BYTE
Arith) are implemented as programs for our LEON-like ISA.  Writing them as
strings of assembly text would be tedious and error prone, so this module
provides a small embedded DSL: an :class:`Assembler` object with one
method per instruction, labels, symbolic data definitions and a couple of
macros (``set``, ``cmp``, ``mov``).

Operand order is destination-first: ``asm.add("g2", "g2", 1)`` computes
``%g2 = %g2 + 1``.  The second source operand of ALU and memory
instructions may be a register name or an integer immediate.

Example
-------
>>> from repro.isa.assembler import Assembler
>>> asm = Assembler("sum")
>>> asm.set("g1", 10); asm.set("g2", 0)
>>> asm.label("loop")
>>> asm.add("g2", "g2", "g1")
>>> asm.subcc("g1", "g1", 1)
>>> asm.bne("loop")
>>> asm.halt()
>>> program = asm.assemble()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.errors import AssemblyError
from repro.isa.encoding import IMM13_MAX, IMM13_MIN, INSTRUCTION_BYTES
from repro.isa.instructions import Instruction, Op
from repro.isa.program import MemoryLayout, Program
from repro.isa.registers import register_number

__all__ = ["Assembler"]

Operand = Union[str, int]


@dataclass
class _Fixup:
    """A deferred symbol reference to be patched at assembly time."""

    instruction_index: int
    kind: str  # "hi", "lo" or "target"
    symbol: str


class Assembler:
    """Incremental program builder with labels, data and macros."""

    def __init__(self, name: str = "program", layout: Optional[MemoryLayout] = None):
        self.name = name
        self.layout = layout or MemoryLayout()
        self._instructions: List[Instruction] = []
        self._data = bytearray()
        self._symbols: Dict[str, int] = {}
        self._fixups: List[_Fixup] = []

    # ------------------------------------------------------------------ helpers --

    def __len__(self) -> int:
        return len(self._instructions)

    @property
    def here(self) -> int:
        """Address of the next instruction to be emitted."""
        return self.layout.text_base + len(self._instructions) * INSTRUCTION_BYTES

    def _reg(self, name: Operand) -> int:
        if isinstance(name, int):
            if 0 <= name < 32:
                return name
            raise AssemblyError(f"register number {name} out of range")
        return register_number(name)

    def _emit(self, instr: Instruction) -> int:
        self._instructions.append(instr.validate())
        return len(self._instructions) - 1

    def _alu(self, op: Op, rd: Operand, rs1: Operand, operand: Operand) -> None:
        if isinstance(operand, int):
            if not IMM13_MIN <= operand <= IMM13_MAX:
                raise AssemblyError(
                    f"immediate {operand} out of range for {op.value}; use set() first")
            self._emit(Instruction(op=op, rd=self._reg(rd), rs1=self._reg(rs1), imm=operand))
        else:
            self._emit(Instruction(op=op, rd=self._reg(rd), rs1=self._reg(rs1),
                                   rs2=self._reg(operand)))

    # ----------------------------------------------------------------- labels ----

    def label(self, name: str) -> None:
        """Define a text label at the current position."""
        if name in self._symbols:
            raise AssemblyError(f"duplicate label {name!r}")
        self._symbols[name] = self.here

    # ------------------------------------------------------------- ALU & moves ----

    def add(self, rd: Operand, rs1: Operand, operand: Operand) -> None:
        self._alu(Op.ADD, rd, rs1, operand)

    def addcc(self, rd: Operand, rs1: Operand, operand: Operand) -> None:
        self._alu(Op.ADDCC, rd, rs1, operand)

    def sub(self, rd: Operand, rs1: Operand, operand: Operand) -> None:
        self._alu(Op.SUB, rd, rs1, operand)

    def subcc(self, rd: Operand, rs1: Operand, operand: Operand) -> None:
        self._alu(Op.SUBCC, rd, rs1, operand)

    def and_(self, rd: Operand, rs1: Operand, operand: Operand) -> None:
        self._alu(Op.AND, rd, rs1, operand)

    def andcc(self, rd: Operand, rs1: Operand, operand: Operand) -> None:
        self._alu(Op.ANDCC, rd, rs1, operand)

    def or_(self, rd: Operand, rs1: Operand, operand: Operand) -> None:
        self._alu(Op.OR, rd, rs1, operand)

    def orcc(self, rd: Operand, rs1: Operand, operand: Operand) -> None:
        self._alu(Op.ORCC, rd, rs1, operand)

    def xor(self, rd: Operand, rs1: Operand, operand: Operand) -> None:
        self._alu(Op.XOR, rd, rs1, operand)

    def xorcc(self, rd: Operand, rs1: Operand, operand: Operand) -> None:
        self._alu(Op.XORCC, rd, rs1, operand)

    def sll(self, rd: Operand, rs1: Operand, operand: Operand) -> None:
        self._alu(Op.SLL, rd, rs1, operand)

    def srl(self, rd: Operand, rs1: Operand, operand: Operand) -> None:
        self._alu(Op.SRL, rd, rs1, operand)

    def sra(self, rd: Operand, rs1: Operand, operand: Operand) -> None:
        self._alu(Op.SRA, rd, rs1, operand)

    def umul(self, rd: Operand, rs1: Operand, operand: Operand) -> None:
        self._alu(Op.UMUL, rd, rs1, operand)

    def smul(self, rd: Operand, rs1: Operand, operand: Operand) -> None:
        self._alu(Op.SMUL, rd, rs1, operand)

    def udiv(self, rd: Operand, rs1: Operand, operand: Operand) -> None:
        self._alu(Op.UDIV, rd, rs1, operand)

    def sdiv(self, rd: Operand, rs1: Operand, operand: Operand) -> None:
        self._alu(Op.SDIV, rd, rs1, operand)

    def sethi(self, rd: Operand, imm21: int) -> None:
        """Set the upper 21 bits of ``rd`` (``rd = imm21 << 11``)."""
        self._emit(Instruction(op=Op.SETHI, rd=self._reg(rd), imm=imm21))

    def mov(self, rd: Operand, source: Operand) -> None:
        """Copy a register or a small immediate into ``rd``."""
        self._alu(Op.OR, rd, "g0", source)

    def set(self, rd: Operand, value: Union[int, str]) -> None:
        """Load a full 32-bit constant or the address of a symbol into ``rd``.

        Symbols may be forward references; they are patched at
        :meth:`assemble` time and always expand to ``sethi`` + ``or``.
        """
        if isinstance(value, str):
            index = self._emit(Instruction(op=Op.SETHI, rd=self._reg(rd), imm=0))
            self._fixups.append(_Fixup(index, "hi", value))
            index = self._emit(
                Instruction(op=Op.OR, rd=self._reg(rd), rs1=self._reg(rd), imm=0))
            self._fixups.append(_Fixup(index, "lo", value))
            return
        if IMM13_MIN <= value <= IMM13_MAX:
            self.mov(rd, value)
            return
        if value < 0:
            value &= 0xFFFFFFFF
        if value >= 1 << 32:
            raise AssemblyError(f"constant {value:#x} does not fit in 32 bits")
        high, low = value >> 11, value & 0x7FF
        self.sethi(rd, high)
        if low:
            self.or_(rd, rd, low)

    def cmp(self, rs1: Operand, operand: Operand) -> None:
        """Compare two values by setting the condition codes (``subcc ..., %g0``)."""
        self._alu(Op.SUBCC, "g0", rs1, operand)

    def tst(self, rs1: Operand) -> None:
        """Set condition codes from a single register (``orcc %g0, rs1, %g0``)."""
        self._emit(Instruction(op=Op.ORCC, rd=0, rs1=self._reg(rs1), rs2=0))

    def nop(self) -> None:
        self._emit(Instruction(op=Op.NOP))

    def halt(self) -> None:
        self._emit(Instruction(op=Op.HALT))

    # --------------------------------------------------------------------- memory ----

    def _mem(self, op: Op, value_reg: Operand, base: Operand, offset: Operand) -> None:
        if isinstance(offset, int):
            if not IMM13_MIN <= offset <= IMM13_MAX:
                raise AssemblyError(f"memory offset {offset} out of range")
            self._emit(Instruction(op=op, rd=self._reg(value_reg), rs1=self._reg(base),
                                   imm=offset))
        else:
            self._emit(Instruction(op=op, rd=self._reg(value_reg), rs1=self._reg(base),
                                   rs2=self._reg(offset)))

    def ld(self, rd: Operand, base: Operand, offset: Operand = 0) -> None:
        self._mem(Op.LD, rd, base, offset)

    def ldub(self, rd: Operand, base: Operand, offset: Operand = 0) -> None:
        self._mem(Op.LDUB, rd, base, offset)

    def lduh(self, rd: Operand, base: Operand, offset: Operand = 0) -> None:
        self._mem(Op.LDUH, rd, base, offset)

    def ldsb(self, rd: Operand, base: Operand, offset: Operand = 0) -> None:
        self._mem(Op.LDSB, rd, base, offset)

    def ldsh(self, rd: Operand, base: Operand, offset: Operand = 0) -> None:
        self._mem(Op.LDSH, rd, base, offset)

    def st(self, value_reg: Operand, base: Operand, offset: Operand = 0) -> None:
        self._mem(Op.ST, value_reg, base, offset)

    def stb(self, value_reg: Operand, base: Operand, offset: Operand = 0) -> None:
        self._mem(Op.STB, value_reg, base, offset)

    def sth(self, value_reg: Operand, base: Operand, offset: Operand = 0) -> None:
        self._mem(Op.STH, value_reg, base, offset)

    # ------------------------------------------------------------------ control flow ----

    def branch(self, condition: str, label: str) -> None:
        self._emit(Instruction(op=Op.BRANCH, condition=condition, label=label, target=None))
        self._fixups.append(_Fixup(len(self._instructions) - 1, "target", label))

    def ba(self, label: str) -> None:
        self.branch("a", label)

    def be(self, label: str) -> None:
        self.branch("e", label)

    def bne(self, label: str) -> None:
        self.branch("ne", label)

    def bg(self, label: str) -> None:
        self.branch("g", label)

    def bge(self, label: str) -> None:
        self.branch("ge", label)

    def bl(self, label: str) -> None:
        self.branch("l", label)

    def ble(self, label: str) -> None:
        self.branch("le", label)

    def bgu(self, label: str) -> None:
        self.branch("gu", label)

    def bleu(self, label: str) -> None:
        self.branch("leu", label)

    def bcc(self, label: str) -> None:
        self.branch("cc", label)

    def bcs(self, label: str) -> None:
        self.branch("cs", label)

    def call(self, label: str) -> None:
        self._emit(Instruction(op=Op.CALL, label=label, target=None))
        self._fixups.append(_Fixup(len(self._instructions) - 1, "target", label))

    def jmpl(self, rd: Operand, base: Operand, offset: int = 0) -> None:
        self._emit(Instruction(op=Op.JMPL, rd=self._reg(rd), rs1=self._reg(base), imm=offset))

    def ret(self) -> None:
        """Return to the caller and restore the register window."""
        self._emit(Instruction(op=Op.RET))

    def retl(self) -> None:
        """Leaf-procedure return (no register window change)."""
        self._emit(Instruction(op=Op.RETL))

    def save(self, frame_bytes: int = 96) -> None:
        """Enter a new register window and carve a stack frame."""
        self._emit(Instruction(op=Op.SAVE, rd=register_number("sp"),
                               rs1=register_number("sp"), imm=-abs(frame_bytes)))

    def restore(self, rd: Operand = "g0", rs1: Operand = "g0", operand: Operand = 0) -> None:
        self._alu(Op.RESTORE, rd, rs1, operand)

    # --------------------------------------------------------------------- data ------

    def data_label(self, name: str) -> int:
        """Define a data label at the current end of the data segment."""
        if name in self._symbols:
            raise AssemblyError(f"duplicate label {name!r}")
        address = self.layout.data_base + len(self._data)
        self._symbols[name] = address
        return address

    def word_data(self, values: Iterable[int]) -> None:
        """Append 32-bit words to the data segment."""
        for value in values:
            self._data += (value & 0xFFFFFFFF).to_bytes(4, "little")

    def half_data(self, values: Iterable[int]) -> None:
        """Append 16-bit halfwords to the data segment."""
        for value in values:
            self._data += (value & 0xFFFF).to_bytes(2, "little")

    def byte_data(self, values: Union[bytes, bytearray, Sequence[int]]) -> None:
        """Append raw bytes to the data segment."""
        self._data += bytes(v & 0xFF for v in values)

    def zeros(self, count: int) -> None:
        """Reserve ``count`` zero bytes in the data segment."""
        self._data += bytes(count)

    def align(self, boundary: int = 4) -> None:
        """Pad the data segment to the given alignment."""
        remainder = len(self._data) % boundary
        if remainder:
            self._data += bytes(boundary - remainder)

    # ------------------------------------------------------------------- assembly -----

    def assemble(self) -> Program:
        """Resolve labels and produce an immutable :class:`Program`."""
        instructions = list(self._instructions)
        for fixup in self._fixups:
            if fixup.symbol not in self._symbols:
                raise AssemblyError(f"undefined symbol {fixup.symbol!r}")
            address = self._symbols[fixup.symbol]
            instr = instructions[fixup.instruction_index]
            if fixup.kind == "target":
                instructions[fixup.instruction_index] = Instruction(
                    op=instr.op, rd=instr.rd, rs1=instr.rs1, rs2=instr.rs2, imm=instr.imm,
                    condition=instr.condition, target=address, label=instr.label)
            elif fixup.kind == "hi":
                instructions[fixup.instruction_index] = Instruction(
                    op=Op.SETHI, rd=instr.rd, imm=address >> 11)
            elif fixup.kind == "lo":
                instructions[fixup.instruction_index] = Instruction(
                    op=Op.OR, rd=instr.rd, rs1=instr.rs1, imm=address & 0x7FF)
            else:  # pragma: no cover - defensive
                raise AssemblyError(f"unknown fixup kind {fixup.kind!r}")
        return Program(
            instructions=tuple(instructions),
            data=bytes(self._data),
            symbols=dict(self._symbols),
            layout=self.layout,
            name=self.name,
        )

"""Program images: instructions, data segment and symbols.

A :class:`Program` is the output of the assembler and the input of the
functional simulator.  It holds the resolved instruction stream (the text
segment), the initial data image, a symbol table and the memory layout
(text base, data base, stack region).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from repro.errors import SimulationError
from repro.isa.encoding import INSTRUCTION_BYTES, encode
from repro.isa.instructions import Instruction

__all__ = ["Program", "MemoryLayout"]


@dataclass(frozen=True)
class MemoryLayout:
    """Address-space layout used by assembled programs.

    The defaults give a 2 MiB address space: text at the bottom, a data
    segment at 512 KiB and a downward-growing stack starting at the top.
    """

    text_base: int = 0x0000_0000
    data_base: int = 0x0008_0000
    stack_top: int = 0x001F_FF00
    memory_size: int = 0x0020_0000

    def __post_init__(self) -> None:
        if self.text_base % INSTRUCTION_BYTES:
            raise SimulationError("text base must be word aligned")
        if not (self.text_base < self.data_base < self.stack_top <= self.memory_size):
            raise SimulationError("memory layout regions must be ordered and non-overlapping")


@dataclass(frozen=True)
class Program:
    """An assembled, resolved program."""

    instructions: Tuple[Instruction, ...]
    data: bytes = b""
    symbols: Mapping[str, int] = field(default_factory=dict)
    layout: MemoryLayout = field(default_factory=MemoryLayout)
    name: str = "program"

    def __post_init__(self) -> None:
        text_end = self.layout.text_base + len(self.instructions) * INSTRUCTION_BYTES
        if text_end > self.layout.data_base:
            raise SimulationError(
                f"program text ({len(self.instructions)} instructions) overflows into the "
                f"data segment"
            )
        if self.layout.data_base + len(self.data) > self.layout.stack_top:
            raise SimulationError("program data overflows into the stack region")

    # -- address helpers -------------------------------------------------------------

    @property
    def entry_point(self) -> int:
        """Address of the first instruction (or the ``start`` symbol if defined)."""
        return self.symbols.get("start", self.layout.text_base)

    @property
    def text_size_bytes(self) -> int:
        return len(self.instructions) * INSTRUCTION_BYTES

    def instruction_index(self, pc: int) -> int:
        """Index into :attr:`instructions` for program counter ``pc``."""
        offset = pc - self.layout.text_base
        if offset < 0 or offset % INSTRUCTION_BYTES:
            raise SimulationError(f"misaligned or out-of-range program counter {pc:#x}")
        index = offset // INSTRUCTION_BYTES
        if index >= len(self.instructions):
            raise SimulationError(f"program counter {pc:#x} is outside the text segment")
        return index

    def instruction_at(self, pc: int) -> Instruction:
        """The instruction located at address ``pc``."""
        return self.instructions[self.instruction_index(pc)]

    def address_of(self, symbol: str) -> int:
        """Address of a label defined in the text or data segment."""
        try:
            return self.symbols[symbol]
        except KeyError:
            raise SimulationError(f"unknown symbol {symbol!r}") from None

    # -- encoded form ------------------------------------------------------------------

    def encoded_text(self) -> bytes:
        """The text segment encoded to 32-bit words (big-endian)."""
        out = bytearray()
        for i, instr in enumerate(self.instructions):
            address = self.layout.text_base + i * INSTRUCTION_BYTES
            out += encode(instr, address).to_bytes(4, "big")
        return bytes(out)

    def summary(self) -> str:
        """Human readable one-line description."""
        return (
            f"{self.name}: {len(self.instructions)} instructions, "
            f"{len(self.data)} data bytes, {len(self.symbols)} symbols"
        )

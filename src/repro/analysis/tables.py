"""Plain-text tables for experiment reports.

The benchmark harness prints the same rows the paper's figures report;
this module provides a small, dependency-free table formatter so those
rows are readable both on the terminal and in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Sequence

__all__ = ["Table"]


def _format(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


@dataclass
class Table:
    """A titled table with named columns."""

    title: str
    columns: Sequence[str]
    rows: List[List[str]] = field(default_factory=list)

    def add_row(self, values: Iterable[Any]) -> None:
        row = [_format(v) for v in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} values for {len(self.columns)} columns in {self.title!r}")
        self.rows.append(row)

    def add_mapping(self, mapping: Mapping[str, Any]) -> None:
        """Add a row from a mapping keyed by column name (missing keys become '-')."""
        self.add_row([mapping.get(column, "-") for column in self.columns])

    # -- rendering ---------------------------------------------------------------------

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = " | ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        rule = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title), header, rule]
        for row in self.rows:
            lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def to_markdown(self) -> str:
        header = "| " + " | ".join(self.columns) + " |"
        rule = "| " + " | ".join("---" for _ in self.columns) + " |"
        lines = [f"**{self.title}**", "", header, rule]
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def as_dicts(self) -> List[Dict[str, str]]:
        """Rows as dictionaries keyed by column name (useful in tests)."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()

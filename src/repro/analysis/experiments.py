"""Experiment drivers -- one per table/figure of the paper's evaluation.

Every driver returns an :class:`ExperimentResult` containing formatted
tables (what the benchmark harness prints) and a ``data`` dictionary with
the raw values (what the tests and the paper-comparison module consume).

The mapping from paper figure to driver is:

========  =====================================================
Figure 1  :func:`parameter_space_summary`
Figure 2  :func:`dcache_exhaustive`
Figure 3  :func:`dcache_optimizer`
Figure 4  :func:`dcache_study`
Figure 5  :func:`runtime_optimization` (via :func:`optimization_study`)
Figure 6  :func:`perturbation_costs`
Figure 7  :func:`resource_optimization` (via :func:`optimization_study`)
--        :func:`scalability_study`, :func:`approximation_ablation`,
          :func:`solver_ablation` (ablations motivated by Sections 3/4/6)
========  =====================================================
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.config import (
    CACHE_SET_COUNTS,
    CACHE_SET_SIZES_KB,
    Configuration,
    base_configuration,
    leon_parameter_space,
)
from repro.core import (
    RESOURCE_OPTIMIZATION,
    RUNTIME_ONLY,
    RUNTIME_OPTIMIZATION,
    BranchAndBoundSolver,
    ExhaustiveSolver,
    GreedyIndependentSolver,
    MicroarchTuner,
    RandomSearchSolver,
    TuningResult,
    Weights,
    build_problem,
)
from repro.core.model import CostModel
from repro.engine.backend import EngineStats, EvaluationBackend
from repro.microarch.statistics import cycles_to_seconds
from repro.workloads import WORKLOAD_ORDER
from repro.workloads.base import Workload
from repro.analysis.tables import Table

__all__ = [
    "ExperimentResult",
    "parameter_space_summary",
    "dcache_exhaustive",
    "dcache_optimizer",
    "dcache_study",
    "optimization_study",
    "runtime_optimization",
    "resource_optimization",
    "perturbation_costs",
    "phase_transition_study",
    "scalability_study",
    "engine_report",
    "approximation_ablation",
    "solver_ablation",
]

#: Parameters of the scaled-down dcache study (paper, Section 5).
DCACHE_STUDY_PARAMETERS = ("dcache_sets", "dcache_setsize_kb")


@dataclass
class ExperimentResult:
    """Formatted tables plus raw data of one experiment."""

    experiment: str
    tables: List[Table] = field(default_factory=list)
    data: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        return "\n\n".join(table.render() for table in self.tables)

    def table(self, title_fragment: str) -> Table:
        for table in self.tables:
            if title_fragment.lower() in table.title.lower():
                return table
        raise KeyError(f"no table matching {title_fragment!r} in {self.experiment}")


def _ordered(workloads: Mapping[str, Workload]) -> List[Workload]:
    order = [name for name in WORKLOAD_ORDER if name in workloads]
    order += [name for name in workloads if name not in order]
    return [workloads[name] for name in order]


# --------------------------------------------------------------------------- Figure 1 --

def parameter_space_summary() -> ExperimentResult:
    """Figure 1: the LEON reconfigurable parameters, defaults and space sizes."""
    space = leon_parameter_space()
    table = Table("Figure 1: LEON reconfigurable parameters",
                  ["parameter", "subsystem", "values", "default"])
    for parameter in space:
        table.add_row([
            parameter.name,
            parameter.subsystem,
            ",".join(str(v) for v in parameter.values),
            parameter.default,
        ])
    sizes = Table("Design-space sizes", ["quantity", "value"])
    sizes.add_row(["parameters", len(space)])
    sizes.add_row(["parameter values", space.value_count()])
    sizes.add_row(["one-factor perturbations (campaign builds)", space.perturbation_count()])
    sizes.add_row(["exhaustive configurations", space.exhaustive_size()])
    sizes.add_row(["exhaustive configurations reported by the paper", 3_641_573_376])
    return ExperimentResult(
        experiment="figure1",
        tables=[table, sizes],
        data={
            "parameters": len(space),
            "values": space.value_count(),
            "perturbations": space.perturbation_count(),
            "exhaustive": space.exhaustive_size(),
        },
    )


# --------------------------------------------------------------------------- Figure 2 --

def dcache_exhaustive(
    platform: EvaluationBackend,
    workload: Workload,
    *,
    set_counts: Sequence[int] = CACHE_SET_COUNTS,
    set_sizes: Sequence[int] = CACHE_SET_SIZES_KB,
    sweep: bool = True,
) -> ExperimentResult:
    """Figure 2: exhaustive sweep of dcache {sets x set size} for one workload.

    The buildable grid points are submitted as one batch, so an engine
    backend simulates the distinct cache geometries in parallel.  By
    default the batch goes through the backend's broadcast-batched
    ``measure_sweep`` fast path (bit-identical to the per-configuration
    path); ``sweep=False`` forces the per-configuration ``measure_many``
    loop, e.g. for baseline benchmarking.
    """
    base = base_configuration()
    table = Table(
        f"Figure 2: {workload.name} exhaustive dcache sweep",
        ["sets", "setsize_kb", "cycles", "seconds", "lut_percent", "bram_percent"])
    points = [
        (sets, size, base.replace(dcache_sets=sets, dcache_setsize_kb=size))
        for sets, size in itertools.product(set_counts, set_sizes)
    ]
    points = [(sets, size, config) for sets, size, config in points if platform.fits(config)]
    measure = platform.measure_sweep if sweep and hasattr(
        platform, "measure_sweep") else platform.measure_many
    measurements = measure(workload, [config for _, _, config in points])
    rows: List[Dict[str, Any]] = []
    for (sets, size, _), measurement in zip(points, measurements):
        row = {
            "sets": sets,
            "setsize_kb": size,
            "cycles": measurement.cycles,
            "seconds": measurement.seconds,
            "lut_percent": measurement.lut_percent,
            "bram_percent": measurement.bram_percent,
        }
        rows.append(row)
        table.add_mapping(row)
    best = min(rows, key=lambda r: r["cycles"])
    best_table = Table("Optimal runtime (exhaustive)", table.columns)
    best_table.add_mapping(best)
    return ExperimentResult(
        experiment="figure2",
        tables=[table, best_table],
        data={"rows": rows, "best": best, "configurations_evaluated": len(rows)},
    )


# --------------------------------------------------------------------------- Figure 3 --

def dcache_optimizer(
    platform: EvaluationBackend,
    workload: Workload,
    weights: Weights = RUNTIME_ONLY,
) -> ExperimentResult:
    """Figure 3: the optimizer's view of the dcache sub-space for one workload."""
    tuner = MicroarchTuner(platform)
    model = tuner.build_model(workload, parameters=DCACHE_STUDY_PARAMETERS)
    result = tuner.tune(workload, weights, model=model, verify=True)
    campaign = tuner.campaign

    base_table = Table("Base configuration", ["sets", "setsize_kb", "cycles", "seconds",
                                              "lut_percent", "bram_percent"])
    base_cfg = model.base.configuration
    base_table.add_mapping({
        "sets": base_cfg.dcache_sets, "setsize_kb": base_cfg.dcache_setsize_kb,
        "cycles": model.base.cycles, "seconds": model.base.seconds,
        "lut_percent": model.base.lut_percent, "bram_percent": model.base.bram_percent})

    evaluated = Table(
        f"Figure 3: {workload.name} optimizer one-factor dcache configurations "
        f"({weights.describe()})",
        ["sets", "setsize_kb", "cycles", "seconds", "lut_percent", "bram_percent"])
    for record in campaign.records:
        cfg = record.configuration
        evaluated.add_mapping({
            "sets": cfg.dcache_sets, "setsize_kb": cfg.dcache_setsize_kb,
            "cycles": record.measurement.cycles, "seconds": record.measurement.seconds,
            "lut_percent": record.measurement.lut_percent,
            "bram_percent": record.measurement.bram_percent})

    selected = Table("Optimizer selection", evaluated.columns)
    assert result.actual is not None
    selected.add_mapping({
        "sets": result.configuration.dcache_sets,
        "setsize_kb": result.configuration.dcache_setsize_kb,
        "cycles": result.actual.cycles, "seconds": result.actual.seconds,
        "lut_percent": result.actual.lut_percent, "bram_percent": result.actual.bram_percent})

    return ExperimentResult(
        experiment="figure3",
        tables=[base_table, evaluated, selected],
        data={
            "selected_sets": result.configuration.dcache_sets,
            "selected_setsize_kb": result.configuration.dcache_setsize_kb,
            "selected_cycles": result.actual.cycles,
            "base_cycles": model.base.cycles,
            "configurations_evaluated": len(campaign.records),
            "tuning_result": result,
        },
    )


# --------------------------------------------------------------------------- Figure 4 --

def dcache_study(
    platform: EvaluationBackend,
    workloads: Mapping[str, Workload],
    weights: Weights = RUNTIME_ONLY,
    *,
    sweep: bool = True,
) -> ExperimentResult:
    """Figure 4 (and the Section 5 analysis): exhaustive vs optimizer on the dcache space."""
    table = Table(
        f"Figure 4: dcache optimization, exhaustive vs optimizer ({weights.describe()})",
        ["workload", "method", "sets", "setsize_kb", "cycles", "seconds",
         "lut_percent", "bram_percent"])
    data: Dict[str, Any] = {}
    for workload in _ordered(workloads):
        exhaustive = dcache_exhaustive(platform, workload, sweep=sweep)
        optimizer = dcache_optimizer(platform, workload, weights)
        best = exhaustive.data["best"]
        table.add_mapping({"workload": workload.name, "method": "exhaustive", **best})
        table.add_mapping({
            "workload": workload.name, "method": "optimizer",
            "sets": optimizer.data["selected_sets"],
            "setsize_kb": optimizer.data["selected_setsize_kb"],
            "cycles": optimizer.data["selected_cycles"],
            "seconds": cycles_to_seconds(optimizer.data["selected_cycles"]),
            "lut_percent": optimizer.data["tuning_result"].actual.lut_percent,
            "bram_percent": optimizer.data["tuning_result"].actual.bram_percent,
        })
        base_cycles = optimizer.data["base_cycles"]
        gap = 100.0 * (optimizer.data["selected_cycles"] - best["cycles"]) / base_cycles
        data[workload.name] = {
            "exhaustive_cycles": best["cycles"],
            "exhaustive_config": (best["sets"], best["setsize_kb"]),
            "optimizer_cycles": optimizer.data["selected_cycles"],
            "optimizer_config": (optimizer.data["selected_sets"],
                                 optimizer.data["selected_setsize_kb"]),
            "base_cycles": base_cycles,
            "optimality_gap_percent": gap,
        }
    return ExperimentResult(experiment="figure4", tables=[table], data=data)


# ----------------------------------------------------------------------- Figures 5 & 7 --

def optimization_study(
    platform: EvaluationBackend,
    workloads: Mapping[str, Workload],
    weights: Weights,
    *,
    models: Optional[Mapping[str, CostModel]] = None,
    experiment: str = "optimization",
) -> ExperimentResult:
    """Full-space optimisation for every workload (Figures 5 and 7).

    The one-factor campaigns of all workloads without a pre-built model
    are submitted as a single multi-workload batch, so an engine backend
    runs them concurrently.
    """
    tuner = MicroarchTuner(platform)
    ordered = _ordered(workloads)
    results: Dict[str, TuningResult] = {}
    used_models: Dict[str, CostModel] = {
        w.name: (models or {}).get(w.name) for w in ordered}
    missing = [w for w in ordered if used_models[w.name] is None]
    if missing:
        used_models.update(tuner.build_models(missing))
    for workload in ordered:
        results[workload.name] = tuner.tune(
            workload, weights, model=used_models[workload.name], verify=True)

    names = [w.name for w in ordered]
    base = base_configuration()
    changed_params = sorted({p for r in results.values() for p in r.changed_parameters()})
    params_table = Table(
        f"Reconfigured parameters ({weights.describe()})",
        ["parameter", "base"] + names)
    for parameter in changed_params:
        row = {"parameter": parameter, "base": base[parameter]}
        for name in names:
            row[name] = results[name].configuration[parameter]
        params_table.add_mapping(row)

    approx_table = Table(
        "Cost approximations by the optimizer",
        ["quantity"] + names)
    actual_table = Table("Actual synthesis", ["quantity"] + names)

    def approx_row(label: str, getter) -> None:
        approx_table.add_mapping({"quantity": label,
                                  **{n: getter(results[n]) for n in names}})

    def actual_row(label: str, getter) -> None:
        actual_table.add_mapping({"quantity": label,
                                  **{n: getter(results[n]) for n in names}})

    approx_row("runtime_cycles", lambda r: r.predicted.runtime_cycles)
    approx_row("runtime_seconds", lambda r: r.predicted.runtime_seconds)
    approx_row("runtime_change_percent", lambda r: r.predicted.runtime_percent)
    approx_row("lut_percent (linear)", lambda r: r.predicted.lut_percent_linear)
    approx_row("lut_percent (nonlinear)", lambda r: r.predicted.lut_percent_nonlinear)
    approx_row("bram_percent (nonlinear)", lambda r: r.predicted.bram_percent_nonlinear)
    approx_row("bram_percent (linear)", lambda r: r.predicted.bram_percent_linear)

    actual_row("runtime_cycles", lambda r: r.actual.cycles)
    actual_row("runtime_seconds", lambda r: r.actual.seconds)
    actual_row("runtime_change_percent",
               lambda r: 100.0 * (r.actual.cycles - r.base.cycles) / r.base.cycles)
    actual_row("lut_percent", lambda r: r.actual.lut_percent)
    actual_row("bram_percent", lambda r: r.actual.bram_percent)

    base_table = Table("Base configuration measurements",
                       ["quantity"] + names)
    base_table.add_mapping({"quantity": "runtime_cycles",
                            **{n: results[n].base.cycles for n in names}})
    base_table.add_mapping({"quantity": "runtime_seconds",
                            **{n: results[n].base.seconds for n in names}})
    base_table.add_mapping({"quantity": "lut_percent",
                            **{n: results[n].base.lut_percent for n in names}})
    base_table.add_mapping({"quantity": "bram_percent",
                            **{n: results[n].base.bram_percent for n in names}})

    gains = {
        name: {
            "predicted_gain_percent": results[name].predicted_runtime_gain_percent(),
            "actual_gain_percent": results[name].actual_runtime_gain_percent(),
            "lut_delta": results[name].actual_resource_delta()["lut"],
            "bram_delta": results[name].actual_resource_delta()["bram"],
        }
        for name in names
    }
    return ExperimentResult(
        experiment=experiment,
        tables=[params_table, base_table, approx_table, actual_table],
        data={"results": results, "models": used_models, "gains": gains},
    )


def runtime_optimization(
    platform: EvaluationBackend,
    workloads: Mapping[str, Workload],
    *,
    models: Optional[Mapping[str, CostModel]] = None,
) -> ExperimentResult:
    """Figure 5: application runtime optimisation (w1=100, w2=1)."""
    return optimization_study(
        platform, workloads, RUNTIME_OPTIMIZATION, models=models, experiment="figure5")


def resource_optimization(
    platform: EvaluationBackend,
    workloads: Mapping[str, Workload],
    *,
    models: Optional[Mapping[str, CostModel]] = None,
) -> ExperimentResult:
    """Figure 7: chip-resource optimisation (w1=1, w2=100)."""
    return optimization_study(
        platform, workloads, RESOURCE_OPTIMIZATION, models=models, experiment="figure7")


# --------------------------------------------------------------------------- Figure 6 --

def perturbation_costs(result: TuningResult) -> ExperimentResult:
    """Figure 6: one-factor measured costs of the perturbations the optimizer selected."""
    model = result.model
    table = Table(
        f"Figure 6: {result.workload} one-factor costs of the selected perturbations",
        ["perturbation", "cycles", "seconds", "lut_percent", "bram_percent"])
    rows = []
    for index in result.selection:
        measurement = model.measurement(index)
        label = model.space.variable(index).label
        row = {
            "perturbation": label,
            "cycles": measurement.cycles,
            "seconds": measurement.seconds,
            "lut_percent": measurement.lut_percent,
            "bram_percent": measurement.bram_percent,
        }
        rows.append(row)
        table.add_mapping(row)
    return ExperimentResult(experiment="figure6", tables=[table],
                            data={"rows": rows, "base_cycles": model.base.cycles})


# --------------------------------------------------------------------- phase transitions --

def phase_transition_study(
    platform: EvaluationBackend,
    scenarios: Mapping[str, Workload],
    *,
    set_counts: Sequence[int] = CACHE_SET_COUNTS,
    set_sizes: Sequence[int] = CACHE_SET_SIZES_KB,
) -> ExperimentResult:
    """Cold-start vs warm-chained per-phase miss rates over the Figure-2 grid.

    For every multi-phase scenario (see
    :func:`~repro.workloads.phased.phase_scenarios`) and every buildable
    dcache ``{sets x set size}`` grid point, the scenario's phases replay
    twice: each phase from a cold cache (the paper's per-measurement
    view) and warm-chained with cache state carried across phase
    boundaries (the deployment view).  The reported delta -- warm minus
    cold miss rate, in percentage points -- is the phase-transition
    effect the cold-start engine cannot express; negative values mean
    the warm phase reuses state an earlier phase left behind.
    """
    base = base_configuration()
    detail = Table(
        "Phase transitions: cold vs warm dcache miss rates (12 largest effects)",
        ["scenario", "sets", "setsize_kb", "phase", "accesses",
         "cold_miss_pct", "warm_miss_pct", "delta_pp"])
    rows: List[Dict[str, Any]] = []
    phased_results: Dict[str, List] = {}
    for scenario_name, workload in scenarios.items():
        points = [
            (sets, size, base.replace(dcache_sets=sets, dcache_setsize_kb=size))
            for sets, size in itertools.product(set_counts, set_sizes)
        ]
        points = [p for p in points if platform.fits(p[2])]
        phased = platform.measure_phases(workload, [config for _, _, config in points])
        phased_results[scenario_name] = phased
        for (sets, size, _), result in zip(points, phased):
            for phase_row in result.phase_rows():
                row = {
                    "scenario": scenario_name,
                    "sets": sets,
                    "setsize_kb": size,
                    "phase": phase_row["phase"],
                    "accesses": phase_row["accesses"],
                    "cold_miss_pct": 100.0 * phase_row["cold_miss_rate"],
                    "warm_miss_pct": 100.0 * phase_row["warm_miss_rate"],
                    "delta_pp": 100.0 * (phase_row["warm_miss_rate"]
                                         - phase_row["cold_miss_rate"]),
                }
                rows.append(row)

    summary = Table(
        "Phase-transition summary (averaged over the dcache grid)",
        ["scenario", "phase", "mean_cold_pct", "mean_warm_pct",
         "mean_delta_pp", "max_abs_delta_pp"])
    summary_rows: List[Dict[str, Any]] = []
    for scenario_name in scenarios:
        phases: List[str] = []
        for row in rows:
            if row["scenario"] == scenario_name and row["phase"] not in phases:
                phases.append(row["phase"])
        for phase in phases:
            cell = [r for r in rows
                    if r["scenario"] == scenario_name and r["phase"] == phase]
            srow = {
                "scenario": scenario_name,
                "phase": phase,
                "mean_cold_pct": sum(r["cold_miss_pct"] for r in cell) / len(cell),
                "mean_warm_pct": sum(r["warm_miss_pct"] for r in cell) / len(cell),
                "mean_delta_pp": sum(r["delta_pp"] for r in cell) / len(cell),
                "max_abs_delta_pp": max(abs(r["delta_pp"]) for r in cell),
            }
            summary_rows.append(srow)
            summary.add_mapping(srow)

    for row in sorted(rows, key=lambda r: abs(r["delta_pp"]), reverse=True)[:12]:
        detail.add_mapping(row)
    return ExperimentResult(
        experiment="phase_transitions",
        tables=[summary, detail],
        data={
            "rows": rows,
            "summary": summary_rows,
            "measurements": phased_results,
        },
    )


# --------------------------------------------------------------------- scalability claim --

def scalability_study(
    platform: EvaluationBackend,
    workload: Workload,
) -> ExperimentResult:
    """Section 3's feasibility claim: campaign size is linear, not exponential.

    When ``platform`` is an engine backend, the engine's own accounting
    (deduplication, store hits, worker pool) is reported next to the
    paper's build/run counts.
    """
    space = leon_parameter_space()
    tuner = MicroarchTuner(platform)
    before = platform.effort()
    start = time.perf_counter()
    model = tuner.build_model(workload)
    elapsed = time.perf_counter() - start
    after = platform.effort()
    table = Table("Campaign effort vs exhaustive exploration", ["quantity", "value"])
    builds = after["builds"] - before["builds"]   # includes the base configuration
    runs = after["runs"] - before["runs"]
    throughput = runs / elapsed if elapsed > 0 else 0.0
    table.add_row(["perturbation variables", len(model.space)])
    table.add_row(["configurations built by the campaign (incl. base)", builds])
    table.add_row(["profiling runs by the campaign (incl. base)", runs])
    table.add_row(["exhaustive configurations", space.exhaustive_size()])
    table.add_row(["campaign wall-clock seconds", f"{elapsed:.2f}"])
    table.add_row(["throughput (configs/sec)", f"{throughput:.1f}"])
    data: Dict[str, Any] = {
        "variables": len(model.space),
        "builds": builds,
        "runs": runs,
        "exhaustive": space.exhaustive_size(),
        "seconds": elapsed,
        "configs_per_second": throughput,
    }
    tables = [table]
    stats = getattr(platform, "stats", None)
    if isinstance(stats, EngineStats):
        engine = engine_report(platform)
        tables.extend(engine.tables)
        data["engine"] = engine.data["engine"]
    return ExperimentResult(experiment="scalability", tables=tables, data=data)


def engine_report(platform: EvaluationBackend) -> ExperimentResult:
    """Evaluation-engine accounting: dedup/store hits, worker pool, wall clock."""
    stats = getattr(platform, "stats", None)
    if not isinstance(stats, EngineStats):
        raise ValueError("engine_report requires a backend with EngineStats accounting")
    table = Table("Evaluation engine statistics", ["quantity", "value"])
    for key, value in stats.as_dict().items():
        table.add_row([key, value])
    return ExperimentResult(
        experiment="engine", tables=[table], data={"engine": stats.as_dict()})


# --------------------------------------------------------------------------- ablations --

def approximation_ablation(result: TuningResult) -> ExperimentResult:
    """Linear vs nonlinear cost approximations against the measured configuration."""
    errors = result.prediction_errors()
    table = Table(
        f"Approximation ablation ({result.workload}, {result.weights.describe()})",
        ["quantity", "predicted", "actual", "error"])
    assert result.actual is not None
    table.add_row(["runtime_cycles", result.predicted.runtime_cycles,
                   result.actual.cycles,
                   result.predicted.runtime_cycles - result.actual.cycles])
    table.add_row(["lut_percent (linear)", result.predicted.lut_percent_linear,
                   result.actual.lut_percent, errors["lut_error_linear"]])
    table.add_row(["lut_percent (nonlinear)", result.predicted.lut_percent_nonlinear,
                   result.actual.lut_percent, errors["lut_error_nonlinear"]])
    table.add_row(["bram_percent (linear)", result.predicted.bram_percent_linear,
                   result.actual.bram_percent, errors["bram_error_linear"]])
    table.add_row(["bram_percent (nonlinear)", result.predicted.bram_percent_nonlinear,
                   result.actual.bram_percent, errors["bram_error_nonlinear"]])
    return ExperimentResult(experiment="approximation_ablation", tables=[table],
                            data={"errors": errors})


def solver_ablation(
    model: CostModel,
    weights: Weights = RUNTIME_OPTIMIZATION,
    *,
    include_exhaustive: bool = False,
) -> ExperimentResult:
    """Compare the branch-and-bound solver with the baseline solvers."""
    problem = build_problem(model, weights)
    solvers = [BranchAndBoundSolver(), GreedyIndependentSolver(), RandomSearchSolver()]
    if include_exhaustive:
        solvers.append(ExhaustiveSolver())
    table = Table(
        f"Solver ablation ({model.workload}, {weights.describe()})",
        ["solver", "objective", "variables_selected", "feasible", "nodes", "seconds"])
    data: Dict[str, Any] = {}
    for solver in solvers:
        start = time.perf_counter()
        solution = solver.solve(problem)
        elapsed = time.perf_counter() - start
        table.add_row([solution.solver, solution.objective, len(solution.selection),
                       solution.feasible, solution.nodes_explored, f"{elapsed:.3f}"])
        data[solution.solver] = {
            "objective": solution.objective,
            "selection": solution.selection,
            "nodes": solution.nodes_explored,
            "seconds": elapsed,
        }
    return ExperimentResult(experiment="solver_ablation", tables=[table], data=data)

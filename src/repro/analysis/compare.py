"""Paper-versus-reproduction comparisons.

The paper reports absolute seconds on a 25 MHz FPGA and resource numbers
from Xilinx synthesis; our substrate is a scaled-down simulator, so the
comparison is about *shape*: which application benefits, roughly by how
much, where the dcache optimum falls and how close the optimizer gets to
the exhaustive search.  :data:`PAPER_CLAIMS` records the paper's headline
numbers and :func:`headline_comparison` lines them up with the measured
reproduction values (used by ``benchmarks/bench_headline_claims.py`` and
``EXPERIMENTS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping

from repro.analysis.experiments import ExperimentResult
from repro.analysis.tables import Table

__all__ = ["PAPER_CLAIMS", "headline_comparison", "ClaimCheck"]


#: Headline numbers reported by the paper (Sections 5, 6.1 and 6.2).
PAPER_CLAIMS: Dict[str, Any] = {
    # Figure 5 / Section 6.1: runtime decrease per application (percent).
    "runtime_gain_percent": {"blastn": 11.59, "drr": 19.39, "frag": 6.15, "arith": 6.49},
    # Section 6.1 headline range.
    "runtime_gain_range_percent": (6.15, 19.39),
    # Section 6.2: chip-resource savings (LUT, BRAM) in percentage points.
    "resource_saving_points": {"blastn": (2, 3), "drr": (2, 3), "frag": (3, 3), "arith": (1, 3)},
    # Section 6.2: runtime loss of the resource-optimised configurations (percent).
    "resource_runtime_loss_percent": {"blastn": 30.66, "drr": 16.76, "frag": 0.43, "arith": 36.34},
    # Section 5: optimizer-vs-exhaustive runtime gap on the dcache study (percent of base).
    "dcache_optimality_gap_percent": 0.02,
    # Section 5: dcache configuration selected for BLASTN by exhaustive search (sets, KB).
    "dcache_exhaustive_best_blastn": (2, 16),
    # Base configuration resource utilisation (percent of the XCV2000E).
    "base_lut_percent": 39.0,
    "base_bram_percent": 51.0,
}


@dataclass(frozen=True)
class ClaimCheck:
    """One paper claim lined up against the reproduction's measurement."""

    claim: str
    paper: str
    measured: str
    holds: bool

    def as_row(self) -> Dict[str, str]:
        return {
            "claim": self.claim,
            "paper": self.paper,
            "reproduction": self.measured,
            "shape_holds": "yes" if self.holds else "no",
        }


def headline_comparison(
    runtime_study: ExperimentResult,
    resource_study: ExperimentResult,
    dcache: ExperimentResult,
) -> ExperimentResult:
    """Line up the paper's headline claims with the reproduction's measurements.

    Parameters are the results of :func:`~repro.analysis.experiments.runtime_optimization`,
    :func:`~repro.analysis.experiments.resource_optimization` and
    :func:`~repro.analysis.experiments.dcache_study`.
    """
    checks = []

    gains = {name: values["actual_gain_percent"]
             for name, values in runtime_study.data["gains"].items()}
    lo, hi = min(gains.values()), max(gains.values())
    paper_lo, paper_hi = PAPER_CLAIMS["runtime_gain_range_percent"]
    checks.append(ClaimCheck(
        claim="runtime optimisation improves every benchmark",
        paper=f"{paper_lo:.1f}%..{paper_hi:.1f}% runtime decrease",
        measured=f"{lo:.1f}%..{hi:.1f}% runtime decrease",
        holds=lo > 0,
    ))

    arith_gain = gains.get("arith", 0.0)
    checks.append(ClaimCheck(
        claim="Arith gains come from arithmetic units, not the data cache",
        paper="6.49% (multiplier), dcache has no effect",
        measured=f"{arith_gain:.1f}% with dcache sweep flat",
        holds=abs(arith_gain - PAPER_CLAIMS["runtime_gain_percent"]["arith"]) < 5.0,
    ))

    resource_gains = resource_study.data["gains"]
    saves = all(v["lut_delta"] < 0 and v["bram_delta"] < 0 for v in resource_gains.values())
    losses = all(v["actual_gain_percent"] < 0 for v in resource_gains.values())
    checks.append(ClaimCheck(
        claim="resource optimisation trades runtime for chip resources",
        paper="1-3 LUT pts and 3 BRAM pts saved at 0.4%-36% runtime loss",
        measured=("all benchmarks save LUT+BRAM and lose runtime"
                  if saves and losses else "trade-off direction differs"),
        holds=saves and losses,
    ))

    gaps = [values["optimality_gap_percent"] for values in dcache.data.values()]
    worst_gap = max(gaps) if gaps else 0.0
    checks.append(ClaimCheck(
        claim="optimizer is near-optimal on the exhaustive dcache study",
        paper=f"within {PAPER_CLAIMS['dcache_optimality_gap_percent']}% of exhaustive",
        measured=f"within {worst_gap:.2f}% of exhaustive",
        holds=worst_gap <= 1.0,
    ))

    memory_sensitive = {name: values for name, values in dcache.data.items()
                        if name in ("blastn", "drr")}
    big_caches = all(
        values["exhaustive_config"][0] * values["exhaustive_config"][1] >= 16
        for values in memory_sensitive.values()) if memory_sensitive else True
    checks.append(ClaimCheck(
        claim="memory-intensive benchmarks want the largest data caches",
        paper="BLASTN/DRR exhaustive optimum is 32 KB total",
        measured=", ".join(
            f"{name}: {v['exhaustive_config'][0]}x{v['exhaustive_config'][1]}KB"
            for name, v in memory_sensitive.items()) or "n/a",
        holds=big_caches,
    ))

    table = Table("Headline claims: paper vs reproduction",
                  ["claim", "paper", "reproduction", "shape_holds"])
    for check in checks:
        table.add_mapping(check.as_row())
    return ExperimentResult(
        experiment="headline_claims",
        tables=[table],
        data={"checks": checks, "all_hold": all(c.holds for c in checks)},
    )

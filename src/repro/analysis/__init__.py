"""Evaluation harness: tables, per-figure experiment drivers, paper comparisons."""

from repro.analysis.tables import Table
from repro.analysis.experiments import (
    DCACHE_STUDY_PARAMETERS,
    ExperimentResult,
    approximation_ablation,
    dcache_exhaustive,
    dcache_optimizer,
    dcache_study,
    engine_report,
    optimization_study,
    parameter_space_summary,
    perturbation_costs,
    phase_transition_study,
    resource_optimization,
    runtime_optimization,
    scalability_study,
    solver_ablation,
)
from repro.analysis.compare import PAPER_CLAIMS, ClaimCheck, headline_comparison

__all__ = [
    "Table",
    "DCACHE_STUDY_PARAMETERS",
    "ExperimentResult",
    "approximation_ablation",
    "dcache_exhaustive",
    "dcache_optimizer",
    "dcache_study",
    "engine_report",
    "optimization_study",
    "parameter_space_summary",
    "perturbation_costs",
    "phase_transition_study",
    "resource_optimization",
    "runtime_optimization",
    "scalability_study",
    "solver_ablation",
    "PAPER_CLAIMS",
    "ClaimCheck",
    "headline_comparison",
]

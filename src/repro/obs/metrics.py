"""Counters, gauges and histograms behind one mergeable registry.

The registry is the engine's single metrics surface: ad-hoc accounting
(:class:`~repro.engine.backend.EngineStats` fields, stage wall-clock,
arena publish/attach sizes, campaign claim shapes) all lands here, so
one :meth:`MetricsRegistry.snapshot` call answers "what has this engine
done" uniformly for the ``--profile`` dump, the experiment tables and
the campaign heartbeats.

Three metric kinds:

* :class:`Counter` -- monotone event count (``inc``);
* :class:`Gauge` -- last-written value of anything (numbers or strings,
  e.g. the resolved kernel lane);
* :class:`Histogram` -- streaming count/total/min/max of observations
  (``observe``), summarised without storing samples.

Cross-process collection mirrors the tracer: worker processes observe
into their process-local registry (:func:`get_registry`),
:meth:`MetricsRegistry.drain` the typed deltas at task boundaries, ship
them home inside task results, and the host folds them in with
:meth:`MetricsRegistry.merge` -- counters add, gauges last-write-wins,
histograms merge their summaries.  Everything is plain data and cheap:
an observation is one dict lookup and a few float ops.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
]


class Counter:
    """Monotone event counter."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        self.value += amount

    def snapshot_value(self) -> Union[int, float]:
        return self.value


class Gauge:
    """Last-written value (numeric or text)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Any = 0

    def set(self, value: Any) -> None:
        self.value = value

    def snapshot_value(self) -> Any:
        return self.value


class Histogram:
    """Streaming summary of observations: count, total, min, max, mean."""

    kind = "histogram"
    __slots__ = ("count", "total", "vmin", "vmax")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None

    def observe(self, value: Union[int, float]) -> None:
        self.count += 1
        self.total += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge_summary(self, summary: Dict[str, Any]) -> None:
        """Fold another histogram's summary (e.g. a worker's) into this one."""
        if not summary.get("count"):
            return
        self.count += summary["count"]
        self.total += summary["total"]
        for bound, pick in (("min", min), ("max", max)):
            theirs = summary.get(bound)
            if theirs is None:
                continue
            ours = self.vmin if bound == "min" else self.vmax
            merged = theirs if ours is None else pick(ours, theirs)
            if bound == "min":
                self.vmin = merged
            else:
                self.vmax = merged

    def snapshot_value(self) -> Dict[str, Any]:
        return {"count": self.count, "total": self.total,
                "min": self.vmin, "max": self.vmax, "mean": self.mean}


_Metric = Union[Counter, Gauge, Histogram]
_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Named metrics with get-or-create access and worker delta merging."""

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    def _get(self, name: str, cls: type) -> _Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls()
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is a {metric.kind}, not a {cls.kind}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[Tuple[str, _Metric]]:
        return iter(sorted(self._metrics.items()))

    # -- snapshots and merging -------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Plain ``name -> value`` mapping (histograms as summary dicts)."""
        return {name: metric.snapshot_value() for name, metric in self}

    def drain(self) -> Dict[str, Dict[str, Any]]:
        """Typed deltas since the last drain; counters/histograms reset.

        The worker-side half of cross-process metrics: the returned
        mapping is picklable and feeds :meth:`merge` on the host.
        Gauges report their current value and are not reset (last write
        wins on the host too).
        """
        deltas: Dict[str, Dict[str, Any]] = {}
        for name, metric in self:
            value = metric.snapshot_value()
            if metric.kind == "counter" and not value:
                continue
            if metric.kind == "histogram" and not value["count"]:
                continue
            deltas[name] = {"kind": metric.kind, "value": value}
        for metric in self._metrics.values():
            if metric.kind == "counter":
                metric.value = 0
            elif metric.kind == "histogram":
                metric.count, metric.total = 0, 0.0
                metric.vmin = metric.vmax = None
        return deltas

    def merge(self, deltas: Dict[str, Dict[str, Any]]) -> None:
        """Fold :meth:`drain` output from another registry into this one."""
        for name, entry in deltas.items():
            kind, value = entry["kind"], entry["value"]
            metric = self._get(name, _KINDS[kind])
            if kind == "counter":
                metric.inc(value)
            elif kind == "gauge":
                metric.set(value)
            else:
                metric.merge_summary(value)

    def render_text(self) -> str:
        """Aligned ``name value`` lines (the ``--profile`` text dump)."""
        lines = []
        width = max((len(name) for name, _ in self), default=0)
        for name, metric in self:
            value = metric.snapshot_value()
            if metric.kind == "histogram":
                value = (f"count={value['count']} total={value['total']:.6g} "
                         f"mean={value['mean']:.6g} min={value['min']} "
                         f"max={value['max']}")
            lines.append(f"{name:<{width}}  {value}")
        return "\n".join(lines)


#: The process registry: instrumentation that has no better home (arena
#: attach in worker processes, store lock retries) observes here; worker
#: deltas are drained at task boundaries and merged into the owning
#: engine's :class:`~repro.engine.backend.EngineStats` registry.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The current process-level registry."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process registry (tests, worker init)."""
    global _REGISTRY
    _REGISTRY = registry
    return registry

"""Nested span tracer with Chrome trace-event and JSONL exporters.

One :class:`Tracer` lives per process (see :func:`get_tracer`); code
anywhere in the evaluation stack opens spans through the module-level
:func:`span` helper::

    with span("decode", trace=fingerprint, linesize=32):
        view = decode_trace(...)

A span records wall-clock and CPU time plus arbitrary structured
attributes, and knows its nesting depth, process and thread, so a merged
stream of spans from many processes renders as parallel per-process
lanes.  The default process tracer is *disabled*: :func:`span` then
returns a shared no-op context manager, so always-on instrumentation
costs one attribute check per call site -- cheap enough to leave in every
hot path that runs at batch/group granularity.

Cross-process collection is pull-based: worker processes trace into
their own (process-local) tracer, :meth:`Tracer.drain` the finished
spans at task boundaries, and ship them back as part of the task result;
the host calls :meth:`Tracer.absorb` to merge them.  Because every
record carries the pid/tid it was produced on and a shared wall-clock
(``time.time``) timestamp, the merged timeline is correct without any
clock coordination beyond the host's own.

Exporters:

* :meth:`Tracer.export_chrome` writes the Chrome trace-event format
  (``{"traceEvents": [...]}`` with ``ph: "X"`` complete events), directly
  loadable in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``;
  process-name metadata labels the host and worker lanes.
* :meth:`Tracer.export_jsonl` writes one raw :class:`SpanRecord` per
  line for ad-hoc analysis.

:func:`validate_chrome_trace` checks an exported file against the
minimal schema the CI observability job (and the Perfetto loader)
relies on.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, IO, Iterable, List, Optional, Sequence, Union

__all__ = [
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "span",
    "validate_chrome_trace",
]


@dataclass
class SpanRecord:
    """One completed span: what ran, where, for how long.

    ``ts`` is a shared wall-clock (``time.time``) timestamp so records
    from different processes on one host order correctly; ``wall`` and
    ``cpu`` are high-resolution durations (``perf_counter`` /
    ``process_time`` deltas).  Records are plain data -- picklable, so
    worker processes ship them back inside task results.
    """

    name: str
    #: Epoch seconds at span entry (comparable across processes on a host).
    ts: float
    #: Wall-clock duration in seconds.
    wall: float
    #: CPU seconds consumed by the process while the span was open.
    cpu: float
    #: Nesting depth at entry within this thread (0 = top level).
    depth: int
    pid: int
    tid: int
    #: Structured attributes given at span entry (plus ``error`` on raise).
    attrs: Dict[str, Any] = field(default_factory=dict)


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        """No-op attribute update (parity with :meth:`_ActiveSpan.set`)."""


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """A live span; closing it appends a :class:`SpanRecord` to the tracer."""

    __slots__ = ("_tracer", "_name", "_attrs", "_ts", "_wall0", "_cpu0", "_depth")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_ActiveSpan":
        self._depth = self._tracer._enter()
        self._ts = time.time()
        self._cpu0 = time.process_time()
        self._wall0 = time.perf_counter()
        return self

    def set(self, **attrs: Any) -> None:
        """Add attributes discovered while the span is open."""
        self._attrs.update(attrs)

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        if exc_type is not None:
            self._attrs["error"] = exc_type.__name__
        self._tracer._exit(SpanRecord(
            name=self._name,
            ts=self._ts,
            wall=wall,
            cpu=cpu,
            depth=self._depth,
            pid=os.getpid(),
            tid=threading.get_ident(),
            attrs=self._attrs,
        ))
        return False


class Tracer:
    """Collects nested spans for one process; merge point for worker spans.

    ``sink``, when given, is called with every completed
    :class:`SpanRecord` in addition to the in-memory buffer -- the hook
    used to stream records to a JSONL file as they finish.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        sink: Optional[Callable[[SpanRecord], None]] = None,
    ):
        self.enabled = enabled
        self.records: List[SpanRecord] = []
        self._sink = sink
        self._local = threading.local()

    # -- span lifecycle --------------------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Union[_ActiveSpan, _NullSpan]:
        """A context manager recording one span (no-op when disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, name, attrs)

    def _enter(self) -> int:
        depth = getattr(self._local, "depth", 0)
        self._local.depth = depth + 1
        return depth

    def _exit(self, record: SpanRecord) -> None:
        self._local.depth = max(0, getattr(self._local, "depth", 1) - 1)
        self.records.append(record)
        if self._sink is not None:
            self._sink(record)

    # -- cross-process merge ---------------------------------------------------------------

    def drain(self) -> List[SpanRecord]:
        """Return and clear the buffered records (worker task boundaries)."""
        records, self.records = self.records, []
        return records

    def absorb(self, records: Iterable[SpanRecord]) -> None:
        """Merge records produced elsewhere (worker processes) into this tracer."""
        self.records.extend(records)

    # -- exporters -------------------------------------------------------------------------

    def chrome_events(self) -> List[Dict[str, Any]]:
        """The records as Chrome trace-event dicts with labelled lanes."""
        host_pid = os.getpid()
        events: List[Dict[str, Any]] = []
        for record in self.records:
            events.append({
                "name": record.name,
                "cat": "repro",
                "ph": "X",
                "ts": record.ts * 1e6,
                "dur": record.wall * 1e6,
                "pid": record.pid,
                "tid": record.tid,
                "args": {**record.attrs, "cpu_ms": round(record.cpu * 1e3, 3)},
            })
        for pid in sorted({record.pid for record in self.records}):
            label = "host" if pid == host_pid else f"worker {pid}"
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": label},
            })
        return events

    def export_chrome(self, target: Union[str, IO[str]]) -> int:
        """Write the Chrome trace-event JSON file; returns the event count."""
        events = self.chrome_events()
        payload = {"traceEvents": events, "displayTimeUnit": "ms"}
        if hasattr(target, "write"):
            json.dump(payload, target)
        else:
            with open(target, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
        return len(events)

    def export_jsonl(self, target: Union[str, IO[str]]) -> int:
        """Write one raw span record per line; returns the record count."""
        lines = [json.dumps({
            "name": r.name, "ts": r.ts, "wall": r.wall, "cpu": r.cpu,
            "depth": r.depth, "pid": r.pid, "tid": r.tid, "attrs": r.attrs,
        }) for r in self.records]
        text = "\n".join(lines) + ("\n" if lines else "")
        if hasattr(target, "write"):
            target.write(text)
        else:
            with open(target, "w", encoding="utf-8") as handle:
                handle.write(text)
        return len(lines)


#: The process tracer.  Disabled by default: instrumentation is always-on
#: at the call sites but records nothing until :func:`enable_tracing`.
_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The current process tracer."""
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process tracer (returns it)."""
    global _TRACER
    _TRACER = tracer
    return tracer


def enable_tracing(sink: Optional[Callable[[SpanRecord], None]] = None) -> Tracer:
    """Switch the process to a recording tracer (idempotent)."""
    if _TRACER.enabled and sink is None:
        return _TRACER
    return set_tracer(Tracer(enabled=True, sink=sink))


def disable_tracing() -> None:
    """Install a fresh disabled tracer (records are dropped)."""
    set_tracer(Tracer(enabled=False))


def tracing_enabled() -> bool:
    """True when the process tracer records spans."""
    return _TRACER.enabled


def span(name: str, **attrs: Any):
    """Open a span on the process tracer (no-op while tracing is disabled)."""
    return _TRACER.span(name, **attrs)


def validate_chrome_trace(path: str) -> Dict[str, Any]:
    """Validate an exported Chrome trace against the minimal schema.

    Raises :class:`ValueError` on any shape violation; returns a summary
    (event count, distinct pids, span-name counts) that the CI
    observability job asserts worker lanes and span coverage on.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError("chrome trace must be an object with 'traceEvents'")
    events = payload["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("'traceEvents' must be a non-empty list")
    pids = set()
    names: Dict[str, int] = {}
    spans = 0
    for event in events:
        if not isinstance(event, dict):
            raise ValueError("every trace event must be an object")
        for key in ("name", "ph", "pid"):
            if key not in event:
                raise ValueError(f"trace event missing '{key}': {event!r}")
        if event["ph"] == "X":
            for key in ("ts", "dur", "tid"):
                if not isinstance(event.get(key), (int, float)):
                    raise ValueError(f"complete event needs numeric '{key}'")
            if event["dur"] < 0:
                raise ValueError("complete event has negative duration")
            spans += 1
            pids.add(event["pid"])
            names[event["name"]] = names.get(event["name"], 0) + 1
    if spans == 0:
        raise ValueError("trace contains no complete ('X') span events")
    return {"events": len(events), "spans": spans,
            "pids": sorted(pids), "names": names}

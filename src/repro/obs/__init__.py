"""Zero-dependency telemetry: span tracer, metrics registry, dashboard.

The observability layer of the evaluation stack, threaded through the
engine, kernel, arena, store and campaign modules:

* :mod:`repro.obs.tracer` -- nested wall/CPU spans with structured
  attributes, per-process lanes merged across the worker pool, exported
  as Chrome trace-event JSON (Perfetto-loadable) or JSONL;
* :mod:`repro.obs.metrics` -- counters/gauges/histograms behind one
  mergeable registry; :class:`~repro.engine.backend.EngineStats` is a
  typed view over it;
* :mod:`repro.obs.dashboard` -- the live ``--status --watch`` view of a
  draining campaign grid, built from grid rows and worker heartbeats in
  the campaign's own SQLite file.

Everything is stdlib-only and safe to leave always-on: with tracing
disabled (the default) a span costs one attribute check, and metrics
are plain dict lookups.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.tracer import (
    SpanRecord,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
    span,
    tracing_enabled,
    validate_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "SpanRecord",
    "Tracer",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "set_tracer",
    "span",
    "tracing_enabled",
    "validate_chrome_trace",
]

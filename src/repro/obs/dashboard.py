"""Live in-terminal dashboard over a draining campaign grid.

Everything renders from one :func:`campaign_snapshot` dict -- the same
structure ``run_experiments.py --grid-db ... --status --json`` prints for
machine consumption -- assembled purely from the campaign database: row
counts by status, the per-workload status matrix, and the per-worker
heartbeat rows :class:`~repro.engine.campaign.CampaignWorker` persists
into the same SQLite file (no network layer; any terminal that can see
the file can watch the campaign).

:func:`watch` refreshes the rendered view on an interval until the grid
drains, the refresh budget runs out, or the operator hits Ctrl-C (a
clean exit, never a traceback).  Workers whose last heartbeat is older
than ``stale_after`` are flagged ``STALE`` -- the early warning that a
lease is about to be reclaimed.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, IO, List, Optional

from repro.engine.campaign import STATUS_DONE, STATUS_FAILED, CampaignGrid

__all__ = ["campaign_snapshot", "render_dashboard", "watch"]

#: Ordered statuses shown by every rendering.
_STATUS_ORDER = ("open", "claimed", "done", "failed")


def campaign_snapshot(
    grid: CampaignGrid,
    *,
    stale_after: float = 300.0,
    now: Optional[float] = None,
) -> Dict[str, Any]:
    """One poll of a campaign: counts, per-workload matrix, worker health.

    ``rows_per_sec`` aggregates the self-reported throughput of every
    non-stale worker; ``eta_seconds`` divides the not-yet-done rows by
    it (``None`` while no live worker reports progress).  ``stalled``
    flags the campaign whose workers have all gone silent: rows are
    still pending but every known worker's heartbeat has aged past
    ``stale_after``, so live throughput is zero and no ETA exists --
    the state a normal-looking progress bar used to hide.  The result
    is JSON-serialisable as-is.
    """
    now = time.time() if now is None else now
    counts = grid.status()
    workloads: Dict[str, Dict[str, int]] = {}
    for workload, status, count in grid.workload_status():
        workloads.setdefault(workload, {})[status] = count

    workers: List[Dict[str, Any]] = []
    throughput = 0.0
    for beat in grid.worker_heartbeats():
        age = max(0.0, now - beat["ts"])
        stale = age > stale_after
        rate = float(beat["rows_per_sec"] or 0.0)
        if not stale:
            throughput += rate
        workers.append({
            "worker": beat["worker"],
            "host": beat["host"],
            "pid": beat["pid"],
            "age_seconds": round(age, 1),
            "batches": beat["batches"],
            "claimed": beat["claimed"],
            "done": beat["done"],
            "failed": beat["failed"],
            "rows_per_sec": round(rate, 2),
            "stale": stale,
        })

    pending = counts["total"] - counts[STATUS_DONE]
    eta = round(pending / throughput, 1) if throughput > 0 and pending else None
    live = [worker for worker in workers if not worker["stale"]]
    stalled = bool(pending and workers and not live)
    return {
        "ts": now,
        "counts": counts,
        "workloads": workloads,
        "workers": workers,
        "rows_per_sec": round(throughput, 2),
        "eta_seconds": eta,
        "stalled": stalled,
        "failures": [
            {"id": rowid, "workload": workload, "attempts": attempts,
             "error": error}
            for rowid, workload, attempts, error in grid.failures(limit=5)
        ],
    }


def _progress_bar(done: int, total: int, width: int = 32) -> str:
    if total <= 0:
        return "[" + " " * width + "]"
    filled = int(round(width * done / total))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def render_dashboard(snapshot: Dict[str, Any]) -> str:
    """Render one snapshot as a fixed-layout multi-line terminal view."""
    counts = snapshot["counts"]
    total = counts["total"]
    done = counts[STATUS_DONE]
    percent = (100.0 * done / total) if total else 0.0
    lines = [
        "campaign grid  "
        + time.strftime("%H:%M:%S", time.localtime(snapshot["ts"])),
        f"  {_progress_bar(done, total)} {done}/{total} done ({percent:.1f}%)",
        "  " + "  ".join(f"{counts[s]} {s}" for s in _STATUS_ORDER),
    ]
    if snapshot["eta_seconds"] is not None:
        lines.append(f"  throughput {snapshot['rows_per_sec']:.2f} rows/s, "
                     f"ETA {snapshot['eta_seconds']:.0f}s")
    elif snapshot.get("stalled"):
        pending = total - done
        stale = sum(1 for worker in snapshot["workers"] if worker["stale"])
        lines.append(
            f"  STALLED: {pending} rows pending, zero live throughput "
            f"({stale} stale worker{'s' if stale != 1 else ''}, no ETA)")

    if snapshot["workloads"]:
        lines.append("  workloads:")
        width = max(len(name) for name in snapshot["workloads"])
        for name, states in snapshot["workloads"].items():
            cells = "  ".join(
                f"{states.get(s, 0)} {s}" for s in _STATUS_ORDER if states.get(s))
            lines.append(f"    {name:<{width}}  {cells}")

    lines.append("  workers:" if snapshot["workers"] else "  workers: none yet")
    for worker in snapshot["workers"]:
        flag = "  STALE" if worker["stale"] else ""
        lines.append(
            f"    {worker['worker']}  {worker['done']} done, "
            f"{worker['failed']} failed in {worker['batches']} batches, "
            f"{worker['rows_per_sec']:.2f} rows/s, "
            f"beat {worker['age_seconds']:.0f}s ago{flag}")

    for failure in snapshot["failures"]:
        lines.append(
            f"  failed row {failure['id']} ({failure['workload']}, "
            f"{failure['attempts']} attempts): {failure['error']}")
    if total and done == total and not counts[STATUS_FAILED]:
        lines.append("  grid drained.")
    return "\n".join(lines)


def watch(
    grid: CampaignGrid,
    *,
    interval: float = 2.0,
    stale_after: float = 300.0,
    max_refreshes: Optional[int] = None,
    stream: Optional[IO[str]] = None,
    clear: Optional[bool] = None,
) -> Dict[str, Any]:
    """Refresh the dashboard until the grid drains (or Ctrl-C); returns
    the last snapshot.

    ``clear`` repaints in place with ANSI clear-screen when the stream
    is a terminal (pass ``False`` to append screens instead, e.g. when
    piping to a file); ``max_refreshes`` bounds the loop for CI and
    tests.  ``KeyboardInterrupt`` exits cleanly after finishing the
    current frame.
    """
    stream = sys.stdout if stream is None else stream
    if clear is None:
        clear = bool(getattr(stream, "isatty", lambda: False)())
    refreshes = 0
    snapshot = campaign_snapshot(grid, stale_after=stale_after)
    try:
        while True:
            if clear:
                stream.write("\x1b[H\x1b[2J")
            stream.write(render_dashboard(snapshot) + "\n")
            stream.flush()
            refreshes += 1
            counts = snapshot["counts"]
            drained = counts["total"] and (
                counts[STATUS_DONE] + counts[STATUS_FAILED] == counts["total"])
            if drained or (max_refreshes is not None
                           and refreshes >= max_refreshes):
                return snapshot
            time.sleep(max(0.0, interval))
            snapshot = campaign_snapshot(grid, stale_after=stale_after)
    except KeyboardInterrupt:
        stream.write("\nwatch interrupted.\n")
        stream.flush()
        return snapshot

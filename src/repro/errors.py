"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish configuration problems from simulation or
optimisation problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An invalid microarchitecture configuration was constructed or requested.

    Raised for out-of-domain parameter values, violations of the LEON
    coupling rules (e.g. LRR replacement with a direct-mapped cache) and
    malformed perturbation selections.
    """


class ResourceError(ReproError):
    """A configuration does not fit on the target FPGA device."""


class AssemblyError(ReproError):
    """A program could not be assembled (unknown label, bad operand, ...)."""


class SimulationError(ReproError):
    """The functional or timing simulator encountered an unrecoverable fault.

    Examples: executing past the end of the program, unaligned memory
    access, division by zero in the guest program, exceeding the
    instruction budget.
    """


class VerificationError(ReproError):
    """A workload produced results that do not match its reference output."""


class OptimizationError(ReproError):
    """The BINLP formulation or one of the solvers failed.

    Raised when a problem is infeasible, when a solver is asked to solve a
    problem shape it does not support, or when a solution fails
    verification against the problem constraints.
    """


class MeasurementError(ReproError):
    """The measurement platform failed to build or profile a configuration."""

"""Sweep-measurement throughput across the cache-kernel replay lanes.

Measures configs/sec of the measurement path on two sweep shapes:

* the **Figure-2 exhaustive dcache grid** (geometry-dense: every point is
  a distinct data-cache geometry, so trace-driven cache replay dominates
  and the cross-config rank-synchronous lane shares the replay loop
  itself across the whole grid);
* a **pipeline-parameter sweep** (the dense regime of the one-factor
  campaigns and the BINLP tuner: hundreds of configurations share a
  handful of cache geometries, so the per-configuration timing-model
  loop *is* the cost, and the broadcast path collapses it into a few
  array operations).

The variants, one per kernel lane plus the engine paths:

* ``scalar`` -- the faithful per-configuration baseline: ``measure_many``
  with the unmemoised :meth:`TimingModel.evaluate_reference` per point
  and the per-config ``numpy`` replay lane (the pre-sweep behaviour);
* ``batched`` -- the sequential :meth:`LiquidPlatform.measure_sweep`
  broadcast path, still on the ``numpy`` replay lane;
* ``crossconfig`` -- the same broadcast path on the default
  cross-config lane (one rank-synchronous replay for the whole grid);
* ``jit`` -- the Numba event-loop lane, recorded only when Numba is
  importable on the host;
* ``batched_arena`` -- ``measure_sweep`` through a
  :class:`ParallelEvaluator` in the default adaptive-arena mode: the
  publish cost model decides per batch whether shared-memory publishing
  and worker fan-out pay for themselves, and small grids replay inline.

All variants must agree bit for bit at every scale, and the adaptive
engine path must stay within noise of the sequential batched path
(``ARENA_FLOOR``) -- the cost model exists precisely so the arena can
never *lose* on grids too small to amortise it.  Wall-clock speedup
floors only run at benchmark scale (``REPRO_BENCH_SMOKE=1`` keeps the
equality, shared-memory-hygiene and arena-floor assertions), except the
replay-bound lane microbench at the bottom, whose ≥``REPLAY_FLOOR``x
cross-config floor holds at smoke scale too and is what the CI
perf-smoke job enforces.

Results are written to ``benchmarks/BENCH_sweep.json`` so the perf
trajectory of the sweep path is machine readable across PRs.
"""

import contextlib
import glob
import itertools
import json
import os
import pathlib
import time

from conftest import SMOKE, emit

from repro.analysis import dcache_exhaustive, engine_report
from repro.config import (
    CACHE_SET_COUNTS,
    CACHE_SET_SIZES_KB,
    base_configuration,
)
from repro.config.leon_space import Multiplier
from repro.engine import ParallelEvaluator, arena_available
from repro.microarch.cache import CacheConfig, Replacement
from repro.microarch.cachekernel import (
    KERNEL_LANE_ENV,
    LANE_CROSSCONFIG,
    LANE_JIT,
    LANE_NUMPY,
    decode_trace,
    jit_available,
    simulate_many,
)
from repro.microarch.timing import TimingModel
from repro.platform import LiquidPlatform

#: Committed full-scale trajectory; smoke runs write the sibling
#: ``BENCH_sweep.smoke.json`` so CI never clobbers the tracked artifact.
RESULT_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_sweep.json"
SMOKE_RESULT_PATH = RESULT_PATH.with_name("BENCH_sweep.smoke.json")
#: The ≥5x configs/sec acceptance floor for the broadcast path on the
#: timing-dominated sweep regime.
SPEEDUP_FLOOR = 5.0
#: The cross-config lane's end-to-end floor on the geometry-dense
#: Figure-2 grid (full scale; the committed trajectory targets ≥4x).
CROSSCONFIG_GRID_FLOOR = 3.0
#: The adaptive engine path may never fall below this fraction of the
#: sequential batched path's throughput -- at ANY scale (the cost model
#: is what makes this hold on grids too small to amortise publishing).
ARENA_FLOOR = 0.95
#: The cross-config lane's replay-only floor (microbench).  The committed
#: full-scale trajectory holds the 3x bar; the smoke leg keeps a margin
#: below it because the lane's stacked state arrays make it more
#: sensitive to memory-bandwidth contention on shared CI runners (a real
#: regression -- the lane falling back to per-config replay -- shows up
#: as ~1x, far below either floor).
REPLAY_FLOOR = 2.5 if SMOKE else 3.0
#: Best-of repetitions for the cheap sequential variants at smoke scale
#: (tiny grids make single-shot wall clocks noisy, and the first couple
#: of repetitions in a fresh process absorb lazy-import and allocator
#: warmup); full scale stays single-shot, matching the historical
#: methodology.
REPS = 5 if SMOKE else 1
#: Repetitions for the interleaved batched/arena pairs that feed the
#: ``ARENA_FLOOR`` ratio: a single pair is one ~100ms sample of a
#: drifting shared host, so even full scale takes the median of three.
PAIR_REPS = max(REPS, 3)


@contextlib.contextmanager
def per_config_reference_timing():
    """Run the platform with the pre-sweep per-configuration timing path.

    ``evaluate_reference`` recomputes every trace reduction per call --
    histogram, hazard counts, the scalar window-trap walk, the latency
    dict rebuilds -- exactly like the original ``TimingModel.evaluate``
    did, making the scalar baseline faithful to the pre-batching code.
    """
    original = TimingModel.evaluate
    TimingModel.evaluate = TimingModel.evaluate_reference
    try:
        yield
    finally:
        TimingModel.evaluate = original


@contextlib.contextmanager
def kernel_lane_env(lane):
    """Pin the replay lane via the environment, exactly like a user would."""
    saved = os.environ.get(KERNEL_LANE_ENV)
    os.environ[KERNEL_LANE_ENV] = lane
    try:
        yield
    finally:
        if saved is None:
            del os.environ[KERNEL_LANE_ENV]
        else:
            os.environ[KERNEL_LANE_ENV] = saved


def fig2_grid(platform):
    base = base_configuration()
    points = [
        base.replace(dcache_sets=sets, dcache_setsize_kb=size)
        for sets, size in itertools.product(CACHE_SET_COUNTS, CACHE_SET_SIZES_KB)
    ]
    return [config for config in points if platform.fits(config)]


def pipeline_grid(platform):
    """Dense non-cache sweep: hundreds of configs over two cache geometries."""
    base = base_configuration()
    points = [
        base.replace(
            fast_jump=fast_jump, icc_hold=icc_hold, fast_decode=fast_decode,
            load_delay=load_delay, dcache_fast_read=fast_read,
            dcache_fast_write=fast_write, register_windows=windows,
            multiplier=multiplier,
            dcache_setsize_kb=dcache_kb)
        for fast_jump, icc_hold, fast_decode, load_delay, fast_read, fast_write,
            windows, multiplier, dcache_kb in itertools.product(
                (True, False), (True, False), (True, False), (1, 2),
                (True, False), (True, False), (8, 16),
                (Multiplier.M16X16, Multiplier.M32X32), (4, 8))
    ]
    return [config for config in points if platform.fits(config)]


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def best_of(fn, reps=REPS):
    """Best wall clock over ``reps`` runs (each run a fresh measurement)."""
    result, seconds = timed(fn)
    for _ in range(reps - 1):
        again, again_seconds = timed(fn)
        assert again == result, "repeated run diverged"
        seconds = min(seconds, again_seconds)
    return result, seconds


def run_arena_variant(workload, configs, linesizes, cold=True):
    """One adaptive-engine sweep: returns (result, seconds, stats dict).

    ``cold`` marks the first run against this workload instance: the
    host pays one decode per (kind, linesize) group; repeat runs (the
    smoke-scale best-of repetitions) find the views already cached on
    the trace and must decode nothing at all.
    """
    with ParallelEvaluator(LiquidPlatform(), workers=2) as engine:
        # spawn any long-lived engine state on an off-grid batch first, so a
        # steady-state sweep is what gets timed (under the adaptive cost
        # model a small warmup simply replays inline)
        warmup = [base_configuration().replace(
            dcache_sets=sets, dcache_setsize_kb=32 if SMOKE else 16,
            dcache_replacement="lru") for sets in (2, 3)]
        warmup = [c for c in warmup if engine.fits(c)]
        engine.measure_sweep(workload, warmup)
        result, seconds = timed(lambda: engine.measure_sweep(workload, configs))
        stats = engine.stats.as_dict()
        if arena_available():
            # published and inline batches alike never decode in a worker,
            # and the host decodes each (kind, linesize) group exactly once
            # across the warmup + timed batches
            assert engine.stats.worker_decodes == 0
            assert engine.stats.host_decodes == (len(linesizes) if cold else 0)
            if engine.stats.arena_skipped:
                # the cost model ran the batches inline: nothing published,
                # no pool fan-out
                assert engine.stats.parallel_simulations == 0
            else:
                assert engine.stats.arena_segments > 0
        emit(engine_report(engine))
    return result, seconds, stats


def run_variants(fresh_workload, configs):
    """Measure the grid through every lane/path; returns (stats, timings)."""
    # the config-independent trace and its columnar decodes are shared by
    # every variant in the real flow; pre-warm them for the sequential
    # variants so the comparison times the measurement path, not trace
    # generation
    workload = fresh_workload()
    workload.trace()
    linesizes = {("icache", c.icache_linesize_words * 4) for c in configs}
    linesizes |= {("dcache", c.dcache_linesize_words * 4) for c in configs}
    for kind, linesize in sorted(linesizes):
        workload.columnar_view(kind, linesize)

    with per_config_reference_timing(), kernel_lane_env(LANE_NUMPY):
        scalar, scalar_seconds = timed(
            lambda: LiquidPlatform().measure_many(workload, configs))
    with kernel_lane_env(LANE_CROSSCONFIG):
        cross, cross_seconds = best_of(
            lambda: LiquidPlatform().measure_sweep(workload, configs))
    timings = {"scalar": scalar_seconds, "crossconfig": cross_seconds}
    results = {"crossconfig": cross}
    if jit_available():
        with kernel_lane_env(LANE_JIT):
            results["jit"], timings["jit"] = best_of(
                lambda: LiquidPlatform().measure_sweep(workload, configs))

    # the engine variant gets its own workload instance whose views are NOT
    # pre-decoded: the timed sweep pays the real cold-sweep decode cost, and
    # the decode accounting is exact.  The plain batched baseline and the
    # engine reps run as interleaved pairs: the two sides of the
    # ARENA_FLOOR assertion then sample the host's background load at the
    # same moments, instead of phases seconds apart that a load spike can
    # skew one-sidedly
    arena_workload = fresh_workload()
    arena_workload.trace()
    batched_seconds = arena_seconds = None
    pair_ratios = []
    for rep in range(PAIR_REPS):
        with kernel_lane_env(LANE_NUMPY):
            batched, seconds = timed(
                lambda: LiquidPlatform().measure_sweep(workload, configs))
        assert batched == scalar, "batched sweep diverges from the scalar path"
        batched_seconds = seconds if batched_seconds is None else min(
            batched_seconds, seconds)
        arena_result, arena_rep_seconds, stats = run_arena_variant(
            arena_workload, configs, linesizes, cold=(rep == 0))
        arena_seconds = arena_rep_seconds if arena_seconds is None else min(
            arena_seconds, arena_rep_seconds)
        # each rep's plain/engine pair ran back to back, so their ratio is
        # taken under the same background load; the median over the pairs
        # is what the ARENA_FLOOR asserts (a best-of/best-of quotient
        # would compare two different moments of a drifting host)
        pair_ratios.append(seconds / arena_rep_seconds)
    results["batched"] = batched
    timings["batched"] = batched_seconds
    results["batched_arena"] = arena_result
    timings["batched_arena"] = arena_seconds
    arena_ratio = sorted(pair_ratios)[len(pair_ratios) // 2]

    for variant, result in results.items():
        assert result == scalar, f"{variant} sweep diverges from the scalar path"
    return stats, timings, arena_ratio


def report(name, configs, timings):
    lines = [f"\n{name}: {len(configs)} grid points"]
    for variant, seconds in timings.items():
        lines.append(
            f"  {variant:<14} {seconds:8.3f}s  {len(configs) / seconds:10.1f} configs/sec")
    lines.append(
        f"  speedup batched {timings['scalar'] / timings['batched']:.2f}x, "
        f"crossconfig {timings['scalar'] / timings['crossconfig']:.2f}x, "
        f"arena {timings['scalar'] / timings['batched_arena']:.2f}x vs scalar")
    print("\n".join(lines))


def to_entry(configs, timings, stats=None, arena_ratio=None):
    entry = {
        "points": len(configs),
        "variants": {
            variant: {
                "seconds": round(seconds, 4),
                "configs_per_sec": round(len(configs) / seconds, 1),
            }
            for variant, seconds in timings.items()
        },
        "speedup_batched_vs_scalar": round(timings["scalar"] / timings["batched"], 2),
        "speedup_crossconfig_vs_scalar": round(
            timings["scalar"] / timings["crossconfig"], 2),
        "speedup_arena_vs_scalar": round(
            timings["scalar"] / timings["batched_arena"], 2),
        "arena_vs_batched": round(
            arena_ratio if arena_ratio is not None
            else timings["batched"] / timings["batched_arena"], 2),
    }
    if "jit" in timings:
        entry["speedup_jit_vs_scalar"] = round(
            timings["scalar"] / timings["jit"], 2)
    if stats is not None:
        entry["engine"] = stats
    return entry


def result_path():
    return SMOKE_RESULT_PATH if SMOKE else RESULT_PATH


def merge_payload(section, value):
    """Read-modify-write one section of the trajectory artifact."""
    path = result_path()
    payload = {"smoke": SMOKE}
    if path.exists():
        payload = json.loads(path.read_text())
    payload[section] = value
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {path} [{section}]")


def test_sweep_throughput_trajectory():
    from repro.workloads import small_workloads, standard_workloads

    def fresh_blastn():
        source = small_workloads if SMOKE else standard_workloads
        return source()["blastn"]

    platform = LiquidPlatform()
    shm_before = set(glob.glob("/dev/shm/psm_*"))

    fig2 = fig2_grid(platform)
    fig2_stats, fig2_timings, fig2_ratio = run_variants(fresh_blastn, fig2)
    report("Figure-2 dcache grid (geometry-dense)", fig2, fig2_timings)

    pipeline = pipeline_grid(platform)
    pipe_stats, pipe_timings, pipe_ratio = run_variants(fresh_blastn, pipeline)
    report("Pipeline-parameter sweep (timing-dense)", pipeline, pipe_timings)

    # no shared-memory segment survives the evaluators
    leaked = set(glob.glob("/dev/shm/psm_*")) - shm_before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"

    payload = {
        "smoke": SMOKE,
        "workload": "blastn",
        "jit_available": jit_available(),
        "figure2_grid": to_entry(fig2, fig2_timings, fig2_stats, fig2_ratio),
        "pipeline_grid": to_entry(pipeline, pipe_timings, pipe_stats, pipe_ratio),
        "speedup_floor": SPEEDUP_FLOOR,
        "crossconfig_grid_floor": CROSSCONFIG_GRID_FLOOR,
        "arena_floor": ARENA_FLOOR,
    }
    result_path().write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {result_path()}")

    # the adaptive engine path may never lose to the sequential batched
    # path -- at ANY scale; the cost model skips publishing exactly when
    # a grid is too small for it to pay.  The asserted ratio is the
    # median over the interleaved per-rep pairs, so both sides of every
    # sample saw the same background load.
    for name, ratio in (("figure2", fig2_ratio), ("pipeline", pipe_ratio)):
        assert ratio >= ARENA_FLOOR, (
            f"adaptive arena path on the {name} grid is {ratio:.2f}x the "
            f"batched path, below the {ARENA_FLOOR}x floor")

    if SMOKE:
        return  # CI smoke checks equality + hygiene; wall clock is meaningless
    # the broadcast path must never lose to the per-config loop, even on the
    # geometry-dense grid where cache replay dominates ...
    assert fig2_timings["batched"] < fig2_timings["scalar"], (
        f"batched Figure-2 sweep ({fig2_timings['batched']:.3f}s) not faster "
        f"than the per-config baseline ({fig2_timings['scalar']:.3f}s)")
    # ... the cross-config lane must clear its floor on that same grid ...
    cross_speedup = fig2_timings["scalar"] / fig2_timings["crossconfig"]
    assert cross_speedup >= CROSSCONFIG_GRID_FLOOR, (
        f"cross-config Figure-2 sweep speedup {cross_speedup:.2f}x below the "
        f"{CROSSCONFIG_GRID_FLOOR}x floor")
    # ... and on the timing-dense sweep regime it must clear the 5x floor
    speedup = pipe_timings["scalar"] / pipe_timings["batched"]
    assert speedup >= SPEEDUP_FLOOR, (
        f"batched pipeline sweep speedup {speedup:.2f}x below the "
        f"{SPEEDUP_FLOOR}x floor")


def test_crossconfig_replay_microbench():
    """Replay-only lane comparison on the Figure-2 dcache geometries.

    Strips the timing model, tracing and planning away: the benchmark-
    scale BLASTN data trace decoded once, replayed by
    :func:`simulate_many` under the per-config ``numpy`` lane versus the
    cross-config lane, over every associative Figure-2 dcache geometry
    under each replacement policy (LEON2's LRR is 2-way only).  Real
    traces are what the lane is built for -- their skewed set pressure
    produces many narrow ranks, exactly the fixed-overhead regime the
    merged loop amortises -- so the microbench always runs the full-size
    trace; replay alone is fast enough that the ≥``REPLAY_FLOOR``x floor
    is enforced at smoke scale too, which is what the CI perf-smoke job
    checks.
    """
    from repro.workloads import standard_workloads

    linesize_words = base_configuration().dcache_linesize_words
    configs = [
        CacheConfig(ways=ways, setsize_kb=size, linesize_words=linesize_words,
                    replacement=policy)
        for ways, size in itertools.product(CACHE_SET_COUNTS, CACHE_SET_SIZES_KB)
        for policy in Replacement.ALL
        if ways > 1 and (policy != Replacement.LRR or ways == 2)
    ]
    trace = standard_workloads()["blastn"].trace()
    accesses = len(trace.data_addresses)
    view = decode_trace(trace.data_addresses, trace.data_is_write,
                        linesize_bytes=linesize_words * 4)

    # untimed warm pass per lane: set views are a property of the view and
    # are shared by both lanes in the real flow
    reference = simulate_many(view, configs, lane=LANE_NUMPY)
    assert simulate_many(view, configs, lane=LANE_CROSSCONFIG) == reference

    # interleave the two lanes' repetitions so each speedup sample
    # compares wall clocks taken under the same background load, then
    # take the median ratio: one load spike spoils one pair, not the
    # verdict (same estimator as the ARENA_FLOOR assertion)
    per_config_seconds = crossconfig_seconds = None
    pair_ratios = []
    for _ in range(PAIR_REPS):
        _, numpy_seconds = timed(
            lambda: simulate_many(view, configs, lane=LANE_NUMPY))
        per_config_seconds = numpy_seconds if per_config_seconds is None else min(
            per_config_seconds, numpy_seconds)
        _, seconds = timed(
            lambda: simulate_many(view, configs, lane=LANE_CROSSCONFIG))
        crossconfig_seconds = seconds if crossconfig_seconds is None else min(
            crossconfig_seconds, seconds)
        pair_ratios.append(numpy_seconds / seconds)
    speedup = sorted(pair_ratios)[len(pair_ratios) // 2]

    entry = {
        "geometries": len(configs),
        "accesses": accesses,
        "per_config_seconds": round(per_config_seconds, 4),
        "crossconfig_seconds": round(crossconfig_seconds, 4),
        "per_config_configs_per_sec": round(len(configs) / per_config_seconds, 1),
        "crossconfig_configs_per_sec": round(len(configs) / crossconfig_seconds, 1),
        "speedup": round(speedup, 2),
        "floor": REPLAY_FLOOR,
    }
    if jit_available():
        _, jit_seconds = best_of(
            lambda: simulate_many(view, configs, lane=LANE_JIT), reps=3)
        entry["jit_seconds"] = round(jit_seconds, 4)
        entry["jit_configs_per_sec"] = round(len(configs) / jit_seconds, 1)
        assert simulate_many(view, configs, lane=LANE_JIT) == reference

    print(f"\nreplay microbench: {len(configs)} geometries x {accesses} accesses: "
          f"per-config {per_config_seconds:.3f}s, crossconfig "
          f"{crossconfig_seconds:.3f}s ({speedup:.2f}x)")
    merge_payload("replay_microbench", entry)

    assert speedup >= REPLAY_FLOOR, (
        f"cross-config replay speedup {speedup:.2f}x below the "
        f"{REPLAY_FLOOR}x floor")


def test_sweep_path_wired_into_figure2_driver(workloads):
    """The Figure-2 driver routes through measure_sweep and stays bit-identical."""
    workload = workloads["arith" if SMOKE else "blastn"]
    with ParallelEvaluator(LiquidPlatform(), workers=2, arena=True) as engine:
        swept = dcache_exhaustive(engine, workload)
        assert engine.stats.sweep_batches == 1
        assert engine.stats.sweep_evaluations == len(swept.data["rows"])
    scalar = dcache_exhaustive(LiquidPlatform(), workload, sweep=False)
    assert swept.data["rows"] == scalar.data["rows"]

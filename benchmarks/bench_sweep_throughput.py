"""Sweep-measurement throughput: per-config scalar vs broadcast-batched vs arena.

Measures configs/sec of the measurement path on two sweep shapes:

* the **Figure-2 exhaustive dcache grid** (geometry-dense: every point is
  a distinct data-cache geometry, so trace-driven cache replay dominates
  and the batched timing evaluation trims the per-configuration Python
  overhead on top);
* a **pipeline-parameter sweep** (the dense regime of the one-factor
  campaigns and the BINLP tuner: hundreds of configurations share a
  handful of cache geometries, so the per-configuration timing-model
  loop *is* the cost, and the broadcast path collapses it into a few
  array operations).

Three variants run on every grid: ``scalar`` is the faithful
per-configuration baseline (``measure_many`` with the unmemoised
:meth:`TimingModel.evaluate_reference` per point -- the pre-sweep
behaviour), ``batched`` is the sequential
:meth:`LiquidPlatform.measure_sweep` broadcast path, and
``batched_arena`` runs the same sweep through a
:class:`ParallelEvaluator` with the zero-copy shared-memory trace arena.
All three must agree bit for bit; the wall-clock assertions only run at
benchmark scale (``REPRO_BENCH_SMOKE=1`` keeps the equality and
shared-memory-hygiene assertions, which is what the CI perf-smoke job
checks).

Results are written to ``benchmarks/BENCH_sweep.json`` so the perf
trajectory of the sweep path is machine readable across PRs.
"""

import contextlib
import glob
import itertools
import json
import pathlib
import time

from conftest import SMOKE, emit

from repro.analysis import dcache_exhaustive, engine_report
from repro.config import CACHE_SET_COUNTS, CACHE_SET_SIZES_KB, base_configuration
from repro.config.leon_space import Multiplier
from repro.engine import ParallelEvaluator, arena_available
from repro.microarch.timing import TimingModel
from repro.platform import LiquidPlatform

#: Committed full-scale trajectory; smoke runs write the sibling
#: ``BENCH_sweep.smoke.json`` so CI never clobbers the tracked artifact.
RESULT_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_sweep.json"
SMOKE_RESULT_PATH = RESULT_PATH.with_name("BENCH_sweep.smoke.json")
#: The ≥5x configs/sec acceptance floor for the broadcast path on the
#: timing-dominated sweep regime.
SPEEDUP_FLOOR = 5.0


@contextlib.contextmanager
def per_config_reference_timing():
    """Run the platform with the pre-sweep per-configuration timing path.

    ``evaluate_reference`` recomputes every trace reduction per call --
    histogram, hazard counts, the scalar window-trap walk, the latency
    dict rebuilds -- exactly like the original ``TimingModel.evaluate``
    did, making the scalar baseline faithful to the pre-batching code.
    """
    original = TimingModel.evaluate
    TimingModel.evaluate = TimingModel.evaluate_reference
    try:
        yield
    finally:
        TimingModel.evaluate = original


def fig2_grid(platform):
    base = base_configuration()
    points = [
        base.replace(dcache_sets=sets, dcache_setsize_kb=size)
        for sets, size in itertools.product(CACHE_SET_COUNTS, CACHE_SET_SIZES_KB)
    ]
    return [config for config in points if platform.fits(config)]


def pipeline_grid(platform):
    """Dense non-cache sweep: hundreds of configs over two cache geometries."""
    base = base_configuration()
    points = [
        base.replace(
            fast_jump=fast_jump, icc_hold=icc_hold, fast_decode=fast_decode,
            load_delay=load_delay, dcache_fast_read=fast_read,
            dcache_fast_write=fast_write, register_windows=windows,
            multiplier=multiplier,
            dcache_setsize_kb=dcache_kb)
        for fast_jump, icc_hold, fast_decode, load_delay, fast_read, fast_write,
            windows, multiplier, dcache_kb in itertools.product(
                (True, False), (True, False), (True, False), (1, 2),
                (True, False), (True, False), (8, 16),
                (Multiplier.M16X16, Multiplier.M32X32), (4, 8))
    ]
    return [config for config in points if platform.fits(config)]


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def run_variants(fresh_workload, configs):
    """Measure the grid through all three paths; returns (stats, timings)."""
    # the config-independent trace and its columnar decodes are shared by
    # every variant in the real flow; pre-warm them for the sequential
    # variants so the comparison times the measurement path, not trace
    # generation
    workload = fresh_workload()
    workload.trace()
    linesizes = {("icache", c.icache_linesize_words * 4) for c in configs}
    linesizes |= {("dcache", c.dcache_linesize_words * 4) for c in configs}
    for kind, linesize in sorted(linesizes):
        workload.columnar_view(kind, linesize)

    with per_config_reference_timing():
        scalar, scalar_seconds = timed(
            lambda: LiquidPlatform().measure_many(workload, configs))
    batched, batched_seconds = timed(
        lambda: LiquidPlatform().measure_sweep(workload, configs))

    # the arena variant gets its own workload instance whose views are NOT
    # pre-decoded: the timed sweep pays the real cold-sweep decode cost, and
    # the decode accounting below is exact
    arena_workload = fresh_workload()
    arena_workload.trace()
    with ParallelEvaluator(LiquidPlatform(), workers=2, arena=True) as engine:
        # spawn the pool on an off-grid batch first: the pool and arena are
        # long-lived engine state, so steady-state sweeps do not pay startup
        warmup = [base_configuration().replace(
            dcache_sets=sets, dcache_setsize_kb=32 if SMOKE else 16,
            dcache_replacement="lru") for sets in (2, 3)]
        warmup = [c for c in warmup if engine.fits(c)]
        engine.measure_sweep(arena_workload, warmup)
        arena_result, arena_seconds = timed(
            lambda: engine.measure_sweep(arena_workload, configs))
        stats = engine.stats.as_dict()
        arena_ok = (engine.stats.parallel_simulations > 0
                    and arena_available())
        if arena_ok:
            # one decode per host: nothing was decoded inside a worker, and
            # the parent decoded each (kind, linesize) shared-decode group
            # exactly once across the warmup + timed batches
            assert engine.stats.worker_decodes == 0
            assert engine.stats.host_decodes == len(linesizes)
            assert engine.stats.arena_segments > 0
        emit(engine_report(engine))

    assert batched == scalar, "batched sweep diverges from the scalar path"
    assert arena_result == scalar, "arena sweep diverges from the scalar path"
    timings = {
        "scalar": scalar_seconds,
        "batched": batched_seconds,
        "batched_arena": arena_seconds,
    }
    return stats, timings


def report(name, configs, timings):
    lines = [f"\n{name}: {len(configs)} grid points"]
    for variant, seconds in timings.items():
        lines.append(
            f"  {variant:<14} {seconds:8.3f}s  {len(configs) / seconds:10.1f} configs/sec")
    lines.append(
        f"  speedup batched vs scalar {timings['scalar'] / timings['batched']:.2f}x, "
        f"arena vs scalar {timings['scalar'] / timings['batched_arena']:.2f}x")
    print("\n".join(lines))


def to_entry(configs, timings, stats=None):
    entry = {
        "points": len(configs),
        "variants": {
            variant: {
                "seconds": round(seconds, 4),
                "configs_per_sec": round(len(configs) / seconds, 1),
            }
            for variant, seconds in timings.items()
        },
        "speedup_batched_vs_scalar": round(timings["scalar"] / timings["batched"], 2),
        "speedup_arena_vs_scalar": round(
            timings["scalar"] / timings["batched_arena"], 2),
    }
    if stats is not None:
        entry["engine"] = stats
    return entry


def test_sweep_throughput_trajectory():
    from repro.workloads import small_workloads, standard_workloads

    def fresh_blastn():
        source = small_workloads if SMOKE else standard_workloads
        return source()["blastn"]

    platform = LiquidPlatform()
    shm_before = set(glob.glob("/dev/shm/psm_*"))

    fig2 = fig2_grid(platform)
    fig2_stats, fig2_timings = run_variants(fresh_blastn, fig2)
    report("Figure-2 dcache grid (geometry-dense)", fig2, fig2_timings)

    pipeline = pipeline_grid(platform)
    pipe_stats, pipe_timings = run_variants(fresh_blastn, pipeline)
    report("Pipeline-parameter sweep (timing-dense)", pipeline, pipe_timings)

    # no shared-memory segment survives the evaluators
    leaked = set(glob.glob("/dev/shm/psm_*")) - shm_before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"

    payload = {
        "smoke": SMOKE,
        "workload": "blastn",
        "figure2_grid": to_entry(fig2, fig2_timings, fig2_stats),
        "pipeline_grid": to_entry(pipeline, pipe_timings, pipe_stats),
        "speedup_floor": SPEEDUP_FLOOR,
    }
    result_path = SMOKE_RESULT_PATH if SMOKE else RESULT_PATH
    result_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {result_path}")

    if SMOKE:
        return  # CI smoke checks equality + hygiene; wall clock is meaningless
    # the broadcast path must never lose to the per-config loop, even on the
    # geometry-dense grid where cache replay dominates ...
    assert fig2_timings["batched"] < fig2_timings["scalar"], (
        f"batched Figure-2 sweep ({fig2_timings['batched']:.3f}s) not faster "
        f"than the per-config baseline ({fig2_timings['scalar']:.3f}s)")
    # ... and on the timing-dense sweep regime it must clear the 5x floor
    speedup = pipe_timings["scalar"] / pipe_timings["batched"]
    assert speedup >= SPEEDUP_FLOOR, (
        f"batched pipeline sweep speedup {speedup:.2f}x below the "
        f"{SPEEDUP_FLOOR}x floor")


def test_sweep_path_wired_into_figure2_driver(workloads):
    """The Figure-2 driver routes through measure_sweep and stays bit-identical."""
    workload = workloads["arith" if SMOKE else "blastn"]
    with ParallelEvaluator(LiquidPlatform(), workers=2, arena=True) as engine:
        swept = dcache_exhaustive(engine, workload)
        assert engine.stats.sweep_batches == 1
        assert engine.stats.sweep_evaluations == len(swept.data["rows"])
    scalar = dcache_exhaustive(LiquidPlatform(), workload, sweep=False)
    assert swept.data["rows"] == scalar.data["rows"]

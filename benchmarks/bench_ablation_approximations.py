"""Ablation: linear vs nonlinear cost approximations (Sections 4.2 and 6.1).

The paper keeps the LUT constraint linear (LUT variation is minimal) and the
BRAM constraint nonlinear (cache sets x set size).  This benchmark checks
that choice on our measurements: the nonlinear BRAM prediction is at least
as accurate as the linear one for the recommended configurations, while for
LUTs the two approximations are essentially indistinguishable.
"""

from conftest import emit

from repro.analysis import approximation_ablation


def test_approximation_ablation(benchmark, figure5):
    results = figure5.data["results"]

    def run_all():
        return {name: approximation_ablation(result) for name, result in results.items()}

    ablations = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for name, ablation in ablations.items():
        emit(ablation)
        errors = ablation.data["errors"]
        assert abs(errors["bram_error_nonlinear"]) <= abs(errors["bram_error_linear"]) + 1e-9, name
        assert abs(errors["lut_error_linear"] - errors["lut_error_nonlinear"]) < 1.0, name
        # the independence assumption keeps runtime prediction within a few percent
        assert abs(errors["runtime_percent_error"]) < 5.0, name

#!/usr/bin/env python
"""Merge the ``BENCH_*.json`` artifacts into one performance trajectory.

Every benchmark in this directory writes a small JSON artifact
(``BENCH_sweep.json``, ``BENCH_campaign.json``, ``BENCH_obs.json``, plus
their ``.smoke`` siblings from CI's reduced-scale runs).  This tool
folds them into one schema-validated ``benchmarks/TRAJECTORY.json``: per
source, the ``smoke`` flag and every ``configs_per_sec`` column it
reports, addressed by its dotted path inside the artifact.  The merged
file is committed, so the repo's throughput story is one diffable
document instead of a directory of shapes.

Usage::

    python benchmarks/trajectory.py --write   # regenerate TRAJECTORY.json
    python benchmarks/trajectory.py --check   # CI gate: fail on drift

``--check`` validates the committed trajectory against the current
``BENCH_*.json`` set: the source list and every source's column keys
must match exactly, and *values* must match for full-scale sources
(smoke artifacts are re-measured by every CI run, so only their shape
is pinned).  A missing or stale committed file fails the check with the
command that fixes it.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any, Dict

BENCH_DIR = pathlib.Path(__file__).resolve().parent
TRAJECTORY_PATH = BENCH_DIR / "TRAJECTORY.json"
SCHEMA_VERSION = 1
#: The throughput column every benchmark artifact must report somewhere.
COLUMN_KEY = "configs_per_sec"


def collect_columns(node: Any, prefix: str = "") -> Dict[str, float]:
    """Every ``configs_per_sec`` value in one artifact, by dotted path."""
    columns: Dict[str, float] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else key
            if key == COLUMN_KEY:
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    raise ValueError(f"{path} must be a number, got {value!r}")
                columns[path] = float(value)
            else:
                columns.update(collect_columns(value, path))
    elif isinstance(node, list):
        for index, value in enumerate(node):
            columns.update(collect_columns(value, f"{prefix}[{index}]"))
    return columns


def load_source(path: pathlib.Path) -> Dict[str, Any]:
    """One artifact as a trajectory source entry (schema-validated)."""
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path.name}: not valid JSON ({exc})") from exc
    if not isinstance(payload, dict):
        raise ValueError(f"{path.name}: artifact must be a JSON object")
    if not isinstance(payload.get("smoke"), bool):
        raise ValueError(f"{path.name}: missing boolean 'smoke' flag")
    columns = collect_columns(payload)
    if not columns:
        raise ValueError(f"{path.name}: no '{COLUMN_KEY}' columns found")
    return {"smoke": payload["smoke"], "columns": columns}


def source_name(path: pathlib.Path) -> str:
    """``BENCH_sweep.smoke.json`` -> ``sweep.smoke``."""
    return path.name[len("BENCH_"):-len(".json")]


def build_trajectory() -> Dict[str, Any]:
    """The merged trajectory of every ``BENCH_*.json`` in this directory."""
    sources = {
        source_name(path): load_source(path)
        for path in sorted(BENCH_DIR.glob("BENCH_*.json"))
    }
    if not sources:
        raise ValueError(f"no BENCH_*.json artifacts in {BENCH_DIR}")
    return {"version": SCHEMA_VERSION, "sources": sources}


def check(trajectory: Dict[str, Any]) -> int:
    """Compare the committed trajectory against the current artifacts."""
    if not TRAJECTORY_PATH.exists():
        print(f"missing {TRAJECTORY_PATH.name}: run "
              "'python benchmarks/trajectory.py --write' and commit it")
        return 1
    committed = json.loads(TRAJECTORY_PATH.read_text())
    errors = []
    if committed.get("version") != SCHEMA_VERSION:
        errors.append(f"schema version {committed.get('version')!r} != "
                      f"{SCHEMA_VERSION}")
    committed_sources = committed.get("sources", {})
    fresh_sources = trajectory["sources"]
    for name in sorted(set(committed_sources) | set(fresh_sources)):
        if name not in fresh_sources:
            errors.append(f"source '{name}' is committed but BENCH_{name}.json "
                          "is gone")
            continue
        if name not in committed_sources:
            errors.append(f"BENCH_{name}.json is new; not in the committed "
                          "trajectory")
            continue
        fresh, old = fresh_sources[name], committed_sources[name]
        fresh_keys = set(fresh["columns"])
        old_keys = set(old.get("columns", {}))
        for key in sorted(old_keys - fresh_keys):
            errors.append(f"{name}: committed column '{key}' vanished")
        for key in sorted(fresh_keys - old_keys):
            errors.append(f"{name}: new column '{key}' not committed")
        if fresh.get("smoke") != old.get("smoke"):
            errors.append(f"{name}: smoke flag changed "
                          f"{old.get('smoke')} -> {fresh.get('smoke')}")
        # smoke artifacts are re-measured on every CI run; only full-scale
        # sources pin their committed values
        if not fresh.get("smoke"):
            for key in sorted(fresh_keys & old_keys):
                if fresh["columns"][key] != old["columns"][key]:
                    errors.append(
                        f"{name}: column '{key}' drifted "
                        f"{old['columns'][key]} -> {fresh['columns'][key]} "
                        "(rerun --write and commit, or revert the artifact)")
    if errors:
        print(f"{TRAJECTORY_PATH.name} is stale:")
        for error in errors:
            print(f"  - {error}")
        return 1
    sources = ", ".join(sorted(fresh_sources))
    print(f"{TRAJECTORY_PATH.name} is consistent ({sources})")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--write", action="store_true",
                      help="regenerate TRAJECTORY.json from the artifacts")
    mode.add_argument("--check", action="store_true",
                      help="fail when the committed trajectory is stale (CI)")
    args = parser.parse_args()
    try:
        trajectory = build_trajectory()
    except ValueError as exc:
        print(f"benchmark artifact error: {exc}")
        return 1
    if args.write:
        TRAJECTORY_PATH.write_text(
            json.dumps(trajectory, indent=2, sort_keys=True) + "\n")
        total = sum(len(s["columns"]) for s in trajectory["sources"].values())
        print(f"wrote {TRAJECTORY_PATH.name}: "
              f"{len(trajectory['sources'])} sources, {total} columns")
        return 0
    return check(trajectory)


if __name__ == "__main__":
    sys.exit(main())

"""Ablation: branch-and-bound vs greedy vs random search on the full BINLP.

The paper solves the formulation with a commercial MINLP solver; our
branch-and-bound replaces it.  This benchmark shows it dominates the naive
baselines on every workload's problem instance while exploring only a few
thousand nodes, i.e. the constrained formulation (not brute force) is what
makes the approach work.
"""

from conftest import emit

from repro.analysis import solver_ablation
from repro.core import RUNTIME_OPTIMIZATION


def test_solver_ablation(benchmark, figure5):
    models = figure5.data["models"]

    def run_all():
        return {name: solver_ablation(model, RUNTIME_OPTIMIZATION)
                for name, model in models.items()}

    ablations = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for name, ablation in ablations.items():
        emit(ablation)
        data = ablation.data
        bnb = data["branch-and-bound"]
        assert bnb["objective"] <= data["greedy"]["objective"] + 1e-9, name
        assert bnb["objective"] <= data["random-search"]["objective"] + 1e-9, name
        assert bnb["nodes"] < 100_000, name

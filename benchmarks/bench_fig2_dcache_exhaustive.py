"""Figure 2: exhaustive dcache {sets x set size} sweep for BLASTN.

Reproduces the shape of the paper's Figure 2: runtime improves as the data
cache grows, the best runtime is reached by the 32 KB-total organisations,
and the BRAM utilisation spans roughly 47%..90% of the device.

The second benchmark measures the evaluation-engine hot path: the same
sweep through the scalar per-access reference loop (the seed behaviour)
versus the engine with a >1-process worker pool and the vectorized
direct-mapped cache replay, asserting a wall-clock improvement on
bit-identical results.
"""

import time

import pytest
from conftest import emit

from repro.analysis import dcache_exhaustive, engine_report
from repro.engine import ParallelEvaluator
from repro.microarch.cache import Cache
from repro.platform import LiquidPlatform


def test_fig2_blastn_dcache_exhaustive(benchmark, platform, workloads):
    result = benchmark.pedantic(
        dcache_exhaustive, args=(platform, workloads["blastn"]), rounds=1, iterations=1)
    emit(result)
    rows = result.data["rows"]
    best = result.data["best"]
    base_row = next(r for r in rows if r["sets"] == 1 and r["setsize_kb"] == 4)
    # the optimal-runtime configuration uses 32 KB of data cache in total
    assert best["sets"] * best["setsize_kb"] == 32
    # and improves on the base configuration by a few percent (paper: 3.63%)
    gain = 100.0 * (base_row["cycles"] - best["cycles"]) / base_row["cycles"]
    assert 1.0 < gain < 15.0
    # BRAM spans the paper's range
    assert min(r["bram_percent"] for r in rows) < 50
    assert max(r["bram_percent"] for r in rows) > 85


def test_fig2_engine_wall_clock_improvement(benchmark, workloads):
    """Engine (2 workers, vectorized hot path) vs the seed's scalar sweep."""
    workload = workloads["blastn"]
    workload.trace()  # the config-independent trace is shared; keep it out of the timing

    original_simulate = Cache.simulate

    def scalar_simulate(self, addresses, writes=None, **kwargs):
        if writes is None:
            # read-only (icache) traces keep a fast path in the seed too, so
            # leave them out of the baseline; only dcache points ran the
            # seed's per-access loop
            return original_simulate(self, addresses, writes, **kwargs)
        return original_simulate(self, addresses, writes, vectorized=False)

    Cache.simulate = scalar_simulate  # the seed's per-access loop on every dcache point
    try:
        start = time.perf_counter()
        scalar_result = dcache_exhaustive(LiquidPlatform(), workload)
        scalar_seconds = time.perf_counter() - start
    finally:
        Cache.simulate = original_simulate

    engine = ParallelEvaluator(LiquidPlatform(), workers=2)
    start = time.perf_counter()
    engine_result = benchmark.pedantic(
        dcache_exhaustive, args=(engine, workload), rounds=1, iterations=1)
    engine_seconds = time.perf_counter() - start

    emit(engine_report(engine))
    speedup = scalar_seconds / engine_seconds
    print(f"\nFigure 2 sweep wall-clock: scalar sequential {scalar_seconds:.2f}s, "
          f"engine ({engine.workers} workers) {engine_seconds:.2f}s, "
          f"speedup {speedup:.2f}x")

    # bit-identical sweep first: correctness holds in every environment
    assert engine_result.data["rows"] == scalar_result.data["rows"]
    assert engine.stats.workers == 2
    if engine.stats.parallel_simulations == 0:
        pytest.skip("process pool unavailable in this environment; "
                    "wall-clock comparison not meaningful")
    assert engine_seconds < scalar_seconds, (
        f"engine sweep ({engine_seconds:.2f}s) not faster than "
        f"scalar sweep ({scalar_seconds:.2f}s)")

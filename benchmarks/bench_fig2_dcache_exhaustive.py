"""Figure 2: exhaustive dcache {sets x set size} sweep for BLASTN.

Reproduces the shape of the paper's Figure 2: runtime improves as the data
cache grows, the best runtime is reached by the 32 KB-total organisations,
and the BRAM utilisation spans roughly 47%..90% of the device.
"""

from conftest import emit

from repro.analysis import dcache_exhaustive


def test_fig2_blastn_dcache_exhaustive(benchmark, platform, workloads):
    result = benchmark.pedantic(
        dcache_exhaustive, args=(platform, workloads["blastn"]), rounds=1, iterations=1)
    emit(result)
    rows = result.data["rows"]
    best = result.data["best"]
    base_row = next(r for r in rows if r["sets"] == 1 and r["setsize_kb"] == 4)
    # the optimal-runtime configuration uses 32 KB of data cache in total
    assert best["sets"] * best["setsize_kb"] == 32
    # and improves on the base configuration by a few percent (paper: 3.63%)
    gain = 100.0 * (base_row["cycles"] - best["cycles"]) / base_row["cycles"]
    assert 1.0 < gain < 15.0
    # BRAM spans the paper's range
    assert min(r["bram_percent"] for r in rows) < 50
    assert max(r["bram_percent"] for r in rows) > 85

"""Figure 2: exhaustive dcache {sets x set size} sweep for BLASTN.

Reproduces the shape of the paper's Figure 2: runtime improves as the data
cache grows, the best runtime is reached by the 32 KB-total organisations,
and the BRAM utilisation spans roughly 47%..90% of the device.

The second benchmark measures the evaluation-engine hot path on the same
sweep against two historical baselines, asserting wall-clock improvements
on bit-identical results:

* the *seed* baseline runs every dcache point through the scalar
  per-access reference loop (the original behaviour);
* the *PR 1* baseline vectorizes only the direct-mapped (``ways == 1``)
  corner and pays the scalar loop on every set-associative point -- the
  state of the hot path before the columnar cache kernel.

Set ``REPRO_BENCH_SMOKE=1`` (the CI smoke job does) to run the sweep on
scaled-down workloads: hot-path regressions still fail loudly, but the
paper-shape assertions that need benchmark-scale traces are skipped.
"""

import time

import pytest
from bench_sweep_throughput import per_config_reference_timing
from conftest import SMOKE, emit

from repro.analysis import dcache_exhaustive, engine_report
from repro.engine import ParallelEvaluator
from repro.microarch.cache import Cache
from repro.platform import LiquidPlatform


def test_fig2_blastn_dcache_exhaustive(benchmark, platform, workloads):
    result = benchmark.pedantic(
        dcache_exhaustive, args=(platform, workloads["blastn"]), rounds=1, iterations=1)
    emit(result)
    rows = result.data["rows"]
    assert rows, "sweep produced no buildable grid points"
    if SMOKE:
        return  # paper-shape assertions need the benchmark-scale trace
    best = result.data["best"]
    base_row = next(r for r in rows if r["sets"] == 1 and r["setsize_kb"] == 4)
    # the optimal-runtime configuration uses 32 KB of data cache in total
    assert best["sets"] * best["setsize_kb"] == 32
    # and improves on the base configuration by a few percent (paper: 3.63%)
    gain = 100.0 * (base_row["cycles"] - best["cycles"]) / base_row["cycles"]
    assert 1.0 < gain < 15.0
    # BRAM spans the paper's range
    assert min(r["bram_percent"] for r in rows) < 50
    assert max(r["bram_percent"] for r in rows) > 85


def _scalar_dcache_job(ways_threshold):
    """A ``simulate_cache_job`` override forcing the scalar loop on dcache points.

    ``ways_threshold=0`` recreates the seed (every dcache point scalar);
    ``ways_threshold=1`` recreates PR 1 (only set-associative points
    scalar, direct-mapped stays vectorized).  Instruction-cache points
    keep the default path in both eras, which had read-only fast paths.
    """

    def simulate_cache_job(self, workload, job):
        _, kind, cache_cfg = job
        if kind == "dcache" and cache_cfg.ways > ways_threshold:
            trace = workload.trace()
            return Cache(cache_cfg).simulate(
                trace.data_addresses, trace.data_is_write, vectorized=False)
        return LiquidPlatform.simulate_cache_job(self, workload, job)

    return simulate_cache_job


def _timed_sweep(workload, *, ways_threshold=None):
    """One sequential Figure-2 sweep on a fresh platform; returns (result, seconds).

    Historical baselines (``ways_threshold`` given) also run the
    per-configuration measurement loop with the unmemoised reference
    timing model -- the seed and PR 1 eras had neither the broadcast
    sweep path nor the trace feature memos.
    """
    platform = LiquidPlatform()
    if ways_threshold is not None:
        platform.simulate_cache_job = _scalar_dcache_job(ways_threshold).__get__(platform)
        # grouped batching would bypass the override; fall back to per-job
        platform.simulate_cache_jobs = (
            lambda w, jobs: {job: platform.simulate_cache_job(w, job) for job in jobs})
        with per_config_reference_timing():
            start = time.perf_counter()
            result = dcache_exhaustive(platform, workload, sweep=False)
            return result, time.perf_counter() - start
    start = time.perf_counter()
    result = dcache_exhaustive(platform, workload)
    return result, time.perf_counter() - start


def test_fig2_engine_wall_clock_improvement(benchmark, workloads):
    """Columnar kernel + engine vs the seed and PR 1 hot-path baselines."""
    workload = workloads["blastn"]
    workload.trace()  # the config-independent trace is shared; keep it out of the timing

    scalar_result, scalar_seconds = _timed_sweep(workload, ways_threshold=0)
    pr1_result, pr1_seconds = _timed_sweep(workload, ways_threshold=1)
    kernel_result, kernel_seconds = _timed_sweep(workload)

    with ParallelEvaluator(LiquidPlatform(), workers=2) as engine:
        start = time.perf_counter()
        engine_result = benchmark.pedantic(
            dcache_exhaustive, args=(engine, workload), rounds=1, iterations=1)
        engine_seconds = time.perf_counter() - start

    emit(engine_report(engine))
    print(f"\nFigure 2 sweep wall-clock:"
          f"\n  seed (scalar loop, sequential)        {scalar_seconds:8.2f}s"
          f"\n  PR 1 (ways==1 vectorized, sequential) {pr1_seconds:8.2f}s"
          f"\n  kernel (columnar, sequential)         {kernel_seconds:8.2f}s"
          f"\n  kernel + engine ({engine.workers} workers)           {engine_seconds:8.2f}s"
          f"\n  speedup vs seed {scalar_seconds / engine_seconds:5.2f}x,"
          f" vs PR 1 {pr1_seconds / engine_seconds:5.2f}x"
          f" (sequential kernel alone {pr1_seconds / kernel_seconds:5.2f}x)")

    # bit-identical sweeps first: correctness holds in every environment
    assert engine_result.data["rows"] == scalar_result.data["rows"]
    assert engine_result.data["rows"] == pr1_result.data["rows"]
    assert engine_result.data["rows"] == kernel_result.data["rows"]
    # the set-associative kernel must beat PR 1's scalar set-associative loop
    # even without worker processes
    assert kernel_seconds < pr1_seconds, (
        f"columnar kernel sweep ({kernel_seconds:.2f}s) not faster than "
        f"the PR 1 baseline ({pr1_seconds:.2f}s)")
    assert engine.stats.workers == 2
    assert engine.stats.cache_groups > 0
    if SMOKE:
        return  # at smoke scale pool startup dwarfs the work; the sequential
                # kernel assertion above already guards the hot path
    if engine.stats.parallel_simulations == 0:
        pytest.skip("process pool unavailable in this environment; "
                    "worker wall-clock comparison not meaningful")
    assert engine_seconds < scalar_seconds, (
        f"engine sweep ({engine_seconds:.2f}s) not faster than "
        f"seed scalar sweep ({scalar_seconds:.2f}s)")
    assert engine_seconds < pr1_seconds, (
        f"engine sweep ({engine_seconds:.2f}s) not faster than "
        f"the PR 1 baseline ({pr1_seconds:.2f}s)")

"""Figure 7: full-space chip-resource optimisation (w1=1, w2=100).

Reproduces the trade-off direction of the paper's Figure 7: every benchmark
gives up runtime in exchange for LUT and BRAM savings, the caches shrink,
the optional pipeline features are disabled and the arithmetic units are
downgraded.  (Our simulator trades more aggressively than the paper's
platform -- see EXPERIMENTS.md for the documented divergence.)
"""

from conftest import emit

from repro.analysis import resource_optimization


def test_fig7_resource_optimization(benchmark, platform, workloads, figure5):
    result = benchmark.pedantic(
        resource_optimization, args=(platform, workloads),
        kwargs={"models": figure5.data["models"]}, rounds=1, iterations=1)
    emit(result)
    gains = result.data["gains"]
    for name, values in gains.items():
        assert values["lut_delta"] < 0, name          # LUTs saved
        assert values["bram_delta"] < 0, name         # BRAM saved
        assert values["actual_gain_percent"] < 0, name  # runtime got worse
    results = result.data["results"]
    for name, tuning in results.items():
        config = tuning.configuration
        assert config.dcache_setsize_kb <= 4
        assert config.icache_setsize_kb <= 4
        assert config.fast_jump is False or name == "arith"
    # Arith keeps its hardware divider (it divides every iteration), the
    # division-free benchmarks drop theirs -- the application-specific shape
    # of the paper's Figure 7.
    assert results["arith"].configuration.divider == "radix2"
    assert results["frag"].configuration.divider == "none"

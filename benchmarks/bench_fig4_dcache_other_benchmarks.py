"""Figure 4: exhaustive vs optimizer dcache study for all four benchmarks.

Reproduces the paper's Section 5 result: the optimizer's selection matches
the exhaustive optimum (within a fraction of a percent) for every
benchmark, and Arith is unaffected by the data cache because it is not
data intensive.
"""

from conftest import emit

from repro.analysis import dcache_study


def test_fig4_dcache_exhaustive_vs_optimizer(benchmark, platform, workloads):
    result = benchmark.pedantic(
        dcache_study, args=(platform, workloads), rounds=1, iterations=1)
    emit(result)
    for name, values in result.data.items():
        assert values["optimality_gap_percent"] <= 1.0, name
    # Arith: "No effect, as application is not data intensive"
    arith = result.data["arith"]
    assert arith["optimizer_cycles"] == arith["base_cycles"]
    # the memory-intensive benchmarks want 24-32 KB of data cache
    for name in ("blastn", "drr"):
        sets, size = result.data[name]["exhaustive_config"]
        assert sets * size >= 24, name

"""Phase transitions: cold-start vs warm-chained replay on the Figure-2 grid.

The paper's design-space exploration replays every workload from a cold
cache, but deployed phase-structured programs (BLASTN's seed-then-extend
stages, DRR's enqueue/service alternation, context switches between
applications) carry cache state across phase boundaries.  This benchmark
drives the warm phase-chain engine over the Figure-2 dcache
configuration sweep for the standard multi-phase scenarios and reports
the cold-vs-warm per-phase miss-rate deltas.

Two engine guarantees are asserted on top of the numbers:

* the warm chain is *consistent*: its per-phase totals equal the
  single-shot statistics of the concatenated trace, so overall
  measurements are unchanged by phasing;
* the warm path adds *no per-phase re-decode*: phase decodes are keyed
  by ``(trace, kind, linesize, phase)`` only, so their count must not
  scale with the number of swept configurations
  (``EngineStats.phase_decodes`` / the ``phase_decode`` stage of
  ``EngineStats.stage_seconds``).

Set ``REPRO_BENCH_SMOKE=1`` to run the scenarios at test scale.
"""

from conftest import SMOKE, emit

from repro.analysis import phase_transition_study
from repro.engine import ParallelEvaluator
from repro.platform import LiquidPlatform
from repro.workloads import phase_scenarios


def test_phase_transitions_cold_vs_warm(benchmark):
    scenarios = phase_scenarios(small=SMOKE)
    # workers=1 keeps the phase chains inline, where decode accounting is
    # exact; the chain replay itself is the cheap part once views exist
    with ParallelEvaluator(LiquidPlatform(), workers=1) as engine:
        result = benchmark.pedantic(
            phase_transition_study, args=(engine, scenarios), rounds=1, iterations=1)
        stats = engine.stats
    emit(result)
    stages = stats.stage_report()
    print(f"\nphase chains: {stats.phase_chains}, phase decodes: {stats.phase_decodes}"
          f"\nstage wall-clock: {stages}")

    rows = result.data["rows"]
    summary = result.data["summary"]
    assert len(scenarios) >= 2, "need at least two multi-phase scenarios"
    assert {r["scenario"] for r in rows} == set(scenarios)

    # cold vs warm must differ somewhere: phase transitions are observable
    assert any(abs(r["delta_pp"]) > 0 for r in rows), (
        "no scenario showed a cold-vs-warm miss-rate delta")
    # and the summary covers every phase of every scenario
    for name, workload in scenarios.items():
        phases = {s["phase"] for s in summary if s["scenario"] == name}
        assert phases == set(workload.phase_names)

    # consistency: warm per-phase totals == the single-shot measurement
    for name, phased in result.data["measurements"].items():
        for measurement in phased:
            assert measurement.dcache.warm_total() == measurement.measurement.statistics.dcache, (
                f"warm chain of {name} diverged from the single-shot replay")

    # no per-phase re-decode: decodes scale with (scenario, kind, linesize,
    # phase), never with the number of swept configurations.  The grid
    # varies sets/setsize only, so each scenario decodes its phases once
    # for the icache linesize and once for the dcache linesize.
    expected_decodes = sum(2 * w.phase_count for w in scenarios.values())
    assert stats.phase_decodes == expected_decodes, (
        f"phase decodes ({stats.phase_decodes}) scale beyond the "
        f"(scenario, cache, linesize, phase) space ({expected_decodes})")
    assert stats.phase_chains > len(scenarios) * 2, (
        "the sweep should replay many more chains than it decodes views")
    assert "phase_decode" in stages and "phase_chain" in stages

"""Figure 1: the LEON reconfigurable parameter space and design-space sizes."""

from conftest import emit

from repro.analysis import parameter_space_summary


def test_fig1_parameter_space(benchmark):
    result = benchmark.pedantic(parameter_space_summary, rounds=1, iterations=1)
    emit(result)
    # the paper's feasibility argument: billions of exhaustive configurations
    # versus ~50 one-factor perturbations
    assert result.data["exhaustive"] > 10**8
    assert result.data["perturbations"] < 60

"""Figure 3: the optimizer's view of the BLASTN dcache sub-space (w1=100, w2=0).

The optimizer only measures the one-factor configurations (3 set-count
perturbations + 5 set-size perturbations) yet selects a configuration whose
runtime matches the exhaustive optimum of Figure 2 -- possibly organised
slightly differently (the paper found 1x32 KB vs the exhaustive 2x16 KB).
"""

from conftest import emit

from repro.analysis import dcache_exhaustive, dcache_optimizer


def test_fig3_blastn_dcache_optimizer(benchmark, platform, workloads):
    result = benchmark.pedantic(
        dcache_optimizer, args=(platform, workloads["blastn"]), rounds=1, iterations=1)
    emit(result)
    exhaustive = dcache_exhaustive(platform, workloads["blastn"])
    # linear number of evaluated configurations (8) vs 19+ for the exhaustive sweep
    assert result.data["configurations_evaluated"] == 8
    assert exhaustive.data["configurations_evaluated"] >= 19
    # near-optimal runtime: within 1% of the exhaustive best, relative to base
    gap = (result.data["selected_cycles"] - exhaustive.data["best"]["cycles"])
    assert 100.0 * gap / result.data["base_cycles"] <= 1.0
    # the selected configuration also totals 32 KB of data cache
    assert result.data["selected_sets"] * result.data["selected_setsize_kb"] == 32

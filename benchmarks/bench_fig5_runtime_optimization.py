"""Figure 5: full-space application runtime optimisation (w1=100, w2=1).

Reproduces the paper's headline result: tuning the full Figure-1 parameter
space for runtime improves every benchmark (the paper reports 6.15%-19.39%),
the gains are application specific (Arith's come from the multiplier, the
memory-intensive benchmarks' from the data cache and fast read/write), and
the optimizer's runtime prediction is an over-estimate bounded by a modest
margin.
"""

from conftest import emit

from repro.analysis import runtime_optimization


def test_fig5_runtime_optimization(benchmark, platform, workloads, figure5):
    # re-run the study under the benchmark timer using the memoised platform;
    # the session fixture guarantees the models exist for the later figures.
    result = benchmark.pedantic(
        runtime_optimization, args=(platform, workloads),
        kwargs={"models": figure5.data["models"]}, rounds=1, iterations=1)
    emit(result)
    gains = result.data["gains"]
    # every benchmark improves; the band straddles the paper's 6%..19%
    for name, values in gains.items():
        assert values["actual_gain_percent"] > 2.0, name
    assert min(v["actual_gain_percent"] for v in gains.values()) < 10.0
    assert max(v["actual_gain_percent"] for v in gains.values()) > 12.0
    # the application-specific shape: DRR gains the most, Arith the least
    assert gains["drr"]["actual_gain_percent"] == max(
        v["actual_gain_percent"] for v in gains.values())
    assert gains["arith"]["actual_gain_percent"] == min(
        v["actual_gain_percent"] for v in gains.values())
    # parameter-independence makes the optimizer's prediction an estimate, not
    # an oracle: predictions stay within 5 points of the measured change
    for name, values in gains.items():
        error = abs(values["predicted_gain_percent"] - values["actual_gain_percent"])
        assert error < 5.0, name
    # Arith selects the single-cycle multiplier, the memory-bound codes enlarge
    # the data cache
    results = result.data["results"]
    assert results["arith"].configuration.multiplier == "m32x32"
    assert (results["drr"].configuration.dcache_sets
            * results["drr"].configuration.dcache_setsize_kb) >= 24

"""Figure 6: one-factor measured costs of the perturbations selected for BLASTN."""

from conftest import emit

from repro.analysis import perturbation_costs


def test_fig6_blastn_perturbation_costs(benchmark, figure5):
    blastn_result = figure5.data["results"]["blastn"]
    result = benchmark.pedantic(
        perturbation_costs, args=(blastn_result,), rounds=1, iterations=1)
    emit(result)
    rows = result.data["rows"]
    base_cycles = result.data["base_cycles"]
    assert rows, "runtime optimisation must have reconfigured something for BLASTN"
    # every selected perturbation is individually no slower than the base by
    # more than the resource-trade margin, and at least one is clearly faster
    assert any(row["cycles"] < base_cycles for row in rows)
    for row in rows:
        assert row["cycles"] <= base_cycles * 1.02
    # each row reports the chip costs the campaign measured for it
    assert all(30 < row["lut_percent"] < 50 for row in rows)
    assert all(40 < row["bram_percent"] < 100 for row in rows)

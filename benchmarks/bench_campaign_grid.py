"""Campaign-grid scaling: 1 vs N workers draining the Figure-2 grid.

The distributed campaign queue (:mod:`repro.engine.campaign`) exists to
let several worker processes -- terminals, cron jobs, hosts sharing a
file -- drain one configuration grid cooperatively.  This benchmark
registers the Figure-2 BLASTN dcache grid in a fresh campaign database
and drains it with one worker, then with ``N`` concurrent worker
processes, recording configs/sec for both.  The timed region covers the
queue drain only: workers construct their evaluators and generate their
traces *before* a barrier releases them together, so the ratio measures
claim/evaluate/write-back scaling, not process startup.

Correctness is asserted unconditionally, at every scale:

* the concurrent drain leaves zero stuck rows (nothing open, claimed or
  failed) and every row was claimed exactly once (``attempts == 1`` for
  the whole table -- claim exclusivity means no row is ever evaluated
  twice);
* the campaign database's measurements are bit-identical to a direct
  ``measure_sweep`` of the same grid.

The wall-clock floor is honest about hardware: two workers can only beat
one where two cores exist.  ``SPEEDUP_FLOOR`` (>= 1.6x) is asserted at
full scale on multi-core hosts; a single-core host (``os.cpu_count() ==
1``, e.g. a constrained container) instead asserts the sharding overhead
stays bounded (``SERIAL_SANITY_FLOOR``: two time-sliced workers may not
collapse below ~0.6x of one), and the payload records ``cpus`` and
``floor_enforced`` so the committed trajectory says exactly which claim
it makes.  The CI ``campaign-grid`` job runs the multi-worker drain on
the multi-core hosted runners, where the exclusivity, zero-stuck-rows
and equality assertions all hold under real core-level concurrency.

Results are written to ``benchmarks/BENCH_campaign.json`` (smoke runs
write the ``.smoke`` sibling so CI never clobbers the tracked artifact).
"""

import itertools
import json
import multiprocessing
import os
import pathlib
import tempfile
import time

from conftest import SMOKE

from repro.config import (
    CACHE_SET_COUNTS,
    CACHE_SET_SIZES_KB,
    base_configuration,
)
from repro.engine import CampaignGrid, CampaignWorker, ParallelEvaluator
from repro.engine.store import SqliteResultStore
from repro.platform import LiquidPlatform

#: Committed full-scale trajectory; smoke runs write the sibling.
RESULT_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_campaign.json"
SMOKE_RESULT_PATH = RESULT_PATH.with_name("BENCH_campaign.smoke.json")
#: Two concurrent workers must drain the grid >= this much faster than
#: one -- asserted at full scale on hosts with >= 2 cores.
SPEEDUP_FLOOR = 1.6
#: On a single-core host two workers merely time-slice, each paying its
#: own fixed per-process costs (trace decode, numpy warmup) with no
#: second core to recoup them -- ~0.5-0.7x of the solo drain is the
#: honest expectation.  This floor only catches the real pathology,
#: workers serialising on the database lock, which collapses the drain
#: far below it.
SERIAL_SANITY_FLOOR = 0.4
#: Best-of repetitions per drain configuration: tiny smoke grids make a
#: single barrier-to-last-report wall clock noisy.
REPS = 3 if SMOKE else 2
#: Concurrent workers in the scaled drain.
WORKER_COUNT = 2
#: Rows per claim transaction; small enough that both workers get a
#: meaningful share of the ~20-row Figure-2 grid.
CLAIM_BATCH = 4


def fig2_grid(platform):
    base = base_configuration()
    points = [
        base.replace(dcache_sets=sets, dcache_setsize_kb=size)
        for sets, size in itertools.product(CACHE_SET_COUNTS, CACHE_SET_SIZES_KB)
    ]
    return [config for config in points if platform.fits(config)]


def fresh_blastn():
    from repro.workloads import small_workloads, standard_workloads
    source = small_workloads if SMOKE else standard_workloads
    return source()["blastn"]


def campaign_worker_main(path, barrier, queue, worker_index):
    """One drain process: warm up, sync on the barrier, drain, report."""
    workload = fresh_blastn()
    with CampaignGrid(path) as grid:
        worker = CampaignWorker(
            grid, [workload], worker_id=f"bench-{worker_index}",
            batch=CLAIM_BATCH, workers=1)
        try:
            # everything above (trace generation, fingerprinting, pool and
            # store setup) is startup, not drain; the parent starts its
            # clock when every worker reaches this barrier
            barrier.wait(timeout=600)
            report = worker.run()
        finally:
            worker.close()
    queue.put((worker_index, {
        "done": report.done,
        "failed": report.failed,
        "batches": report.batches,
        "claim_conflicts": report.engine["claim_conflicts"],
        "claim_requeues": report.engine["claim_requeues"],
    }))


def drain_with_workers(configs, worker_count, tmp_dir, tag):
    """Register + drain a fresh campaign; returns (drain seconds, reports)."""
    path = os.path.join(tmp_dir, f"campaign_{tag}.sqlite")
    with CampaignGrid(path) as grid:
        registered = grid.register(fresh_blastn(), configs)
        assert registered == len(configs)

    barrier = multiprocessing.Barrier(worker_count + 1)
    queue = multiprocessing.Queue()
    workers = [
        multiprocessing.Process(
            target=campaign_worker_main, args=(path, barrier, queue, index))
        for index in range(worker_count)
    ]
    for proc in workers:
        proc.start()
    barrier.wait(timeout=600)
    start = time.perf_counter()
    reports = dict(queue.get(timeout=600) for _ in workers)
    seconds = time.perf_counter() - start
    for proc in workers:
        proc.join(timeout=60)
        assert proc.exitcode == 0, f"worker exited with {proc.exitcode}"

    with CampaignGrid(path) as grid:
        counts = grid.status()
        # zero stuck rows: the concurrent drain completed everything
        assert counts["done"] == counts["total"] == len(configs), counts
        assert counts["open"] == counts["claimed"] == counts["failed"] == 0
        # claim exclusivity: every row was claimed -- hence evaluated --
        # exactly once across all workers
        multi_claimed = grid._conn.execute(
            "SELECT COUNT(*) FROM experiments WHERE attempts != 1").fetchone()[0]
        assert multi_claimed == 0, f"{multi_claimed} rows claimed != once"
    assert sum(report["done"] for report in reports.values()) == len(configs)
    assert all(report["failed"] == 0 for report in reports.values())
    return path, seconds, reports


def test_campaign_grid_scaling(tmp_path):
    platform = LiquidPlatform()
    configs = fig2_grid(platform)
    workload = fresh_blastn()

    with ParallelEvaluator(LiquidPlatform(), workers=1) as direct:
        reference = direct.measure_sweep(workload, configs)

    with tempfile.TemporaryDirectory(dir=str(tmp_path)) as tmp_dir:
        # interleaved solo/multi pairs: both sides of each repetition see
        # the same background load, and the best of each side is compared
        solo_seconds = multi_seconds = float("inf")
        for rep in range(REPS):
            solo_path, seconds, solo_reports = drain_with_workers(
                configs, 1, tmp_dir, f"solo{rep}")
            solo_seconds = min(solo_seconds, seconds)
            multi_path, seconds, multi_reports = drain_with_workers(
                configs, WORKER_COUNT, tmp_dir, f"multi{rep}")
            multi_seconds = min(multi_seconds, seconds)

        # both campaign databases hold exactly the direct sweep's numbers
        for path in (solo_path, multi_path):
            store = SqliteResultStore(path)
            store.bind_platform(platform.device, platform.timing_parameters)
            for config, expected in zip(configs, reference):
                assert store.get(workload, config) == expected, (
                    "campaign measurement diverges from direct measure_sweep")
            store.close()

    speedup = solo_seconds / multi_seconds
    cpus = os.cpu_count() or 1
    floor_enforced = not SMOKE and cpus >= 2
    conflicts = sum(r["claim_conflicts"] for r in multi_reports.values())
    requeues = sum(r["claim_requeues"] for r in multi_reports.values())

    print(f"\ncampaign grid: {len(configs)} points, {cpus} cpus")
    print(f"  1 worker   {solo_seconds:8.3f}s  "
          f"{len(configs) / solo_seconds:8.1f} configs/sec")
    print(f"  {WORKER_COUNT} workers  {multi_seconds:8.3f}s  "
          f"{len(configs) / multi_seconds:8.1f} configs/sec")
    print(f"  speedup {speedup:.2f}x (floor "
          f"{'enforced' if floor_enforced else 'recorded only'}), "
          f"{conflicts} lock conflicts, {requeues} requeues")

    payload = {
        "smoke": SMOKE,
        "workload": "blastn",
        "points": len(configs),
        "cpus": cpus,
        "workers": WORKER_COUNT,
        "claim_batch": CLAIM_BATCH,
        "one_worker": {
            "seconds": round(solo_seconds, 4),
            "configs_per_sec": round(len(configs) / solo_seconds, 1),
        },
        "n_workers": {
            "seconds": round(multi_seconds, 4),
            "configs_per_sec": round(len(configs) / multi_seconds, 1),
        },
        "speedup": round(speedup, 2),
        "speedup_floor": SPEEDUP_FLOOR,
        "floor_enforced": floor_enforced,
        "claim_conflicts": conflicts,
        "claim_requeues": requeues,
    }
    path = SMOKE_RESULT_PATH if SMOKE else RESULT_PATH
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")

    if floor_enforced:
        assert speedup >= SPEEDUP_FLOOR, (
            f"{WORKER_COUNT} workers drained the grid only {speedup:.2f}x "
            f"faster than one, below the {SPEEDUP_FLOOR}x floor on a "
            f"{cpus}-core host")
    else:
        # single-core (or smoke): the sharding machinery may not make the
        # time-sliced drain pathologically slower than the solo drain
        assert speedup >= SERIAL_SANITY_FLOOR, (
            f"{WORKER_COUNT} time-sliced workers fell to {speedup:.2f}x of "
            f"one worker -- claim contention is serialising the drain")

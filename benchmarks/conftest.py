"""Shared fixtures for the benchmark harness.

The benchmarks reproduce the paper's tables and figures at benchmark scale
(the ``standard_workloads`` sizes).  The platform and the expensive
campaign results are session scoped so that each figure pays only for the
work it adds on top of the previous ones, exactly like the real
measurement flow where bitstreams and profiles are cached.

Setting ``REPRO_BENCH_SMOKE=1`` swaps in the scaled-down test workloads:
the CI smoke job uses this to exercise the measurement hot path end to
end in seconds; benchmarks guard assertions that only hold at benchmark
scale behind the ``SMOKE`` flag.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import runtime_optimization
from repro.platform import LiquidPlatform
from repro.workloads import small_workloads, standard_workloads

#: True when the reduced-scale CI smoke mode is active.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


@pytest.fixture(scope="session")
def platform():
    return LiquidPlatform()


@pytest.fixture(scope="session")
def workloads():
    return small_workloads() if SMOKE else standard_workloads()


@pytest.fixture(scope="session")
def figure5(platform, workloads):
    """The runtime-optimisation study, reused by Figures 5/6/7 and the ablations."""
    return runtime_optimization(platform, workloads)


def emit(result) -> None:
    """Print an experiment's tables (visible with ``pytest -s`` or on failure)."""
    print()
    print(result.render())

"""Shared fixtures for the benchmark harness.

The benchmarks reproduce the paper's tables and figures at benchmark scale
(the ``standard_workloads`` sizes).  The platform and the expensive
campaign results are session scoped so that each figure pays only for the
work it adds on top of the previous ones, exactly like the real
measurement flow where bitstreams and profiles are cached.
"""

from __future__ import annotations

import pytest

from repro.analysis import runtime_optimization
from repro.platform import LiquidPlatform
from repro.workloads import standard_workloads


@pytest.fixture(scope="session")
def platform():
    return LiquidPlatform()


@pytest.fixture(scope="session")
def workloads():
    return standard_workloads()


@pytest.fixture(scope="session")
def figure5(platform, workloads):
    """The runtime-optimisation study, reused by Figures 5/6/7 and the ablations."""
    return runtime_optimization(platform, workloads)


def emit(result) -> None:
    """Print an experiment's tables (visible with ``pytest -s`` or on failure)."""
    print()
    print(result.render())

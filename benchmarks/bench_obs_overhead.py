"""Tracing-overhead benchmark: always-on spans must stay nearly free.

The observability layer's contract is that instrumentation is cheap
enough to leave compiled into every hot path: with tracing *disabled*
(the default) each span call site costs one attribute check, and with
tracing *enabled* a span records two clock reads and one small record
append -- at batch/group granularity, never per cache access.

This benchmark measures the Figure-2 BLASTN dcache sweep through a fresh
single-process :class:`~repro.engine.parallel.ParallelEvaluator` with
tracing off and with tracing on, in interleaved pairs (both sides of a
pair see the same background load), takes each side's best-of-``REPS``
per pair and the median pair ratio, and asserts the traced sweep stays
within ``OVERHEAD_CEILING`` of the untraced one.

Results land in ``benchmarks/BENCH_obs.json`` (smoke runs write the
sibling ``BENCH_obs.smoke.json``), which ``benchmarks/trajectory.py``
folds into the committed performance trajectory.
"""

from __future__ import annotations

import itertools
import json
import pathlib
import statistics
import time

from conftest import SMOKE

from repro.config import (
    CACHE_SET_COUNTS,
    CACHE_SET_SIZES_KB,
    base_configuration,
)
from repro.engine import ParallelEvaluator
from repro.obs import disable_tracing, enable_tracing, get_tracer
from repro.platform import LiquidPlatform
from repro.workloads import small_workloads, standard_workloads

#: Committed full-scale result; smoke runs write the sibling file so CI
#: never clobbers the tracked artifact.
RESULT_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_obs.json"
SMOKE_RESULT_PATH = RESULT_PATH.with_name("BENCH_obs.smoke.json")
#: The acceptance ceiling on traced/untraced wall-clock (CI gate).
OVERHEAD_CEILING = 1.05
#: Interleaved traced/untraced pairs; the asserted ratio is their median,
#: which shrugs off one-off scheduler hiccups on shared CI runners.
PAIRS = 7 if SMOKE else 5
#: Best-of repetitions inside each side of a pair.
REPS = 3


def fig2_grid(platform):
    base = base_configuration()
    configs = [
        base.replace(dcache_sets=sets, dcache_setsize_kb=size)
        for sets, size in itertools.product(CACHE_SET_COUNTS, CACHE_SET_SIZES_KB)
    ]
    return [config for config in configs if platform.fits(config)]


def sweep_seconds(workload, configs) -> float:
    """Best-of-``REPS`` wall-clock of one cold single-process sweep."""
    best = float("inf")
    for _ in range(REPS):
        with ParallelEvaluator(LiquidPlatform(), workers=1) as evaluator:
            start = time.perf_counter()
            evaluator.measure_sweep(workload, configs)
            best = min(best, time.perf_counter() - start)
    return best


def test_tracing_overhead():
    workload = (small_workloads() if SMOKE else standard_workloads())["blastn"]
    platform = LiquidPlatform()
    configs = fig2_grid(platform)
    workload.trace()  # generate once, outside every timed region

    disable_tracing()
    ratios = []
    untraced_best = traced_best = float("inf")
    span_count = 0
    try:
        for _ in range(PAIRS):
            untraced = sweep_seconds(workload, configs)
            enable_tracing()
            traced = sweep_seconds(workload, configs)
            span_count = max(span_count, len(get_tracer().records))
            disable_tracing()
            untraced_best = min(untraced_best, untraced)
            traced_best = min(traced_best, traced)
            ratios.append(traced / untraced)
    finally:
        disable_tracing()
    ratio = statistics.median(ratios)

    print(f"\ntracing overhead: {len(configs)} points, {PAIRS} pairs")
    print(f"  untraced  {untraced_best:8.4f}s  "
          f"{len(configs) / untraced_best:8.1f} configs/sec")
    print(f"  traced    {traced_best:8.4f}s  "
          f"{len(configs) / traced_best:8.1f} configs/sec  "
          f"({span_count} spans)")
    print(f"  median ratio {ratio:.3f} (ceiling {OVERHEAD_CEILING})")

    payload = {
        "smoke": SMOKE,
        "workload": "blastn",
        "points": len(configs),
        "pairs": PAIRS,
        "untraced": {
            "seconds": round(untraced_best, 4),
            "configs_per_sec": round(len(configs) / untraced_best, 1),
        },
        "traced": {
            "seconds": round(traced_best, 4),
            "configs_per_sec": round(len(configs) / traced_best, 1),
        },
        "overhead_ratio": round(ratio, 3),
        "overhead_ceiling": OVERHEAD_CEILING,
        "spans_per_sweep": span_count,
    }
    path = SMOKE_RESULT_PATH if SMOKE else RESULT_PATH
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")

    assert span_count > 0, "traced sweep recorded no spans"
    assert ratio <= OVERHEAD_CEILING, (
        f"tracing made the sweep {ratio:.3f}x slower "
        f"(ceiling {OVERHEAD_CEILING}x): spans are no longer cheap enough "
        "to leave always-on")

"""Scalability ablation: the campaign is linear in parameter values (Section 3).

The paper's feasibility argument is that measuring one perturbation at a
time needs ~52 builds instead of ~3.6 billion.  This benchmark times a full
campaign on a fresh platform and checks the effort accounting.
"""

from conftest import emit

from repro.analysis import scalability_study
from repro.platform import LiquidPlatform


def test_scalability_of_the_campaign(benchmark, workloads):
    result = benchmark.pedantic(
        scalability_study, args=(LiquidPlatform(), workloads["frag"]),
        rounds=1, iterations=1)
    emit(result)
    assert result.data["builds"] == result.data["variables"] + 1   # base + one per variable
    assert result.data["exhaustive"] / result.data["builds"] > 10**6

"""Scalability ablation: the campaign is linear in parameter values (Section 3).

The paper's feasibility argument is that measuring one perturbation at a
time needs ~52 builds instead of ~3.6 billion.  This benchmark times a full
campaign on a fresh platform and checks the effort accounting, then runs
the same campaign through the evaluation engine (batched, deduplicated,
>1 worker) and records both wall-clocks and the engine statistics so the
scalability report shows how the measurement layer itself scales.
"""

from conftest import emit

from repro.analysis import scalability_study
from repro.engine import ParallelEvaluator
from repro.platform import LiquidPlatform


def test_scalability_of_the_campaign(benchmark, workloads):
    result = benchmark.pedantic(
        scalability_study, args=(LiquidPlatform(), workloads["frag"]),
        rounds=1, iterations=1)
    emit(result)
    assert result.data["builds"] == result.data["variables"] + 1   # base + one per variable
    assert result.data["exhaustive"] / result.data["builds"] > 10**6
    # per-configuration throughput makes trajectories comparable across machines
    assert result.data["configs_per_second"] > 0
    print(f"\nsequential campaign throughput: "
          f"{result.data['configs_per_second']:.1f} configs/sec "
          f"({result.data['runs']} configs in {result.data['seconds']:.2f}s)")


def test_scalability_of_the_campaign_through_the_engine(benchmark, workloads):
    """Same campaign, batched through the engine with a 2-process worker pool."""
    with ParallelEvaluator(LiquidPlatform(), workers=2) as engine:
        result = benchmark.pedantic(
            scalability_study, args=(engine, workloads["frag"]), rounds=1, iterations=1)
    emit(result)

    sequential = scalability_study(LiquidPlatform(), workloads["frag"])
    print(f"\ncampaign wall-clock: sequential {sequential.data['seconds']:.2f}s "
          f"({sequential.data['configs_per_second']:.1f} configs/sec), "
          f"engine ({engine.workers} workers) {result.data['seconds']:.2f}s "
          f"({result.data['configs_per_second']:.1f} configs/sec)")
    assert result.data["configs_per_second"] > 0

    # identical effort accounting: batching changes scheduling, not work
    assert result.data["builds"] == sequential.data["builds"]
    assert result.data["runs"] == sequential.data["runs"]
    # the engine statistics are part of the recorded scalability report
    engine_stats = result.data["engine"]
    assert engine_stats["workers"] == 2
    assert engine_stats["cache_simulations"] > 0
    assert engine_stats["wall_seconds"] > 0

"""Headline claims of the paper lined up against the reproduction."""

from conftest import emit

from repro.analysis import (
    dcache_study,
    headline_comparison,
    resource_optimization,
)


def test_headline_claims(benchmark, platform, workloads, figure5):
    figure7 = resource_optimization(platform, workloads, models=figure5.data["models"])
    dcache = dcache_study(platform, workloads)
    result = benchmark.pedantic(
        headline_comparison, args=(figure5, figure7, dcache), rounds=1, iterations=1)
    emit(result)
    checks = result.data["checks"]
    assert len(checks) == 5
    assert result.data["all_hold"], [c.claim for c in checks if not c.holds]

"""Engine equivalence suite: batched/parallel/store-backed == sequential.

The hard guarantee of the evaluation engine is that *how* a measurement
is obtained -- one at a time, batched, deduplicated, fanned out over
worker processes, or loaded back from a persistent store -- never changes
*what* is measured.  Every test here compares engine output against the
sequential :class:`LiquidPlatform` reference bit-for-bit (dataclass
equality covers cycle counts, cache hit/miss statistics including the
seeded RANDOM replacement, resource reports and the full cycle
breakdown), across all four paper workloads.
"""

import ast
import gc
import pathlib

import pytest

from repro.config import Replacement, base_configuration
from repro.core import MicroarchTuner, OneFactorCampaign, RUNTIME_OPTIMIZATION
from repro.engine import (
    EngineStats,
    EvaluationBackend,
    ParallelEvaluator,
    ResultStore,
    SqliteResultStore,
    open_store,
)
from repro.engine.store import workload_fingerprint
from repro.platform import LiquidPlatform
from repro.workloads import ArithWorkload


def variant_configs(base):
    """A batch exercising every cache-simulation path, duplicates included."""
    return [
        base,
        base.replace(dcache_sets=1, dcache_setsize_kb=8),            # vectorized path
        base.replace(dcache_sets=2, dcache_replacement=Replacement.RANDOM),
        base.replace(dcache_sets=2, dcache_replacement=Replacement.LRR),
        base.replace(dcache_sets=4, dcache_replacement=Replacement.LRU),
        base.replace(icache_setsize_kb=1, dcache_setsize_kb=1),
        base,                                                        # duplicate of [0]
        base.replace(multiplier="m32x32"),                           # same caches as base
    ]


class TestProtocol:
    def test_platform_and_engine_satisfy_backend_protocol(self):
        assert isinstance(LiquidPlatform(), EvaluationBackend)
        assert isinstance(ParallelEvaluator(), EvaluationBackend)

    def test_engine_delegates_single_shot_api(self, base_config):
        engine = ParallelEvaluator(workers=1)
        assert engine.fits(base_config)
        assert engine.build(base_config).luts == LiquidPlatform().build(base_config).luts
        assert engine.effort() == {"builds": 1, "runs": 0}


class TestBatching:
    def test_measure_many_aligns_and_dedups(self, base_config, arith_small):
        platform = LiquidPlatform()
        configs = variant_configs(base_config)
        results = platform.measure_many(arith_small, configs)
        assert len(results) == len(configs)
        assert results[0] == results[6]                 # duplicate collapsed
        assert platform.effort()["runs"] == len(configs) - 1
        loop = LiquidPlatform()
        assert results == [loop.measure(arith_small, c) for c in configs]

    def test_fits_shares_synthesis_with_build(self, base_config):
        platform = LiquidPlatform()
        calls = []
        original = platform.synthesis.synthesize
        platform.synthesis.synthesize = lambda cfg: (calls.append(1), original(cfg))[1]
        assert platform.fits(base_config)
        platform.build(base_config)
        platform.fits(base_config)
        assert len(calls) == 1


class TestParallelEquivalence:
    def test_parallel_batch_identical_to_sequential(self, base_config, small_workload_map):
        configs = variant_configs(base_config)
        # arena_threshold=0 pins the adaptive cost model to "always publish"
        # so this test keeps exercising the pooled path on tiny batches
        engine = ParallelEvaluator(workers=2, arena_threshold=0)
        for name, workload in small_workload_map.items():
            sequential = LiquidPlatform().measure_many(workload, configs)
            parallel = engine.measure_many(workload, configs)
            assert parallel == sequential, f"engine diverged on workload {name}"
        assert engine.stats.parallel_simulations > 0
        assert engine.stats.dedup_hits == len(small_workload_map)

    def test_multi_workload_batch_identical_to_sequential(self, base_config,
                                                          small_workload_map):
        configs = variant_configs(base_config)
        engine = ParallelEvaluator(workers=2)
        combined = engine.measure_many_multi(
            {w: configs for w in small_workload_map.values()})
        for name, workload in small_workload_map.items():
            sequential = LiquidPlatform().measure_many(workload, configs)
            assert combined[workload] == sequential

    def test_same_named_workloads_coexist_in_one_batch(self, base_config):
        small, large = ArithWorkload(iterations=60), ArithWorkload(iterations=140)
        engine = ParallelEvaluator(workers=1)
        combined = engine.measure_many_multi({small: [base_config], large: [base_config]})
        assert combined[small][0] == LiquidPlatform().measure(small, base_config)
        assert combined[large][0] == LiquidPlatform().measure(large, base_config)
        assert combined[small][0].cycles != combined[large][0].cycles


class TestStoreEquivalence:
    def test_store_round_trip_identical(self, tmp_path, base_config, small_workload_map):
        path = str(tmp_path / "results.jsonl")
        configs = variant_configs(base_config)
        writer = ParallelEvaluator(workers=1, store=ResultStore(path))
        first = {name: writer.measure_many(w, configs)
                 for name, w in small_workload_map.items()}
        assert writer.stats.store_hits == 0

        reader = ParallelEvaluator(workers=1, store=ResultStore(path))
        for name, workload in small_workload_map.items():
            replayed = reader.measure_many(workload, configs)
            assert replayed == first[name]
            sequential = LiquidPlatform().measure_many(workload, configs)
            assert replayed == sequential
        # everything came from the store: no profiling runs at all
        assert reader.platform.effort()["runs"] == 0
        assert reader.stats.store_hits == len(small_workload_map) * 7  # unique configs

    def test_store_survives_truncated_and_foreign_lines(self, tmp_path, base_config,
                                                        arith_small):
        """A run killed mid-append must not make the store unloadable."""
        path = str(tmp_path / "results.jsonl")
        writer = ParallelEvaluator(workers=1, store=ResultStore(path))
        expected = writer.measure(arith_small, base_config)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"truncated": \n')          # killed mid-append
            handle.write('{"context": "other"}\n')    # different platform context
        reloaded = ResultStore(path)
        assert len(reloaded) == 1
        assert reloaded.get(arith_small, base_config) == expected

    def test_store_never_aliases_workloads_of_different_scale(self, tmp_path, base_config):
        path = str(tmp_path / "results.jsonl")
        small, large = ArithWorkload(iterations=50), ArithWorkload(iterations=120)
        assert workload_fingerprint(small) != workload_fingerprint(large)
        ParallelEvaluator(workers=1, store=ResultStore(path)).measure(small, base_config)
        reader = ParallelEvaluator(workers=1, store=ResultStore(path))
        measurement = reader.measure(large, base_config)
        assert reader.stats.store_hits == 0
        assert measurement == LiquidPlatform().measure(large, base_config)


class TestSqliteStore:
    def test_open_store_selects_backend_by_extension(self, tmp_path):
        assert isinstance(open_store(str(tmp_path / "a.sqlite")), SqliteResultStore)
        assert isinstance(open_store(str(tmp_path / "a.db")), SqliteResultStore)
        assert isinstance(open_store(str(tmp_path / "a.jsonl")), ResultStore)
        assert isinstance(open_store(None), ResultStore)  # in-memory default

    def test_round_trip_identical(self, tmp_path, base_config, arith_small):
        path = str(tmp_path / "results.sqlite")
        store = SqliteResultStore(path)
        expected = ParallelEvaluator(workers=1, store=store).measure(
            arith_small, base_config)
        assert len(store) == 1
        reloaded = SqliteResultStore(path)
        replayed = reloaded.get(arith_small, base_config)
        assert replayed == expected
        assert replayed == LiquidPlatform().measure(arith_small, base_config)

    def test_resume_answers_from_store_without_runs(self, tmp_path, base_config,
                                                    small_workload_map):
        path = str(tmp_path / "results.db")
        configs = variant_configs(base_config)
        writer = ParallelEvaluator(workers=1, store=open_store(path))
        first = {name: writer.measure_many(w, configs)
                 for name, w in small_workload_map.items()}
        assert writer.stats.store_hits == 0

        reader = ParallelEvaluator(workers=1, store=open_store(path))
        for name, workload in small_workload_map.items():
            assert reader.measure_many(workload, configs) == first[name]
        assert reader.platform.effort()["runs"] == 0
        assert reader.stats.store_hits == len(small_workload_map) * 7  # unique configs

    def test_put_deduplicates(self, tmp_path, base_config, arith_small):
        store = SqliteResultStore(str(tmp_path / "results.sqlite"))
        measurement = LiquidPlatform().measure(arith_small, base_config)
        assert store.put(arith_small, measurement) is True
        assert store.put(arith_small, measurement) is False
        assert len(store) == 1

    def test_context_filter_follows_platform_calibration(self, tmp_path, base_config,
                                                         arith_small):
        from repro.microarch.timing import TimingParameters

        path = str(tmp_path / "results.sqlite")
        slow = LiquidPlatform(timing_parameters=TimingParameters(memory_latency=40))
        writer = ParallelEvaluator(slow, workers=1, store=SqliteResultStore(path))
        slow_measurement = writer.measure(arith_small, base_config)

        default_reader = ParallelEvaluator(workers=1, store=SqliteResultStore(path))
        default_measurement = default_reader.measure(arith_small, base_config)
        assert default_reader.stats.store_hits == 0
        assert default_measurement.cycles < slow_measurement.cycles

        slow_reader = ParallelEvaluator(
            LiquidPlatform(timing_parameters=TimingParameters(memory_latency=40)),
            workers=1, store=SqliteResultStore(path))
        assert slow_reader.measure(arith_small, base_config) == slow_measurement
        assert slow_reader.stats.store_hits == 1


class TestCampaignAndTuner:
    def test_campaign_batch_identical_to_seed_sequential_loop(self, arith_small):
        """The batched campaign must reproduce the seed's measure-in-a-loop results."""
        reference_platform = LiquidPlatform()
        campaign = OneFactorCampaign(reference_platform)
        model_sequential = campaign.run(arith_small, parameters=(
            "dcache_sets", "dcache_setsize_kb", "dcache_replacement"))

        engine = ParallelEvaluator(workers=2)
        batched = OneFactorCampaign(engine).run(arith_small, parameters=(
            "dcache_sets", "dcache_setsize_kb", "dcache_replacement"))

        assert batched.base == model_sequential.base
        assert batched.deltas == model_sequential.deltas
        assert batched.measurements == model_sequential.measurements

    def test_run_many_matches_individual_runs(self, small_workload_map):
        params = ("dcache_sets", "dcache_setsize_kb")
        individual = {
            name: OneFactorCampaign(LiquidPlatform()).run(w, parameters=params)
            for name, w in small_workload_map.items()}
        engine = ParallelEvaluator(workers=2)
        combined = OneFactorCampaign(engine).run_many(
            small_workload_map.values(), parameters=params)
        assert set(combined) == set(individual)
        for name in individual:
            assert combined[name].base == individual[name].base
            assert combined[name].deltas == individual[name].deltas

    def test_tuner_on_engine_matches_tuner_on_platform(self, arith_small):
        params = ("dcache_sets", "dcache_setsize_kb")
        sequential = MicroarchTuner(LiquidPlatform()).tune(
            arith_small, RUNTIME_OPTIMIZATION, parameters=params)
        engine = MicroarchTuner(ParallelEvaluator(workers=2)).tune(
            arith_small, RUNTIME_OPTIMIZATION, parameters=params)
        assert engine.configuration == sequential.configuration
        assert engine.actual == sequential.actual
        assert engine.predicted == sequential.predicted


class TestStaleness:
    def test_store_context_follows_platform_calibration(self, tmp_path, base_config,
                                                        arith_small):
        """A store must never serve measurements from a differently calibrated platform."""
        from repro.microarch.timing import TimingParameters

        path = str(tmp_path / "results.jsonl")
        slow = LiquidPlatform(timing_parameters=TimingParameters(memory_latency=40))
        writer = ParallelEvaluator(slow, workers=1, store=ResultStore(path))
        slow_measurement = writer.measure(arith_small, base_config)

        default_reader = ParallelEvaluator(workers=1, store=ResultStore(path))
        default_measurement = default_reader.measure(arith_small, base_config)
        assert default_reader.stats.store_hits == 0
        assert default_measurement.cycles < slow_measurement.cycles

        slow_reader = ParallelEvaluator(
            LiquidPlatform(timing_parameters=TimingParameters(memory_latency=40)),
            workers=1, store=ResultStore(path))
        assert slow_reader.measure(arith_small, base_config) == slow_measurement
        assert slow_reader.stats.store_hits == 1

    def test_worker_pool_tracks_trace_changes_of_same_named_workloads(self, base_config):
        """Re-measuring under a reused pool must not replay a stale trace."""
        engine = ParallelEvaluator(workers=2)
        first = ArithWorkload(iterations=60)
        engine.measure_many(first, [base_config, base_config.replace(dcache_sets=2)])

        second = ArithWorkload(iterations=140)  # same name, different trace
        batch = [base_config,                   # overlaps the first workload's configs
                 base_config.replace(dcache_sets=4),
                 base_config.replace(dcache_setsize_kb=16)]
        through_pool = engine.measure_many(second, batch)
        sequential = LiquidPlatform().measure_many(second, batch)
        assert through_pool == sequential
        engine.close()


class TestEvaluatorHygiene:
    """Worker pools are shut down deterministically, never left to __del__."""

    def test_context_manager_shuts_down_the_pool(self, base_config, arith_small):
        configs = [base_config, base_config.replace(dcache_sets=2),
                   base_config.replace(dcache_setsize_kb=8)]
        with ParallelEvaluator(workers=2) as engine:
            engine.measure_many(arith_small, configs)
            pool = engine._pool
        assert engine._pool is None, "exiting the context must shut the pool down"
        if pool is not None:  # pool may be absent where process spawning is blocked
            assert pool._shutdown_thread or pool._processes is not None

    def test_close_is_idempotent_and_evaluator_stays_usable(self, base_config,
                                                            arith_small):
        engine = ParallelEvaluator(workers=2)
        engine.close()
        engine.close()
        # a closed evaluator restarts lazily instead of failing
        measurement = engine.measure(arith_small, base_config)
        engine.close()
        assert measurement == LiquidPlatform().measure(arith_small, base_config)

    def test_gc_finalizer_never_joins_workers(self):
        """A collected evaluator must not block on pool shutdown.

        ``shutdown(wait=True)`` from ``__del__`` can hang interpreter
        teardown on a wedged worker; the finalizer must always pass
        ``wait=False`` (explicit ``close()`` keeps waiting, below).
        """

        class RecordingPool:
            calls = []  # survives the evaluator's collection

            def shutdown(self, wait=True):
                RecordingPool.calls.append(wait)

        RecordingPool.calls = []
        engine = ParallelEvaluator(workers=2)
        engine._pool = RecordingPool()
        del engine
        gc.collect()
        assert RecordingPool.calls == [False], \
            "the finalizer joined (or never shut down) the worker pool"

    def test_explicit_close_still_joins_workers(self):
        class RecordingPool:
            def __init__(self):
                self.calls = []

            def shutdown(self, wait=True):
                self.calls.append(wait)

        engine = ParallelEvaluator(workers=2)
        pool = RecordingPool()
        engine._pool = pool
        engine.close()
        assert pool.calls == [True]
        engine._pool = pool
        engine.close(wait=False)
        assert pool.calls == [True, False]

    def test_scripts_and_benchmarks_context_manage_every_evaluator(self):
        """Every ParallelEvaluator in scripts/ and benchmarks/ is a `with` item.

        Relying on ``__del__`` keeps worker processes alive until
        interpreter teardown; this source-level guard fails when a new
        script or benchmark constructs an evaluator outside a ``with``
        statement (or the ``managed_backend`` helper, which itself uses
        one).
        """
        root = pathlib.Path(__file__).resolve().parent.parent
        offenders = []
        for directory in ("scripts", "benchmarks"):
            for path in sorted((root / directory).glob("*.py")):
                tree = ast.parse(path.read_text(), filename=str(path))
                managed = set()
                for node in ast.walk(tree):
                    if isinstance(node, (ast.With, ast.AsyncWith)):
                        for item in node.items:
                            managed.add(id(item.context_expr))
                for node in ast.walk(tree):
                    if (isinstance(node, ast.Call)
                            and isinstance(node.func, ast.Name)
                            and node.func.id == "ParallelEvaluator"
                            and id(node) not in managed):
                        offenders.append(f"{path.name}:{node.lineno}")
        assert not offenders, (
            "ParallelEvaluator constructed outside a context manager "
            f"(pool shutdown would rely on __del__): {offenders}")


class TestEngineStats:
    def test_stats_accounting(self, base_config, arith_small):
        engine = ParallelEvaluator(workers=2)
        configs = [base_config, base_config, base_config.replace(dcache_sets=2)]
        engine.measure_many(arith_small, configs)
        stats = engine.stats
        assert isinstance(stats, EngineStats)
        assert stats.requested == 3
        assert stats.dedup_hits == 1
        assert stats.batches == 1
        assert stats.cache_simulations == 3  # icache + 2 distinct dcache geometries
        # icache and the two same-linesize dcache geometries share one decode each
        assert stats.cache_groups == 2
        assert stats.wall_seconds > 0
        assert "dedup_hits" in stats.as_dict()
        assert "cache_groups" in stats.as_dict()
        assert "engine:" in stats.summary()

    def test_stage_seconds_cover_the_pipeline(self, base_config, arith_small):
        engine = ParallelEvaluator(workers=1)
        engine.measure_many(arith_small, [base_config])
        stages = engine.stats.stage_report()
        for stage in ("trace_generation", "cache_simulation", "model_build"):
            assert stage in stages
            assert stages[stage] >= 0.0
        tuner = MicroarchTuner(engine)
        tuner.tune(arith_small, RUNTIME_OPTIMIZATION,
                   parameters=("dcache_sets",), verify=False)
        assert "solve" in engine.stats.stage_report()

    def test_second_batch_reuses_memoised_results(self, base_config, arith_small):
        engine = ParallelEvaluator(workers=1)
        engine.measure_many(arith_small, [base_config])
        before = engine.stats.cache_simulations
        engine.measure_many(arith_small, [base_config])
        assert engine.stats.cache_simulations == before

"""Golden-number regression: pinned cache statistics per workload.

The property suites (``test_cache_vectorized.py``, ``test_warm_replay.py``)
prove the kernel equivalent to the scalar oracle, but they are slow and
randomized.  This suite pins the *absolute* hit/miss numbers of a small
fixed configuration grid per workload in a committed JSON fixture, so a
kernel refactor that silently changes results -- e.g. by perturbing the
seeded RANDOM victim stream -- fails fast and points at the exact
(workload, cache, configuration) cell that moved.

To regenerate the fixture after an *intentional* behaviour change::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_numbers.py

and commit the diff together with the change that explains it.
"""

import json
import os
import pathlib

import pytest

from repro.config import Replacement
from repro.microarch.cache import Cache, CacheConfig

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "cache_golden.json"

#: The pinned configuration grid: every replacement policy, the
#: direct-mapped corner, odd associativity, and both line sizes.
GOLDEN_CONFIGS = [
    CacheConfig(ways=1, setsize_kb=1, linesize_words=4, replacement=Replacement.RANDOM),
    CacheConfig(ways=1, setsize_kb=4, linesize_words=8, replacement=Replacement.LRU),
    CacheConfig(ways=2, setsize_kb=1, linesize_words=8, replacement=Replacement.LRR),
    CacheConfig(ways=2, setsize_kb=2, linesize_words=4, replacement=Replacement.RANDOM),
    CacheConfig(ways=3, setsize_kb=1, linesize_words=4, replacement=Replacement.LRU),
    CacheConfig(ways=4, setsize_kb=2, linesize_words=8, replacement=Replacement.RANDOM),
]


def config_label(config: CacheConfig) -> str:
    return (f"{config.ways}w-{config.setsize_kb}kb-"
            f"{config.linesize_words}words-{config.replacement}")


def stats_dict(stats) -> dict:
    return {
        "accesses": stats.accesses,
        "read_accesses": stats.read_accesses,
        "write_accesses": stats.write_accesses,
        "read_misses": stats.read_misses,
        "write_misses": stats.write_misses,
    }


def compute_golden(workloads) -> dict:
    golden = {}
    for name, workload in sorted(workloads.items()):
        trace = workload.trace()
        per_workload = {}
        for config in GOLDEN_CONFIGS:
            icache = Cache(config).simulate(trace.pcs)
            dcache = Cache(config).simulate(trace.data_addresses, trace.data_is_write)
            per_workload[config_label(config)] = {
                "icache": stats_dict(icache),
                "dcache": stats_dict(dcache),
            }
        golden[name] = {
            "instructions": trace.instruction_count,
            "configs": per_workload,
        }
    return golden


def test_cache_statistics_match_committed_golden_numbers(small_workload_map):
    actual = compute_golden(small_workload_map)
    if os.environ.get("REPRO_UPDATE_GOLDEN") == "1":
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(actual, indent=1, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {GOLDEN_PATH}; commit the diff")
    assert GOLDEN_PATH.exists(), (
        f"missing golden fixture {GOLDEN_PATH}; regenerate with "
        "REPRO_UPDATE_GOLDEN=1")
    expected = json.loads(GOLDEN_PATH.read_text())

    assert sorted(actual) == sorted(expected), "workload set changed"
    for name in expected:
        assert actual[name]["instructions"] == expected[name]["instructions"], (
            f"{name}: trace length changed -- workload generation is no longer "
            "deterministic")
        for label, caches in expected[name]["configs"].items():
            for kind in ("icache", "dcache"):
                assert actual[name]["configs"][label][kind] == caches[kind], (
                    f"golden mismatch: {name} / {label} / {kind}")


def test_golden_grid_covers_the_policy_and_associativity_space():
    """The pinned grid must keep covering every policy and 1..4 ways."""
    policies = {c.replacement for c in GOLDEN_CONFIGS}
    assert policies == set(Replacement.ALL)
    assert {c.ways for c in GOLDEN_CONFIGS} == {1, 2, 3, 4}
    assert {c.linesize_words for c in GOLDEN_CONFIGS} == {4, 8}

"""Tests for the FPGA device model and the analytic synthesis cost model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import base_configuration
from repro.errors import ResourceError
from repro.fpga import CacheGeometry, FpgaDevice, ResourceReport, SynthesisModel, XCV2000E


@pytest.fixture(scope="module")
def model():
    return SynthesisModel()


class TestDevice:
    def test_xcv2000e_capacities(self):
        assert XCV2000E.luts == 38_400
        assert XCV2000E.brams == 160

    def test_percentages(self):
        assert XCV2000E.lut_percent(19_200) == pytest.approx(50.0)
        assert XCV2000E.bram_percent(80) == pytest.approx(50.0)

    def test_fits_and_headroom(self):
        assert XCV2000E.fits(38_400, 160)
        assert not XCV2000E.fits(38_401, 0)
        assert XCV2000E.headroom(14_992, 82) == (23_408, 78)

    def test_invalid_device(self):
        with pytest.raises(ResourceError):
            FpgaDevice("broken", 0, 10)


class TestResourceReport:
    def test_chip_cost_is_sum_of_percentages(self):
        report = ResourceReport(XCV2000E, 19_200, 80)
        assert report.chip_cost == pytest.approx(100.0)

    def test_negative_counts_rejected(self):
        with pytest.raises(ResourceError):
            ResourceReport(XCV2000E, -1, 0)

    def test_require_fits(self):
        too_big = ResourceReport(XCV2000E, 100_000, 10)
        with pytest.raises(ResourceError):
            too_big.require_fits()
        ok = ResourceReport(XCV2000E, 10, 10)
        assert ok.require_fits() is ok

    def test_delta_percent(self):
        base = ResourceReport(XCV2000E, 14_992, 82)
        other = ResourceReport(XCV2000E, 14_992, 145)
        delta = other.delta_percent(base)
        assert delta["lut"] == pytest.approx(0.0)
        assert delta["bram"] == pytest.approx(100.0 * 63 / 160)


class TestCalibration:
    """The model is calibrated against the paper's reported utilisations."""

    def test_base_configuration_matches_paper(self, model, base_config):
        report = model.synthesize(base_config)
        assert report.luts == 14_992           # paper Section 2.4
        assert report.brams == 82              # paper Section 2.4
        assert round(report.lut_percent) == 39
        assert round(report.bram_percent) == 51

    @pytest.mark.parametrize("sets,size,expected_bram_percent", [
        (1, 1, 47), (1, 2, 48), (1, 4, 51), (1, 8, 56), (1, 16, 68), (1, 32, 90),
        (2, 16, 90), (3, 8, 79), (4, 8, 90),
    ])
    def test_figure2_bram_column(self, model, base_config, sets, size, expected_bram_percent):
        """The dcache sweep BRAM percentages match the paper's Figure 2 within 1 point."""
        report = model.synthesize(
            base_config.replace(dcache_sets=sets, dcache_setsize_kb=size))
        assert report.bram_percent == pytest.approx(expected_bram_percent, abs=1.0)

    def test_divider_removal_saves_about_two_points_of_luts(self, model, base_config):
        base = model.synthesize(base_config)
        no_div = model.synthesize(base_config.replace(divider="none"))
        saving = base.lut_percent - no_div.lut_percent
        assert 1.0 <= saving <= 3.0            # paper Figure 6: 39% -> 37%

    def test_m32x32_multiplier_costs_about_one_point(self, model, base_config):
        base = model.synthesize(base_config)
        big = model.synthesize(base_config.replace(multiplier="m32x32"))
        assert 0.5 <= big.lut_percent - base.lut_percent <= 2.0

    def test_breakdowns_sum_to_totals(self, model, base_config):
        report = model.synthesize(base_config.replace(dcache_sets=3, multiplier="m32x16"))
        assert sum(report.lut_breakdown.values()) == report.luts
        assert sum(report.bram_breakdown.values()) == report.brams

    def test_64kb_would_not_fit_with_associativity(self, model, base_config):
        # the paper excludes 64 KB because it exceeds the available BRAM;
        # our domain omits it, but the model shows the same wall at 4x32 KB + big icache
        config = base_config.replace(dcache_sets=4, dcache_setsize_kb=32,
                                     icache_sets=4, icache_setsize_kb=32)
        assert not model.fits(config)


class TestMonotonicity:
    def test_bram_monotone_in_cache_size(self, model, base_config):
        previous = -1
        for size in (1, 2, 4, 8, 16, 32):
            brams = model.synthesize(base_config.replace(dcache_setsize_kb=size)).brams
            assert brams > previous
            previous = brams

    def test_bram_monotone_in_associativity(self, model, base_config):
        previous = -1
        for sets in (1, 2, 3, 4):
            brams = model.synthesize(base_config.replace(dcache_sets=sets)).brams
            assert brams >= previous
            previous = brams

    def test_luts_monotone_in_multiplier_size(self, model, base_config):
        order = ["none", "iterative", "m16x16", "m16x16_pipe", "m32x8", "m32x16", "m32x32"]
        previous = -1
        for multiplier in order:
            luts = model.synthesize(base_config.replace(multiplier=multiplier)).luts
            assert luts > previous
            previous = luts

    def test_register_windows_increase_bram_and_luts(self, model, base_config):
        small = model.synthesize(base_config)
        big = model.synthesize(base_config.replace(register_windows=32))
        assert big.brams > small.brams
        assert big.luts > small.luts

    @settings(max_examples=40, deadline=None)
    @given(sets=st.sampled_from([1, 2, 3, 4]), size=st.sampled_from([1, 2, 4, 8, 16, 32]),
           line=st.sampled_from([4, 8]))
    def test_cache_brams_cover_capacity(self, model, sets, size, line):
        """The BRAM count of a cache is always at least its data capacity."""
        geometry = CacheGeometry(sets, size, line)
        assert model.cache_brams(geometry) * 512 >= geometry.total_bytes

    def test_cache_geometry_properties(self):
        geometry = CacheGeometry(2, 4, 8)
        assert geometry.total_bytes == 8192
        assert geometry.linesize_bytes == 32
        assert geometry.lines_per_set == 128
        assert geometry.total_lines == 256

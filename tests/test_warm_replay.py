"""Warm phase-chained replay: bit-identical to single-shot replay.

The hard guarantee of :func:`~repro.microarch.cachekernel.replay_chain`
is that cutting a trace into phases and replaying them against one
continuously-warm cache changes *nothing* observable: the per-phase
statistics match a scalar :class:`Cache` fed phase by phase (the warm
oracle), their totals match the single-shot replay of the concatenated
trace, and the final tag/age/FIFO state and the seeded RANDOM victim
stream are identical -- for every associativity (1..4 ways), every
replacement policy and arbitrary mixed read/write traces with arbitrary
cut points (including empty phases and cuts through same-line runs).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from conftest import ALL_WAYS, geometry_strategy, to_arrays, trace_strategy

from repro.config import Replacement
from repro.errors import ConfigurationError
from repro.microarch.cache import Cache, CacheConfig
from repro.microarch.cachekernel import (
    decode_trace,
    fresh_state,
    replay,
    replay_chain,
    replay_phases,
)

any_geometry = geometry_strategy(ways=ALL_WAYS)


@st.composite
def phased_trace(draw, max_cuts=4):
    """A mixed read/write trace plus arbitrary phase bounds over it.

    Cut points are unconstrained: phases may be empty, and cuts land in
    the middle of same-line runs (the case the chain algebra must keep
    exact).
    """
    trace = draw(trace_strategy(max_size=300))
    n = len(trace)
    cuts = sorted(draw(st.lists(st.integers(0, n), min_size=0, max_size=max_cuts)))
    bounds = [0, *cuts, n]
    return trace, bounds


def phase_views(addresses, writes, bounds, linesize_bytes):
    return [
        decode_trace(addresses[lo:hi], writes[lo:hi], linesize_bytes=linesize_bytes)
        for lo, hi in zip(bounds, bounds[1:])
    ]


def assert_state_matches_cache(state, cache):
    """Kernel chain state must equal a Cache's stores bit for bit."""
    np.testing.assert_array_equal(state.tags, cache._tags)
    np.testing.assert_array_equal(state.age, cache._age)
    np.testing.assert_array_equal(state.fifo, cache._fifo)
    assert state.tick == cache._tick
    assert state.rng.bit_generator.state == cache._rng.bit_generator.state


@given(geometry=any_geometry, phased=phased_trace())
@settings(max_examples=120, deadline=None)
def test_replay_chain_matches_scalar_warm_oracle(geometry, phased):
    """Chained kernel replay == a scalar cache fed the phases in sequence."""
    config = CacheConfig(**geometry)
    trace, bounds = phased
    addresses, writes = to_arrays(trace)

    views = phase_views(addresses, writes, bounds, config.linesize_bytes)
    chain_stats, state = replay_chain(views, config)

    oracle = Cache(config)
    oracle_stats = [
        oracle.simulate(addresses[lo:hi], writes[lo:hi], vectorized=False)
        for lo, hi in zip(bounds, bounds[1:])
    ]

    assert chain_stats == oracle_stats  # per-phase, field for field
    assert_state_matches_cache(state, oracle)


@given(geometry=any_geometry, phased=phased_trace())
@settings(max_examples=120, deadline=None)
def test_replay_chain_bit_identical_to_concatenated_single_shot(geometry, phased):
    """The chain's totals and final state == one replay of the whole trace."""
    config = CacheConfig(**geometry)
    trace, bounds = phased
    addresses, writes = to_arrays(trace)

    views = phase_views(addresses, writes, bounds, config.linesize_bytes)
    chain_stats, state = replay_chain(views, config)

    single_state = fresh_state(config)
    single = replay(
        decode_trace(addresses, writes, linesize_bytes=config.linesize_bytes),
        config, state=single_state)

    assert sum(s.accesses for s in chain_stats) == single.accesses
    assert sum(s.read_accesses for s in chain_stats) == single.read_accesses
    assert sum(s.write_accesses for s in chain_stats) == single.write_accesses
    assert sum(s.read_misses for s in chain_stats) == single.read_misses
    assert sum(s.write_misses for s in chain_stats) == single.write_misses
    np.testing.assert_array_equal(state.tags, single_state.tags)
    np.testing.assert_array_equal(state.age, single_state.age)
    np.testing.assert_array_equal(state.fifo, single_state.fifo)
    assert state.tick == single_state.tick
    # the seeded RANDOM victim stream advanced to the same position
    assert state.rng.bit_generator.state == single_state.rng.bit_generator.state


@given(geometry=any_geometry, phased=phased_trace(max_cuts=3))
@settings(max_examples=60, deadline=None)
def test_replay_chain_state_extends_across_calls(geometry, phased):
    """Passing the returned state back in continues the same chain."""
    config = CacheConfig(**geometry)
    trace, bounds = phased
    addresses, writes = to_arrays(trace)
    views = phase_views(addresses, writes, bounds, config.linesize_bytes)

    one_call, one_state = replay_chain(views, config)

    split = len(views) // 2
    first, state = replay_chain(views[:split], config)
    second, state = replay_chain(views[split:], config, state=state)

    assert first + second == one_call
    np.testing.assert_array_equal(state.tags, one_state.tags)
    np.testing.assert_array_equal(state.age, one_state.age)
    assert state.tick == one_state.tick
    assert state.rng.bit_generator.state == one_state.rng.bit_generator.state


@given(geometry=any_geometry, phased=phased_trace(max_cuts=3))
@settings(max_examples=60, deadline=None)
def test_cache_simulate_phases_matches_chain_and_sequential_simulate(geometry, phased):
    """The Cache-level phase API == replay_chain == repeated simulate()."""
    config = CacheConfig(**geometry)
    trace, bounds = phased
    addresses, writes = to_arrays(trace)
    phases = [(addresses[lo:hi], writes[lo:hi]) for lo, hi in zip(bounds, bounds[1:])]

    phased_cache = Cache(config)
    phased_stats = phased_cache.simulate_phases(phases)

    views = phase_views(addresses, writes, bounds, config.linesize_bytes)
    chain_stats, state = replay_chain(views, config)
    assert phased_stats == chain_stats
    np.testing.assert_array_equal(phased_cache._tags, state.tags)

    sequential_cache = Cache(config)
    sequential_stats = [sequential_cache.simulate(a, w) for a, w in phases]
    assert phased_stats == sequential_stats
    np.testing.assert_array_equal(phased_cache._tags, sequential_cache._tags)
    np.testing.assert_array_equal(phased_cache._age, sequential_cache._age)


@given(geometry=any_geometry, phased=phased_trace(max_cuts=3))
@settings(max_examples=60, deadline=None)
def test_replay_phases_cold_equals_fresh_per_phase_replays(geometry, phased):
    """PhaseReplay.cold restarts each phase; .warm is the chain; totals agree."""
    config = CacheConfig(**geometry)
    trace, bounds = phased
    addresses, writes = to_arrays(trace)
    views = phase_views(addresses, writes, bounds, config.linesize_bytes)

    result = replay_phases(views, config)
    assert list(result.warm) == replay_chain(views, config)[0]
    assert list(result.cold) == [replay(view, config) for view in views]

    single = Cache(config).simulate(addresses, writes)
    assert result.warm_total() == single


def test_replay_chain_rejects_mismatched_linesize_views():
    config = CacheConfig(ways=2, setsize_kb=1, linesize_words=8)
    good = decode_trace(np.asarray([0, 64], dtype=np.int64), linesize_bytes=32)
    bad = decode_trace(np.asarray([0, 64], dtype=np.int64), linesize_bytes=16)
    with pytest.raises(ConfigurationError):
        replay_chain([good, bad], config)


def test_replay_chain_of_zero_phases_returns_cold_state():
    config = CacheConfig(ways=2, setsize_kb=1, linesize_words=4)
    stats, state = replay_chain([], config)
    assert stats == []
    assert state.tick == 0
    assert (state.tags == -1).all()


@pytest.mark.parametrize("replacement", sorted(Replacement.ALL))
def test_empty_phases_do_not_disturb_the_chain(replacement):
    """Empty phases replay to zero statistics and leave state untouched."""
    config = CacheConfig(ways=2, setsize_kb=1, linesize_words=4,
                         replacement=replacement)
    addresses = np.asarray([0, 1024, 0, 2048], dtype=np.int64)
    writes = np.zeros(4, dtype=bool)
    empty = decode_trace(
        np.empty(0, dtype=np.int64), linesize_bytes=config.linesize_bytes)
    full = decode_trace(addresses, writes, linesize_bytes=config.linesize_bytes)

    chain_stats, state = replay_chain([empty, full, empty], config)
    assert chain_stats[0].accesses == 0 and chain_stats[2].accesses == 0

    single_cache = Cache(config)
    single = single_cache.simulate(addresses, writes)
    assert chain_stats[1] == single
    np.testing.assert_array_equal(state.tags, single_cache._tags)
    assert state.rng.bit_generator.state == single_cache._rng.bit_generator.state


@pytest.mark.parametrize("geometry", [
    dict(ways=1, setsize_kb=1, linesize_words=4, replacement=Replacement.RANDOM),
    dict(ways=2, setsize_kb=1, linesize_words=8, replacement=Replacement.LRR),
    dict(ways=4, setsize_kb=1, linesize_words=8, replacement=Replacement.LRU),
    dict(ways=3, setsize_kb=2, linesize_words=4, replacement=Replacement.RANDOM),
])
def test_chain_matches_warm_oracle_on_paper_workload_traces(small_workload_map,
                                                           geometry):
    """Acceptance bar: warm chains of the real workload traces are exact.

    Each workload's data stream is cut into thirds (cutting straight
    through its loop structure) and chained; the scalar warm oracle must
    agree phase for phase, and the totals must equal the one-shot run.
    """
    config = CacheConfig(**geometry)
    for name, workload in small_workload_map.items():
        trace = workload.trace()
        addresses = trace.data_addresses
        writes = trace.data_is_write
        n = len(addresses)
        bounds = [0, n // 3, 2 * n // 3, n]

        views = phase_views(addresses, writes, bounds, config.linesize_bytes)
        chain_stats, state = replay_chain(views, config)

        oracle = Cache(config)
        oracle_stats = [
            oracle.simulate(addresses[lo:hi], writes[lo:hi], vectorized=False)
            for lo, hi in zip(bounds, bounds[1:])
        ]
        assert chain_stats == oracle_stats, f"chain diverged on {name}"
        assert_state_matches_cache(state, oracle)

        single = Cache(config).simulate(addresses, writes)
        assert sum(s.misses for s in chain_stats) == single.misses, name

"""Tests for Configuration objects and the LEON validity rules."""

import pytest

from repro.config import (
    Configuration,
    Replacement,
    base_configuration,
    check_rules,
    leon_parameter_space,
    require_valid,
)
from repro.errors import ConfigurationError


class TestConfiguration:
    def test_base_configuration_is_base(self, base_config):
        assert base_config.is_base()
        assert base_config["dcache_setsize_kb"] == 4

    def test_attribute_access(self, base_config):
        assert base_config.dcache_setsize_kb == 4
        assert base_config.multiplier == "m16x16"
        with pytest.raises(AttributeError):
            _ = base_config.not_a_parameter

    def test_mapping_protocol(self, base_config):
        assert len(base_config) == len(leon_parameter_space())
        assert set(iter(base_config)) == set(leon_parameter_space().names)
        with pytest.raises(ConfigurationError):
            base_config["bogus"]

    def test_missing_value_rejected(self, space):
        values = space.defaults()
        del values["multiplier"]
        with pytest.raises(ConfigurationError):
            Configuration(space, values)

    def test_unknown_parameter_rejected(self, space):
        values = space.defaults()
        values["bogus"] = 1
        with pytest.raises(ConfigurationError):
            Configuration(space, values)

    def test_out_of_domain_value_rejected(self, space):
        values = space.defaults()
        values["dcache_setsize_kb"] = 64
        with pytest.raises(ConfigurationError):
            Configuration(space, values)

    def test_replace_returns_new_configuration(self, base_config):
        new = base_config.replace(dcache_setsize_kb=32)
        assert new.dcache_setsize_kb == 32
        assert base_config.dcache_setsize_kb == 4
        assert new != base_config

    def test_diff_reports_only_changes(self, base_config):
        new = base_config.replace(dcache_setsize_kb=32, multiplier="m32x32")
        diff = new.diff(base_config)
        assert set(diff) == {"dcache_setsize_kb", "multiplier"}
        assert diff["dcache_setsize_kb"] == (4, 32)

    def test_hash_and_equality(self, base_config):
        other = base_configuration()
        assert other == base_config
        assert hash(other) == hash(base_config)
        assert base_config.replace(load_delay=2) != base_config

    def test_key_is_stable(self, base_config):
        assert base_config.key() == base_configuration().key()

    def test_as_dict_is_mutable_copy(self, base_config):
        d = base_config.as_dict()
        d["load_delay"] = 2
        assert base_config.load_delay == 1


class TestRules:
    def test_base_configuration_is_valid(self, base_config):
        assert check_rules(base_config) == []
        assert require_valid(base_config) is base_config

    def test_lrr_requires_exactly_two_sets(self, base_config):
        bad = base_config.replace(dcache_replacement=Replacement.LRR)
        violations = check_rules(bad)
        assert violations and "LRR" in violations[0].message
        with pytest.raises(ConfigurationError):
            require_valid(bad)
        good = bad.replace(dcache_sets=2)
        assert check_rules(good) == []
        still_bad = bad.replace(dcache_sets=3)
        assert check_rules(still_bad)

    def test_lru_requires_multiway(self, base_config):
        bad = base_config.replace(icache_replacement=Replacement.LRU)
        assert check_rules(bad)
        for sets in (2, 3, 4):
            assert check_rules(bad.replace(icache_sets=sets)) == []

    def test_random_policy_always_valid(self, base_config):
        for sets in (1, 2, 3, 4):
            assert check_rules(base_config.replace(dcache_sets=sets)) == []

    def test_violation_string_mentions_rule(self, base_config):
        bad = base_config.replace(dcache_replacement=Replacement.LRR)
        violation = check_rules(bad)[0]
        assert "dcache" in str(violation)

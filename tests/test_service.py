"""The resident tuning service and the supervised evaluator lifecycle.

These tests pin the properties that make an always-on evaluation
service sound: jobs run FIFO on one resident engine and stream
incremental results; the supervisor survives a worker pool killed
underneath it (capped respawns with jittered backoff, then degrade to
inline); an identical re-submitted sweep answers from the store with
*zero* new evaluations, bit for bit identical to the first answer and
to a direct ``measure_sweep``; the HTTP layer round-trips all of that
through a real socket; and a grid-backed service drains the same
campaign queue a CLI ``--claim`` worker would.
"""

import gc
import json
import os
import signal
import threading
import time

import pytest

from repro.engine import (
    CampaignGrid,
    EvaluatorSupervisor,
    ParallelEvaluator,
    SupervisorStopped,
)
from repro.engine.campaign import STATUS_DONE
from repro.platform import LiquidPlatform
from repro.service import ServiceClient, ServiceError, TuningService, make_server
from repro.service.jobs import JobManager
from repro.service.server import figure2_grid


def wait_for(job_manager_service, job_id, timeout=120.0):
    """Poll a TuningService until the job settles; return the snapshot."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        snapshot = job_manager_service.job_snapshot(job_id)
        if snapshot["status"] in ("done", "failed"):
            return snapshot
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not settle within {timeout}s")


def sweep_payload(workload, base_config, count=4):
    configs = [
        {"dcache_sets": sets, "dcache_setsize_kb": size}
        for sets in (1, 2) for size in (1, 2)
    ][:count]
    return {"workload": workload.name, "configs": configs}


class TestJobManager:
    def test_jobs_run_fifo_and_settle_done(self):
        seen = []
        manager = JobManager(lambda job: seen.append(job.payload["n"]))
        manager.start()
        jobs = [manager.submit("sweep", {"n": n}) for n in range(5)]
        assert manager.drain(timeout=10.0)
        manager.stop()
        assert seen == [0, 1, 2, 3, 4]
        assert all(manager.get(job.id).status == "done" for job in jobs)

    def test_failing_executor_records_the_error(self):
        def boom(job):
            raise ValueError("synthetic")

        manager = JobManager(boom)
        manager.start()
        job = manager.submit("sweep", {})
        assert manager.drain(timeout=10.0)
        manager.stop()
        assert manager.get(job.id).status == "failed"
        assert "synthetic" in manager.get(job.id).error
        assert manager.counts()["failed"] == 1

    def test_incremental_results_are_visible_mid_run(self):
        gate = threading.Event()
        release = threading.Event()

        def executor(job):
            manager.set_total(job, 2)
            manager.append_results(job, ["first"])
            gate.set()
            assert release.wait(timeout=10.0)
            manager.append_results(job, ["second"])

        manager = JobManager(executor)
        manager.start()
        job = manager.submit("sweep", {})
        assert gate.wait(timeout=10.0)
        partial = manager.snapshot(job)
        assert partial["status"] == "running"
        assert partial["results"] == ["first"]
        assert (partial["done"], partial["total"]) == (1, 2)
        release.set()
        assert manager.drain(timeout=10.0)
        manager.stop()
        assert manager.snapshot(job)["results"] == ["first", "second"]


class TestSupervisorLifecycle:
    def test_measuring_a_stopped_supervisor_raises(self, arith_small, base_config):
        supervisor = EvaluatorSupervisor(LiquidPlatform(), workers=1)
        with pytest.raises(SupervisorStopped):
            supervisor.measure(arith_small, base_config)
        with supervisor:
            supervisor.measure(arith_small, base_config)
        with pytest.raises(SupervisorStopped):
            supervisor.measure(arith_small, base_config)

    def test_stop_then_start_is_a_restart(self, arith_small, base_config):
        supervisor = EvaluatorSupervisor(LiquidPlatform(), workers=1)
        with supervisor:
            first = supervisor.measure(arith_small, base_config)
        supervisor.start()
        try:
            again = supervisor.measure(arith_small, base_config)
        finally:
            supervisor.stop()
        assert first.statistics.cycles == again.statistics.cycles

    def test_backoff_is_jittered_and_capped_then_degrades(self):
        class FixedRng:
            def uniform(self, low, high):
                return (low + high) / 2

        slept = []
        supervisor = EvaluatorSupervisor(
            LiquidPlatform(), workers=2, max_restarts=3,
            backoff_base=0.1, backoff_cap=0.5,
            rng=FixedRng(), sleep=slept.append)
        supervisor.start()
        try:
            for _ in range(5):
                supervisor._on_pool_break()
        finally:
            supervisor.stop()
        # three granted restarts slept a growing-but-capped backoff...
        assert len(slept) == 3
        assert slept[0] == pytest.approx(0.2)   # (0.1 + 0.3) / 2
        assert slept[1] > slept[0]
        assert all(delay <= 0.5 for delay in slept)
        # ...then the budget ran out: degraded to inline, no more sleeps
        assert supervisor.degraded
        assert supervisor.evaluator.workers == 1
        assert supervisor.restarts == 5
        assert supervisor.stats.supervisor_restarts == 5
        snapshot = supervisor.snapshot()
        assert snapshot["degraded"] and not snapshot["running"]

    def test_request_stop_only_flags(self):
        supervisor = EvaluatorSupervisor(LiquidPlatform(), workers=1)
        supervisor.start()
        try:
            supervisor.request_stop()
            assert supervisor.stop_requested and supervisor.running
        finally:
            supervisor.stop()


class TestSurvivesPoolBreak:
    def test_sigkilled_worker_breaks_one_batch_and_the_pool_respawns(
            self, base_config, small_workload_map):
        """The acceptance scenario: SIGKILL a pool worker mid-life; the
        resident engine finishes the batch inline, counts the break, and
        the next sweep runs on a fresh pool."""
        workload = small_workload_map["blastn"]
        configs = [
            base_config.replace(dcache_sets=sets, dcache_setsize_kb=size)
            for sets in (1, 2) for size in (1, 2, 4)
        ]
        supervisor = EvaluatorSupervisor(
            LiquidPlatform(), workers=2, arena=False,
            backoff_base=0.0, backoff_cap=0.0, sleep=lambda s: None)
        with supervisor:
            baseline = supervisor.measure_sweep(workload, configs[:3])
            evaluator = supervisor.evaluator
            assert evaluator._pool is not None
            victim = next(iter(evaluator._pool._processes.values()))
            os.kill(victim.pid, signal.SIGKILL)
            # the batch that observes the corpse completes inline...
            survivors = supervisor.measure_sweep(workload, configs[3:])
            assert supervisor.stats.pool_breaks == 1
            assert supervisor.restarts == 1
            assert supervisor.stats.supervisor_restarts == 1
            assert not supervisor.degraded
            # ...and the next sweep with fresh work respawns a healthy pool
            # (fresh configurations: memoised ones never touch the pool)
            fresh = [
                base_config.replace(dcache_sets=3, dcache_setsize_kb=size)
                for size in (1, 2, 4)
            ]
            spawns_before = supervisor.stats.pool_spawns
            again = supervisor.measure_sweep(workload, fresh)
            assert supervisor.stats.pool_spawns == spawns_before + 1
            assert evaluator._pool is not None
        # bit-identical to an untouched engine, break or no break
        with ParallelEvaluator(LiquidPlatform(), workers=1) as clean:
            expected = clean.measure_sweep(workload, configs)
            expected_fresh = clean.measure_sweep(workload, fresh)
        assert [m.statistics.cycles for m in baseline + survivors] == \
            [m.statistics.cycles for m in expected]
        assert [m.statistics.cycles for m in again] == \
            [m.statistics.cycles for m in expected_fresh]

    def test_broken_pool_leaves_no_orphan_workers(
            self, base_config, small_workload_map):
        """Every worker of the broken pool is dead after the break.

        The executor's own cleanup races our non-blocking shutdown: when
        it loses, a surviving sibling parks on the call queue forever and
        the executor's non-daemon manager thread -- joining that sibling
        -- blocks interpreter exit.  ``_pool_failed`` therefore kills the
        siblings itself; a resident server must *exit* after it says it
        stopped.
        """
        workload = small_workload_map["blastn"]
        configs = [
            base_config.replace(dcache_sets=sets, dcache_setsize_kb=size)
            for sets in (1, 2) for size in (1, 2)
        ]
        with ParallelEvaluator(LiquidPlatform(), workers=2,
                               arena=False) as evaluator:
            evaluator.measure_sweep(workload, configs)
            workers = list(evaluator._pool._processes.values())
            assert len(workers) == 2
            os.kill(workers[0].pid, signal.SIGKILL)
            # the batch that trips over the corpse triggers _pool_failed
            evaluator.measure_sweep(
                workload, [base_config.replace(icache_sets=2)])
            assert evaluator.stats.pool_breaks == 1
            deadline = time.monotonic() + 10.0
            while (any(w.is_alive() for w in workers)
                   and time.monotonic() < deadline):
                time.sleep(0.05)
            assert [w.is_alive() for w in workers] == [False, False]


class TestServiceJobs:
    def test_resubmitted_sweep_is_bit_identical_with_zero_new_evaluations(
            self, base_config, small_workload_map):
        workload = small_workload_map["arith"]
        payload = sweep_payload(workload, base_config)
        with TuningService(workers=2, scale="small") as service:
            first = wait_for(service, service.submit_sweep(payload).id)
            assert first["status"] == "done"
            assert first["done"] == first["total"] == len(payload["configs"])
            before = service.metrics()["engine"]
            assert before["store_writes"] == len(payload["configs"])
            second = wait_for(service, service.submit_sweep(payload).id)
            # zero new evaluations: the resident memo/store layers
            # answered the whole job (nothing simulated, nothing written)
            after = service.metrics()["engine"]
            assert after["cache_simulations"] == before["cache_simulations"]
            assert after["store_writes"] == before["store_writes"]
            assert after["requested"] == before["requested"] + len(payload["configs"])
            # bit-identical wire records
            assert json.dumps(first["results"], sort_keys=True) == \
                json.dumps(second["results"], sort_keys=True)

    def test_sweep_records_equal_a_direct_measure_sweep(
            self, base_config, small_workload_map):
        payload = sweep_payload(small_workload_map["arith"], base_config)
        with TuningService(workers=2, scale="small") as service:
            # compare against the registry instance the service serves
            # (the conftest fixtures are differently sized workloads)
            workload = service.workloads["arith"]
            served = wait_for(service, service.submit_sweep(payload).id)
            configs = [base_config.replace(**entry)
                       for entry in payload["configs"]]
            with ParallelEvaluator(LiquidPlatform(), workers=1) as direct:
                expected = [service.store.encode(workload, m)
                            for m in direct.measure_sweep(workload, configs)]
        assert json.dumps(served["results"], sort_keys=True) == \
            json.dumps(expected, sort_keys=True)

    def test_default_sweep_is_the_figure2_grid(self):
        with TuningService(workers=2, scale="small") as service:
            job = service.submit_sweep({"workload": "blastn"})
            done = wait_for(service, job.id, timeout=300.0)
            assert done["total"] == len(figure2_grid(service.platform))
            assert done["done"] == done["total"]

    def test_tune_job_reports_selection_and_predictions(self):
        with TuningService(workers=2, scale="small") as service:
            job = service.submit_tune({
                "workload": "arith",
                "weights": "runtime",
                "parameters": ["dcache_sets", "dcache_setsize_kb"],
            })
            done = wait_for(service, job.id, timeout=300.0)
            assert done["status"] == "done"
            (record,) = done["results"]
            assert record["workload"] == "arith"
            assert set(record["configuration"]) >= {"dcache_sets"}
            assert "runtime_percent" in record["predicted"]

    def test_bad_payloads_are_rejected_at_submit_time(self):
        with TuningService(workers=1, scale="small") as service:
            with pytest.raises(ValueError):
                service.submit_sweep({"workload": "no-such-workload"})
            with pytest.raises(ValueError):
                service.submit_sweep({"workload": "arith", "configs": []})
            with pytest.raises(ValueError):
                service.submit_tune({"workload": "arith",
                                     "weights": "no-such-preset"})
            assert service.jobs.counts()["total"] == 0


class TestServiceHttp:
    @pytest.fixture()
    def live_service(self):
        service = TuningService(workers=2, scale="small")
        httpd = make_server(service)
        thread = threading.Thread(
            target=httpd.serve_forever, kwargs={"poll_interval": 0.05},
            daemon=True)
        service.start()
        thread.start()
        client = ServiceClient("http://%s:%d" % httpd.server_address)
        try:
            yield service, client
        finally:
            httpd.shutdown()
            thread.join(timeout=10.0)
            httpd.server_close()
            service.stop()

    def test_full_round_trip_over_a_real_socket(
            self, live_service, base_config, small_workload_map):
        service, client = live_service
        assert client.health()
        payload = sweep_payload(small_workload_map["arith"], base_config)
        submitted = client.submit_sweep(
            payload["workload"], configs=payload["configs"])
        assert submitted["status"] in ("queued", "running")
        done = client.wait(submitted["id"], timeout=120.0)
        assert done["done"] == len(payload["configs"])
        sims = client.metrics()["engine"]["cache_simulations"]
        again = client.wait(
            client.submit_sweep(payload["workload"],
                                configs=payload["configs"])["id"],
            timeout=120.0)
        assert client.metrics()["engine"]["cache_simulations"] == sims
        assert json.dumps(done["results"], sort_keys=True) == \
            json.dumps(again["results"], sort_keys=True)
        assert any(job["id"] == done["id"] for job in client.jobs())

    def test_metrics_document_has_every_section(self, live_service):
        _, client = live_service
        metrics = client.metrics()
        assert set(metrics) >= {"engine", "registry", "supervisor",
                                "jobs", "store"}
        assert metrics["supervisor"]["running"] is True
        assert "engine.workers" in metrics["registry"]

    def test_http_errors_map_to_status_codes(self, live_service):
        _, client = live_service
        with pytest.raises(ServiceError) as bad:
            client.submit_sweep("no-such-workload")
        assert bad.value.status == 400
        with pytest.raises(ServiceError) as missing:
            client.job("no-such-job")
        assert missing.value.status == 404
        with pytest.raises(ServiceError) as route:
            client._request("GET", "/no-such-route")
        assert route.value.status == 404


class TestServiceOnCampaignGrid:
    def test_sweep_jobs_drain_as_grid_rows(self, tmp_path, base_config,
                                           small_workload_map):
        db = str(tmp_path / "campaign.sqlite")
        workload = small_workload_map["arith"]
        payload = sweep_payload(workload, base_config)
        with TuningService(workers=2, scale="small", grid_path=db) as service:
            done = wait_for(service, service.submit_sweep(payload).id)
            assert done["status"] == "done"
            assert done["meta"]["grid_rows_added"] == len(payload["configs"])
            assert done["meta"]["grid_done"] == len(payload["configs"])
        with CampaignGrid(db) as grid:
            counts = grid.status()
            assert counts[STATUS_DONE] == counts["total"] == len(payload["configs"])

    def test_grid_job_answers_rows_a_cli_worker_already_did(
            self, tmp_path, base_config, small_workload_map):
        """Service and CLI workers share one queue: rows drained by a
        plain CampaignWorker before the job runs are not re-evaluated."""
        from repro.engine import CampaignWorker
        from repro.workloads import small_workloads

        db = str(tmp_path / "campaign.sqlite")
        # the registry instance: grid rows match by trace fingerprint, so
        # the CLI worker must register exactly what the service will serve
        workload = small_workloads()["arith"]
        payload = sweep_payload(workload, base_config)
        configs = [base_config.replace(**entry) for entry in payload["configs"]]
        with CampaignGrid(db) as grid:
            platform = LiquidPlatform()
            grid.bind_platform(platform.device, platform.timing_parameters)
            grid.register(workload, configs)
            with CampaignWorker(grid, [workload], platform=platform) as cli:
                report = cli.run()
            assert report.done == len(configs)
        with TuningService(workers=1, scale="small", grid_path=db) as service:
            done = wait_for(service, service.submit_sweep(payload).id)
            assert done["status"] == "done"
            assert done["meta"]["grid_rows_added"] == 0
            assert done["meta"]["grid_done"] == 0  # nothing left to claim
            assert done["done"] == len(configs)
            # the whole job answered from the measurements the CLI wrote
            assert service.metrics()["engine"]["cache_simulations"] == 0
            assert service.metrics()["engine"]["store_hits"] >= len(configs)

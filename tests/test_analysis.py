"""Tests for the analysis tables, experiment drivers and paper comparisons."""

import pytest

from repro.analysis import (
    PAPER_CLAIMS,
    Table,
    approximation_ablation,
    dcache_exhaustive,
    dcache_optimizer,
    dcache_study,
    headline_comparison,
    parameter_space_summary,
    perturbation_costs,
    resource_optimization,
    runtime_optimization,
    scalability_study,
    solver_ablation,
)
from repro.platform import LiquidPlatform


@pytest.fixture(scope="module")
def platform():
    return LiquidPlatform()


@pytest.fixture(scope="module")
def workloads(small_workload_map):
    return small_workload_map


@pytest.fixture(scope="module")
def fig5(platform, workloads):
    return runtime_optimization(platform, workloads)


@pytest.fixture(scope="module")
def fig7(platform, workloads, fig5):
    return resource_optimization(platform, workloads, models=fig5.data["models"])


class TestTable:
    def test_render_and_markdown(self):
        table = Table("T", ["a", "b"])
        table.add_row([1, 2.5])
        table.add_mapping({"a": "x", "b": "y"})
        text = table.render()
        assert "T" in text and "2.50" in text and "x" in text
        markdown = table.to_markdown()
        assert markdown.count("|") >= 8
        assert table.as_dicts()[0] == {"a": "1", "b": "2.50"}

    def test_row_length_checked(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_missing_mapping_key_becomes_dash(self):
        table = Table("T", ["a", "b"])
        table.add_mapping({"a": 1})
        assert table.as_dicts()[0]["b"] == "-"


class TestFigure1:
    def test_parameter_space_summary(self):
        result = parameter_space_summary()
        assert result.data["perturbations"] == 53
        assert result.data["exhaustive"] > 10**8
        assert len(result.table("LEON reconfigurable").rows) == 18


class TestDcacheExperiments:
    def test_figure2_rows_are_feasible_and_complete(self, platform, workloads):
        result = dcache_exhaustive(platform, workloads["arith"])
        rows = result.data["rows"]
        # 4 set counts x 6 sizes minus the combinations that exceed the device BRAM
        assert 15 <= len(rows) < 24
        assert all(row["bram_percent"] <= 100.0 for row in rows)
        best = result.data["best"]
        assert best["cycles"] == min(row["cycles"] for row in rows)

    def test_figure3_optimizer_evaluates_linear_number_of_configs(self, platform, workloads):
        result = dcache_optimizer(platform, workloads["frag"])
        assert result.data["configurations_evaluated"] == 8  # 3 sets + 5 sizes
        assert result.data["selected_cycles"] <= result.data["base_cycles"]

    def test_figure4_optimizer_is_near_optimal(self, platform, workloads):
        result = dcache_study(platform, workloads)
        for name, values in result.data.items():
            assert values["optimality_gap_percent"] <= 1.0, name
        assert set(result.data) == set(workloads)


class TestOptimizationStudies:
    def test_figure5_every_workload_improves(self, fig5):
        for name, gain in fig5.data["gains"].items():
            assert gain["actual_gain_percent"] > 0, name

    def test_figure5_tables_cover_all_workloads(self, fig5, workloads):
        header = fig5.table("Actual synthesis").columns
        assert set(workloads) <= set(header)

    def test_figure7_saves_resources(self, fig7):
        for name, gain in fig7.data["gains"].items():
            assert gain["lut_delta"] < 0, name
            assert gain["bram_delta"] < 0, name

    def test_figure6_lists_selected_perturbations(self, fig5):
        result = perturbation_costs(fig5.data["results"]["drr"])
        rows = result.data["rows"]
        assert rows, "the runtime optimisation should change at least one parameter"
        assert all("perturbation" in row for row in rows)

    def test_headline_comparison_structure(self, fig5, fig7, platform, workloads):
        dcache = dcache_study(platform, workloads)
        result = headline_comparison(fig5, fig7, dcache)
        checks = result.data["checks"]
        assert len(checks) == 5
        claims = {c.claim for c in checks}
        assert any("near-optimal" in c for c in claims)
        # the scaled-down test workloads still reproduce the core claims
        core = [c for c in checks if "near-optimal" in c.claim or "improves" in c.claim]
        assert all(c.holds for c in core)


class TestAblationsAndScalability:
    def test_scalability_study_counts_linear_campaign(self, workloads):
        result = scalability_study(LiquidPlatform(), workloads["arith"])
        assert result.data["builds"] <= result.data["variables"] + 1
        assert result.data["exhaustive"] > 10**6 * result.data["builds"]

    def test_approximation_ablation_reports_errors(self, fig5):
        result = approximation_ablation(fig5.data["results"]["drr"])
        assert set(result.data["errors"]) == {
            "runtime_percent_error", "lut_error_linear", "lut_error_nonlinear",
            "bram_error_linear", "bram_error_nonlinear"}

    def test_solver_ablation_branch_and_bound_wins(self, fig5):
        result = solver_ablation(fig5.data["models"]["drr"])
        data = result.data
        assert data["branch-and-bound"]["objective"] <= data["greedy"]["objective"] + 1e-9
        assert data["branch-and-bound"]["objective"] <= data["random-search"]["objective"] + 1e-9

    def test_paper_claims_constants(self):
        assert PAPER_CLAIMS["runtime_gain_range_percent"] == (6.15, 19.39)
        assert set(PAPER_CLAIMS["runtime_gain_percent"]) == {"blastn", "drr", "frag", "arith"}

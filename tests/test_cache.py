"""Tests for the set-associative cache models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from conftest import address_strategy

from repro.config import Replacement, base_configuration
from repro.errors import ConfigurationError
from repro.microarch.cache import Cache, CacheConfig, CacheStatistics


def simulate(config: CacheConfig, addresses, writes=None) -> CacheStatistics:
    return Cache(config).simulate(np.asarray(addresses, dtype=np.int64), writes)


class TestCacheConfig:
    def test_geometry_properties(self):
        cfg = CacheConfig(ways=2, setsize_kb=4, linesize_words=8)
        assert cfg.linesize_bytes == 32
        assert cfg.lines_per_way == 128
        assert cfg.total_bytes == 8192

    def test_from_configuration(self):
        base = base_configuration().replace(
            dcache_sets=3, dcache_setsize_kb=8, dcache_linesize_words=4,
            dcache_replacement=Replacement.LRU)
        cfg = CacheConfig.dcache_from(base)
        assert (cfg.ways, cfg.setsize_kb, cfg.linesize_words) == (3, 8, 4)
        assert cfg.replacement == Replacement.LRU
        icfg = CacheConfig.icache_from(base)
        assert icfg.setsize_kb == 4

    @pytest.mark.parametrize("kwargs", [
        dict(ways=0, setsize_kb=1, linesize_words=8),
        dict(ways=1, setsize_kb=0, linesize_words=8),
        dict(ways=1, setsize_kb=1, linesize_words=0),
        dict(ways=1, setsize_kb=1, linesize_words=8, replacement="mru"),
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            CacheConfig(**kwargs)


class TestBasicBehaviour:
    def test_repeated_access_hits(self):
        cfg = CacheConfig(ways=1, setsize_kb=1, linesize_words=8)
        stats = simulate(cfg, [0, 0, 0, 0])
        assert stats.read_misses == 1
        assert stats.hits == 3

    def test_spatial_locality_within_a_line(self):
        cfg = CacheConfig(ways=1, setsize_kb=1, linesize_words=8)
        stats = simulate(cfg, [0, 4, 8, 28, 31])   # all within the first 32-byte line
        assert stats.read_misses == 1

    def test_direct_mapped_conflict(self):
        cfg = CacheConfig(ways=1, setsize_kb=1, linesize_words=8)
        way_bytes = 1024
        stats = simulate(cfg, [0, way_bytes, 0, way_bytes])   # same index, different tags
        assert stats.read_misses == 4

    def test_two_way_cache_absorbs_the_same_conflict(self):
        cfg = CacheConfig(ways=2, setsize_kb=1, linesize_words=8, replacement=Replacement.LRU)
        stats = simulate(cfg, [0, 1024, 0, 1024])
        assert stats.read_misses == 2

    def test_write_through_no_allocate(self):
        cfg = CacheConfig(ways=1, setsize_kb=1, linesize_words=8)
        addresses = [0, 0, 64, 64]
        writes = [True, False, True, True]
        stats = simulate(cfg, addresses, np.asarray(writes))
        # first write misses and does NOT allocate, so the read also misses;
        # the writes to line 64 never allocate either.
        assert stats.write_misses == 3
        assert stats.read_misses == 1
        assert stats.write_accesses == 3

    def test_write_hits_after_read_allocation(self):
        cfg = CacheConfig(ways=1, setsize_kb=1, linesize_words=8)
        stats = simulate(cfg, [0, 0], np.asarray([False, True]))
        assert stats.read_misses == 1
        assert stats.write_misses == 0

    def test_statistics_derived_quantities(self):
        stats = CacheStatistics(accesses=10, read_accesses=8, write_accesses=2,
                                read_misses=2, write_misses=1)
        assert stats.misses == 3
        assert stats.hits == 7
        assert stats.miss_rate == pytest.approx(0.3)
        assert stats.read_miss_rate == pytest.approx(0.25)

    def test_mismatched_writes_mask_rejected(self):
        cfg = CacheConfig(ways=1, setsize_kb=1, linesize_words=8)
        with pytest.raises(ConfigurationError):
            simulate(cfg, [0, 32], np.asarray([True]))


class TestReplacementPolicies:
    def test_lru_evicts_least_recently_used(self):
        cfg = CacheConfig(ways=2, setsize_kb=1, linesize_words=8, replacement=Replacement.LRU)
        way = 1024
        # lines A, B fill both ways of index 0; touching A makes B the LRU victim for C.
        stats = simulate(cfg, [0, way, 0, 2 * way, 0])
        # A(miss) B(miss) A(hit) C(miss, evicts B) A(hit)
        assert stats.read_misses == 3

    def test_lrr_evicts_in_fill_order(self):
        cfg = CacheConfig(ways=2, setsize_kb=1, linesize_words=8, replacement=Replacement.LRR)
        way = 1024
        # LRR ignores the recent touch of A: it evicts the oldest fill (A) for C.
        stats = simulate(cfg, [0, way, 0, 2 * way, 0])
        # A(miss) B(miss) A(hit) C(miss, evicts A) A(miss again)
        assert stats.read_misses == 4

    def test_random_replacement_is_deterministic_per_seed(self):
        cfg = CacheConfig(ways=4, setsize_kb=1, linesize_words=4, replacement=Replacement.RANDOM)
        rng = np.random.default_rng(3)
        addresses = rng.integers(0, 1 << 16, size=2000) & ~3
        first = simulate(cfg, addresses)
        second = simulate(cfg, addresses)
        assert first.read_misses == second.read_misses

    def test_fully_resident_working_set_has_only_compulsory_misses(self):
        cfg = CacheConfig(ways=1, setsize_kb=4, linesize_words=8)
        addresses = list(range(0, 2048, 4)) * 3      # 2 KB working set, 3 passes
        stats = simulate(cfg, addresses)
        assert stats.read_misses == 2048 // 32


class TestLruInclusion:
    """LRU caches obey the inclusion property: more capacity never adds misses."""

    @settings(max_examples=30, deadline=None)
    @given(addresses=address_strategy())
    def test_larger_lru_cache_never_misses_more(self, addresses):
        small = CacheConfig(ways=2, setsize_kb=1, linesize_words=4, replacement=Replacement.LRU)
        large = CacheConfig(ways=2, setsize_kb=4, linesize_words=4, replacement=Replacement.LRU)
        small_misses = simulate(small, addresses).read_misses
        large_misses = simulate(large, addresses).read_misses
        assert large_misses <= small_misses

    @settings(max_examples=30, deadline=None)
    @given(addresses=address_strategy())
    def test_higher_lru_associativity_never_misses_more(self, addresses):
        low = CacheConfig(ways=2, setsize_kb=2, linesize_words=4, replacement=Replacement.LRU)
        high = CacheConfig(ways=4, setsize_kb=2, linesize_words=4, replacement=Replacement.LRU)
        assert (simulate(high, addresses).read_misses
                <= simulate(low, addresses).read_misses)


class TestFastPath:
    """The read-only fast path must agree with the general simulation loop."""

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_fast_path_matches_slow_path(self, data):
        ways = data.draw(st.sampled_from([1, 2, 4]))
        replacement = data.draw(st.sampled_from(
            [Replacement.RANDOM, Replacement.LRU] if ways > 1 else [Replacement.RANDOM]))
        cfg = CacheConfig(ways=ways, setsize_kb=2, linesize_words=8, replacement=replacement)
        # small footprint (distinct indices) so the per-index count stays <= ways
        lines = data.draw(st.lists(st.integers(0, ways * 4 - 1), min_size=1, max_size=200))
        addresses = [line * 32 for line in lines]
        fast = simulate(cfg, addresses)
        # force the slow path by adding a single write at an untouched address
        slow_addresses = list(addresses) + [1 << 20]
        writes = np.asarray([False] * len(addresses) + [True])
        slow = simulate(cfg, slow_addresses, writes)
        assert fast.read_misses == slow.read_misses

    def test_fast_path_counts_distinct_lines(self):
        cfg = CacheConfig(ways=1, setsize_kb=4, linesize_words=8)
        addresses = [0, 32, 64, 0, 32, 64]
        stats = simulate(cfg, addresses)
        assert stats.read_misses == 3
        assert stats.accesses == 6

"""Tests for the assembler DSL and program images."""

import pytest

from repro.errors import AssemblyError, SimulationError
from repro.isa import Assembler, MemoryLayout, Op, Program
from repro.isa.encoding import INSTRUCTION_BYTES


class TestLabelsAndBranches:
    def test_forward_and_backward_labels_resolve(self):
        asm = Assembler("t")
        asm.label("start")
        asm.ba("end")          # forward reference
        asm.label("mid")
        asm.ba("start")        # backward reference
        asm.label("end")
        asm.halt()
        program = asm.assemble()
        assert program.instructions[0].target == program.address_of("end")
        assert program.instructions[1].target == program.address_of("start")

    def test_undefined_label_raises_at_assembly(self):
        asm = Assembler("t")
        asm.ba("nowhere")
        with pytest.raises(AssemblyError):
            asm.assemble()

    def test_duplicate_label_rejected(self):
        asm = Assembler("t")
        asm.label("x")
        with pytest.raises(AssemblyError):
            asm.label("x")

    def test_call_records_target(self):
        asm = Assembler("t")
        asm.call("func")
        asm.halt()
        asm.label("func")
        asm.retl()
        program = asm.assemble()
        assert program.instructions[0].op is Op.CALL
        assert program.instructions[0].target == program.address_of("func")


class TestMacros:
    def test_set_small_immediate_is_one_instruction(self):
        asm = Assembler("t")
        asm.set("g1", 100)
        assert len(asm) == 1

    def test_set_large_constant_expands_to_sethi_or(self):
        asm = Assembler("t")
        asm.set("g1", 0x12345678)
        assert len(asm) == 2
        program = asm.assemble()
        assert program.instructions[0].op is Op.SETHI

    def test_set_symbol_resolves_to_data_address(self):
        asm = Assembler("t")
        asm.data_label("table")
        asm.word_data([1, 2, 3])
        asm.set("g1", "table")
        asm.halt()
        program = asm.assemble()
        address = program.address_of("table")
        hi, lo = program.instructions[0], program.instructions[1]
        assert (hi.imm << 11) | lo.imm == address

    def test_cmp_is_subcc_against_g0(self):
        asm = Assembler("t")
        asm.cmp("g1", 5)
        instr = asm.assemble().instructions[0]
        assert instr.op is Op.SUBCC and instr.rd == 0

    def test_immediate_out_of_range_needs_set(self):
        asm = Assembler("t")
        with pytest.raises(AssemblyError):
            asm.add("g1", "g1", 100_000)

    def test_unknown_register_rejected(self):
        asm = Assembler("t")
        with pytest.raises(SimulationError):
            asm.add("z9", "g1", 1)


class TestDataSegment:
    def test_word_half_byte_layout(self):
        asm = Assembler("t")
        asm.data_label("words")
        asm.word_data([0x11223344])
        asm.data_label("halves")
        asm.half_data([0xAABB])
        asm.data_label("bytes")
        asm.byte_data([1, 2, 3])
        asm.align(4)
        asm.data_label("aligned")
        asm.halt()
        program = asm.assemble()
        base = program.layout.data_base
        assert program.address_of("words") == base
        assert program.address_of("halves") == base + 4
        assert program.address_of("bytes") == base + 6
        assert program.address_of("aligned") % 4 == 0
        assert program.data[:4] == bytes([0x44, 0x33, 0x22, 0x11])  # little endian

    def test_zeros_reserved(self):
        asm = Assembler("t")
        asm.data_label("buffer")
        asm.zeros(128)
        asm.halt()
        assert len(asm.assemble().data) == 128


class TestProgram:
    def test_instruction_index_and_bounds(self):
        asm = Assembler("t")
        asm.nop()
        asm.halt()
        program = asm.assemble()
        assert program.instruction_index(program.layout.text_base) == 0
        assert program.instruction_at(program.layout.text_base + 4).op is Op.HALT
        with pytest.raises(SimulationError):
            program.instruction_index(program.layout.text_base + 8)
        with pytest.raises(SimulationError):
            program.instruction_index(program.layout.text_base + 2)

    def test_unknown_symbol(self):
        asm = Assembler("t")
        asm.halt()
        with pytest.raises(SimulationError):
            asm.assemble().address_of("ghost")

    def test_encoded_text_length(self):
        asm = Assembler("t")
        for _ in range(5):
            asm.nop()
        program = asm.assemble()
        assert len(program.encoded_text()) == 5 * INSTRUCTION_BYTES

    def test_text_overflow_detected(self):
        layout = MemoryLayout(text_base=0, data_base=0x20, stack_top=0x1000, memory_size=0x2000)
        asm = Assembler("t", layout=layout)
        for _ in range(20):
            asm.nop()
        with pytest.raises(SimulationError):
            asm.assemble()

    def test_invalid_layout_rejected(self):
        with pytest.raises(SimulationError):
            MemoryLayout(text_base=0x1000, data_base=0x100, stack_top=0x2000, memory_size=0x4000)

    def test_summary_mentions_counts(self):
        asm = Assembler("prog")
        asm.halt()
        assert "1 instructions" in asm.assemble().summary()

"""End-to-end tests of the MicroarchTuner (campaign -> BINLP -> solve -> verify)."""

import itertools

import pytest

from repro import (
    LiquidPlatform,
    MicroarchTuner,
    RESOURCE_OPTIMIZATION,
    RUNTIME_ONLY,
    RUNTIME_OPTIMIZATION,
    base_configuration,
)
from repro.analysis import DCACHE_STUDY_PARAMETERS
from repro.config import check_rules
from repro.errors import OptimizationError


@pytest.fixture(scope="module")
def shared_platform():
    return LiquidPlatform()


@pytest.fixture(scope="module")
def tuner(shared_platform):
    return MicroarchTuner(shared_platform)


@pytest.fixture(scope="module")
def arith_runtime_result(tuner, arith_small):
    return tuner.tune(arith_small, RUNTIME_OPTIMIZATION)


class TestTuningResult:
    def test_recommended_configuration_is_valid(self, arith_runtime_result):
        assert check_rules(arith_runtime_result.configuration) == []
        assert arith_runtime_result.solution.feasible

    def test_runtime_optimisation_improves_runtime(self, arith_runtime_result):
        assert arith_runtime_result.actual_runtime_gain_percent() > 0
        assert arith_runtime_result.predicted_runtime_gain_percent() > 0

    def test_arith_gets_the_fast_multiplier(self, arith_runtime_result):
        changes = arith_runtime_result.changed_parameters()
        assert changes.get("multiplier", (None, None))[1] == "m32x32"
        # Arith touches no memory, so the data-cache size is never increased
        assert arith_runtime_result.configuration.dcache_setsize_kb <= 4

    def test_recommended_configuration_fits_the_device(self, shared_platform,
                                                       arith_runtime_result):
        assert shared_platform.fits(arith_runtime_result.configuration)

    def test_prediction_errors_available_when_verified(self, arith_runtime_result):
        errors = arith_runtime_result.prediction_errors()
        assert set(errors) == {
            "runtime_percent_error", "lut_error_linear", "lut_error_nonlinear",
            "bram_error_linear", "bram_error_nonlinear"}

    def test_summary_mentions_changes(self, arith_runtime_result):
        text = arith_runtime_result.summary()
        assert "multiplier" in text and "predicted runtime change" in text

    def test_verify_false_skips_actual_measurement(self, tuner, arith_small,
                                                   arith_runtime_result):
        result = tuner.tune(arith_small, RUNTIME_OPTIMIZATION,
                            model=arith_runtime_result.model, verify=False)
        assert result.actual is None
        with pytest.raises(OptimizationError):
            result.actual_runtime_gain_percent()
        with pytest.raises(OptimizationError):
            result.prediction_errors()


class TestResourceOptimization:
    def test_resources_shrink_at_a_runtime_cost(self, tuner, arith_small,
                                                arith_runtime_result):
        result = tuner.tune(arith_small, RESOURCE_OPTIMIZATION,
                            model=arith_runtime_result.model)
        delta = result.actual_resource_delta()
        assert delta["lut"] < 0
        assert delta["bram"] < 0
        assert result.actual_runtime_gain_percent() <= 0

    def test_weights_change_the_recommendation(self, tuner, arith_small,
                                               arith_runtime_result):
        runtime = arith_runtime_result.configuration
        resources = tuner.tune(arith_small, RESOURCE_OPTIMIZATION,
                               model=arith_runtime_result.model).configuration
        assert runtime != resources


class TestDcacheStudy:
    """The paper's Section 5: optimizer vs exhaustive on the dcache sub-space."""

    def test_optimizer_matches_exhaustive_runtime(self, shared_platform, tuner, drr_small):
        result = tuner.tune(drr_small, RUNTIME_ONLY, parameters=DCACHE_STUDY_PARAMETERS)
        base = base_configuration()
        best_cycles = None
        for sets, size in itertools.product((1, 2, 3, 4), (1, 2, 4, 8, 16, 32)):
            config = base.replace(dcache_sets=sets, dcache_setsize_kb=size)
            if not shared_platform.fits(config):
                continue
            cycles = shared_platform.measure(drr_small, config).cycles
            best_cycles = cycles if best_cycles is None else min(best_cycles, cycles)
        assert result.actual is not None
        gap = 100.0 * (result.actual.cycles - best_cycles) / result.base.cycles
        # the paper reports a 0.02% gap; we allow a modest near-optimality margin
        assert gap <= 1.0

    def test_restricted_tuning_only_touches_dcache_geometry(self, tuner, drr_small):
        result = tuner.tune(drr_small, RUNTIME_ONLY, parameters=DCACHE_STUDY_PARAMETERS)
        assert set(result.changed_parameters()) <= set(DCACHE_STUDY_PARAMETERS)

    def test_dcache_has_no_effect_on_arith(self, tuner, arith_small):
        result = tuner.tune(arith_small, RUNTIME_ONLY, parameters=DCACHE_STUDY_PARAMETERS)
        assert result.actual is not None
        assert result.actual.cycles == result.base.cycles

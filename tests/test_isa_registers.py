"""Tests for the windowed register file and register naming."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.isa.registers import RegisterFile, register_name, register_number


class TestRegisterNaming:
    @pytest.mark.parametrize("name,number", [
        ("g0", 0), ("g7", 7), ("o0", 8), ("o7", 15), ("l0", 16), ("l7", 23),
        ("i0", 24), ("i7", 31), ("%o3", 11), ("sp", 14), ("fp", 30), ("ra", 15),
    ])
    def test_register_number(self, name, number):
        assert register_number(name) == number

    def test_register_name_roundtrip(self):
        for number in range(32):
            assert register_number(register_name(number)) == number

    @pytest.mark.parametrize("bad", ["x0", "g8", "o9", "", "q3", "g"])
    def test_invalid_names_rejected(self, bad):
        with pytest.raises(SimulationError):
            register_number(bad)

    def test_invalid_number_rejected(self):
        with pytest.raises(SimulationError):
            register_name(32)


class TestRegisterFile:
    def test_g0_is_hardwired_zero(self):
        regs = RegisterFile()
        regs.write(0, 12345)
        assert regs.read(0) == 0

    def test_values_wrap_to_32_bits(self):
        regs = RegisterFile()
        regs.write(1, 2**32 + 5)
        assert regs.read(1) == 5

    def test_read_signed(self):
        regs = RegisterFile()
        regs.write(1, 0xFFFFFFFF)
        assert regs.read_signed(1) == -1

    def test_globals_survive_window_changes(self):
        regs = RegisterFile()
        regs.write(register_number("g3"), 99)
        regs.save_window()
        assert regs.read(register_number("g3")) == 99

    def test_outs_become_ins_after_save(self):
        regs = RegisterFile()
        regs.write(register_number("o2"), 777)
        regs.save_window()
        assert regs.read(register_number("i2")) == 777
        # and writes to the callee's ins are visible in the caller's outs
        regs.write(register_number("i2"), 888)
        regs.restore_window()
        assert regs.read(register_number("o2")) == 888

    def test_locals_are_private_per_window(self):
        regs = RegisterFile()
        regs.write(register_number("l4"), 11)
        regs.save_window()
        regs.write(register_number("l4"), 22)
        regs.restore_window()
        assert regs.read(register_number("l4")) == 11

    def test_underflow_raises(self):
        regs = RegisterFile()
        with pytest.raises(SimulationError):
            regs.restore_window()

    def test_max_depth_tracking(self):
        regs = RegisterFile()
        for _ in range(5):
            regs.save_window()
        for _ in range(5):
            regs.restore_window()
        assert regs.max_depth == 5
        assert regs.window == 0

    def test_snapshot_names_all_registers(self):
        snapshot = RegisterFile().snapshot()
        assert len(snapshot) == 32
        assert snapshot["g0"] == 0

    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(st.integers(0, 2**32 - 1), min_size=1, max_size=8))
    def test_nested_calls_preserve_caller_outs(self, values):
        """Values written to the outs at each depth reappear after the matching restore."""
        regs = RegisterFile()
        for depth, value in enumerate(values):
            regs.write(register_number("o1"), value)
            regs.save_window()
        for value in reversed(values):
            regs.restore_window()
            assert regs.read(register_number("o1")) == value

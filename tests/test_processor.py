"""Tests for the ProcessorModel facade (caches + timing on whole programs)."""

import pytest

from repro.config import base_configuration
from repro.isa import Assembler
from repro.microarch import ProcessorModel


@pytest.fixture(scope="module")
def program():
    asm = Assembler("processor-test")
    asm.data_label("buffer")
    asm.word_data(list(range(256)))
    asm.set("g1", "buffer")
    asm.set("g2", 0)
    asm.set("g3", 256)
    asm.label("loop")
    asm.ld("g4", "g1", 0)
    asm.add("g2", "g2", "g4")
    asm.add("g1", "g1", 4)
    asm.subcc("g3", "g3", 1)
    asm.bne("loop")
    asm.halt()
    return asm.assemble()


class TestProcessorModel:
    def test_run_program_produces_consistent_results(self, program, base_config):
        run = ProcessorModel(base_config).run_program(program)
        assert run.functional.register("g2") == sum(range(256))
        assert run.statistics.cycles > run.statistics.instruction_count
        assert run.statistics.workload == "processor-test"

    def test_cache_statistics_reflect_the_access_stream(self, program, base_config):
        run = ProcessorModel(base_config).run_program(program)
        # 256 sequential word loads over 1 KB: one miss per 32-byte line
        assert run.statistics.dcache is not None
        assert run.statistics.dcache.read_misses == 1024 // 32
        assert run.statistics.icache is not None
        assert run.statistics.icache.read_misses >= 1

    def test_evaluate_accepts_precomputed_cache_statistics(self, program, base_config):
        model = ProcessorModel(base_config)
        trace = model.run_program(program).functional.trace
        cache_stats = model.simulate_caches(trace)
        direct = model.evaluate(trace)
        reused = model.evaluate(trace, cache_stats)
        assert direct.cycles == reused.cycles

    def test_different_configurations_share_functional_behaviour(self, program, base_config):
        fast = ProcessorModel(base_config.replace(dcache_fast_read=True)).run_program(program)
        slow = ProcessorModel(base_config).run_program(program)
        assert fast.functional.register("g2") == slow.functional.register("g2")
        assert fast.statistics.cycles < slow.statistics.cycles

    def test_smaller_line_size_lowers_miss_penalty_but_raises_misses(self, program, base_config):
        long_lines = ProcessorModel(base_config).run_program(program).statistics
        short_lines = ProcessorModel(
            base_config.replace(dcache_linesize_words=4)).run_program(program).statistics
        assert short_lines.dcache.read_misses > long_lines.dcache.read_misses

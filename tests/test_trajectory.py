"""The benchmark trajectory merger and its CI drift gate.

``benchmarks/trajectory.py`` folds every ``BENCH_*.json`` artifact into
one committed ``TRAJECTORY.json``.  These tests pin the schema rules
(boolean ``smoke`` flag, at least one ``configs_per_sec`` column,
numbers only) and the asymmetric check semantics: structure -- source
names, column keys, smoke flags -- is pinned for every source, but
*values* are pinned only for full-scale sources, because CI re-measures
the smoke artifacts on every run.
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture()
def trajectory(monkeypatch, tmp_path):
    """The trajectory module, pointed at an isolated artifact directory."""
    spec = importlib.util.spec_from_file_location(
        "trajectory_under_test", REPO_ROOT / "benchmarks" / "trajectory.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    monkeypatch.setattr(module, "BENCH_DIR", tmp_path)
    monkeypatch.setattr(module, "TRAJECTORY_PATH", tmp_path / "TRAJECTORY.json")
    return module


def write_artifact(directory, name, payload):
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def full_artifact(value=100.0):
    return {"smoke": False, "points": 9,
            "sweep": {"configs_per_sec": value}}


def smoke_artifact(value=10.0):
    return {"smoke": True, "sweep": {"configs_per_sec": value}}


def commit(trajectory):
    trajectory.TRAJECTORY_PATH.write_text(
        json.dumps(trajectory.build_trajectory(), indent=2, sort_keys=True))


class TestSchema:
    def test_columns_are_collected_by_dotted_path(self, trajectory):
        columns = trajectory.collect_columns({
            "configs_per_sec": 1.0,
            "traced": {"configs_per_sec": 2.0},
            "runs": [{"configs_per_sec": 3.0}],
        })
        assert columns == {"configs_per_sec": 1.0,
                           "traced.configs_per_sec": 2.0,
                           "runs[0].configs_per_sec": 3.0}

    def test_non_numeric_column_is_rejected(self, trajectory, tmp_path):
        write_artifact(tmp_path, "bad",
                       {"smoke": False, "configs_per_sec": "fast"})
        with pytest.raises(ValueError, match="must be a number"):
            trajectory.build_trajectory()

    def test_missing_smoke_flag_is_rejected(self, trajectory, tmp_path):
        write_artifact(tmp_path, "bad", {"configs_per_sec": 1.0})
        with pytest.raises(ValueError, match="smoke"):
            trajectory.build_trajectory()

    def test_artifact_without_columns_is_rejected(self, trajectory, tmp_path):
        write_artifact(tmp_path, "bad", {"smoke": False, "seconds": 2.0})
        with pytest.raises(ValueError, match="configs_per_sec"):
            trajectory.build_trajectory()

    def test_source_names_strip_the_artifact_wrapper(self, trajectory,
                                                     tmp_path):
        write_artifact(tmp_path, "sweep", full_artifact())
        write_artifact(tmp_path, "sweep.smoke", smoke_artifact())
        built = trajectory.build_trajectory()
        assert sorted(built["sources"]) == ["sweep", "sweep.smoke"]
        assert built["sources"]["sweep"]["smoke"] is False
        assert built["sources"]["sweep.smoke"]["smoke"] is True


class TestCheck:
    def test_round_trip_is_consistent(self, trajectory, tmp_path, capsys):
        write_artifact(tmp_path, "sweep", full_artifact())
        commit(trajectory)
        assert trajectory.check(trajectory.build_trajectory()) == 0
        assert "consistent" in capsys.readouterr().out

    def test_missing_committed_file_fails_with_fix(self, trajectory, tmp_path,
                                                   capsys):
        write_artifact(tmp_path, "sweep", full_artifact())
        assert trajectory.check(trajectory.build_trajectory()) == 1
        assert "--write" in capsys.readouterr().out

    def test_new_and_vanished_sources_fail(self, trajectory, tmp_path, capsys):
        write_artifact(tmp_path, "sweep", full_artifact())
        commit(trajectory)
        write_artifact(tmp_path, "obs", full_artifact(50.0))
        assert trajectory.check(trajectory.build_trajectory()) == 1
        assert "BENCH_obs.json is new" in capsys.readouterr().out

        (tmp_path / "BENCH_obs.json").unlink()
        (tmp_path / "BENCH_sweep.json").unlink()
        write_artifact(tmp_path, "obs", full_artifact(50.0))
        commit(trajectory)
        write_artifact(tmp_path, "sweep", full_artifact())
        (tmp_path / "BENCH_obs.json").unlink()
        assert trajectory.check(trajectory.build_trajectory()) == 1
        assert "is gone" in capsys.readouterr().out

    def test_column_drift_fails_for_full_scale_sources(self, trajectory,
                                                       tmp_path, capsys):
        write_artifact(tmp_path, "sweep", full_artifact(100.0))
        commit(trajectory)
        write_artifact(tmp_path, "sweep", full_artifact(120.0))
        assert trajectory.check(trajectory.build_trajectory()) == 1
        assert "drifted" in capsys.readouterr().out

    def test_smoke_value_changes_are_allowed(self, trajectory, tmp_path):
        write_artifact(tmp_path, "sweep.smoke", smoke_artifact(10.0))
        commit(trajectory)
        write_artifact(tmp_path, "sweep.smoke", smoke_artifact(99.0))
        assert trajectory.check(trajectory.build_trajectory()) == 0

    def test_smoke_structure_is_still_pinned(self, trajectory, tmp_path,
                                             capsys):
        write_artifact(tmp_path, "sweep.smoke", smoke_artifact())
        commit(trajectory)
        payload = smoke_artifact()
        payload["extra"] = {"configs_per_sec": 5.0}
        write_artifact(tmp_path, "sweep.smoke", payload)
        assert trajectory.check(trajectory.build_trajectory()) == 1
        assert "not committed" in capsys.readouterr().out

    def test_smoke_flag_flip_fails(self, trajectory, tmp_path, capsys):
        write_artifact(tmp_path, "sweep", full_artifact())
        commit(trajectory)
        artifact = full_artifact()
        artifact["smoke"] = True
        write_artifact(tmp_path, "sweep", artifact)
        assert trajectory.check(trajectory.build_trajectory()) == 1
        assert "smoke flag changed" in capsys.readouterr().out


class TestRepositoryTrajectory:
    def test_committed_trajectory_matches_artifacts(self):
        """The repo's own TRAJECTORY.json is in sync (same gate CI runs)."""
        spec = importlib.util.spec_from_file_location(
            "trajectory_repo", REPO_ROOT / "benchmarks" / "trajectory.py")
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.check(module.build_trajectory()) == 0

"""Tests for repro.config.parameters and the LEON parameter space."""

import math

import pytest

from repro.config.parameters import Parameter, ParameterSpace, Subsystem
from repro.config.leon_space import (
    CACHE_SET_SIZES_KB,
    Multiplier,
    Replacement,
    leon_parameter_space,
)
from repro.errors import ConfigurationError


class TestParameter:
    def test_basic_properties(self):
        p = Parameter("x", (1, 2, 3), 2, Subsystem.DCACHE, "test")
        assert p.cardinality == 3
        assert p.non_default_values == (1, 3)
        assert not p.is_binary()
        assert p.index_of(3) == 2

    def test_binary_parameter(self):
        p = Parameter("flag", (True, False), True, Subsystem.SYNTHESIS)
        assert p.is_binary()
        assert p.non_default_values == (False,)

    def test_validate_accepts_domain_values(self):
        p = Parameter("x", (1, 2), 1)
        assert p.validate(2) == 2

    def test_validate_rejects_out_of_domain(self):
        p = Parameter("x", (1, 2), 1)
        with pytest.raises(ConfigurationError):
            p.validate(3)

    def test_empty_domain_rejected(self):
        with pytest.raises(ConfigurationError):
            Parameter("x", (), 1)

    def test_default_must_be_in_domain(self):
        with pytest.raises(ConfigurationError):
            Parameter("x", (1, 2), 3)

    def test_duplicate_values_rejected(self):
        with pytest.raises(ConfigurationError):
            Parameter("x", (1, 1, 2), 1)

    def test_unknown_subsystem_rejected(self):
        with pytest.raises(ConfigurationError):
            Parameter("x", (1, 2), 1, subsystem="gpu")


class TestParameterSpace:
    def test_duplicate_names_rejected(self):
        p = Parameter("x", (1, 2), 1)
        with pytest.raises(ConfigurationError):
            ParameterSpace((p, p))

    def test_lookup_and_contains(self, space):
        assert "dcache_setsize_kb" in space
        assert space["dcache_setsize_kb"].default == 4
        with pytest.raises(ConfigurationError):
            space["nonexistent"]

    def test_defaults_cover_all_parameters(self, space):
        defaults = space.defaults()
        assert set(defaults) == set(space.names)

    def test_exhaustive_size_is_product_of_cardinalities(self, space):
        assert space.exhaustive_size() == math.prod(p.cardinality for p in space)

    def test_subset_preserves_order(self, space):
        sub = space.subset(["dcache_setsize_kb", "dcache_sets"])
        assert sub.names == ("dcache_sets", "dcache_setsize_kb")

    def test_subset_unknown_parameter(self, space):
        with pytest.raises(ConfigurationError):
            space.subset(["bogus"])

    def test_iter_assignments_with_overrides(self, space):
        assignments = list(space.iter_assignments(
            {name: [space[name].default] for name in space.names if name != "dcache_sets"}))
        assert len(assignments) == space["dcache_sets"].cardinality

    def test_iter_assignments_rejects_unknown_override(self, space):
        with pytest.raises(ConfigurationError):
            next(space.iter_assignments({"bogus": [1]}))

    def test_one_factor_assignments_differ_in_one_parameter(self, space):
        defaults = space.defaults()
        for name, value, assignment in space.iter_one_factor_assignments():
            diff = {k for k, v in assignment.items() if defaults[k] != v}
            assert diff == {name}
            assert assignment[name] == value


class TestLeonSpace:
    def test_paper_parameter_inventory(self, space):
        # the subsystems of the paper's Figure 1
        assert len(space.by_subsystem(Subsystem.ICACHE)) == 4
        assert len(space.by_subsystem(Subsystem.DCACHE)) == 6
        assert len(space.by_subsystem(Subsystem.INTEGER_UNIT)) == 7
        assert len(space.by_subsystem(Subsystem.SYNTHESIS)) == 1

    def test_64kb_setsize_excluded(self, space):
        assert 64 not in CACHE_SET_SIZES_KB
        assert 64 not in space["dcache_setsize_kb"].values

    def test_defaults_match_paper_figure1(self, space):
        defaults = space.defaults()
        assert defaults["icache_sets"] == 1
        assert defaults["icache_setsize_kb"] == 4
        assert defaults["icache_linesize_words"] == 8
        assert defaults["icache_replacement"] == Replacement.RANDOM
        assert defaults["dcache_fast_read"] is False
        assert defaults["fast_jump"] is True
        assert defaults["load_delay"] == 1
        assert defaults["register_windows"] == 8
        assert defaults["multiplier"] == Multiplier.M16X16
        assert defaults["divider"] == "radix2"
        assert defaults["infer_mult_div"] is True

    def test_perturbation_count_matches_paper_order_of_magnitude(self, space):
        # the paper counts 52 variables; our programmatically derived space has 53
        assert space.perturbation_count() == 53

    def test_exhaustive_size_is_intractable(self, space):
        # hundreds of millions of configurations: exhaustive search is infeasible
        assert space.exhaustive_size() > 10**8

    def test_register_window_domain(self, space):
        values = space["register_windows"].values
        assert values[0] == 8
        assert values[1:] == tuple(range(16, 33))

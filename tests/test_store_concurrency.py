"""Concurrent access to one shared SQLite result store.

Large campaigns shard their configuration space across several evaluator
processes that share one ``.sqlite`` store (the resumability story of
ROADMAP's sharding follow-up).  These tests drive two evaluators -- and,
separately, many raw writer threads -- against a single database file and
assert the invariants that make sharing sound: no lost rows, no
duplicated rows (the ``(context, fingerprint, config_key)`` primary key
deduplicates racing writers), and a resuming evaluator answers entirely
from the store regardless of which writer produced each row.
"""

import threading

from repro.config import base_configuration
from repro.engine import ParallelEvaluator, SqliteResultStore, open_store
from repro.engine.store import workload_fingerprint
from repro.platform import LiquidPlatform


def config_grid(base, count):
    """``count`` distinct configurations varying the dcache geometry."""
    grid = []
    for sets in (1, 2, 4):
        for size in (1, 2, 4, 8, 16):
            grid.append(base.replace(dcache_sets=sets, dcache_setsize_kb=size))
    assert len(grid) >= count
    return grid[:count]


class TestTwoEvaluatorsOneStore:
    def test_overlapping_batches_lose_and_duplicate_nothing(self, tmp_path,
                                                            base_config,
                                                            arith_small):
        """Two evaluators with overlapping shards: the union survives exactly."""
        path = str(tmp_path / "shared.sqlite")
        grid = config_grid(base_config, 9)
        shard_a, shard_b = grid[:6], grid[3:]  # overlap on grid[3:6]

        first = ParallelEvaluator(workers=1, store=SqliteResultStore(path))
        second = ParallelEvaluator(workers=1, store=SqliteResultStore(path))
        with first, second:
            results_a = first.measure_many(arith_small, shard_a)
            results_b = second.measure_many(arith_small, shard_b)

        # the overlap was measured twice but stored once: 9 rows, not 12
        assert len(SqliteResultStore(path)) == len(grid)
        # both evaluators agree bit-for-bit on the overlapping configurations
        assert results_a[3:] == results_b[:3]

        with ParallelEvaluator(workers=1, store=SqliteResultStore(path)) as reader:
            resumed = reader.measure_many(arith_small, grid)
            assert resumed[:6] == results_a
            assert resumed[3:] == results_b
            assert reader.stats.store_hits == len(grid)
            assert reader.platform.effort()["runs"] == 0  # no re-simulation

    def test_interleaved_writers_see_each_others_rows_on_reload(self, tmp_path,
                                                                base_config,
                                                                arith_small):
        path = str(tmp_path / "interleaved.db")
        grid = config_grid(base_config, 6)
        first = ParallelEvaluator(workers=1, store=open_store(path))
        second = ParallelEvaluator(workers=1, store=open_store(path))
        with first, second:
            for i, config in enumerate(grid):  # strict alternation
                (first if i % 2 == 0 else second).measure(arith_small, config)
        store = SqliteResultStore(path)
        assert len(store) == len(grid)
        for config in grid:
            assert store.get(arith_small, config) is not None


class TestThreadedWriters:
    def test_racing_threads_neither_lose_nor_duplicate_rows(self, tmp_path,
                                                            base_config,
                                                            arith_small):
        """Many threads, own connections, same file, overlapping rows."""
        path = str(tmp_path / "threads.sqlite")
        grid = config_grid(base_config, 10)
        # measure once up front; the race under test is the store, not the sim
        measurements = LiquidPlatform().measure_many(arith_small, grid)
        errors = []

        def writer(offset):
            try:
                store = SqliteResultStore(path)  # one connection per thread
                # every thread writes the full set, starting at its own offset
                for i in range(len(grid)):
                    index = (offset + i) % len(grid)
                    store.put(arith_small, measurements[index])
                store.close()
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        threads = [threading.Thread(target=writer, args=(offset,))
                   for offset in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors, f"writer thread failed: {errors[0]!r}"
        store = SqliteResultStore(path)
        assert len(store) == len(grid)  # every row exactly once
        fingerprint = workload_fingerprint(arith_small)
        for config, expected in zip(grid, measurements):
            from repro.engine.store import _config_key_string
            assert (fingerprint, _config_key_string(config)) in store
            assert store.get(arith_small, config) == expected

"""Concurrent access to one shared SQLite result store.

Large campaigns shard their configuration space across several evaluator
processes that share one ``.sqlite`` store (the resumability story of
ROADMAP's sharding follow-up).  These tests drive two evaluators -- and,
separately, many raw writer threads -- against a single database file and
assert the invariants that make sharing sound: no lost rows, no
duplicated rows (the ``(context, fingerprint, config_key)`` primary key
deduplicates racing writers), and a resuming evaluator answers entirely
from the store regardless of which writer produced each row.
"""

import random
import sqlite3
import threading

import pytest

from repro.config import base_configuration
from repro.engine import ParallelEvaluator, SqliteResultStore, busy_retry, open_store
from repro.engine.store import workload_fingerprint
from repro.platform import LiquidPlatform


def config_grid(base, count):
    """``count`` distinct configurations varying the dcache geometry."""
    grid = []
    for sets in (1, 2, 4):
        for size in (1, 2, 4, 8, 16):
            grid.append(base.replace(dcache_sets=sets, dcache_setsize_kb=size))
    assert len(grid) >= count
    return grid[:count]


class TestTwoEvaluatorsOneStore:
    def test_overlapping_batches_lose_and_duplicate_nothing(self, tmp_path,
                                                            base_config,
                                                            arith_small):
        """Two evaluators with overlapping shards: the union survives exactly."""
        path = str(tmp_path / "shared.sqlite")
        grid = config_grid(base_config, 9)
        shard_a, shard_b = grid[:6], grid[3:]  # overlap on grid[3:6]

        first = ParallelEvaluator(workers=1, store=SqliteResultStore(path))
        second = ParallelEvaluator(workers=1, store=SqliteResultStore(path))
        with first, second:
            results_a = first.measure_many(arith_small, shard_a)
            results_b = second.measure_many(arith_small, shard_b)

        # the overlap was measured twice but stored once: 9 rows, not 12
        assert len(SqliteResultStore(path)) == len(grid)
        # both evaluators agree bit-for-bit on the overlapping configurations
        assert results_a[3:] == results_b[:3]

        with ParallelEvaluator(workers=1, store=SqliteResultStore(path)) as reader:
            resumed = reader.measure_many(arith_small, grid)
            assert resumed[:6] == results_a
            assert resumed[3:] == results_b
            assert reader.stats.store_hits == len(grid)
            assert reader.platform.effort()["runs"] == 0  # no re-simulation

    def test_interleaved_writers_see_each_others_rows_on_reload(self, tmp_path,
                                                                base_config,
                                                                arith_small):
        path = str(tmp_path / "interleaved.db")
        grid = config_grid(base_config, 6)
        first = ParallelEvaluator(workers=1, store=open_store(path))
        second = ParallelEvaluator(workers=1, store=open_store(path))
        with first, second:
            for i, config in enumerate(grid):  # strict alternation
                (first if i % 2 == 0 else second).measure(arith_small, config)
        store = SqliteResultStore(path)
        assert len(store) == len(grid)
        for config in grid:
            assert store.get(arith_small, config) is not None


class TestThreadedWriters:
    def test_racing_threads_neither_lose_nor_duplicate_rows(self, tmp_path,
                                                            base_config,
                                                            arith_small):
        """Many threads, own connections, same file, overlapping rows."""
        path = str(tmp_path / "threads.sqlite")
        grid = config_grid(base_config, 10)
        # measure once up front; the race under test is the store, not the sim
        measurements = LiquidPlatform().measure_many(arith_small, grid)
        errors = []

        def writer(offset):
            try:
                store = SqliteResultStore(path)  # one connection per thread
                # every thread writes the full set, starting at its own offset
                for i in range(len(grid)):
                    index = (offset + i) % len(grid)
                    store.put(arith_small, measurements[index])
                store.close()
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        threads = [threading.Thread(target=writer, args=(offset,))
                   for offset in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors, f"writer thread failed: {errors[0]!r}"
        store = SqliteResultStore(path)
        assert len(store) == len(grid)  # every row exactly once
        fingerprint = workload_fingerprint(arith_small)
        for config, expected in zip(grid, measurements):
            from repro.engine.store import _config_key_string
            assert (fingerprint, _config_key_string(config)) in store
            assert store.get(arith_small, config) == expected


class TestBusyRetryBackoff:
    """The lock-retry backoff is decorrelated jitter, not lockstep.

    Jitter-free exponential backoff makes every colliding writer sleep
    the same schedule, so they wake simultaneously and collide again.
    Decorrelated jitter (each delay drawn from ``[base, 3 * previous]``,
    clamped to the cap) spreads the retries out.
    """

    @staticmethod
    def _locked_then_ok(conflicts):
        """An operation that raises ``database is locked`` N times."""
        state = {"left": conflicts}

        def operation():
            if state["left"] > 0:
                state["left"] -= 1
                raise sqlite3.OperationalError("database is locked")
            return "ok"

        return operation

    def _delays(self, seed, conflicts=5, **kwargs):
        slept = []
        result = busy_retry(
            self._locked_then_ok(conflicts), attempts=conflicts + 1,
            rng=random.Random(seed), sleep=slept.append, **kwargs)
        assert result == "ok"
        return slept

    def test_delays_are_jittered_within_base_and_cap(self):
        delays = self._delays(seed=1, base_delay=0.05, max_delay=2.0)
        assert len(delays) == 5
        assert all(0.05 <= delay <= 2.0 for delay in delays)
        # jitter: a growing-by-3x deterministic ladder would be strictly
        # monotone with delay[i] == 3 * delay[i-1]; drawn delays are not
        assert delays != sorted(set([0.05 * 3 ** i for i in range(5)]))[:5]

    def test_two_retry_chains_do_not_sleep_in_lockstep(self):
        first = self._delays(seed=1)
        second = self._delays(seed=2)
        assert first != second, (
            "identical sleep schedules resynchronise colliding writers")

    def test_conflicts_are_still_accounted(self):
        from repro.obs.metrics import get_registry

        get_registry().drain()  # isolate this test's counts
        on_conflict_calls = []
        busy_retry(
            self._locked_then_ok(3), attempts=6,
            rng=random.Random(3), sleep=lambda delay: None,
            on_conflict=lambda: on_conflict_calls.append(1))
        assert len(on_conflict_calls) == 3
        snapshot = get_registry().drain()
        assert snapshot["store.lock_conflicts"]["value"] == 3

    def test_budget_exhaustion_reraises_the_lock_error(self):
        with pytest.raises(sqlite3.OperationalError):
            busy_retry(
                self._locked_then_ok(10), attempts=3,
                rng=random.Random(4), sleep=lambda delay: None)

    def test_foreign_operational_errors_pass_straight_through(self):
        def broken():
            raise sqlite3.OperationalError("no such table: nope")

        slept = []
        with pytest.raises(sqlite3.OperationalError, match="no such table"):
            busy_retry(broken, rng=random.Random(5), sleep=slept.append)
        assert slept == []  # no retries, no sleeps

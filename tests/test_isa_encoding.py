"""Round-trip and error tests for the instruction encoding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AssemblyError
from repro.isa.encoding import IMM13_MAX, IMM13_MIN, INSTRUCTION_BYTES, decode, encode
from repro.isa.instructions import CONDITION_CODES, Instruction, Op

ALU_OPS = [Op.ADD, Op.ADDCC, Op.SUB, Op.SUBCC, Op.AND, Op.ANDCC, Op.OR, Op.ORCC,
           Op.XOR, Op.XORCC, Op.SLL, Op.SRL, Op.SRA, Op.UMUL, Op.SMUL, Op.UDIV, Op.SDIV,
           Op.LD, Op.LDUB, Op.LDUH, Op.LDSB, Op.LDSH, Op.ST, Op.STB, Op.STH, Op.JMPL,
           Op.SAVE, Op.RESTORE]


registers = st.integers(0, 31)


@st.composite
def register_form_instructions(draw):
    op = draw(st.sampled_from(ALU_OPS))
    return Instruction(op=op, rd=draw(registers), rs1=draw(registers), rs2=draw(registers))


@st.composite
def immediate_form_instructions(draw):
    op = draw(st.sampled_from(ALU_OPS))
    imm = draw(st.integers(IMM13_MIN, IMM13_MAX))
    return Instruction(op=op, rd=draw(registers), rs1=draw(registers), imm=imm)


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(instr=st.one_of(register_form_instructions(), immediate_form_instructions()))
    def test_three_operand_roundtrip(self, instr):
        address = 0x1000
        assert decode(encode(instr, address), address) == instr

    @settings(max_examples=100, deadline=None)
    @given(rd=registers, imm=st.integers(0, (1 << 21) - 1))
    def test_sethi_roundtrip(self, rd, imm):
        instr = Instruction(op=Op.SETHI, rd=rd, imm=imm)
        assert decode(encode(instr, 0), 0) == instr

    @settings(max_examples=100, deadline=None)
    @given(condition=st.sampled_from(CONDITION_CODES),
           displacement=st.integers(-10_000, 10_000))
    def test_branch_roundtrip(self, condition, displacement):
        address = 0x40_000
        target = address + displacement * INSTRUCTION_BYTES
        instr = Instruction(op=Op.BRANCH, condition=condition, target=target)
        decoded = decode(encode(instr, address), address)
        assert decoded.op is Op.BRANCH
        assert decoded.condition == condition
        assert decoded.target == target

    @settings(max_examples=50, deadline=None)
    @given(displacement=st.integers(-100_000, 100_000))
    def test_call_roundtrip(self, displacement):
        address = 0x80_000
        instr = Instruction(op=Op.CALL, target=address + displacement * INSTRUCTION_BYTES)
        decoded = decode(encode(instr, address), address)
        assert decoded.op is Op.CALL
        assert decoded.target == instr.target

    @pytest.mark.parametrize("op", [Op.NOP, Op.HALT, Op.RET, Op.RETL])
    def test_zero_operand_roundtrip(self, op):
        instr = Instruction(op=op)
        assert decode(encode(instr, 0), 0) == instr


class TestErrors:
    def test_unresolved_branch_rejected(self):
        with pytest.raises(AssemblyError):
            encode(Instruction(op=Op.BRANCH, condition="e", label="somewhere"), 0)

    def test_immediate_out_of_range(self):
        with pytest.raises(AssemblyError):
            encode(Instruction(op=Op.ADD, rd=1, rs1=1, imm=IMM13_MAX + 1), 0)

    def test_sethi_immediate_out_of_range(self):
        with pytest.raises(AssemblyError):
            encode(Instruction(op=Op.SETHI, rd=1, imm=1 << 21), 0)

    def test_register_and_immediate_both_given(self):
        with pytest.raises(AssemblyError):
            Instruction(op=Op.ADD, rd=1, rs1=2, rs2=3, imm=4).validate()

    def test_register_out_of_range(self):
        with pytest.raises(AssemblyError):
            Instruction(op=Op.ADD, rd=32, rs1=0, rs2=0).validate()

    def test_unknown_branch_condition(self):
        with pytest.raises(AssemblyError):
            Instruction(op=Op.BRANCH, condition="zz", target=0).validate()

    def test_illegal_opcode_word(self):
        with pytest.raises(AssemblyError):
            decode(0xFFFFFFFF, 0)


class TestInstructionProperties:
    def test_store_reads_its_data_register(self):
        store = Instruction(op=Op.ST, rd=5, rs1=6, imm=0)
        assert 5 in store.reads_registers
        assert store.writes_register is None

    def test_load_writes_destination(self):
        load = Instruction(op=Op.LD, rd=5, rs1=6, imm=0)
        assert load.writes_register == 5
        assert load.is_load and not load.is_store

    def test_call_writes_o7(self):
        call = Instruction(op=Op.CALL, target=0)
        assert call.writes_register == 15

    def test_sets_icc_only_for_cc_ops(self):
        assert Instruction(op=Op.SUBCC, rd=0, rs1=1, imm=0).sets_icc
        assert not Instruction(op=Op.SUB, rd=0, rs1=1, imm=0).sets_icc

"""Tests for the one-factor perturbation space (the paper's x_i variables)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import PerturbationSpace, check_rules, leon_parameter_space
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def pspace():
    return PerturbationSpace(leon_parameter_space())


class TestPerturbationSpace:
    def test_variable_count_matches_space(self, pspace, space):
        assert len(pspace) == space.perturbation_count() == 53

    def test_groups_only_for_multivalued_parameters(self, pspace):
        group_params = {g.parameter for g in pspace.groups}
        assert "dcache_setsize_kb" in group_params
        assert "register_windows" in group_params
        assert "multiplier" in group_params
        # binary parameters have a single non-default value: no group needed
        assert "fast_jump" not in group_params
        assert "dcache_fast_read" not in group_params

    def test_every_variable_has_non_default_value(self, pspace):
        for var in pspace:
            assert var.value != var.default
            assert var.label == f"{var.parameter}={var.value}"

    def test_find_and_variables_for(self, pspace):
        var = pspace.find("dcache_setsize_kb", 32)
        assert var.value == 32
        assert var in pspace.variables_for("dcache_setsize_kb")
        with pytest.raises(ConfigurationError):
            pspace.find("dcache_setsize_kb", 4)  # default value has no variable

    def test_single_configuration_differs_in_one_parameter(self, pspace):
        for var, config in pspace.iter_single_configurations():
            diff = config.diff(pspace.base)
            assert set(diff) == {var.parameter}
            assert diff[var.parameter][1] == var.value

    def test_apply_empty_selection_is_base(self, pspace):
        assert pspace.apply(()) == pspace.base

    def test_apply_rejects_two_values_of_same_parameter(self, pspace):
        group = next(g for g in pspace.groups if len(g) >= 2)
        with pytest.raises(ConfigurationError):
            pspace.apply(group.variable_indices[:2])

    def test_apply_rejects_unknown_index(self, pspace):
        with pytest.raises(ConfigurationError):
            pspace.apply((10_000,))

    def test_selection_roundtrip(self, pspace):
        selection = (pspace.find("dcache_setsize_kb", 32).index,
                     pspace.find("multiplier", "m32x32").index)
        config = pspace.apply(selection)
        assert pspace.selection_for(config) == tuple(sorted(selection))

    def test_validate_rules_flag(self, pspace):
        lrr = pspace.find("dcache_replacement", "lrr").index
        # without rule validation the configuration is produced
        config = pspace.apply((lrr,))
        assert config.dcache_replacement == "lrr"
        with pytest.raises(ConfigurationError):
            pspace.apply((lrr,), validate_rules=True)

    def test_restricted_space(self):
        restricted = PerturbationSpace(
            leon_parameter_space(), ["dcache_sets", "dcache_setsize_kb"])
        params = {v.parameter for v in restricted}
        assert params == {"dcache_sets", "dcache_setsize_kb"}
        assert len(restricted) == 3 + 5

    def test_restricted_space_unknown_parameter(self):
        with pytest.raises(ConfigurationError):
            PerturbationSpace(leon_parameter_space(), ["bogus"])


@settings(max_examples=50, deadline=None)
@given(data=st.data())
def test_random_group_respecting_selection_is_applicable(data):
    """Any selection with at most one variable per parameter yields a configuration
    that differs from the base exactly on the selected parameters."""
    pspace = PerturbationSpace(leon_parameter_space())
    by_param = {}
    for var in pspace:
        by_param.setdefault(var.parameter, []).append(var.index)
    selection = []
    for parameter, indices in by_param.items():
        choice = data.draw(st.sampled_from([None] + indices), label=parameter)
        if choice is not None:
            selection.append(choice)
    config = pspace.apply(selection)
    assert set(config.diff(pspace.base)) == {pspace.variable(i).parameter for i in selection}

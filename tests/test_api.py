"""Top-level API and error-hierarchy tests."""

import pytest

import repro
from repro import errors


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_objects_compose(self):
        platform = repro.LiquidPlatform()
        base = repro.base_configuration()
        report = platform.build(base)
        assert report.fits()
        space = repro.PerturbationSpace(repro.leon_parameter_space())
        assert len(space) == 53


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in ("ConfigurationError", "ResourceError", "AssemblyError",
                     "SimulationError", "OptimizationError", "MeasurementError",
                     "VerificationError"):
            error_type = getattr(errors, name)
            assert issubclass(error_type, errors.ReproError)

    def test_errors_are_catchable_as_repro_error(self):
        with pytest.raises(errors.ReproError):
            repro.leon_parameter_space()["not_a_parameter"]

"""Tests for the four benchmark workloads (correctness and characterisation)."""

import numpy as np
import pytest

from repro.errors import VerificationError
from repro.workloads import (
    ArithWorkload,
    BlastnWorkload,
    DrrWorkload,
    FragWorkload,
    WORKLOAD_ORDER,
    small_workloads,
    standard_workloads,
)
from repro.workloads.data import (
    dna_sequence,
    make_dna_dataset,
    make_packet_trace,
    plant_matches,
)
from repro.workloads.frag import _checksum


class TestSyntheticData:
    def test_dna_sequence_alphabet_and_determinism(self):
        seq = dna_sequence(500, seed=1)
        assert seq.min() >= 0 and seq.max() <= 3
        assert np.array_equal(seq, dna_sequence(500, seed=1))
        assert not np.array_equal(seq, dna_sequence(500, seed=2))

    def test_plant_matches_inserts_query_substrings(self):
        database = dna_sequence(2000, seed=3)
        query = dna_sequence(64, seed=4)
        planted = plant_matches(database, query, count=5, match_length=16, seed=5)
        assert len(planted) == len(database)
        # at least one exact 16-mer of the query must now occur in the database
        query_words = {tuple(query[i:i + 16]) for i in range(len(query) - 16 + 1)}
        db_words = {tuple(planted[i:i + 16]) for i in range(len(planted) - 16 + 1)}
        assert query_words & db_words

    def test_dna_dataset_geometry(self):
        dataset = make_dna_dataset(database_length=1000, query_length=50, word_size=5)
        assert dataset.database_length == 1000
        assert dataset.table_entries == 4 ** 5

    def test_packet_trace_ranges(self):
        trace = make_packet_trace(300, flow_count=8, seed=11)
        assert trace.packet_count == 300
        assert trace.lengths.min() >= 40 and trace.lengths.max() <= 1500
        assert set(np.unique(trace.flow_ids)) <= set(range(8))
        assert len(trace.lengths_for_flow(0)) == int(np.sum(trace.flow_ids == 0))


class TestArith:
    def test_results_match_reference(self, arith_small):
        results = arith_small.verify()
        assert results == dict(arith_small.reference())

    def test_not_memory_intensive(self, arith_small):
        mix = arith_small.mix_summary()
        assert mix["memory_fraction"] == 0.0
        assert mix["muldiv_fraction"] > 0.1

    def test_iteration_count_scales_instructions(self):
        short = ArithWorkload(iterations=50).trace().instruction_count
        long = ArithWorkload(iterations=100).trace().instruction_count
        assert long > short

    def test_invalid_iterations_rejected(self):
        with pytest.raises(ValueError):
            ArithWorkload(iterations=0)

    def test_verification_detects_corruption(self, arith_small):
        result = arith_small.run_functional()
        # corrupt a register after the fact and make sure verify() notices
        result.registers.write(2, 0xDEAD)
        with pytest.raises(VerificationError):
            arith_small.verify(result)
        # restore for other tests
        arith_small.run_functional(force=True)


class TestFrag:
    def test_results_match_reference(self, frag_small):
        results = frag_small.verify()
        reference = dict(frag_small.reference())
        assert results == reference
        assert reference["fragment_count"] > frag_small.packet_count  # packets do fragment

    def test_checksum_helper_is_ones_complement(self):
        header = [0x4500, 0x0054, 0x0000, 0x4000, 0x4011, 0, 0xC0A8, 0x0001, 0xC0A8, 0x00C7]
        checksum = _checksum(header)
        folded = sum(header) + checksum
        folded = (folded & 0xFFFF) + (folded >> 16)
        folded = (folded & 0xFFFF) + (folded >> 16)
        assert folded == 0xFFFF

    def test_fragment_count_formula(self, frag_small):
        expected = sum(
            (len(payload) + frag_small.chunk - 1) // frag_small.chunk
            for _, payload in frag_small._packets)
        assert frag_small.reference()["fragment_count"] == expected

    def test_bytes_copied_equals_total_payload(self, frag_small):
        expected = sum(len(payload) for _, payload in frag_small._packets)
        assert frag_small.reference()["bytes_copied"] == expected

    def test_invalid_mtu_rejected(self):
        with pytest.raises(ValueError):
            FragWorkload(mtu=30)
        with pytest.raises(ValueError):
            FragWorkload(mtu=277)

    def test_streaming_memory_profile(self, frag_small):
        mix = frag_small.mix_summary()
        assert mix["store_fraction"] > 0.05
        assert mix["load_fraction"] > 0.05


class TestDrr:
    def test_results_match_reference(self, drr_small):
        results = drr_small.verify()
        assert results["packets_served"] == drr_small.packet_count
        assert results["bytes_served"] == sum(drr_small._lengths)
        assert results["rounds"] >= 1

    def test_per_flow_bytes_match_classification(self, drr_small):
        result = drr_small.run_functional()
        drr_small.verify(result)
        assert drr_small.served_bytes_per_flow(result) == drr_small.reference_per_flow_bytes()

    def test_deficit_round_robin_fairness(self):
        """With equal quanta no backlogged flow is starved: the spread of service
        rounds needed per flow stays within the DRR fairness bound."""
        workload = DrrWorkload(packet_count=400, seed=5)
        reference = workload.reference()
        per_flow = workload.reference_per_flow_bytes()
        backlogged = [b for b in per_flow if b > 0]
        # every backlogged flow could be served within the observed number of rounds
        assert max(backlogged) <= reference["rounds"] * workload.QUANTUM

    def test_quantum_covers_largest_packet(self, drr_small):
        assert max(drr_small._lengths) <= drr_small.QUANTUM

    def test_packet_count_bounds(self):
        with pytest.raises(ValueError):
            DrrWorkload(packet_count=0)
        with pytest.raises(ValueError):
            DrrWorkload(packet_count=DrrWorkload.QUEUE_CAPACITY + 1)

    def test_flow_table_reuse_makes_drr_memory_sensitive(self, drr_small):
        mix = drr_small.mix_summary()
        assert mix["memory_fraction"] > 0.2
        assert mix["muldiv_fraction"] > 0.0


class TestBlastn:
    def test_results_match_reference(self, blastn_small):
        results = blastn_small.verify()
        assert results["hits"] > 0          # planted matches guarantee seed hits
        assert results["score"] > 0

    def test_planted_matches_increase_hits(self):
        with_planting = BlastnWorkload(database_length=1200, query_length=48,
                                       query_count=1, planted_matches=8, seed=9)
        without_planting = BlastnWorkload(database_length=1200, query_length=48,
                                          query_count=1, planted_matches=0, seed=9)
        assert with_planting.reference()["hits"] >= without_planting.reference()["hits"]

    def test_memory_intensive_profile(self, blastn_small):
        mix = blastn_small.mix_summary()
        assert mix["load_fraction"] > 0.1

    def test_too_short_inputs_rejected(self):
        with pytest.raises(ValueError):
            BlastnWorkload(query_length=6)
        with pytest.raises(ValueError):
            BlastnWorkload(database_length=5)

    def test_query_count_scales_work(self):
        one = BlastnWorkload(database_length=1200, query_length=48, query_count=1)
        two = BlastnWorkload(database_length=1200, query_length=48, query_count=2)
        assert two.trace().instruction_count > 1.8 * one.trace().instruction_count


class TestRegistry:
    def test_standard_and_small_workloads_cover_the_paper(self):
        assert set(standard_workloads()) == set(WORKLOAD_ORDER)
        assert set(small_workloads()) == set(WORKLOAD_ORDER)

    def test_trace_is_cached(self, arith_small):
        assert arith_small.trace() is arith_small.trace()

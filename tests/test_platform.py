"""Tests for the Liquid measurement platform (build/measure, memoisation, deltas)."""

import pytest

from repro.config import base_configuration
from repro.errors import MeasurementError
from repro.platform import LiquidPlatform


class TestBuild:
    def test_build_matches_synthesis_model(self, platform, base_config):
        report = platform.build(base_config)
        assert report.luts == 14_992 and report.brams == 82

    def test_build_is_memoised(self, base_config):
        platform = LiquidPlatform()
        platform.build(base_config)
        platform.build(base_config)
        platform.build(base_config.replace(multiplier="m32x32"))
        assert platform.effort()["builds"] == 2

    def test_oversized_configuration_rejected(self, base_config):
        platform = LiquidPlatform()
        huge = base_config.replace(icache_sets=4, icache_setsize_kb=32,
                                   dcache_sets=4, dcache_setsize_kb=32)
        assert not platform.fits(huge)
        with pytest.raises(MeasurementError):
            platform.build(huge)

    def test_enforce_fit_can_be_disabled(self, base_config):
        lenient = LiquidPlatform(enforce_fit=False)
        huge = base_config.replace(icache_sets=4, icache_setsize_kb=32,
                                   dcache_sets=4, dcache_setsize_kb=32)
        report = lenient.build(huge)
        assert not report.fits()


class TestMeasure:
    def test_measure_combines_resources_and_runtime(self, base_config, arith_small):
        platform = LiquidPlatform()
        measurement = platform.measure(arith_small, base_config)
        assert measurement.workload == "arith"
        assert measurement.cycles > 0
        assert measurement.lut_percent == pytest.approx(39.04, abs=0.01)
        assert measurement.chip_cost == pytest.approx(
            measurement.lut_percent + measurement.bram_percent)
        assert measurement.summary()["cycles"] == float(measurement.cycles)

    def test_profile_is_memoised_per_configuration(self, base_config, arith_small):
        platform = LiquidPlatform()
        platform.measure(arith_small, base_config)
        platform.measure(arith_small, base_config)
        assert platform.effort()["runs"] == 1
        platform.measure(arith_small, base_config.replace(multiplier="m32x32"))
        assert platform.effort()["runs"] == 2

    def test_cache_simulations_shared_across_configurations(self, base_config, arith_small):
        platform = LiquidPlatform()
        platform.measure(arith_small, base_config)
        # changing only the multiplier must not re-simulate the caches
        platform.measure(arith_small, base_config.replace(multiplier="m32x32"))
        assert len(platform._cache_runs) == 2  # one icache + one dcache entry

    def test_deltas_relative_to_base(self, base_config, arith_small):
        platform = LiquidPlatform()
        base = platform.measure(arith_small, base_config)
        faster = platform.measure(arith_small, base_config.replace(multiplier="m32x32"))
        delta = faster.delta(base)
        assert delta.rho < 0                      # faster multiplier: runtime decreases
        assert delta.lam > 0                      # ... at a LUT cost
        assert delta.beta == pytest.approx(0.0)   # no BRAM change
        assert delta.chip == pytest.approx(delta.lam + delta.beta)

    def test_different_workloads_have_distinct_profiles(self, base_config,
                                                        arith_small, frag_small):
        platform = LiquidPlatform()
        arith = platform.measure(arith_small, base_config)
        frag = platform.measure(frag_small, base_config)
        assert arith.cycles != frag.cycles
        assert platform.effort()["runs"] == 2

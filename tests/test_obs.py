"""The unified telemetry layer: tracer, metrics registry, dashboard.

These tests pin the observability contracts: spans nest and record
correct depth/attrs, disabled tracing is a true no-op, worker spans
survive the pool fan-out without loss and merge into distinct per-pid
lanes of a schema-valid Chrome trace, the typed :class:`EngineStats`
view can never drift from its backing registry (snapshot keys ==
dataclass fields), stage spans reconcile with ``stage_seconds``,
campaign workers persist heartbeat rows that the dashboard ages into
``STALE`` flags, and the CLI's ``--status --json`` / ``--status
--watch`` surfaces terminate cleanly without disturbing the plain
``--status`` format older tooling parses.
"""

import io
import json
import os
import subprocess
import sys
import threading
from dataclasses import fields
from pathlib import Path

import pytest

from repro.engine import CampaignGrid, CampaignWorker, ParallelEvaluator
from repro.engine.backend import EngineStats
from repro.obs import (
    MetricsRegistry,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_registry,
    get_tracer,
    set_registry,
    span,
    tracing_enabled,
    validate_chrome_trace,
)
from repro.obs.dashboard import campaign_snapshot, render_dashboard, watch
from repro.platform import LiquidPlatform

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Every test starts and ends with fresh process-global telemetry."""
    disable_tracing()
    set_registry(MetricsRegistry())
    yield
    disable_tracing()
    set_registry(MetricsRegistry())


def grid_configs(base_config, count=6):
    configs = [
        base_config.replace(dcache_sets=sets, dcache_setsize_kb=size)
        for sets in (1, 2, 3)
        for size in (1, 2, 4, 8)
    ]
    return configs[:count]


@pytest.fixture()
def fresh_arith():
    """A workload with no memoized trace or decode: every span fires.

    The session-scoped ``arith_small`` fixture caches its generated
    trace and columnar decodes across the whole suite, so tests
    asserting the *presence* of decode/trace_generation spans need a
    private instance.
    """
    from repro.workloads import ArithWorkload
    return ArithWorkload(iterations=200)


# -- span tracer ---------------------------------------------------------------------------


class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        assert not tracing_enabled()
        with span("outer", key="value") as outer:
            outer.set(more="attrs")  # no-op parity with the active span
        assert get_tracer().records == []

    def test_spans_nest_and_record_depth_and_attrs(self):
        tracer = enable_tracing()
        with span("outer", stage="a"):
            with span("inner") as inner:
                inner.set(rows=3)
        names = {r.name: r for r in tracer.records}
        assert set(names) == {"outer", "inner"}
        assert names["outer"].depth == 0
        assert names["inner"].depth == 1
        assert names["outer"].attrs == {"stage": "a"}
        assert names["inner"].attrs == {"rows": 3}
        # inner closed first and fits inside outer
        assert names["inner"].wall <= names["outer"].wall
        assert names["outer"].pid == os.getpid()
        assert names["outer"].tid == threading.get_ident()

    def test_exception_is_recorded_and_depth_recovers(self):
        tracer = enable_tracing()
        with pytest.raises(ValueError):
            with span("boom"):
                raise ValueError("nope")
        with span("after"):
            pass
        by_name = {r.name: r for r in tracer.records}
        assert by_name["boom"].attrs["error"] == "ValueError"
        assert by_name["after"].depth == 0

    def test_drain_clears_and_absorb_merges(self):
        worker = Tracer(enabled=True)
        with worker.span("remote"):
            pass
        shipped = worker.drain()
        assert [r.name for r in shipped] == ["remote"]
        assert worker.records == []

        host = enable_tracing()
        with span("local"):
            pass
        host.absorb(shipped)
        assert sorted(r.name for r in host.records) == ["local", "remote"]

    def test_sink_streams_completed_records(self):
        seen = []
        enable_tracing(sink=seen.append)
        with span("streamed"):
            pass
        assert [r.name for r in seen] == ["streamed"]

    def test_chrome_export_validates_and_labels_lanes(self, tmp_path):
        tracer = enable_tracing()
        with span("work", rows=2):
            pass
        fake = tracer.records[0].__class__(
            name="remote", ts=tracer.records[0].ts, wall=0.001, cpu=0.001,
            depth=0, pid=os.getpid() + 1, tid=1, attrs={})
        tracer.absorb([fake])
        path = tmp_path / "trace.json"
        count = tracer.export_chrome(str(path))
        summary = validate_chrome_trace(str(path))
        assert count == summary["events"]
        assert summary["spans"] == 2
        assert len(summary["pids"]) == 2
        labels = {e["args"]["name"] for e in
                  json.loads(path.read_text())["traceEvents"] if e["ph"] == "M"}
        assert labels == {"host", f"worker {os.getpid() + 1}"}

    def test_jsonl_export_is_one_record_per_line(self, tmp_path):
        tracer = enable_tracing()
        with span("a"):
            pass
        with span("b"):
            pass
        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(str(path)) == 2
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["name"] for line in lines] == ["a", "b"]
        assert all(line["pid"] == os.getpid() for line in lines)

    def test_validate_rejects_malformed_traces(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"traceEvents": []}))
        with pytest.raises(ValueError):
            validate_chrome_trace(str(path))
        path.write_text(json.dumps(
            {"traceEvents": [{"name": "x", "ph": "X", "pid": 1}]}))
        with pytest.raises(ValueError):
            validate_chrome_trace(str(path))


# -- metrics registry ----------------------------------------------------------------------


class TestMetrics:
    def test_counter_gauge_histogram_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(2)
        registry.gauge("depth").set(7)
        registry.histogram("bytes").observe(10)
        registry.histogram("bytes").observe(30)
        snap = registry.snapshot()
        assert snap["hits"] == 3
        assert snap["depth"] == 7
        assert snap["bytes"]["count"] == 2
        assert snap["bytes"]["total"] == 40
        assert snap["bytes"]["min"] == 10
        assert snap["bytes"]["max"] == 30

    def test_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(TypeError):
            registry.gauge("m")

    def test_drain_resets_counters_and_histograms_keeps_gauges(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(4)
        registry.counter("zero")  # never incremented: not shipped
        registry.gauge("g").set(2)
        registry.histogram("h").observe(1.5)
        deltas = registry.drain()
        assert set(deltas) == {"c", "g", "h"}
        # counters/histograms reset so the next drain ships only new work
        assert registry.snapshot()["c"] == 0
        assert registry.snapshot()["h"]["count"] == 0
        assert registry.snapshot()["g"] == 2
        assert registry.drain().keys() == {"g"}

    def test_merge_folds_deltas_by_kind(self):
        home, away = MetricsRegistry(), MetricsRegistry()
        home.counter("c").inc(1)
        home.histogram("h").observe(5)
        away.counter("c").inc(2)
        away.gauge("g").set(9)
        away.histogram("h").observe(3)
        home.merge(away.drain())
        snap = home.snapshot()
        assert snap["c"] == 3
        assert snap["g"] == 9
        assert snap["h"]["count"] == 2
        assert snap["h"]["min"] == 3
        assert snap["h"]["max"] == 5

    def test_render_text_lists_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("runs").inc()
        registry.histogram("size").observe(4)
        text = registry.render_text()
        assert "runs" in text and "size" in text and "count=1" in text


# -- EngineStats as a typed view over the registry -----------------------------------------


class TestEngineStatsRegistry:
    def test_snapshot_keys_match_dataclass_fields(self):
        """The satellite drift guard: the two surfaces cannot disagree."""
        stats = EngineStats()
        expected = {f.name for f in fields(EngineStats)} - {"registry"}
        assert set(stats.snapshot()) == expected

    def test_assignment_writes_through_to_gauges(self):
        stats = EngineStats()
        stats.requested = 17
        stats.kernel_lane = "numpy"
        assert stats.registry.snapshot()["engine.requested"] == 17
        assert stats.snapshot()["requested"] == 17
        assert stats.snapshot()["kernel_lane"] == "numpy"

    def test_add_stage_feeds_sums_and_histograms(self):
        stats = EngineStats()
        stats.add_stage("decode", 0.5)
        stats.add_stage("decode", 0.25)
        assert stats.stage_seconds["decode"] == pytest.approx(0.75)
        assert stats.snapshot()["stage_seconds"]["decode"] == pytest.approx(0.75)
        histogram = stats.registry.snapshot()["stage.decode"]
        assert histogram["count"] == 2
        assert histogram["total"] == pytest.approx(0.75)

    def test_as_dict_stays_scalar(self):
        row = EngineStats().as_dict()
        assert "stage_seconds" not in row
        assert all(not isinstance(v, dict) for v in row.values())


# -- cross-process tracing through the worker pool -----------------------------------------


class TestCrossProcessTracing:
    def test_pool_fanout_loses_no_spans_and_leaks_nothing(
            self, tmp_path, base_config, fresh_arith):
        before = set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else set()
        tracer = enable_tracing()
        configs = grid_configs(base_config)
        with ParallelEvaluator(LiquidPlatform(), workers=2,
                               arena_threshold=0) as evaluator:
            evaluator.measure_sweep(fresh_arith, configs)
            stats = evaluator.stats
        disable_tracing()

        by_name = {}
        for record in tracer.records:
            by_name.setdefault(record.name, []).append(record)
        # every replayed configuration is accounted for by a replay span:
        # a lost worker result would show up as a shortfall here
        replayed = sum(r.attrs["configs"] for r in by_name.get("replay", []))
        assert replayed == stats.cache_simulations
        assert stats.parallel_simulations > 0
        # the arena path decodes once on the host, replays in the workers
        host = os.getpid()
        assert {r.pid for r in by_name["decode"]} == {host}
        worker_pids = {r.pid for r in by_name["replay"]}
        assert host not in worker_pids and len(worker_pids) >= 1
        assert len({r.pid for r in tracer.records}) >= 2
        for stage in ("trace_generation", "cache_simulation", "sweep_evaluate",
                      "arena_publish", "publish", "solve"):
            assert stage in by_name, f"missing '{stage}' spans"

        # worker metric deltas merged home alongside the spans
        assert stats.registry.snapshot()["arena.publishes"] > 0

        path = tmp_path / "sweep.json"
        tracer.export_chrome(str(path))
        summary = validate_chrome_trace(str(path))
        assert summary["spans"] == len(tracer.records)
        assert len(summary["pids"]) >= 2

        # close() tore down the pool and every shared-memory segment
        assert stats.arena_segments == 0
        if os.path.isdir("/dev/shm"):
            assert set(os.listdir("/dev/shm")) - before == set()

    def test_pool_respawns_when_tracing_toggles(self, base_config, arith_small):
        configs = grid_configs(base_config, 4)
        with ParallelEvaluator(LiquidPlatform(), workers=2,
                               arena_threshold=0) as evaluator:
            evaluator.measure_sweep(arith_small, configs)
            assert get_tracer().records == []
            tracer = enable_tracing()
            evaluator.measure_sweep(
                arith_small, grid_configs(base_config, 6)[4:])
            assert any(r.name == "replay" and r.pid != os.getpid()
                       for r in tracer.records)


class TestSpanTreeTiming:
    def test_stage_spans_reconcile_with_stage_seconds(
            self, base_config, fresh_arith):
        tracer = enable_tracing()
        configs = grid_configs(base_config)
        with ParallelEvaluator(LiquidPlatform(), workers=1) as evaluator:
            evaluator.measure_sweep(fresh_arith, configs)
            stats = evaluator.stats
        spans = {}
        for record in tracer.records:
            spans[record.name] = spans.get(record.name, 0.0) + record.wall
        for stage in ("trace_generation", "cache_simulation", "sweep_evaluate"):
            assert stage in stats.stage_seconds
            # the span and the stage share one timed region; the span
            # closes a hair later, so it may only exceed by bookkeeping
            assert spans[stage] >= stats.stage_seconds[stage]
            assert spans[stage] - stats.stage_seconds[stage] < 0.05


# -- campaign heartbeats and the dashboard -------------------------------------------------


class TestHeartbeats:
    def test_heartbeat_upserts_one_row_per_worker(self, tmp_path):
        with CampaignGrid(str(tmp_path / "grid.sqlite")) as grid:
            grid.heartbeat("w1", batches=1, claimed=4, done=2,
                           rows_per_sec=1.5)
            grid.heartbeat("w1", batches=2, claimed=8, done=8,
                           rows_per_sec=2.5, engine={"workers": 2})
            grid.heartbeat("w2", done=1)
            beats = grid.worker_heartbeats()
        assert {b["worker"] for b in beats} == {"w1", "w2"}
        w1 = next(b for b in beats if b["worker"] == "w1")
        assert (w1["batches"], w1["done"], w1["rows_per_sec"]) == (2, 8, 2.5)
        assert w1["engine"] == {"workers": 2}
        assert w1["pid"] == os.getpid()

    def test_worker_run_persists_heartbeats(self, tmp_path, base_config,
                                            arith_small):
        with CampaignGrid(str(tmp_path / "grid.sqlite")) as grid:
            grid.register(arith_small, grid_configs(base_config, 4))
            with CampaignWorker(grid, [arith_small], worker_id="beater",
                                workers=1, heartbeat_seconds=0.01) as worker:
                report = worker.run()
            beats = grid.worker_heartbeats()
        assert report.done == 4
        assert len(beats) == 1
        # the final forced beat carries the full campaign outcome
        assert beats[0]["done"] == 4
        assert beats[0]["failed"] == 0
        assert beats[0]["engine"]["requested"] >= 4


class TestDashboard:
    def _grid_with_progress(self, tmp_path, base_config, workload):
        grid = CampaignGrid(str(tmp_path / "grid.sqlite"))
        grid.register(workload, grid_configs(base_config, 4))
        return grid

    def test_snapshot_counts_workers_and_staleness(self, tmp_path, base_config,
                                                   arith_small):
        with self._grid_with_progress(tmp_path, base_config,
                                      arith_small) as grid:
            grid.heartbeat("live", done=1, rows_per_sec=2.0)
            grid.heartbeat("dead", done=1, rows_per_sec=4.0)
            now = grid.worker_heartbeats()[0]["ts"]
            stale_ts = now - 1000
            grid._conn.execute(
                "UPDATE heartbeats SET ts = ? WHERE worker = 'dead'",
                (stale_ts,))
            grid._conn.commit()
            snapshot = campaign_snapshot(grid, stale_after=300, now=now)
        assert snapshot["counts"]["open"] == 4
        workers = {w["worker"]: w for w in snapshot["workers"]}
        assert workers["live"]["stale"] is False
        assert workers["dead"]["stale"] is True
        # stale workers don't contribute to throughput or the ETA
        assert snapshot["rows_per_sec"] == pytest.approx(2.0)
        assert snapshot["eta_seconds"] == pytest.approx(4 / 2.0)

    def test_render_mentions_counts_workers_and_stale_flag(
            self, tmp_path, base_config, arith_small):
        with self._grid_with_progress(tmp_path, base_config,
                                      arith_small) as grid:
            grid.heartbeat("w1", done=2, rows_per_sec=1.0)
            snapshot = campaign_snapshot(grid, stale_after=300)
            snapshot["workers"][0]["stale"] = True
            text = render_dashboard(snapshot)
        assert "4 open" in text
        assert "w1" in text and "STALE" in text
        assert "arith" in text

    def test_all_workers_stale_renders_stalled_not_a_normal_bar(
            self, tmp_path, base_config, arith_small):
        """Pending rows + every heartbeat stale = STALLED, not 'no ETA'.

        The old rendering guarded only on ``throughput > 0``, so a
        campaign whose workers all died looked exactly like one that was
        merely between batches; the snapshot now carries an explicit
        ``stalled`` flag and the dashboard says so.
        """
        with self._grid_with_progress(tmp_path, base_config,
                                      arith_small) as grid:
            grid.heartbeat("w1", done=1, rows_per_sec=2.0)
            grid.heartbeat("w2", done=1, rows_per_sec=3.0)
            now = grid.worker_heartbeats()[0]["ts"]
            snapshot = campaign_snapshot(grid, stale_after=300,
                                         now=now + 1000)
            assert snapshot["stalled"] is True
            assert snapshot["eta_seconds"] is None
            assert snapshot["rows_per_sec"] == 0.0
            text = render_dashboard(snapshot)
            assert "STALLED" in text
            assert "4 rows pending" in text
            assert "2 stale workers" in text

    def test_one_live_worker_clears_the_stall(self, tmp_path, base_config,
                                              arith_small):
        with self._grid_with_progress(tmp_path, base_config,
                                      arith_small) as grid:
            grid.heartbeat("dead", done=1, rows_per_sec=3.0)
            grid.heartbeat("live", done=1, rows_per_sec=2.0)
            now = grid.worker_heartbeats()[0]["ts"]
            grid._conn.execute(
                "UPDATE heartbeats SET ts = ? WHERE worker = 'dead'",
                (now - 1000,))
            grid._conn.commit()
            snapshot = campaign_snapshot(grid, stale_after=300, now=now)
        assert snapshot["stalled"] is False
        assert snapshot["eta_seconds"] is not None
        assert "STALLED" not in render_dashboard(snapshot)

    def test_no_workers_or_no_pending_rows_is_not_a_stall(
            self, tmp_path, base_config, arith_small):
        with self._grid_with_progress(tmp_path, base_config,
                                      arith_small) as grid:
            # a freshly registered grid has no workers yet: not stalled
            assert campaign_snapshot(grid)["stalled"] is False
            # a drained grid with only stale heartbeats left: not stalled
            grid.heartbeat("w1", done=4, rows_per_sec=1.0)
            now = grid.worker_heartbeats()[0]["ts"]
            grid._conn.execute("UPDATE experiments SET status = 'done'")
            grid._conn.commit()
            snapshot = campaign_snapshot(grid, stale_after=300,
                                         now=now + 1000)
            assert snapshot["stalled"] is False
            assert "STALLED" not in render_dashboard(snapshot)

    def test_watch_honours_refresh_budget_and_detects_drain(
            self, tmp_path, base_config, arith_small):
        with self._grid_with_progress(tmp_path, base_config,
                                      arith_small) as grid:
            stream = io.StringIO()
            snapshot = watch(grid, interval=0.0, max_refreshes=2,
                             stream=stream, clear=False)
            assert snapshot["counts"]["open"] == 4
            assert stream.getvalue().count("campaign grid") == 2

            grid._conn.execute("UPDATE experiments SET status = 'done'")
            grid._conn.commit()
            stream = io.StringIO()
            watch(grid, interval=0.0, stream=stream, clear=False)
            assert "grid drained." in stream.getvalue()


# -- the CLI surfaces ----------------------------------------------------------------------


class TestObservabilityCli:
    def _run(self, *argv, timeout=180):
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        return subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "run_experiments.py"),
             *argv],
            env=env, capture_output=True, text=True, timeout=timeout)

    def _registered(self, tmp_path):
        db = str(tmp_path / "cli.sqlite")
        register = self._run("--grid-db", db, "--register",
                             "--grid-scale", "small",
                             "--grid-workloads", "arith")
        assert register.returncode == 0, register.stderr
        return db

    def test_status_json_is_machine_readable(self, tmp_path):
        db = self._registered(tmp_path)
        result = self._run("--grid-db", db, "--status", "--json")
        assert result.returncode == 0, result.stderr
        snapshot = json.loads(result.stdout)
        assert snapshot["counts"]["open"] > 0
        assert snapshot["workers"] == []
        # the stall flag is part of the machine-readable contract
        assert snapshot["stalled"] is False

    def test_status_json_reports_a_stalled_campaign(self, tmp_path):
        db = self._registered(tmp_path)
        with CampaignGrid(db) as grid:
            grid.heartbeat("w1", done=0, rows_per_sec=1.0)
            grid._conn.execute("UPDATE heartbeats SET ts = ts - 1000")
            grid._conn.commit()
        result = self._run("--grid-db", db, "--status", "--json",
                           "--stale-after", "300")
        assert result.returncode == 0, result.stderr
        snapshot = json.loads(result.stdout)
        assert snapshot["stalled"] is True
        assert snapshot["eta_seconds"] is None
        watch = self._run("--grid-db", db, "--status", "--watch",
                          "--interval", "0.1", "--watch-max", "1",
                          "--stale-after", "300")
        assert watch.returncode == 0, watch.stderr
        assert "STALLED" in watch.stdout

    def test_plain_status_format_is_unchanged(self, tmp_path):
        db = self._registered(tmp_path)
        result = self._run("--grid-db", db, "--status")
        assert result.returncode == 0, result.stderr
        assert "status:" in result.stdout and "open" in result.stdout

    def test_watch_terminates_on_refresh_budget(self, tmp_path):
        db = self._registered(tmp_path)
        result = self._run("--grid-db", db, "--status", "--watch",
                           "--interval", "0.1", "--watch-max", "2")
        assert result.returncode == 0, result.stderr
        assert result.stdout.count("campaign grid") == 2

    def test_json_and_watch_require_status(self, tmp_path):
        db = str(tmp_path / "cli.sqlite")
        assert self._run("--grid-db", db, "--json").returncode != 0
        assert self._run("--grid-db", db, "--watch").returncode != 0

"""Shared fixtures and randomized-trace strategies for the test suite.

The fixtures provide scaled-down workloads (fast functional simulation)
and a shared measurement platform so that expensive campaign runs are
memoised across tests within a session.

The hypothesis strategies below are the single source of randomized
cache geometries and address/write-mix traces, shared by the cache
property suites (``test_cache.py``, ``test_cache_vectorized.py``,
``test_warm_replay.py``): every suite drives the same trace shapes, so a
kernel change that survives one suite cannot dodge the others on
distribution differences.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.config import Replacement, base_configuration, leon_parameter_space
from repro.platform import LiquidPlatform
from repro.workloads import ArithWorkload, BlastnWorkload, DrrWorkload, FragWorkload

# -- randomized cache geometries and traces (hypothesis strategies) ------------------------

#: Way counts exercised by the set-associative property suites.
SET_ASSOCIATIVE_WAYS = (2, 3, 4)
#: Way counts of the full kernel space (direct mapped included).
ALL_WAYS = (1, 2, 3, 4)


def geometry_strategy(ways=ALL_WAYS):
    """Cache geometries: ways x {1,2,4} KB x {4,8}-word lines x all policies.

    ``ways`` restricts the associativity (pass ``(1,)`` for the
    direct-mapped corner, :data:`SET_ASSOCIATIVE_WAYS` for the
    rank-synchronous replay).  Small way sizes force conflicts, evictions
    and policy decisions on the small traces below.
    """
    return st.fixed_dictionaries({
        "ways": st.sampled_from(list(ways)),
        "setsize_kb": st.sampled_from([1, 2, 4]),
        "linesize_words": st.sampled_from([4, 8]),
        "replacement": st.sampled_from(sorted(Replacement.ALL)),
    })


def trace_strategy(max_address=1 << 10, max_size=400):
    """Mixed read/write traces: lists of ``(word_address, is_write)``.

    The default address space is deliberately small so traces collide in
    the small geometries above; pass a larger ``max_address`` to stress
    tag widths instead of conflicts.
    """
    return st.lists(
        st.tuples(st.integers(min_value=0, max_value=max_address), st.booleans()),
        min_size=0, max_size=max_size,
    )


def address_strategy(max_address=1 << 14, max_size=400, min_size=1):
    """Read-only address traces (the instruction-fetch shape)."""
    return st.lists(
        st.integers(min_value=0, max_value=max_address),
        min_size=min_size, max_size=max_size,
    )


def configuration_strategy():
    """Random full-space configurations (perturbations of the base).

    Draws a random subset of parameters and a random value for each, so
    grids exercise every timing-relevant knob: cache geometries and
    policies, the pipeline flags, window counts and the multiplier /
    divider implementations.  Buildability (device fit) is deliberately
    not enforced -- timing-model properties hold for any configuration.
    """
    space = leon_parameter_space()
    base = base_configuration(space)
    return st.fixed_dictionaries(
        {},
        optional={p.name: st.sampled_from(list(p.values)) for p in space},
    ).map(lambda changes: base.replace(**changes))


def config_grid_strategy(min_size=1, max_size=6):
    """Configuration grids (duplicates allowed) for sweep property tests."""
    return st.lists(configuration_strategy(), min_size=min_size, max_size=max_size)


def window_events_strategy(max_size=200):
    """Random SAVE(+1)/RESTORE(-1) streams, unbalanced streams included."""
    return st.lists(
        st.sampled_from([1, -1]), min_size=0, max_size=max_size,
    ).map(lambda events: np.asarray(events, dtype=np.int8))


def to_arrays(trace):
    """Split a ``(word_address, is_write)`` trace into byte-address/write arrays."""
    addresses = np.asarray([a for a, _ in trace], dtype=np.int64) * 4  # word aligned
    writes = np.asarray([w for _, w in trace], dtype=bool)
    return addresses, writes


@pytest.fixture(scope="session")
def space():
    return leon_parameter_space()


@pytest.fixture(scope="session")
def base_config():
    return base_configuration()


@pytest.fixture(scope="session")
def platform():
    return LiquidPlatform()


@pytest.fixture(scope="session")
def arith_small():
    return ArithWorkload(iterations=200)


@pytest.fixture(scope="session")
def blastn_small():
    return BlastnWorkload(database_length=1200, query_length=48, query_count=1)


@pytest.fixture(scope="session")
def drr_small():
    return DrrWorkload(packet_count=150)


@pytest.fixture(scope="session")
def frag_small():
    return FragWorkload(packet_count=4)


@pytest.fixture(scope="session")
def small_workload_map(arith_small, blastn_small, drr_small, frag_small):
    return {
        "arith": arith_small,
        "blastn": blastn_small,
        "drr": drr_small,
        "frag": frag_small,
    }

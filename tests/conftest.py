"""Shared fixtures for the test suite.

The fixtures provide scaled-down workloads (fast functional simulation)
and a shared measurement platform so that expensive campaign runs are
memoised across tests within a session.
"""

from __future__ import annotations

import pytest

from repro.config import base_configuration, leon_parameter_space
from repro.platform import LiquidPlatform
from repro.workloads import ArithWorkload, BlastnWorkload, DrrWorkload, FragWorkload


@pytest.fixture(scope="session")
def space():
    return leon_parameter_space()


@pytest.fixture(scope="session")
def base_config():
    return base_configuration()


@pytest.fixture(scope="session")
def platform():
    return LiquidPlatform()


@pytest.fixture(scope="session")
def arith_small():
    return ArithWorkload(iterations=200)


@pytest.fixture(scope="session")
def blastn_small():
    return BlastnWorkload(database_length=1200, query_length=48, query_count=1)


@pytest.fixture(scope="session")
def drr_small():
    return DrrWorkload(packet_count=150)


@pytest.fixture(scope="session")
def frag_small():
    return FragWorkload(packet_count=4)


@pytest.fixture(scope="session")
def small_workload_map(arith_small, blastn_small, drr_small, frag_small):
    return {
        "arith": arith_small,
        "blastn": blastn_small,
        "drr": drr_small,
        "frag": frag_small,
    }

"""Tests for the cost model (rho/lambda/beta) and the BINLP formulation."""

import pytest

from repro.config import PerturbationSpace, leon_parameter_space
from repro.core import (
    OneFactorCampaign,
    RUNTIME_ONLY,
    RUNTIME_OPTIMIZATION,
    RESOURCE_OPTIMIZATION,
    Weights,
    build_problem,
)
from repro.core.model import CostModel
from repro.errors import OptimizationError
from repro.platform import LiquidPlatform


@pytest.fixture(scope="module")
def campaign_model(arith_small):
    """A full-space cost model for the small Arith workload."""
    platform = LiquidPlatform()
    campaign = OneFactorCampaign(platform)
    return campaign.run(arith_small)


@pytest.fixture(scope="module")
def dcache_model(blastn_small):
    platform = LiquidPlatform()
    campaign = OneFactorCampaign(platform)
    return campaign.run(blastn_small, parameters=["dcache_sets", "dcache_setsize_kb"])


class TestWeights:
    def test_objective_coefficient(self):
        weights = Weights(runtime=100, resources=1)
        assert weights.objective_coefficient(-2.0, 1.0, 3.0) == pytest.approx(-196.0)

    def test_presets(self):
        assert RUNTIME_OPTIMIZATION.runtime == 100 and RUNTIME_OPTIMIZATION.resources == 1
        assert RESOURCE_OPTIMIZATION.runtime == 1 and RESOURCE_OPTIMIZATION.resources == 100
        assert RUNTIME_ONLY.resources == 0
        assert "w1=100" in RUNTIME_OPTIMIZATION.describe()

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            Weights(runtime=-1, resources=1)
        with pytest.raises(ValueError):
            Weights(runtime=0, resources=0)


class TestCostModel:
    def test_one_delta_per_variable(self, campaign_model):
        assert len(campaign_model.deltas) == len(campaign_model.space) == 53

    def test_headroom_matches_base_measurement(self, campaign_model):
        assert campaign_model.lut_headroom == pytest.approx(100 - campaign_model.base.lut_percent)
        assert campaign_model.bram_headroom == pytest.approx(
            100 - campaign_model.base.bram_percent)

    def test_multiplier_delta_signs(self, campaign_model):
        var = campaign_model.space.find("multiplier", "m32x32")
        delta = campaign_model.delta(var.index)
        assert delta.rho < 0 and delta.lam > 0

    def test_linear_runtime_prediction_is_additive(self, campaign_model):
        space = campaign_model.space
        a = space.find("multiplier", "m32x32").index
        b = space.find("dcache_fast_read", True).index
        combined = campaign_model.predict_runtime_percent((a, b))
        assert combined == pytest.approx(
            campaign_model.deltas[a].rho + campaign_model.deltas[b].rho)
        cycles = campaign_model.predict_runtime_cycles((a, b))
        assert cycles == pytest.approx(campaign_model.base.cycles * (1 + combined / 100))

    def test_nonlinear_bram_prediction_models_cache_coupling(self, campaign_model):
        space = campaign_model.space
        sets4 = space.find("dcache_sets", 4).index
        size32 = space.find("dcache_setsize_kb", 32).index
        linear = campaign_model.predict_bram_percent((sets4, size32), nonlinear=False)
        nonlinear = campaign_model.predict_bram_percent((sets4, size32), nonlinear=True)
        # 4 sets x 32 KB is ~128 KB of cache: the bilinear form must predict
        # far more BRAM than the simple sum of the two one-factor deltas.
        assert nonlinear > linear
        assert nonlinear > 100.0

    def test_lut_prediction_linear_vs_nonlinear(self, campaign_model):
        space = campaign_model.space
        selection = (space.find("dcache_sets", 2).index,
                     space.find("dcache_setsize_kb", 8).index)
        assert campaign_model.predict_lut_percent(selection) == pytest.approx(
            campaign_model.base.lut_percent
            + sum(campaign_model.deltas[i].lam for i in selection))

    def test_measurement_and_rows(self, campaign_model):
        rows = campaign_model.table_rows()
        assert len(rows) == len(campaign_model.space)
        assert {"label", "rho_percent", "lambda_percent", "beta_percent"} <= set(rows[0])
        assert campaign_model.measurement(0).workload == campaign_model.workload

    def test_mismatched_deltas_rejected(self, campaign_model):
        with pytest.raises(OptimizationError):
            CostModel(workload="x", space=campaign_model.space,
                      base=campaign_model.base, deltas=campaign_model.deltas[:-1])

    def test_model_without_measurements_refuses_lookup(self, campaign_model):
        bare = CostModel(workload="x", space=campaign_model.space,
                         base=campaign_model.base, deltas=campaign_model.deltas)
        with pytest.raises(OptimizationError):
            bare.measurement(0)


class TestCampaign:
    def test_linear_number_of_measurements(self, arith_small):
        platform = LiquidPlatform()
        campaign = OneFactorCampaign(platform)
        model = campaign.run(arith_small)
        # one base + one run per perturbation variable, nothing exponential
        assert platform.effort()["runs"] <= len(model.space) + 1
        assert len(campaign.records) == len(model.space)
        assert campaign.exhaustive_size() > 10**8

    def test_restricted_campaign(self, dcache_model):
        assert {v.parameter for v in dcache_model.space} == {
            "dcache_sets", "dcache_setsize_kb"}
        assert len(dcache_model.deltas) == 8


class TestBinlpProblem:
    def test_objective_coefficients_follow_weights(self, campaign_model):
        problem = build_problem(campaign_model, RUNTIME_OPTIMIZATION)
        for i, delta in enumerate(campaign_model.deltas):
            expected = RUNTIME_OPTIMIZATION.objective_coefficient(delta.rho, delta.lam, delta.beta)
            assert problem.objective[i] == pytest.approx(expected)

    def test_groups_match_multivalued_parameters(self, campaign_model):
        problem = build_problem(campaign_model, RUNTIME_OPTIMIZATION)
        assert len(problem.groups) == len(campaign_model.space.groups)

    def test_coupling_constraints_exist_for_both_caches(self, campaign_model):
        problem = build_problem(campaign_model, RUNTIME_OPTIMIZATION)
        names = {c.name for c in problem.linear_constraints}
        assert "icache_lrr_requires_2_sets" in names
        assert "dcache_lru_requires_multiway" in names

    def test_lrr_without_two_sets_is_infeasible(self, campaign_model):
        problem = build_problem(campaign_model, RUNTIME_OPTIMIZATION)
        space = campaign_model.space
        lrr = space.find("dcache_replacement", "lrr").index
        two_sets = space.find("dcache_sets", 2).index
        assert not problem.is_feasible((lrr,))
        assert problem.is_feasible((lrr, two_sets))

    def test_lru_requires_some_multiway_selection(self, campaign_model):
        problem = build_problem(campaign_model, RUNTIME_OPTIMIZATION)
        space = campaign_model.space
        lru = space.find("icache_replacement", "lru").index
        sets3 = space.find("icache_sets", 3).index
        assert not problem.is_feasible((lru,))
        assert problem.is_feasible((lru, sets3))

    def test_selecting_two_values_of_one_parameter_is_rejected(self, campaign_model):
        from repro.errors import ConfigurationError

        problem = build_problem(campaign_model, RUNTIME_OPTIMIZATION)
        space = campaign_model.space
        a = space.find("dcache_setsize_kb", 8).index
        b = space.find("dcache_setsize_kb", 16).index
        # the at-most-one structure is what the solvers branch over ...
        assert any(a in group and b in group for group in problem.groups)
        # ... and the perturbation space refuses to even evaluate such a selection
        with pytest.raises(ConfigurationError):
            problem.objective_value((a, b))

    def test_bram_capacity_constraint_blocks_oversized_caches(self, campaign_model):
        problem = build_problem(campaign_model, RUNTIME_ONLY)
        space = campaign_model.space
        selection = (
            space.find("dcache_sets", 4).index,
            space.find("dcache_setsize_kb", 32).index,
            space.find("icache_sets", 4).index,
            space.find("icache_setsize_kb", 32).index,
        )
        assert "bram_capacity" in problem.violations(selection)

    def test_linear_bram_constraint_misses_the_coupling(self, campaign_model):
        """Without the bilinear form the oversized cache looks feasible -- this is
        exactly why the paper keeps the BRAM constraint nonlinear."""
        nonlinear = build_problem(campaign_model, RUNTIME_ONLY, bram_nonlinear=True)
        linear = build_problem(campaign_model, RUNTIME_ONLY, bram_nonlinear=False)
        space = campaign_model.space
        # 4 sets x 16 KB is 64 KB of data cache: the one-factor deltas add up to
        # well under the head-room, but the bilinear form reveals the overflow.
        selection = (
            space.find("dcache_sets", 4).index,
            space.find("dcache_setsize_kb", 16).index,
        )
        assert "bram_capacity" in nonlinear.violations(selection)
        assert "bram_capacity" not in linear.violations(selection)

    def test_empty_selection_is_always_feasible(self, campaign_model):
        for weights in (RUNTIME_OPTIMIZATION, RESOURCE_OPTIMIZATION, RUNTIME_ONLY):
            problem = build_problem(campaign_model, weights)
            assert problem.is_feasible(())
            assert problem.objective_value(()) == 0.0

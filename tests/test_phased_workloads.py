"""Phased workloads and the phased measurement path.

Covers the :class:`~repro.workloads.phased.PhasedWorkload` abstraction
(splits, compositions, bounds, views, fingerprints) and the platform /
engine phased measurement path: the overall measurement of a phased
workload must be bit-identical to the plain measurement, engine and
sequential phased results must agree, and warm chains must reuse decoded
phase views instead of re-decoding per configuration.
"""

import numpy as np
import pytest

from repro.config import base_configuration
from repro.engine import ParallelEvaluator
from repro.errors import ConfigurationError
from repro.microarch.cache import Cache, CacheConfig
from repro.platform import LiquidPlatform, PhasedMeasurement
from repro.workloads import (
    ArithWorkload,
    PhasedWorkload,
    blastn_seed_extend,
    drr_enqueue_service,
    frag_per_packet,
    phase_scenarios,
)


@pytest.fixture(scope="module")
def drr_phased(drr_small):
    return PhasedWorkload.split_at_labels(
        drr_small, ("enqueue", "service"), ("service_phase",))


@pytest.fixture(scope="module")
def switch_scenario(blastn_small, drr_small):
    return PhasedWorkload.from_workloads(
        "blastn-drr-switch",
        [("blastn", blastn_small), ("drr", drr_small), ("blastn-resume", blastn_small)])


class TestPhaseStructure:
    def test_split_bounds_partition_the_trace(self, drr_phased, drr_small):
        bounds = drr_phased.phase_bounds()
        n = drr_small.trace().instruction_count
        assert bounds[0] == 0 and bounds[-1] == n
        assert bounds == sorted(bounds) and len(bounds) == 3
        assert drr_phased.phase_names == ("enqueue", "service")
        # the boundary is the first execution of the service routine
        boundary = bounds[1]
        service_pc = drr_small.program.address_of("service_phase")
        pcs = drr_small.trace().pcs
        assert pcs[boundary] == service_pc
        assert not np.any(pcs[:boundary] == service_pc)

    def test_phase_traces_concatenate_back_to_the_full_trace(self, drr_phased):
        full = drr_phased.trace()
        parts = drr_phased.phase_traces()
        np.testing.assert_array_equal(
            np.concatenate([p.pcs for p in parts]), full.pcs)
        np.testing.assert_array_equal(
            np.concatenate([p.mem_addrs for p in parts]), full.mem_addrs)

    def test_data_bounds_partition_the_data_stream(self, drr_phased):
        data_bounds = drr_phased.data_bounds()
        assert data_bounds[0] == 0
        assert data_bounds[-1] == len(drr_phased.trace().data_addresses)
        assert data_bounds == sorted(data_bounds)

    def test_composition_concatenates_component_traces(self, switch_scenario,
                                                       blastn_small, drr_small):
        full = switch_scenario.trace()
        expected = np.concatenate([
            blastn_small.trace().pcs, drr_small.trace().pcs, blastn_small.trace().pcs])
        np.testing.assert_array_equal(full.pcs, expected)
        bounds = switch_scenario.phase_bounds()
        assert bounds[1] == blastn_small.trace().instruction_count
        assert bounds[2] == bounds[1] + drr_small.trace().instruction_count

    def test_composition_verifies_components_with_phase_prefixes(self, switch_scenario):
        results = switch_scenario.verify()
        assert any(key.startswith("blastn:") for key in results)
        assert any(key.startswith("drr:") for key in results)
        assert any(key.startswith("blastn-resume:") for key in results)

    def test_split_verification_delegates_to_the_base(self, drr_phased, drr_small):
        assert drr_phased.verify() == drr_small.verify()

    def test_phase_summaries_cover_every_phase(self, drr_phased):
        summaries = drr_phased.phase_summaries()
        assert set(summaries) == {"enqueue", "service"}
        assert all(s["instructions"] > 0 for s in summaries.values())

    def test_phase_views_are_cached(self, drr_phased):
        assert not drr_phased.has_phase_views("dcache", 16)
        first = drr_phased.phase_views("dcache", 16)
        assert drr_phased.has_phase_views("dcache", 16)
        assert drr_phased.phase_views("dcache", 16) is first
        assert len(first) == drr_phased.phase_count

    def test_fingerprints_distinguish_phase_structures(self, drr_small, drr_phased):
        other_cut = PhasedWorkload.split_at_fractions(
            drr_small, ("first", "second"), name="drr-enqueue-service")
        assert drr_phased.fingerprint() != drr_small.fingerprint()
        assert drr_phased.fingerprint() != other_cut.fingerprint()
        assert drr_phased.fingerprint() == drr_phased.fingerprint()  # cached

    def test_invalid_structures_are_rejected(self, drr_small):
        with pytest.raises(ConfigurationError):
            PhasedWorkload.from_split(drr_small, ("a", "b"), [0])  # boundary at 0
        with pytest.raises(ConfigurationError):
            PhasedWorkload.from_split(drr_small, ("a", "b"), [5, 5])  # duplicate
        with pytest.raises(ConfigurationError):
            PhasedWorkload.split_at_labels(drr_small, ("a", "b"), ())  # count mismatch
        with pytest.raises(ConfigurationError):
            PhasedWorkload.from_workloads("empty", [])

    def test_label_that_never_executes_is_rejected(self, blastn_small):
        with pytest.raises(ConfigurationError):
            # data labels have addresses but never appear as program counters
            PhasedWorkload.split_at_labels(blastn_small, ("a", "b"), ("results",))

    def test_standard_scenarios_build_at_small_scale(self):
        scenarios = phase_scenarios(small=True)
        assert set(scenarios) == {
            "blastn-seed-extend", "drr-enqueue-service", "blastn-drr-switch"}
        for workload in scenarios.values():
            assert workload.phase_count >= 2
            bounds = workload.phase_bounds()
            assert bounds == sorted(bounds)

    def test_scenario_factories_split_at_the_documented_labels(self):
        blastn = blastn_seed_extend(database_length=1200, query_length=48)
        assert blastn.phase_names == ("seed", "extend")
        drr = drr_enqueue_service(packet_count=150)
        assert drr.phase_names == ("enqueue", "service")
        frag = frag_per_packet(packet_count=3)
        assert frag.phase_count == 3  # one phase per packet


class TestPhasedMeasurement:
    def configs(self):
        base = base_configuration()
        return [base, base.replace(dcache_sets=2), base.replace(dcache_setsize_kb=8),
                base]  # duplicate of [0]

    def test_overall_measurement_identical_to_plain_workload(self, drr_phased,
                                                             drr_small):
        """Phasing must not change what is measured, only add the phase view."""
        configs = self.configs()
        phased = LiquidPlatform().measure_phases(drr_phased, configs)
        plain = LiquidPlatform().measure_many(drr_small, configs)
        for phased_m, plain_m in zip(phased, plain):
            assert phased_m.measurement.statistics.dcache == plain_m.statistics.dcache
            assert phased_m.measurement.cycles == plain_m.cycles

    def test_warm_totals_equal_single_shot_statistics(self, drr_phased):
        configs = self.configs()
        results = LiquidPlatform().measure_phases(drr_phased, configs)
        for result in results:
            assert isinstance(result, PhasedMeasurement)
            assert result.phases == ("enqueue", "service")
            assert result.dcache.warm_total() == result.measurement.statistics.dcache
            assert result.icache.warm_total() == result.measurement.statistics.icache

    def test_engine_phased_results_identical_to_sequential(self, drr_phased):
        configs = self.configs()
        sequential = LiquidPlatform().measure_phases(drr_phased, configs)
        for workers in (1, 2):
            with ParallelEvaluator(workers=workers) as engine:
                parallel = engine.measure_phases(drr_phased, configs)
                assert parallel == sequential, f"diverged with {workers} workers"
                assert engine.stats.phase_chains > 0

    def test_engine_composition_scenario_matches_sequential(self, switch_scenario):
        configs = self.configs()[:2]
        sequential = LiquidPlatform().measure_phases(switch_scenario, configs)
        with ParallelEvaluator(workers=2) as engine:
            assert engine.measure_phases(switch_scenario, configs) == sequential

    def test_phase_chains_are_memoised(self, drr_phased):
        platform = LiquidPlatform()
        configs = self.configs()
        platform.measure_phases(drr_phased, configs)
        jobs = platform.phase_requests(drr_phased, configs)
        assert jobs == []  # everything memoised; a second batch replays nothing

    def test_engine_decodes_each_phase_view_once(self, drr_small):
        """Growing the config sweep must not grow the per-phase decode count."""
        # a fresh split: the decode accounting reads the instance's view cache
        drr_phased = PhasedWorkload.split_at_labels(
            drr_small, ("enqueue", "service"), ("service_phase",))
        with ParallelEvaluator(workers=1) as engine:
            engine.measure_phases(drr_phased, self.configs())
            first = engine.stats.phase_decodes
            assert first == 2 * drr_phased.phase_count  # icache + dcache linesize
            base = base_configuration()
            engine.measure_phases(
                drr_phased, [base.replace(dcache_sets=3), base.replace(dcache_sets=4)])
            assert engine.stats.phase_decodes == first  # no re-decode, more configs
            assert "phase_decode" in engine.stats.stage_report()
            assert "phase_chain" in engine.stats.stage_report()

    def test_store_backed_engine_still_replays_phases(self, tmp_path, drr_phased):
        """A store serves the overall measurements; chains are recomputed."""
        from repro.engine import open_store

        path = str(tmp_path / "phased.sqlite")
        configs = self.configs()
        with ParallelEvaluator(workers=1, store=open_store(path)) as writer:
            first = writer.measure_phases(drr_phased, configs)
        with ParallelEvaluator(workers=1, store=open_store(path)) as reader:
            replayed = reader.measure_phases(drr_phased, configs)
            assert replayed == first
            assert reader.stats.store_hits == 3  # unique configs from the store
            assert reader.platform.effort()["runs"] == 0

    def test_warm_chain_observes_the_phase_transition(self, switch_scenario):
        """The resumed phase must hit on state its first run left behind."""
        base = base_configuration().replace(dcache_setsize_kb=16)
        [result] = LiquidPlatform().measure_phases(switch_scenario, [base])
        resume_index = result.phases.index("blastn-resume")
        cold = result.dcache.cold[resume_index]
        warm = result.dcache.warm[resume_index]
        assert warm.misses < cold.misses, (
            "resuming blastn after a context switch should reuse cached state")


class TestCacheLevelPhases:
    def test_simulate_phases_accepts_views_and_arrays(self, drr_small):
        trace = drr_small.trace()
        config = CacheConfig(ways=2, setsize_kb=1, linesize_words=4)
        n = len(trace.data_addresses)
        phases = [(trace.data_addresses[:n // 2], trace.data_is_write[:n // 2]),
                  (trace.data_addresses[n // 2:], trace.data_is_write[n // 2:])]

        by_arrays = Cache(config).simulate_phases(phases)
        from repro.microarch.cachekernel import decode_trace
        views = [decode_trace(a, w, linesize_bytes=config.linesize_bytes)
                 for a, w in phases]
        by_views = Cache(config).simulate_phases(views)
        assert by_arrays == by_views

        single = Cache(config).simulate(trace.data_addresses, trace.data_is_write)
        assert sum(s.misses for s in by_arrays) == single.misses

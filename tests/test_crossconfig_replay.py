"""Bit-identity of the cross-config and JIT replay lanes, and the arena cost model.

The round-3 kernel lanes must be indistinguishable from the scalar
reference loop (``Cache.simulate(vectorized=False)``) in every
observable: hit/miss statistics field for field, the final tag/age/FIFO
state of every configuration in a merged batch, the replay tick, and the
position of each configuration's seeded RANDOM victim stream.  The
hypothesis suites below drive the shared randomized geometries/traces
from ``conftest`` through:

* :func:`~repro.microarch.cachekernel.replay_many_associative` -- the
  rank-synchronous cross-config lane, on mixed-geometry batches;
* the JIT event loop (:func:`~repro.microarch.cachekernel._replay_events_loop`)
  run as plain Python, which pins the lane's semantics on hosts without
  Numba -- CI runs the same tests with Numba installed, where the
  identical function object is what gets compiled;
* :func:`~repro.microarch.cachekernel.simulate_many` under every lane
  selection, including the ``REPRO_KERNEL_LANE`` environment knob.

The arena tests pin the adaptive publish cost model: skip decisions may
change *where* a batch replays (inline versus pooled, published or not)
but never *what* it measures.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from conftest import SET_ASSOCIATIVE_WAYS, to_arrays, trace_strategy

from repro.config import Replacement
from repro.engine import ParallelEvaluator
from repro.engine.arena import (
    ARENA_THRESHOLD_ENV,
    DEFAULT_PUBLISH_THRESHOLD,
    publish_threshold,
    publish_worthwhile,
)
from repro.errors import ConfigurationError
from repro.microarch import cachekernel
from repro.microarch.cache import Cache, CacheConfig
from repro.microarch.cachekernel import (
    DEFAULT_LANE,
    KERNEL_LANE_ENV,
    LANE_CROSSCONFIG,
    LANE_JIT,
    LANE_NUMPY,
    decode_trace,
    jit_available,
    kernel_lane,
    replay,
    replay_many_associative,
    simulate_many,
)
from repro.platform import LiquidPlatform
from repro.workloads import ArithWorkload


def config_batch_strategy(min_size=2, max_size=5, ways=SET_ASSOCIATIVE_WAYS):
    """Mixed-geometry batches sharing one line size (the grouping invariant).

    Way counts, way sizes and replacement policies vary freely within a
    batch -- exactly the shape :func:`replay_many_associative` merges --
    while the line size is drawn once because a decoded view is a
    property of the line size.
    """
    geometry = st.fixed_dictionaries({
        "ways": st.sampled_from(list(ways)),
        "setsize_kb": st.sampled_from([1, 2, 4]),
        "replacement": st.sampled_from(sorted(Replacement.ALL)),
    })
    return st.tuples(
        st.sampled_from([4, 8]),
        st.lists(geometry, min_size=min_size, max_size=max_size),
    ).map(lambda drawn: [
        CacheConfig(linesize_words=drawn[0], **g) for g in drawn[1]])


def scalar_oracle(config, addresses, writes):
    """The forced scalar loop: statistics plus the full final cache."""
    cache = Cache(config)
    stats = cache.simulate(addresses, writes, vectorized=False)
    return stats, cache


def assert_state_matches_oracle(state, cache):
    """A merged-replay ``KernelState`` must equal the oracle cache bit for bit."""
    np.testing.assert_array_equal(state.tags, cache._tags)
    np.testing.assert_array_equal(state.age, cache._age)
    np.testing.assert_array_equal(state.fifo, cache._fifo)
    assert state.tick == cache._tick
    assert state.rng.bit_generator.state == cache._rng.bit_generator.state


class _plain_jit_loop:
    """Context manager forcing the JIT lane to run the plain-Python loop.

    Hosts without Numba resolve ``lane="jit"`` to the default lane; the
    tests instead install :func:`cachekernel._replay_events_loop` as the
    "compiled" loop so the full JIT dispatch path runs everywhere.  When
    Numba *is* available (the CI leg) the real compiled loop is left in
    place -- same function, compiled.
    """

    def __enter__(self):
        self._saved = cachekernel._JIT_LOOP
        if not jit_available():
            cachekernel._JIT_LOOP = cachekernel._replay_events_loop
        return self

    def __exit__(self, *exc_info):
        cachekernel._JIT_LOOP = self._saved


# -- cross-config merged replay ----------------------------------------------------------

@given(configs=config_batch_strategy(), trace=trace_strategy())
@settings(max_examples=40, deadline=None)
def test_crossconfig_batch_matches_scalar_oracle(configs, trace):
    """Merged stats AND every unpadded final state equal the scalar loop's."""
    addresses, writes = to_arrays(trace)
    view = decode_trace(addresses, writes,
                        linesize_bytes=configs[0].linesize_bytes)

    stats, states = replay_many_associative(view, configs)

    assert len(stats) == len(states) == len(configs)
    for config, stat, state in zip(configs, stats, states):
        ref_stats, ref_cache = scalar_oracle(config, addresses, writes)
        assert stat == ref_stats
        assert_state_matches_oracle(state, ref_cache)


@given(configs=config_batch_strategy(min_size=2, max_size=4),
       trace=trace_strategy(max_size=200))
@settings(max_examples=25, deadline=None)
def test_crossconfig_hybrid_phases_each_match_oracle(configs, trace):
    """Both halves of the hybrid loop are the same machine.

    The merged replay runs a vectorized rank loop while ranks are wide
    and serializes the narrow tail.  Pinning the switch point to its
    extremes forces each phase to replay the *whole* stream -- tiny
    hypothesis traces would otherwise mostly exercise the tail -- and
    both must agree with the scalar oracle bit for bit.
    """
    addresses, writes = to_arrays(trace)
    view = decode_trace(addresses, writes,
                        linesize_bytes=configs[0].linesize_bytes)
    saved = cachekernel._TAIL_SWITCH
    results = []
    try:
        for switch in (0, 1 << 30):
            cachekernel._TAIL_SWITCH = switch
            results.append(replay_many_associative(view, configs))
    finally:
        cachekernel._TAIL_SWITCH = saved
    for stats, states in results:
        for config, stat, state in zip(configs, stats, states):
            ref_stats, ref_cache = scalar_oracle(config, addresses, writes)
            assert stat == ref_stats
            assert_state_matches_oracle(state, ref_cache)


@given(configs=config_batch_strategy(min_size=2, max_size=4),
       trace=trace_strategy(max_size=200))
@settings(max_examples=25, deadline=None)
def test_crossconfig_batch_matches_per_config_replay(configs, trace):
    """The merged loop and N independent replay() calls are interchangeable."""
    addresses, writes = to_arrays(trace)
    view = decode_trace(addresses, writes,
                        linesize_bytes=configs[0].linesize_bytes)

    merged_stats, merged_states = replay_many_associative(view, configs)
    for config, stat, state in zip(configs, merged_stats, merged_states):
        solo_state = cachekernel.fresh_state(config)
        solo_stat = replay(view, config, state=solo_state, lane=LANE_NUMPY)
        assert stat == solo_stat
        np.testing.assert_array_equal(state.tags, solo_state.tags)
        np.testing.assert_array_equal(state.age, solo_state.age)
        np.testing.assert_array_equal(state.fifo, solo_state.fifo)
        assert state.tick == solo_state.tick
        assert (state.rng.bit_generator.state
                == solo_state.rng.bit_generator.state)


def test_crossconfig_rejects_direct_mapped_and_mismatched_linesize():
    view = decode_trace(np.asarray([0, 4, 8], dtype=np.int64), linesize_bytes=16)
    with pytest.raises(ConfigurationError):
        replay_many_associative(view, [CacheConfig(ways=1, setsize_kb=1,
                                                   linesize_words=4)])
    with pytest.raises(ConfigurationError):
        replay_many_associative(view, [CacheConfig(ways=2, setsize_kb=1,
                                                   linesize_words=8)])


def test_crossconfig_empty_trace_yields_cold_states():
    view = decode_trace(np.asarray([], dtype=np.int64), linesize_bytes=16)
    configs = [CacheConfig(ways=2, setsize_kb=1, linesize_words=4),
               CacheConfig(ways=4, setsize_kb=2, linesize_words=4,
                           replacement=Replacement.LRU)]
    stats, states = replay_many_associative(view, configs)
    for config, stat, state in zip(configs, stats, states):
        assert stat.accesses == 0 and stat.misses == 0
        assert (state.tags == -1).all()
        assert state.tick == 0


# -- lane selection and equivalence ------------------------------------------------------

@given(configs=config_batch_strategy(min_size=2, max_size=4,
                                     ways=(1,) + SET_ASSOCIATIVE_WAYS),
       trace=trace_strategy(max_size=250))
@settings(max_examples=25, deadline=None)
def test_simulate_many_identical_across_all_lanes(configs, trace):
    """numpy, crossconfig and jit lanes agree on mixed direct/associative batches."""
    addresses, writes = to_arrays(trace)
    view = decode_trace(addresses, writes,
                        linesize_bytes=configs[0].linesize_bytes)

    reference = simulate_many(view, configs, lane=LANE_NUMPY)
    assert simulate_many(view, configs, lane=LANE_CROSSCONFIG) == reference
    with _plain_jit_loop():
        assert simulate_many(view, configs, lane=LANE_JIT) == reference


@given(configs=config_batch_strategy(min_size=2, max_size=3),
       trace=trace_strategy(max_size=200))
@settings(max_examples=20, deadline=None)
def test_jit_event_loop_matches_scalar_oracle(configs, trace):
    """The (Numba-compilable) event loop is bit-identical, state included."""
    addresses, writes = to_arrays(trace)
    view = decode_trace(addresses, writes,
                        linesize_bytes=configs[0].linesize_bytes)
    with _plain_jit_loop():
        for config in configs:
            state = cachekernel.fresh_state(config)
            stats = replay(view, config, state=state, lane=LANE_JIT)
            ref_stats, ref_cache = scalar_oracle(config, addresses, writes)
            assert stats == ref_stats
            assert_state_matches_oracle(state, ref_cache)


class TestKernelLaneResolution:
    def test_default_lane_is_crossconfig(self, monkeypatch):
        monkeypatch.delenv(KERNEL_LANE_ENV, raising=False)
        assert kernel_lane() == LANE_CROSSCONFIG == DEFAULT_LANE

    def test_environment_selects_lane(self, monkeypatch):
        monkeypatch.setenv(KERNEL_LANE_ENV, "numpy")
        assert kernel_lane() == LANE_NUMPY

    def test_argument_overrides_environment(self, monkeypatch):
        monkeypatch.setenv(KERNEL_LANE_ENV, "numpy")
        assert kernel_lane(LANE_CROSSCONFIG) == LANE_CROSSCONFIG

    def test_case_and_whitespace_insensitive(self, monkeypatch):
        monkeypatch.delenv(KERNEL_LANE_ENV, raising=False)
        assert kernel_lane(" NumPy ") == LANE_NUMPY

    def test_numba_is_an_alias_for_jit(self):
        with _plain_jit_loop():
            assert kernel_lane("numba") == LANE_JIT
            assert kernel_lane("jit") == LANE_JIT

    def test_unknown_lane_raises(self):
        with pytest.raises(ConfigurationError):
            kernel_lane("vulkan")

    def test_jit_falls_back_to_default_when_unavailable(self, monkeypatch):
        monkeypatch.setattr(cachekernel, "_JIT_LOOP", False)
        assert not jit_available()
        assert kernel_lane(LANE_JIT) == DEFAULT_LANE

    def test_jit_resolves_when_available(self):
        with _plain_jit_loop():
            assert jit_available()
            assert kernel_lane(LANE_JIT) == LANE_JIT

    def test_environment_drives_simulate_many(self, monkeypatch):
        """The env knob reaches the dispatch itself, not just the resolver."""
        addresses = np.arange(0, 4096, 16, dtype=np.int64)
        view = decode_trace(addresses, linesize_bytes=16)
        configs = [CacheConfig(ways=2, setsize_kb=1, linesize_words=4),
                   CacheConfig(ways=4, setsize_kb=1, linesize_words=4,
                               replacement=Replacement.LRU)]
        monkeypatch.setenv(KERNEL_LANE_ENV, LANE_NUMPY)
        reference = simulate_many(view, configs)
        monkeypatch.setenv(KERNEL_LANE_ENV, LANE_CROSSCONFIG)
        assert simulate_many(view, configs) == reference


# -- adaptive arena cost model -----------------------------------------------------------

class TestPublishCostModel:
    def test_default_threshold(self, monkeypatch):
        monkeypatch.delenv(ARENA_THRESHOLD_ENV, raising=False)
        assert publish_threshold() == DEFAULT_PUBLISH_THRESHOLD

    def test_environment_override(self, monkeypatch):
        monkeypatch.setenv(ARENA_THRESHOLD_ENV, "1024")
        assert publish_threshold() == 1024

    def test_argument_beats_environment(self, monkeypatch):
        monkeypatch.setenv(ARENA_THRESHOLD_ENV, "1024")
        assert publish_threshold(2048) == 2048

    def test_product_rule(self, monkeypatch):
        monkeypatch.delenv(ARENA_THRESHOLD_ENV, raising=False)
        assert publish_worthwhile(1000, 10, threshold=10_000)
        assert not publish_worthwhile(1000, 9, threshold=10_000)
        assert not publish_worthwhile(1000, 0, threshold=10_000)

    def test_non_positive_threshold_always_publishes(self):
        assert publish_worthwhile(0, 0, threshold=0)
        assert publish_worthwhile(1, 1, threshold=-5)


class TestArenaSkipEquivalence:
    """Skip decisions change the execution shape, never the measurements."""

    def _configs(self):
        from repro.config import base_configuration

        base = base_configuration()
        return [
            base.replace(dcache_sets=2, dcache_replacement=Replacement.RANDOM),
            base.replace(dcache_sets=2, dcache_replacement=Replacement.LRR),
            base.replace(dcache_sets=4, dcache_replacement=Replacement.LRU),
            base.replace(dcache_sets=3, dcache_setsize_kb=2),
        ]

    def test_skipped_batch_identical_to_published_and_plain_pool(self):
        workload = ArithWorkload(iterations=120)
        configs = self._configs()
        reference = LiquidPlatform().measure_many(workload, configs)

        # adaptive mode with an unreachable threshold: every batch skips
        with ParallelEvaluator(LiquidPlatform(), workers=2,
                               arena_threshold=1 << 62) as skipping:
            assert skipping.measure_many(workload, configs) == reference
            assert skipping.stats.arena_skipped > 0
            assert skipping.stats.parallel_simulations == 0  # ran inline
            assert skipping.stats.arena_segments == 0  # nothing published

        # adaptive mode pinned to always-publish: pooled, zero-copy views
        with ParallelEvaluator(LiquidPlatform(), workers=2,
                               arena_threshold=0) as publishing:
            assert publishing.measure_many(workload, configs) == reference
            assert publishing.stats.arena_skipped == 0

        # explicit arena=False: pooled without publishing, never skips
        with ParallelEvaluator(LiquidPlatform(), workers=2,
                               arena=False) as plain:
            assert plain.measure_many(workload, configs) == reference
            assert plain.stats.arena_skipped == 0
            assert plain.stats.arena_segments == 0

    def test_forced_arena_never_skips(self):
        workload = ArithWorkload(iterations=120)
        configs = self._configs()
        reference = LiquidPlatform().measure_many(workload, configs)
        with ParallelEvaluator(LiquidPlatform(), workers=2, arena=True,
                               arena_threshold=1 << 62) as engine:
            assert engine.measure_many(workload, configs) == reference
            assert engine.stats.arena_skipped == 0

    def test_kernel_lane_recorded_in_stats(self):
        workload = ArithWorkload(iterations=120)
        with ParallelEvaluator(LiquidPlatform(), workers=1) as engine:
            engine.measure_many(workload, self._configs())
            assert engine.stats.kernel_lane == kernel_lane()
            assert engine.stats.as_dict()["kernel_lane"] == kernel_lane()

"""Tests for the power/energy extension (the paper's proposed future work)."""

import pytest

from repro.config import base_configuration
from repro.fpga import PowerModel, energy_cost_percent
from repro.platform import LiquidPlatform


@pytest.fixture(scope="module")
def power_platform():
    return LiquidPlatform()


@pytest.fixture(scope="module")
def model():
    return PowerModel()


class TestPowerModel:
    def test_base_configuration_power_is_plausible(self, power_platform, model,
                                                   drr_small, base_config):
        measurement = power_platform.measure(drr_small, base_config)
        estimate = model.estimate(measurement)
        # a LEON2 system on a Virtex-E dissipates on the order of a watt
        assert 300 < estimate.average_power_milliwatts < 3000
        assert estimate.total_millijoules == pytest.approx(
            estimate.static_millijoules + estimate.dynamic_millijoules)
        assert "mJ" in estimate.summary()

    def test_bigger_caches_increase_static_power(self, power_platform, model,
                                                 drr_small, base_config):
        small = power_platform.measure(drr_small, base_config)
        big = power_platform.measure(
            drr_small, base_config.replace(dcache_setsize_kb=32, icache_setsize_kb=8))
        assert (model.static_power_milliwatts(big)
                > model.static_power_milliwatts(small))

    def test_fewer_misses_reduce_dynamic_energy(self, power_platform, model,
                                                drr_small, base_config):
        base = power_platform.measure(drr_small, base_config)
        big_cache = power_platform.measure(
            drr_small, base_config.replace(dcache_setsize_kb=32))
        assert (model.dynamic_energy_millijoules(big_cache)
                <= model.dynamic_energy_millijoules(base))

    def test_faster_configuration_saves_static_energy(self, power_platform, model,
                                                      arith_small, base_config):
        base = power_platform.measure(arith_small, base_config)
        fast = power_platform.measure(arith_small, base_config.replace(multiplier="m32x32"))
        # the m32x32 multiplier leaks slightly more but finishes sooner; the
        # runtime reduction dominates the static energy term
        assert model.estimate(fast).static_millijoules < model.estimate(base).static_millijoules

    def test_energy_cost_percent_sign_convention(self, power_platform, drr_small,
                                                 base_config):
        base = power_platform.measure(drr_small, base_config)
        faster = power_platform.measure(drr_small, base_config.replace(dcache_fast_read=True))
        assert energy_cost_percent(faster, base) < 0
        assert energy_cost_percent(base, base) == pytest.approx(0.0)

    def test_energy_is_a_usable_third_objective(self, power_platform, drr_small,
                                                base_config):
        """Energy deltas compose with the existing rho/lambda/beta costs."""
        base = power_platform.measure(drr_small, base_config)
        candidate = power_platform.measure(
            drr_small, base_config.replace(dcache_setsize_kb=32))
        rho = candidate.delta(base).rho
        energy = energy_cost_percent(candidate, base)
        weighted = 100 * rho + 1 * candidate.delta(base).chip + 10 * energy
        assert isinstance(weighted, float)
        # the larger cache is faster; whether it saves energy depends on the
        # static-vs-dynamic balance, but the estimate must stay finite and
        # within a sane band either way
        assert -100 < energy < 100
